"""The user-facing entry points: ``repro lint``, ConfigError line info,
and the FptCore opt-in fail-fast hook."""

import json

import pytest

from repro.cli import main
from repro.core import FptCore, Module, RunReason, SimClock
from repro.core.config import parse_config
from repro.core.errors import ConfigError
from repro.modules import standard_registry


class TickSource(Module):
    """A service-free data source for construction tests."""

    type_name = "tick_source"

    def init(self) -> None:
        self.ctx.require_no_inputs()
        self.out = self.ctx.create_output("value")
        self.ctx.schedule_every(self.ctx.param_float("interval", 1.0))

    def run(self, reason: RunReason) -> None:
        self.out.write(1.0, self.ctx.clock.now())


def tick_registry():
    registry = standard_registry()
    registry.register(TickSource)
    return registry


#: A buildable, service-free pipeline for the FptCore hook tests.
BUILDABLE = """\
[tick_source]
id = src

[mavgvec]
id = smooth
input[input] = src.value

[print]
id = out
input[x] = smooth.mean
"""

GOOD = """\
[sadc]
id = src
node = n1
metrics = ldavg_1

[mavgvec]
id = smooth
input[input] = src.ldavg_1

[print]
id = out
input[x] = smooth.mean
"""

BAD = """\
[no_such_module]
id = x

[mavgvec]
id = smooth
input[input] = ghost.mean

[print]
id = out
input[x] = smooth.mean
"""


class TestLintCommand:
    def test_clean_config_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "good.conf"
        path.write_text(GOOD)
        assert main(["lint", str(path)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_bad_config_exits_one_with_codes(self, tmp_path, capsys):
        path = tmp_path / "bad.conf"
        path.write_text(BAD)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FPT001" in out and "FPT003" in out
        assert f"{path}:1:" in out  # file:line prefixes

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.conf")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "bad.conf"
        path.write_text(BAD)
        assert main(["lint", "--json", str(path)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert {d["code"] for d in data} >= {"FPT001", "FPT003"}

    def test_warnings_pass_unless_strict(self, tmp_path, capsys):
        path = tmp_path / "warn.conf"
        path.write_text(GOOD.replace("node = n1", "node = n1\nbanana = 1"))
        assert main(["lint", str(path)]) == 0
        assert main(["lint", "--strict", str(path)]) == 1

    def test_generated_impl_determinism_all_clean(self, capsys):
        assert main(["lint", "--slaves", "4"]) == 0
        assert "no diagnostics" in capsys.readouterr().out


class TestConfigErrorLineInfo:
    def test_parse_error_carries_line_and_text(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_config("[sadc]\nid = a\nwat\n")
        error = excinfo.value
        assert error.line_no == 3
        assert error.line_text.strip() == "wat"
        described = error.describe()
        assert "line 3" in described
        assert "wat" in described

    def test_lenient_mode_collects_instead_of_raising(self):
        errors = []
        specs = parse_config("[sadc]\nid = a\nnode = n\nwat\n", collect=errors)
        assert len(errors) == 1
        assert errors[0].line_no == 4
        assert [s.instance_id for s in specs] == ["a"]

    def test_cli_surfaces_line_info(self, monkeypatch, capsys):
        from repro import cli

        def boom(args):
            raise ConfigError("broken wiring", line_no=7, line_text="x = y")

        monkeypatch.setattr(cli, "cmd_table2", boom)
        parser = cli.build_parser()
        args = parser.parse_args(["table2"])
        monkeypatch.setattr(args, "handler", boom)
        # Route through main() by reproducing its dispatch with the
        # patched handler raising.
        assert cli.main(["table2"]) == 2
        err = capsys.readouterr().err
        assert "configuration error" in err
        assert "line 7" in err
        assert "x = y" in err
        assert "repro lint" in err  # points at the analyzer


class TestFptCoreLintHook:
    def test_lint_true_rejects_bad_config_before_instantiation(self):
        with pytest.raises(ConfigError, match="FPT001"):
            FptCore.from_config(
                "[no_such]\nid = x\n", standard_registry(), SimClock(),
                lint=True,
            )

    def test_lint_true_accepts_clean_config(self):
        core = FptCore.from_config(
            BUILDABLE, tick_registry(), SimClock(), lint=True
        )
        assert sorted(core.instances) == ["out", "smooth", "src"]
        core.close()

    def test_warnings_do_not_block_construction(self):
        text = BUILDABLE.replace("id = src", "id = src\nbanana = 1")
        core = FptCore.from_config(
            text, tick_registry(), SimClock(), lint=True
        )
        core.close()

    def test_default_is_off(self):
        # Identical bad config constructs (then fails at build) only
        # through the *wiring* error path, proving lint didn't run.
        with pytest.raises(ConfigError, match="unknown module type"):
            FptCore.from_config(
                "[no_such]\nid = x\n", standard_registry(), SimClock()
            )

    def test_specs_path_lints_too(self):
        specs = parse_config("[knn]\nid = k\nmodel = bb_model\n")
        with pytest.raises(ConfigError, match="FPT011"):
            FptCore(specs, standard_registry(), SimClock(), lint=True)


class TestRuntimeUnconsumedParams:
    def test_clean_pipeline_consumes_everything(self):
        core = FptCore.from_config(BUILDABLE, tick_registry(), SimClock())
        assert core.unconsumed_param_diagnostics() == []
        core.close()

    def test_stray_param_reported_after_init(self):
        # Static lint would warn too; the runtime check proves the
        # module really never read it, computed names included.
        text = BUILDABLE.replace("id = src", "id = src\nstray = 1")
        core = FptCore.from_config(text, tick_registry(), SimClock())
        diags = core.unconsumed_param_diagnostics()
        assert [d.code for d in diags] == ["FPT007"]
        assert "stray" in diags[0].message
        assert diags[0].instance == "src"
        core.close()
