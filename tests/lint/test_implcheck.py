"""Contract vs. implementation: the AST scanner and FPT1xx checks."""

from repro.core import Module, RunReason
from repro.core.registry import ModuleRegistry
from repro.lint import (
    InputPortSpec,
    ModuleContract,
    ParamSpec,
    check_implementation,
    check_registry,
    contracts_for_registry,
    infer_contract,
    scan_module_class,
)


class WellBehaved(Module):
    type_name = "well_behaved"

    def init(self) -> None:
        self.out = self.ctx.create_output("result")
        self.window = self.ctx.param_int("window", 10)
        self.conn = self.ctx.input("input").single()
        self.ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        pass


WELL_BEHAVED_CONTRACT = ModuleContract(
    type_name="well_behaved",
    params=(ParamSpec("window", "int"),),
    inputs=(InputPortSpec("input", max_connections=1),),
    outputs=("result",),
)


class Sneaky(Module):
    """Violates its (deliberately wrong) contract in every FPT1xx way."""

    type_name = "sneaky"

    def init(self) -> None:
        self.out = self.ctx.create_output("surprise")   # undeclared: FPT103
        self.k = self.ctx.param_int("k")                # undeclared: FPT101
        self.w = self.ctx.param_float("window", 1.0)    # contract says int: FPT106
        self.conn = self.ctx.input("side")              # undeclared: FPT105

    def run(self, reason: RunReason) -> None:
        pass


SNEAKY_CONTRACT = ModuleContract(
    type_name="sneaky",
    params=(
        ParamSpec("window", "int"),
        ParamSpec("ghost", "int"),                      # never read: FPT102
    ),
    inputs=(InputPortSpec("input"),),
    outputs=("result",),                                # never created: FPT104
)


class DynamicEverything(Module):
    """Computed names: every facet must be exempted, not flagged."""

    type_name = "dynamic_everything"

    def init(self) -> None:
        for name in self.names():
            self.ctx.create_output(name)
            self.ctx.param_float(name, 0.0)
        self.ctx.trigger_after_updates(self.ctx.connection_count)

    def run(self, reason: RunReason) -> None:
        for _name, group in self.ctx.inputs.items():
            group.pop_all()

    def names(self):
        return ["a", "b"]


class TestScan:
    def test_scan_collects_literal_api_usage(self):
        scan = scan_module_class(WellBehaved)
        assert set(scan.outputs) == {"result"}
        assert set(scan.params) == {"window"}
        assert scan.params["window"][0] == {"int"}
        assert set(scan.inputs) == {"input"}
        assert scan.trigger_updates == 1
        assert not scan.dynamic_outputs

    def test_scan_marks_dynamic_facets(self):
        scan = scan_module_class(DynamicEverything)
        assert scan.dynamic_outputs
        assert scan.dynamic_params
        assert scan.reads_all_inputs
        assert scan.dynamic_trigger

    def test_scan_records_line_numbers_in_class_file(self):
        scan = scan_module_class(WellBehaved)
        assert scan.file.endswith("test_implcheck.py")
        assert scan.outputs["result"] > 1


class TestCheckImplementation:
    def test_clean_module_has_no_findings(self):
        assert check_implementation(WellBehaved, WELL_BEHAVED_CONTRACT) == []

    def test_every_fpt1xx_code_fires_on_sneaky(self):
        codes = {
            d.code for d in check_implementation(Sneaky, SNEAKY_CONTRACT)
        }
        assert codes == {
            "FPT101", "FPT102", "FPT103", "FPT104", "FPT105", "FPT106",
        }

    def test_dynamic_module_exempt_from_static_checks(self):
        contract = ModuleContract(type_name="dynamic_everything")
        assert check_implementation(DynamicEverything, contract) == []

    def test_findings_point_into_the_source_file(self):
        findings = check_implementation(Sneaky, SNEAKY_CONTRACT)
        located = [d for d in findings if d.line]
        assert located
        assert all(d.file.endswith("test_implcheck.py") for d in located)


class TestInference:
    def test_inferred_contract_mirrors_the_source(self):
        contract = infer_contract(WellBehaved)
        assert contract.inferred
        assert contract.outputs == ("result",)
        assert [p.name for p in contract.params] == ["window"]
        assert contract.param("window").type == "int"
        assert not contract.param("window").required  # has a default
        assert [p.name for p in contract.inputs] == ["input"]

    def test_param_without_default_is_required(self):
        contract = infer_contract(Sneaky)
        assert contract.param("k").required

    def test_dynamic_module_infers_opaque_contract(self):
        contract = infer_contract(DynamicEverything)
        assert contract.opaque_outputs
        assert contract.opaque_params
        assert contract.accepts_any_inputs

    def test_contracts_for_registry_mixes_declared_and_inferred(self):
        registry = ModuleRegistry()
        registry.register(WellBehaved)
        contracts = contracts_for_registry(registry)
        assert contracts.get("well_behaved").inferred
        assert not contracts.get("sadc").inferred  # declared, untouched


class TestStandardRegistry:
    def test_every_standard_module_matches_its_contract(self):
        assert check_registry() == []
