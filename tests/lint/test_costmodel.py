"""Static cost model: DAG folding, budget gates, vectorization lints.

The golden assertions double as the calibration contract: the estimate
for the generated deployment must stay within 3x of the pipeline rate
measured in the committed ``BENCH_scale.json``.
"""

import json
import os

import pytest

from repro.experiments import ScenarioConfig, build_asdf_config_text
from repro.lint import CostFact, CostTerm, estimate_config, scan_hot_modules
from repro.lint.contracts import ContractRegistry, ModuleContract
from repro.lint.costmodel import DEFAULT_TICK_BUDGET_MS, FLEET_THRESHOLD

BENCH_SCALE = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_scale.json"
)


def generated(slaves, **kwargs):
    config = ScenarioConfig(num_slaves=slaves, **kwargs)
    nodes = [f"slave{i + 1:03d}" for i in range(slaves)]
    return build_asdf_config_text(nodes, config)


def codes(report):
    return [d.code for d in report.diagnostics]


TEMPLATE = """\
[scale]
n = {n}
tick_budget_ms = {budget}

[sadc]
id = sadc_m01
node = m01
interval = 1.0

[knn]
id = onenn_m01
input[input] = sadc_m01.vector
model = bb_model
k = 1

[print]
id = print_alarms
input[input] = onenn_m01.output0
"""


class TestBudgetGate:
    def test_fpt301_fires_when_the_estimate_exceeds_the_budget(self):
        report = estimate_config(TEMPLATE.format(n=1000, budget=50))
        assert "FPT301" in codes(report)
        assert report.total_ms_per_s > 50
        assert report.budget_ms == 50

    def test_fpt301_silent_within_budget(self):
        report = estimate_config(TEMPLATE.format(n=10, budget=1000))
        assert "FPT301" not in codes(report)

    def test_cli_budget_overrides_the_scale_section(self):
        text = TEMPLATE.format(n=10, budget=1000)
        report = estimate_config(text, budget_ms=0.1)
        assert report.budget_ms == 0.1
        assert "FPT301" in codes(report)

    def test_default_budget_is_one_tick_second(self):
        report = estimate_config(generated(3))
        assert report.budget_ms == DEFAULT_TICK_BUDGET_MS

    def test_scale_section_sets_the_template_fleet_size(self):
        report = estimate_config(TEMPLATE.format(n=500, budget=1000))
        assert report.template
        assert report.fleet_size == 500

    def test_expanded_deployment_infers_fleet_size(self):
        report = estimate_config(generated(25))
        assert not report.template
        assert report.fleet_size == 25


class TestFleetEquivalent:
    def test_fpt302_fires_on_per_node_knn_at_fleet_scale(self):
        report = estimate_config(TEMPLATE.format(n=1000, budget=1000))
        hits = [d for d in report.diagnostics if d.code == "FPT302"]
        assert len(hits) == 1
        assert "knnfleet" in hits[0].message

    def test_fpt302_silent_on_the_fleet_batched_variant(self):
        slaves = 200
        config = ScenarioConfig(num_slaves=slaves, fleet_knn=True)
        nodes = [f"slave{i + 1:03d}" for i in range(slaves)]
        report = estimate_config(build_asdf_config_text(nodes, config))
        assert "FPT302" not in codes(report)

    def test_fpt302_silent_below_the_fleet_threshold(self):
        report = estimate_config(generated(FLEET_THRESHOLD - 1))
        assert "FPT302" not in codes(report)

    def test_knnfleet_cost_dominates_per_node_knn_at_scale(self):
        slaves = 200
        nodes = [f"slave{i + 1:03d}" for i in range(slaves)]
        plain = estimate_config(build_asdf_config_text(
            nodes, ScenarioConfig(num_slaves=slaves)
        ))
        fleet = estimate_config(build_asdf_config_text(
            nodes, ScenarioConfig(num_slaves=slaves, fleet_knn=True)
        ))
        assert fleet.total_ms_per_s < plain.total_ms_per_s / 2


class TestWindowRecompute:
    def test_fpt303_fires_when_slide_is_smaller_than_window(self):
        text = generated(3, window=60, slide=10)
        report = estimate_config(text)
        hits = [d for d in report.diagnostics if d.code == "FPT303"]
        assert hits, codes(report)
        # Anchored at a slide parameter line so the fix site is obvious.
        for diag in hits:
            assert diag.line > 0

    def test_fpt303_silent_for_tumbling_windows(self):
        report = estimate_config(generated(3, window=60, slide=60))
        assert "FPT303" not in codes(report)


class TestGoldenCostReports:
    """The generated deployment's estimate vs the committed bench."""

    @pytest.fixture(scope="class")
    def bench_rows(self):
        with open(BENCH_SCALE, encoding="utf-8") as fh:
            doc = json.load(fh)
        return {
            (row["num_slaves"], row["engine"]): row for row in doc["rows"]
        }

    def measured_ms_per_s(self, row):
        return row["pipeline_wall_s"] / row["pipeline_seconds"] * 1000.0

    @pytest.mark.parametrize("slaves", [50, 1000])
    def test_per_node_estimate_within_3x_of_scalar_pipeline(
        self, bench_rows, slaves
    ):
        row = bench_rows.get((slaves, "scalar"))
        if row is None:
            pytest.skip(f"no scalar bench row at N={slaves}")
        measured = self.measured_ms_per_s(row)
        report = estimate_config(generated(slaves))
        assert measured / 3 <= report.total_ms_per_s <= measured * 3

    def test_fleet_estimate_within_3x_of_vec_pipeline(self, bench_rows):
        row = bench_rows.get((1000, "vec"))
        if row is None:
            pytest.skip("no vec bench row at N=1000")
        measured = self.measured_ms_per_s(row)
        report = estimate_config(generated(1000, fleet_knn=True))
        assert measured / 3 <= report.total_ms_per_s <= measured * 3

    def test_shipped_deployments_fit_the_real_time_budget(self):
        for slaves in (3, 10, 25, 50):
            report = estimate_config(generated(slaves))
            assert "FPT301" not in codes(report), slaves
            assert report.total_ms_per_s < DEFAULT_TICK_BUDGET_MS

    def test_report_json_shape(self):
        report = estimate_config(generated(10))
        doc = report.to_json()
        assert doc["fleet_size"] == 10
        assert doc["total_ms_per_s"] == pytest.approx(
            report.total_ms_per_s, abs=0.001
        )
        assert 0 <= doc["budget_used"]
        assert doc["types"], doc
        share = sum(entry["ms_per_s"] for entry in doc["types"])
        assert share == pytest.approx(report.total_ms_per_s, rel=0.01)

    def test_render_mentions_fleet_size_and_budget(self):
        text = estimate_config(generated(10)).render()
        assert "N=10" in text
        assert "budget" in text


class _HotFixture:
    """Hot module with every FPT31x hazard (scanned via its source)."""

    type_name = "hotfixture"

    def init(self):
        for node in self.nodes:
            self.setup(node)  # init() is exempt: runs once per deployment

    def run(self, reason):
        for node in self.nodes:
            values = list(self.backlog[node])
            self.emit(node, values)
        rows = [self.window[node] for node in self.nodes]
        return rows


class _ColdFixture:
    """Same shape, but its contract carries no hot cost fact."""

    type_name = "coldfixture"

    def run(self, reason):
        for node in self.nodes:
            self.emit(node, list(self.backlog[node]))


def _fixture_setup(hot):
    class _Registry:
        def __init__(self, classes):
            self._classes = {c.type_name: c for c in classes}

        def __iter__(self):
            return iter(sorted(self._classes))

        def resolve(self, name):
            return self._classes[name]

    contracts = ContractRegistry()
    fact = CostFact(terms=(CostTerm(1.0, per="sample"),), hot=hot)
    for cls in (_HotFixture, _ColdFixture):
        contracts.register(ModuleContract(type_name=cls.type_name, cost=fact))
    return _Registry([_HotFixture, _ColdFixture]), contracts


class TestHotModuleScan:
    def test_all_three_codes_fire_on_the_hot_fixture(self):
        registry, contracts = _fixture_setup(hot=True)
        found = scan_hot_modules(registry=registry, contracts=contracts)
        assert {d.code for d in found} == {"FPT310", "FPT311", "FPT312"}

    def test_init_loops_are_exempt(self):
        registry, contracts = _fixture_setup(hot=True)
        found = scan_hot_modules(registry=registry, contracts=contracts)
        init_line = _HotFixture.init.__code__.co_firstlineno
        run_line = _HotFixture.run.__code__.co_firstlineno
        assert all(d.line >= run_line for d in found), found
        assert all(d.line > init_line for d in found)

    def test_cold_modules_are_not_scanned(self):
        registry, contracts = _fixture_setup(hot=False)
        assert scan_hot_modules(registry=registry, contracts=contracts) == []

    def test_standard_registry_scan_is_fully_justified(self):
        # Every remaining hazard in the shipped hot modules carries an
        # inline noqa justification (gather/scatter and fallback paths).
        assert scan_hot_modules() == []
