"""The diagnostic model: codes, rendering, noqa suppression."""

import json

from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    apply_noqa,
    has_errors,
    noqa_lines,
    render_json,
    render_text,
    sort_diagnostics,
)


class TestCodes:
    def test_every_code_has_severity_and_summary(self):
        for code, (severity, summary) in CODES.items():
            assert code.startswith("FPT") and len(code) == 6
            assert isinstance(severity, Severity)
            assert summary

    def test_severity_comes_from_the_table(self):
        assert Diagnostic("FPT006", "x").severity is Severity.WARNING
        assert Diagnostic("FPT001", "x").severity is Severity.ERROR

    def test_unknown_code_defaults_to_error(self):
        assert Diagnostic("FPT999", "x").severity is Severity.ERROR


class TestRendering:
    def test_render_includes_location_code_and_instance(self):
        diag = Diagnostic(
            "FPT004", "does not exist", line=12, file="a.conf", instance="k1"
        )
        assert diag.render() == (
            "a.conf:12: FPT004 error: [k1] does not exist"
        )

    def test_render_without_line_or_instance(self):
        assert Diagnostic("FPT201", "tick").render() == (
            "<config>: FPT201 error: tick"
        )

    def test_render_text_summarises_counts(self):
        text = render_text(
            [Diagnostic("FPT001", "a"), Diagnostic("FPT006", "b")]
        )
        assert text.endswith("1 error(s), 1 warning(s)")

    def test_render_text_empty(self):
        assert render_text([]) == "no diagnostics."

    def test_render_json_round_trips(self):
        data = json.loads(
            render_json([Diagnostic("FPT008", "bad", line=3, instance="i")])
        )
        assert data == [
            {
                "code": "FPT008",
                "severity": "error",
                "message": "bad",
                "file": "<config>",
                "line": 3,
                "instance": "i",
            }
        ]

    def test_sort_is_by_file_line_code(self):
        diags = [
            Diagnostic("FPT007", "w", line=9, file="b"),
            Diagnostic("FPT001", "x", line=2, file="b"),
            Diagnostic("FPT005", "y", line=30, file="a"),
        ]
        ordered = sort_diagnostics(diags)
        assert [d.file for d in ordered] == ["a", "b", "b"]
        assert [d.line for d in ordered[1:]] == [2, 9]

    def test_has_errors_ignores_warnings(self):
        assert not has_errors([Diagnostic("FPT006", "dead")])
        assert has_errors([Diagnostic("FPT006", "w"), Diagnostic("FPT003", "e")])


class TestNoqa:
    def test_bare_marker_suppresses_everything(self):
        text = "a = 1\nb = 2  # fpt: noqa\n"
        diags = [
            Diagnostic("FPT007", "x", line=2),
            Diagnostic("FPT008", "y", line=2),
        ]
        assert apply_noqa(diags, text) == []

    def test_coded_marker_suppresses_only_listed_codes(self):
        text = "a = 1  # fpt: noqa[FPT007]\n"
        kept = apply_noqa(
            [
                Diagnostic("FPT007", "x", line=1),
                Diagnostic("FPT008", "y", line=1),
            ],
            text,
        )
        assert [d.code for d in kept] == ["FPT008"]

    def test_multiple_codes_and_case_insensitivity(self):
        markers = noqa_lines("x  # FPT: NOQA[fpt007, FPT009]\n")
        assert markers == {1: {"FPT007", "FPT009"}}

    def test_other_lines_unaffected(self):
        text = "a = 1  # fpt: noqa\nb = 2\n"
        kept = apply_noqa([Diagnostic("FPT008", "y", line=2)], text)
        assert len(kept) == 1

    def test_positionless_diagnostics_never_suppressed(self):
        kept = apply_noqa([Diagnostic("FPT010", "m")], "# fpt: noqa\n")
        assert len(kept) == 1
