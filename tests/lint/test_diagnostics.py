"""The diagnostic model: codes, rendering, noqa suppression."""

import json

from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    apply_noqa,
    has_errors,
    marker_errors,
    noqa_lines,
    render_json,
    render_text,
    sort_diagnostics,
)


class TestCodes:
    def test_every_code_has_severity_and_summary(self):
        for code, (severity, summary) in CODES.items():
            assert code.startswith("FPT") and len(code) == 6
            assert isinstance(severity, Severity)
            assert summary

    def test_severity_comes_from_the_table(self):
        assert Diagnostic("FPT006", "x").severity is Severity.WARNING
        assert Diagnostic("FPT001", "x").severity is Severity.ERROR

    def test_unknown_code_defaults_to_error(self):
        assert Diagnostic("FPT999", "x").severity is Severity.ERROR


class TestRendering:
    def test_render_includes_location_code_and_instance(self):
        diag = Diagnostic(
            "FPT004", "does not exist", line=12, file="a.conf", instance="k1"
        )
        assert diag.render() == (
            "a.conf:12: FPT004 error: [k1] does not exist"
        )

    def test_render_without_line_or_instance(self):
        assert Diagnostic("FPT201", "tick").render() == (
            "<config>: FPT201 error: tick"
        )

    def test_render_text_summarises_counts(self):
        text = render_text(
            [Diagnostic("FPT001", "a"), Diagnostic("FPT006", "b")]
        )
        assert text.endswith("1 error(s), 1 warning(s)")

    def test_render_text_empty(self):
        assert render_text([]) == "no diagnostics."

    def test_render_json_round_trips(self):
        data = json.loads(
            render_json([Diagnostic("FPT008", "bad", line=3, instance="i")])
        )
        assert data == [
            {
                "code": "FPT008",
                "severity": "error",
                "message": "bad",
                "file": "<config>",
                "line": 3,
                "instance": "i",
            }
        ]

    def test_sort_is_by_file_line_code(self):
        diags = [
            Diagnostic("FPT007", "w", line=9, file="b"),
            Diagnostic("FPT001", "x", line=2, file="b"),
            Diagnostic("FPT005", "y", line=30, file="a"),
        ]
        ordered = sort_diagnostics(diags)
        assert [d.file for d in ordered] == ["a", "b", "b"]
        assert [d.line for d in ordered[1:]] == [2, 9]

    def test_has_errors_ignores_warnings(self):
        assert not has_errors([Diagnostic("FPT006", "dead")])
        assert has_errors([Diagnostic("FPT006", "w"), Diagnostic("FPT003", "e")])


class TestNoqa:
    def test_bare_marker_suppresses_everything(self):
        text = "a = 1\nb = 2  # fpt: noqa\n"
        diags = [
            Diagnostic("FPT007", "x", line=2),
            Diagnostic("FPT008", "y", line=2),
        ]
        assert apply_noqa(diags, text) == []

    def test_coded_marker_suppresses_only_listed_codes(self):
        text = "a = 1  # fpt: noqa[FPT007]\n"
        kept = apply_noqa(
            [
                Diagnostic("FPT007", "x", line=1),
                Diagnostic("FPT008", "y", line=1),
            ],
            text,
        )
        assert [d.code for d in kept] == ["FPT008"]

    def test_multiple_codes_and_case_insensitivity(self):
        markers = noqa_lines("x  # FPT: NOQA[fpt007, FPT009]\n")
        assert markers == {1: {"FPT007", "FPT009"}}

    def test_other_lines_unaffected(self):
        text = "a = 1  # fpt: noqa\nb = 2\n"
        kept = apply_noqa([Diagnostic("FPT008", "y", line=2)], text)
        assert len(kept) == 1

    def test_positionless_diagnostics_never_suppressed(self):
        kept = apply_noqa([Diagnostic("FPT010", "m")], "# fpt: noqa\n")
        assert len(kept) == 1


class TestNoqaPrefixes:
    def test_one_digit_prefix_suppresses_the_whole_layer(self):
        text = "a = 1  # fpt: noqa[FPT3]\n"
        kept = apply_noqa(
            [
                Diagnostic("FPT302", "x", line=1),
                Diagnostic("FPT310", "y", line=1),
                Diagnostic("FPT201", "z", line=1),
            ],
            text,
        )
        assert [d.code for d in kept] == ["FPT201"]

    def test_two_digit_prefix_narrows_to_a_decade(self):
        text = "a = 1  # fpt: noqa[FPT31]\n"
        kept = apply_noqa(
            [
                Diagnostic("FPT310", "x", line=1),
                Diagnostic("FPT302", "y", line=1),
            ],
            text,
        )
        assert [d.code for d in kept] == ["FPT302"]

    def test_full_code_still_matches_exactly(self):
        text = "a = 1  # fpt: noqa[FPT310]\n"
        kept = apply_noqa(
            [
                Diagnostic("FPT310", "x", line=1),
                Diagnostic("FPT311", "y", line=1),
            ],
            text,
        )
        assert [d.code for d in kept] == ["FPT311"]

    def test_prefixes_parse_alongside_full_codes(self):
        markers = noqa_lines("x  # fpt: noqa[FPT2, FPT401]\n")
        assert markers == {1: {"FPT2", "FPT401"}}


class TestMalformedNoqa:
    def test_malformed_entry_reports_fpt090(self):
        findings = marker_errors("t = 1  # fpt: noqa[E501]\n", file="f.py")
        assert [d.code for d in findings] == ["FPT090"]
        assert "E501" in findings[0].message
        assert findings[0].line == 1

    def test_too_long_prefix_is_malformed(self):
        findings = marker_errors("t = 1  # fpt: noqa[FPT2011]\n")
        assert [d.code for d in findings] == ["FPT090"]

    def test_malformed_entry_suppresses_nothing(self):
        text = "t = 1  # fpt: noqa[FPT30x]\n"
        kept = apply_noqa([Diagnostic("FPT302", "x", line=1)], text)
        assert [d.code for d in kept] == ["FPT302"]

    def test_fpt090_is_never_self_suppressed(self):
        # The malformed marker cannot silence its own report, even when
        # a valid prefix covering FPT0xx rides on the same line.
        text = "t = 1  # fpt: noqa[FPT0, E999]\n"
        findings = marker_errors(text)
        assert [d.code for d in findings] == ["FPT090"]
        assert apply_noqa(findings, text) == findings

    def test_valid_entries_on_a_mixed_line_still_work(self):
        text = "t = 1  # fpt: noqa[FPT201, E501]\n"
        kept = apply_noqa([Diagnostic("FPT201", "x", line=1)], text)
        assert kept == []
        assert [d.code for d in marker_errors(text)] == ["FPT090"]

    def test_clean_markers_report_nothing(self):
        assert marker_errors("a = 1  # fpt: noqa[FPT201]\nb = 2\n") == []
        assert marker_errors("a = 1  # fpt: noqa\n") == []
