"""Determinism lint: wall-clock and unseeded-random detection."""

from repro.lint import DEFAULT_PACKAGES, lint_determinism, scan_source
from repro.lint.determinism import determinism_hints


def codes(text):
    return [d.code for d in scan_source(text)]


class TestWallClock:
    def test_time_time_flagged(self):
        assert codes("import time\nt = time.time()\n") == ["FPT201"]

    def test_time_time_ns_flagged(self):
        assert codes("t = time.time_ns()\n") == ["FPT201"]

    def test_datetime_now_flagged(self):
        assert codes("import datetime\nd = datetime.datetime.now()\n") == [
            "FPT201"
        ]
        assert codes("from datetime import date\nd = date.today()\n") == [
            "FPT201"
        ]

    def test_perf_counter_and_monotonic_allowed(self):
        assert codes("t = time.perf_counter()\nu = time.monotonic()\n") == []

    def test_conversion_with_explicit_timestamp_allowed(self):
        assert codes("s = time.ctime(0)\ng = time.gmtime(12)\n") == []
        assert codes("d = datetime.datetime.fromtimestamp(5)\n") == []

    def test_bare_gmtime_flagged(self):
        assert codes("g = time.gmtime()\n") == ["FPT201"]

    def test_unrelated_time_attribute_allowed(self):
        # A local object that happens to have a .time() method.
        assert codes("t = self.clock.time()\n") == []


class TestRandomness:
    def test_global_random_flagged(self):
        assert codes("import random\nx = random.random()\n") == ["FPT202"]
        assert codes("random.shuffle(items)\n") == ["FPT202"]

    def test_numpy_global_state_flagged(self):
        assert codes("x = np.random.rand(3)\n") == ["FPT202"]
        assert codes("numpy.random.seed(0)\n") == ["FPT202"]

    def test_seeded_generators_allowed(self):
        assert codes("rng = np.random.default_rng(42)\n") == []
        assert codes("rng = random.Random(7)\n") == []
        assert codes("rng = np.random.default_rng(seed=config.seed)\n") == []

    def test_unseeded_constructors_flagged(self):
        assert codes("rng = np.random.default_rng()\n") == ["FPT202"]
        assert codes("rng = np.random.RandomState()\n") == ["FPT202"]

    def test_method_on_instance_allowed(self):
        # rng.random() is a seeded generator's method, not the global.
        assert codes("x = rng.random()\n") == []


class TestMechanics:
    def test_noqa_suppresses(self):
        assert codes("t = time.time()  # fpt: noqa[FPT201]\n") == []

    def test_syntax_error_reports_fpt000(self):
        assert codes("def broken(:\n") == ["FPT000"]

    def test_line_numbers_are_reported(self):
        diags = scan_source("x = 1\nt = time.time()\n")
        assert diags[0].line == 2


class TestRepoCodePaths:
    def test_scenario_code_paths_are_clean(self):
        """The shipped modules/analysis/experiments carry no hazards
        (deliberate uses are noqa'd at the line)."""
        assert lint_determinism() == []

    def test_default_packages_cover_the_scenario_surface(self):
        assert DEFAULT_PACKAGES == (
            "repro.modules",
            "repro.analysis",
            "repro.experiments",
            "repro.obsv",
            "repro.sim",
            "repro.cluster",
            "repro.rpc",
            "repro.telemetry",
        )

    def test_hints_text_mentions_mismatched_tasks(self):
        findings, text = determinism_hints(["CPUHog/seed7"])
        assert findings == []
        assert "1 task(s)" in text
