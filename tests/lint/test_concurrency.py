"""Concurrency lint: cross-thread writes, lock hygiene, blocking calls."""

from repro.lint import (
    concurrency_hints,
    lint_concurrency,
    scan_concurrency_source,
)
from repro.lint.concurrency import DEFAULT_PACKAGES


def codes(text):
    return [d.code for d in scan_concurrency_source(text)]


UNLOCKED = """\
import threading

class Service:
    def __init__(self):
        self.count = 0
        self._lock = threading.Lock()

    def rpc_hit(self):
        self.count += 1

    def snapshot(self):
        return self.count
"""

LOCKED = UNLOCKED.replace(
    "        self.count += 1",
    "        with self._lock:\n            self.count += 1",
)


class TestUnlockedWrites:
    def test_fpt401_fires_on_an_unlocked_cross_thread_write(self):
        findings = scan_concurrency_source(UNLOCKED)
        assert [d.code for d in findings] == ["FPT401"]
        assert "count" in findings[0].message

    def test_with_lock_variant_is_clean(self):
        assert codes(LOCKED) == []

    def test_init_writes_are_not_cross_thread(self):
        # Only the shared attribute's post-init writes race; the
        # constructor runs before any service thread exists.
        findings = scan_concurrency_source(UNLOCKED)
        assert all(d.line > 7 for d in findings)

    def test_handler_local_attribute_is_clean(self):
        # State that only the service threads' methods ever touch is
        # not shared with the owner side, so it is not a race.
        text = """\
class Service:
    def rpc_hit(self):
        self._scratch = 1
        return self._scratch
"""
        assert codes(text) == []

    def test_thread_target_seeds_the_service_graph(self):
        text = """\
import threading

class Loop:
    def __init__(self):
        self.beats = 0
        threading.Thread(target=self._spin, daemon=True).start()

    def _spin(self):
        self.beats += 1

    def beats_seen(self):
        return self.beats
"""
        assert codes(text) == ["FPT401"]

    def test_module_function_thread_target_seeds_the_graph(self):
        # The node host spawns Thread(target=_sampler_loop, ...): the
        # sampler's obj.method() calls must mark same-named methods of
        # scanned classes service-reachable, exactly like bound-method
        # targets do.
        text = """\
import threading

def _sampler_loop(fleet, stop):
    while not stop.is_set():
        fleet.advance_to(0.0)

class Fleet:
    def __init__(self):
        self.ticks = 0
        threading.Thread(target=_sampler_loop, args=(self, None)).start()

    def advance_to(self, wall):
        self.ticks += 1

    def progress(self):
        return self.ticks
"""
        findings = scan_concurrency_source(text)
        assert [d.code for d in findings] == ["FPT401"]
        assert "ticks" in findings[0].message

    def test_seed_named_module_function_is_an_entry(self):
        # A module-level rpc_* function is a dispatch entry even with no
        # Thread(...) call in the scanned file.
        text = """\
def rpc_poke(daemon):
    daemon.bump()

class Daemon:
    def __init__(self):
        self.hits = 0

    def bump(self):
        self.hits += 1

    def stats(self):
        return self.hits
"""
        assert codes(text) == ["FPT401"]

    def test_reachability_follows_self_calls(self):
        text = """\
class Server:
    def __init__(self):
        self.hits = 0

    def handle(self):
        self._bump()

    def _bump(self):
        self.hits += 1

    def stats(self):
        return self.hits
"""
        findings = scan_concurrency_source(text)
        assert [d.code for d in findings] == ["FPT401"]
        assert findings[0].line == 9

    def test_noqa_with_justification_suppresses(self):
        text = UNLOCKED.replace(
            "self.count += 1",
            "self.count += 1  # fpt: noqa[FPT401] -- single writer",
        )
        assert codes(text) == []


class TestLockHygiene:
    def test_fpt402_fires_on_bare_acquire(self):
        text = """\
import threading

class S:
    def __init__(self):
        self._lock = threading.Lock()

    def rpc_poke(self):
        self._lock.acquire()
        self.work()
        self._lock.release()
"""
        assert "FPT402" in codes(text)

    def test_acquire_with_try_finally_is_clean(self):
        text = """\
import threading

class S:
    def __init__(self):
        self._lock = threading.Lock()

    def rpc_poke(self):
        self._lock.acquire()
        try:
            self.work()
        finally:
            self._lock.release()
"""
        assert codes(text) == []

    def test_fpt403_fires_on_blocking_call_under_lock(self):
        text = """\
import threading

class S:
    def __init__(self):
        self._lock = threading.Lock()
        self.x = 0

    def rpc_poke(self, sock):
        with self._lock:
            data = sock.recv(4096)
            self.x = len(data)

    def read(self):
        return self.x
"""
        findings = scan_concurrency_source(text)
        assert [d.code for d in findings] == ["FPT403"]
        assert "recv" in findings[0].message

    def test_blocking_call_outside_lock_is_clean(self):
        text = """\
class S:
    def rpc_poke(self, sock):
        data = sock.recv(4096)
        return data
"""
        assert codes(text) == []


class TestGoldenPackages:
    def test_deployment_packages_scan_clean(self):
        # The acceptance gate: every cross-thread write in the live
        # deployment code is either locked or carries a justified noqa.
        findings = lint_concurrency()
        assert findings == [], "\n".join(d.render() for d in findings)

    def test_default_packages_cover_the_deployment_stack(self):
        assert set(DEFAULT_PACKAGES) >= {
            "repro.cluster", "repro.rpc", "repro.obsv", "repro.telemetry"
        }


class TestParityHints:
    def test_clean_scan_reports_no_culprits(self):
        findings, text = concurrency_hints(["CPUHog-0"])
        assert findings == []
        assert "no unlocked cross-thread writes" in text

    def test_findings_format_as_culprit_leads(self):
        # Route the hint through a synthetic single-module package view
        # by checking the formatter contract on the source scanner.
        findings = scan_concurrency_source(UNLOCKED)
        assert findings and findings[0].render()
