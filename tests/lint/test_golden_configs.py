"""Golden lint: every configuration the repo ships analyzes clean.

If one of these fails, either a shipped config regressed or a new lint
check is too strict -- both are release blockers for ``repro lint``.
"""

import importlib.util
import os
import sys

import pytest

from repro.experiments import ScenarioConfig, build_asdf_config_text
from repro.faults import FAULT_NAMES
from repro.lint import analyze_config, contracts_for_registry
from repro.modules import standard_registry

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)


def load_example(name):
    """Import an examples/ script as a module without running main()."""
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def assert_clean(text, registry=None, contracts=None):
    diagnostics = analyze_config(text, registry=registry, contracts=contracts)
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


class TestGeneratedDeployment:
    @pytest.mark.parametrize("fault", [None] + list(FAULT_NAMES))
    def test_asdf_config_lints_clean_for_every_fault(self, fault):
        config = ScenarioConfig(num_slaves=5, fault_name=fault)
        nodes = [f"slave{i + 1:02d}" for i in range(5)]
        assert_clean(build_asdf_config_text(nodes, config))

    @pytest.mark.parametrize("slaves", [3, 10, 25])
    def test_asdf_config_lints_clean_at_any_scale(self, slaves):
        config = ScenarioConfig(num_slaves=slaves)
        nodes = [f"slave{i + 1:02d}" for i in range(slaves)]
        assert_clean(build_asdf_config_text(nodes, config))

    @pytest.mark.parametrize("fault", [None, "CPUHog"])
    def test_scoreboard_enabled_config_lints_clean(self, fault):
        config = ScenarioConfig(num_slaves=5, fault_name=fault)
        nodes = [f"slave{i + 1:02d}" for i in range(5)]
        text = build_asdf_config_text(nodes, config, scoreboard=True)
        assert "[scoreboard]" in text
        assert_clean(text)

    def test_fleet_knn_config_lints_clean(self):
        config = ScenarioConfig(num_slaves=5, fleet_knn=True)
        nodes = [f"slave{i + 1:02d}" for i in range(5)]
        text = build_asdf_config_text(nodes, config)
        assert "[knnfleet]" in text
        assert "[knn]" not in text.replace("[knnfleet]", "")
        assert_clean(text)

    def test_scoreboard_section_is_opt_in(self):
        # Observatory-less deployments must keep generating the exact
        # pre-observatory text (byte parity for archives and goldens).
        config = ScenarioConfig(num_slaves=5)
        nodes = [f"slave{i + 1:02d}" for i in range(5)]
        assert "scoreboard" not in build_asdf_config_text(nodes, config)


class TestExampleConfigs:
    def test_quickstart_config(self):
        quickstart = load_example("quickstart")
        registry = standard_registry()
        registry.register(quickstart.LatencyProbe)
        registry.register(quickstart.ThresholdDetector)
        assert_clean(
            quickstart.CONFIG,
            registry=registry,
            contracts=contracts_for_registry(registry),
        )

    def test_offline_collection_config(self):
        offline = load_example("offline_collection")
        text = offline.build_config_text(
            ["slave01", "slave02", "slave03"], "/tmp/asdf-offline.csv"
        )
        assert_clean(text)

    def test_active_mitigation_config(self):
        mitigation = load_example("active_mitigation")
        nodes = [f"slave{i + 1:02d}" for i in range(8)]
        text = mitigation.build_config_text(
            nodes, ScenarioConfig(num_slaves=8)
        )
        assert_clean(text)
