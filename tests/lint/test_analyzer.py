"""Config analysis: one fixture per FPT0xx diagnostic code.

The acceptance gate for fpt-lint: every class of configuration mistake
is caught statically, with the right stable code, without instantiating
a single module.
"""

import pytest

from repro.lint import (
    ContractRegistry,
    InputPortSpec,
    ModuleContract,
    ParamSpec,
    TriggerSpec,
    analyze_config,
    standard_contracts,
)
from repro.lint.diagnostics import Severity


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"no {code} in {[d.render() for d in diagnostics]}"
    return found[0]


#: A minimal healthy pipeline many fixtures below perturb.
HEALTHY = """\
[sadc]
id = src
node = n1
metrics = ldavg_1

[mavgvec]
id = smooth
input[input] = src.ldavg_1

[print]
id = out
input[x] = smooth.mean
"""


class TestCleanConfig:
    def test_healthy_pipeline_has_no_diagnostics(self):
        assert analyze_config(HEALTHY) == []


class TestSyntaxAndIds:
    def test_fpt000_syntax_error(self):
        diags = analyze_config("not a section header\n")
        diag = only(diags, "FPT000")
        assert diag.line == 1
        assert diag.severity is Severity.ERROR

    def test_fpt000_collects_multiple_errors(self):
        text = "junk line\n[sadc]\nid = s\nnode = n1\nalso junk\n"
        assert codes(analyze_config(text)).count("FPT000") == 2

    def test_fpt002_duplicate_instance_id(self):
        text = HEALTHY + "\n[print]\nid = out\ninput[x] = smooth.mean\n"
        diag = only(analyze_config(text), "FPT002")
        assert "duplicate" in diag.message

    def test_fpt001_unknown_module_type(self):
        diag = only(analyze_config("[not_a_module]\nid = x\n"), "FPT001")
        assert "not_a_module" in diag.message
        assert diag.line == 1
        assert diag.instance == "x"


class TestWiring:
    def test_fpt003_unknown_instance(self):
        text = HEALTHY.replace("src.ldavg_1", "ghost.ldavg_1")
        diag = only(analyze_config(text), "FPT003")
        assert "ghost" in diag.message
        assert diag.line == 8

    def test_fpt004_nonexistent_output(self):
        text = HEALTHY.replace("src.ldavg_1", "src.nope")
        diag = only(analyze_config(text), "FPT004")
        assert "src.nope" in diag.message
        assert "ldavg_1" in diag.message  # suggests what does exist

    def test_fpt004_at_form_on_outputless_instance(self):
        text = """\
[print]
id = sink1
input[x] = smooth.mean

[mavgvec]
id = smooth
input[input] = @sink1
"""
        diag = only(analyze_config(text), "FPT004")
        assert "@sink1" in diag.message

    def test_fpt005_self_loop(self):
        text = "[mavgvec]\nid = loop\ninput[input] = loop.mean\n"
        diag = only(analyze_config(text), "FPT005")
        assert "its own" in diag.message

    def test_fpt005_cycle(self):
        text = """\
[mavgvec]
id = a
input[input] = b.mean

[mavgvec]
id = b
input[input] = a.mean
"""
        diag = only(analyze_config(text), "FPT005")
        assert "'a'" in diag.message and "'b'" in diag.message

    def test_fpt006_dead_instance_is_warning(self):
        text = HEALTHY + "\n[sadc]\nid = orphan\nnode = n2\n"
        diag = only(analyze_config(text), "FPT006")
        assert diag.severity is Severity.WARNING
        assert diag.instance == "orphan"

    def test_fpt011_unknown_port(self):
        text = """\
[sadc]
id = src
node = n1

[knn]
id = k
input[bogus_port] = src.vector
model = bb_model

[print]
id = out
input[x] = k.output0
"""
        messages = [
            d.message for d in analyze_config(text) if d.code == "FPT011"
        ]
        assert any("bogus_port" in m for m in messages)

    def test_fpt011_missing_required_port(self):
        text = "[knn]\nid = k\nmodel = bb_model\n\n[print]\nid = o\ninput[x] = k.output0\n"
        diag = only(analyze_config(text), "FPT011")
        assert "required input port 'input'" in diag.message

    def test_fpt011_multiplicity_exceeded(self):
        text = """\
[sadc]
id = s1
node = n1

[sadc]
id = s2
node = n2

[knn]
id = k
input[input] = s1.vector
input[input] = s2.vector
model = bb_model

[print]
id = out
input[x] = k.output0
"""
        diag = only(analyze_config(text), "FPT011")
        assert "at most 1" in diag.message

    def test_fpt011_inputs_on_a_source(self):
        text = HEALTHY + "\n[sadc]\nid = s2\nnode = n2\ninput[x] = smooth.mean\n"
        diag = only(analyze_config(text), "FPT011")
        assert "data source" in diag.message


class TestParams:
    def test_fpt007_unknown_param_is_warning(self):
        text = HEALTHY.replace("node = n1", "node = n1\nbanana = 7")
        diag = only(analyze_config(text), "FPT007")
        assert diag.severity is Severity.WARNING
        assert "banana" in diag.message
        assert diag.line == 4

    def test_fpt008_bad_type(self):
        text = HEALTHY.replace(
            "input[input] = src.ldavg_1",
            "input[input] = src.ldavg_1\nwindow = sixty",
        )
        diag = only(analyze_config(text), "FPT008")
        assert "'window' must be int" in diag.message

    def test_fpt009_below_minimum(self):
        text = HEALTHY.replace(
            "input[input] = src.ldavg_1",
            "input[input] = src.ldavg_1\nwindow = 0",
        )
        diag = only(analyze_config(text), "FPT009")
        assert ">= 1" in diag.message

    def test_fpt009_bad_choice(self):
        text = HEALTHY.replace(
            "metrics = ldavg_1", "metrics = ldavg_1, bogus_metric"
        )
        diag = only(analyze_config(text), "FPT009")
        assert "bogus_metric" in diag.message

    def test_fpt009_cross_param_rule(self):
        text = """\
[sadc]
id = src
node = n1

[knn]
id = k
input[input] = src.vector
model = bb_model

[ibuffer]
id = buf
input[input] = k.output0
size = 5
slide = 9

[print]
id = out
input[x] = buf.output0
"""
        diag = only(analyze_config(text), "FPT009")
        assert "slide (9) must be <= size (5)" in diag.message

    def test_fpt010_missing_required(self):
        diag = only(analyze_config("[sadc]\nid = s\n"), "FPT010")
        assert "'node'" in diag.message


class TestScheduling:
    def _contracts_with_trigger_param(self):
        contracts = standard_contracts()
        contracts.register(
            ModuleContract(
                type_name="batcher",
                params=(ParamSpec("need", "int", min_value=1),),
                inputs=(InputPortSpec("input", required=False),),
                outputs=("batch",),
                trigger=TriggerSpec.from_param("need"),
                sink=True,
            )
        )
        return contracts

    def test_fpt012_param_trigger_exceeds_connections(self):
        text = """\
[sadc]
id = src
node = n1

[batcher]
id = b
input[input] = src.vector
need = 5
"""
        diags = analyze_config(
            text, contracts=self._contracts_with_trigger_param()
        )
        diag = only(diags, "FPT012")
        assert "threshold 5 exceeds the 1" in diag.message
        assert diag.line == 8  # points at the param, not the header

    def test_fpt012_satisfiable_trigger_is_clean(self):
        text = """\
[sadc]
id = src
node = n1

[batcher]
id = b
input[input] = src.vector
need = 1
"""
        diags = analyze_config(
            text, contracts=self._contracts_with_trigger_param()
        )
        assert "FPT012" not in codes(diags)

    def test_fpt012_fixed_trigger_with_no_wiring(self):
        text = "[knn]\nid = k\nmodel = bb_model\n\n[print]\nid = o\ninput[x] = k.output0\n"
        assert "FPT012" in codes(analyze_config(text))

    def test_fpt013_peer_group_too_small(self):
        text = """\
[sadc]
id = s1
node = n1

[sadc]
id = s2
node = n2

[analysis_bb]
id = bb
input[a] = s1.vector
input[b] = s2.vector
threshold = 40
num_states = 5

[print]
id = out
input[x] = bb.alarms
"""
        diag = only(analyze_config(text), "FPT013")
        assert "at least 3 peers" in diag.message
        assert "got 2" in diag.message

    def test_fpt013_three_peers_is_clean(self):
        text = """\
[sadc]
id = s1
node = n1

[sadc]
id = s2
node = n2

[sadc]
id = s3
node = n3

[analysis_bb]
id = bb
input[a] = s1.vector
input[b] = s2.vector
input[c] = s3.vector
threshold = 40
num_states = 5

[print]
id = out
input[x] = bb.alarms
"""
        assert "FPT013" not in codes(analyze_config(text))


class TestNoqaInConfigs:
    def test_marker_suppresses_on_its_line(self):
        text = HEALTHY.replace(
            "node = n1", "node = n1\nbanana = 7  # fpt: noqa[FPT007]"
        )
        assert analyze_config(text) == []

    def test_marker_can_be_disabled(self):
        text = HEALTHY.replace(
            "node = n1", "node = n1\nbanana = 7  # fpt: noqa[FPT007]"
        )
        assert "FPT007" in codes(analyze_config(text, noqa=False))


class TestCustomContracts:
    def test_unknown_type_with_custom_registry(self):
        contracts = ContractRegistry()
        contracts.register(ModuleContract(type_name="only_this", sink=True))
        diags = analyze_config("[other]\nid = x\n", contracts=contracts)
        assert codes(diags) == ["FPT001"]

    @pytest.mark.parametrize("code", ["FPT001", "FPT003", "FPT005"])
    def test_error_codes_are_errors(self, code):
        from repro.lint.diagnostics import CODES

        assert CODES[code][0] is Severity.ERROR
