"""Tests for the six Table 2 faults: arming, manifestation, ground truth."""

import pytest

from repro.faults import (
    FAULT_CATALOG,
    FAULT_NAMES,
    CpuHog,
    DiskHog,
    FaultSpec,
    MapHang1036,
    PacketLoss,
    ReduceHang2080,
    ShuffleFail1152,
    make_fault,
)
from repro.hadoop import BugKind, ClusterConfig, HadoopCluster, JobSpec, MB


def make_cluster(num_slaves: int = 4, seed: int = 3) -> HadoopCluster:
    return HadoopCluster(ClusterConfig(num_slaves=num_slaves, seed=seed))


def busy_cluster(seed: int = 3) -> HadoopCluster:
    cluster = make_cluster(seed=seed)
    for i in range(3):
        cluster.submit_job(
            JobSpec(
                job_id=f"200807070001_{i:04d}",
                name="job",
                input_bytes=256.0 * MB,
                num_reduces=2,
            )
        )
    return cluster


class TestCatalog:
    def test_every_table2_fault_present(self):
        assert set(FAULT_NAMES) == {
            "CPUHog",
            "DiskHog",
            "PacketLoss",
            "HADOOP-1036",
            "HADOOP-1152",
            "HADOOP-2080",
        }
        assert set(FAULT_CATALOG) == set(FAULT_NAMES)

    def test_make_fault_resolves_each(self):
        for name in FAULT_NAMES:
            fault = make_fault(name)
            assert fault.name == name
            assert fault.reported_failure

    def test_make_fault_unknown_raises(self):
        with pytest.raises(KeyError, match="catalog"):
            make_fault("MeltdownHog")


class TestGroundTruth:
    def test_basic_ground_truth(self):
        spec = FaultSpec(node="slave02", inject_time=100.0)
        truth = CpuHog().ground_truth(spec)
        assert truth.faulty_node == "slave02"
        assert truth.inject_time == 100.0
        assert truth.clear_time is None

    def test_diskhog_ground_truth_is_bounded(self):
        cluster = make_cluster()
        fault = DiskHog(total_gb=1.0)
        spec = FaultSpec(node="slave02", inject_time=100.0)
        fault.arm(cluster, spec)
        truth = fault.ground_truth(spec)
        assert truth.clear_time is not None
        expected = 100.0 + 1.0 * 1024**3 / cluster.config.node_spec.disk_write_bytes_s
        assert truth.clear_time == pytest.approx(expected, rel=0.01)

    def test_explicit_clear_time_respected(self):
        spec = FaultSpec(node="slave02", inject_time=10.0, clear_time=50.0)
        truth = DiskHog().ground_truth(spec)
        assert truth.clear_time == 50.0


class TestCpuHog:
    def test_achieves_target_utilization(self):
        cluster = make_cluster()
        CpuHog().arm(cluster, FaultSpec(node="slave02", inject_time=20.0))
        cluster.run_until(120.0)
        fs = cluster.procfs("slave02")
        busy = (fs.cpu.user + fs.cpu.system) / fs.cpu.total()
        # 70% from t=20 over 120s of history ~= 58% overall, plus noise.
        assert busy > 0.5

    def test_inactive_before_injection(self):
        cluster = make_cluster()
        CpuHog().arm(cluster, FaultSpec(node="slave02", inject_time=1000.0))
        cluster.run_until(50.0)
        fs = cluster.procfs("slave02")
        busy = (fs.cpu.user + fs.cpu.system) / fs.cpu.total()
        assert busy < 0.2

    def test_other_nodes_unaffected(self):
        cluster = make_cluster()
        CpuHog().arm(cluster, FaultSpec(node="slave02", inject_time=0.0))
        cluster.run_until(60.0)
        fs = cluster.procfs("slave01")
        busy = (fs.cpu.user + fs.cpu.system) / fs.cpu.total()
        assert busy < 0.2


class TestDiskHog:
    def test_saturates_disk(self):
        cluster = make_cluster()
        DiskHog().arm(cluster, FaultSpec(node="slave02", inject_time=0.0))
        cluster.run_until(60.0)
        fs = cluster.procfs("slave02")
        assert fs.disk.io_time_ms > 50_000.0  # busy most of the minute

    def test_stops_after_writing_total(self):
        cluster = make_cluster()
        fault = DiskHog(total_gb=0.5)
        fault.arm(cluster, FaultSpec(node="slave02", inject_time=0.0))
        cluster.run_until(120.0)
        written = cluster.procfs("slave02").disk.sectors_written * 512.0
        assert written == pytest.approx(0.5 * 1024**3, rel=0.05)


class TestPacketLoss:
    def test_loss_applied_at_inject_time(self):
        cluster = make_cluster()
        PacketLoss().arm(cluster, FaultSpec(node="slave02", inject_time=30.0))
        cluster.run_until(29.0)
        assert cluster.network.loss_rate("slave02") == 0.0
        cluster.run_until(35.0)
        assert cluster.network.loss_rate("slave02") == 0.5

    def test_loss_cleared_at_clear_time(self):
        cluster = make_cluster()
        PacketLoss().arm(
            cluster, FaultSpec(node="slave02", inject_time=10.0, clear_time=20.0)
        )
        cluster.run_until(25.0)
        assert cluster.network.loss_rate("slave02") == 0.0

    def test_custom_loss_rate(self):
        cluster = make_cluster()
        PacketLoss(loss_rate=0.9).arm(cluster, FaultSpec(node="slave02", inject_time=0.0))
        cluster.run_until(5.0)
        assert cluster.network.loss_rate("slave02") == 0.9


class TestBugFaults:
    @pytest.mark.parametrize(
        "fault_class,kind",
        [
            (MapHang1036, BugKind.MAP_HANG_1036),
            (ShuffleFail1152, BugKind.SHUFFLE_FAIL_1152),
            (ReduceHang2080, BugKind.REDUCE_HANG_2080),
        ],
    )
    def test_bug_registered_with_cluster(self, fault_class, kind):
        cluster = make_cluster()
        fault_class().arm(cluster, FaultSpec(node="slave03", inject_time=50.0))
        assert cluster.bug_for("slave03", 60.0) is kind
        assert cluster.bug_for("slave03", 40.0) is None

    def test_1036_reduces_throughput_on_node(self):
        healthy = busy_cluster()
        healthy.run_until(300.0)
        sick = busy_cluster()
        MapHang1036().arm(sick, FaultSpec(node="slave02", inject_time=0.0))
        sick.run_until(300.0)
        healthy_dones = sum(
            1 for r in healthy.tt_logs["slave02"].records() if "is done" in r.line
        )
        sick_dones = sum(
            1 for r in sick.tt_logs["slave02"].records()
            if "_m_" in r.line and "is done" in r.line
        )
        assert sick_dones == 0
        assert healthy_dones > 0
