"""Tests for resource specs and proportional-share arbitration."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import NodeSpec, share_proportionally, tcp_goodput_factor


class TestNodeSpec:
    def test_defaults_match_ec2_large(self):
        spec = NodeSpec()
        assert spec.cpu_cores == 4.0
        assert spec.memory_mb == pytest.approx(7680.0)

    def test_unit_conversions(self):
        spec = NodeSpec(nic_mbit_s=800.0, disk_read_mb_s=100.0, disk_write_mb_s=50.0)
        assert spec.nic_bytes_s == pytest.approx(1e8)
        assert spec.disk_read_bytes_s == pytest.approx(100 * 1024 * 1024)
        assert spec.disk_write_bytes_s == pytest.approx(50 * 1024 * 1024)


class TestShareProportionally:
    def test_under_capacity_grants_everything(self):
        assert share_proportionally([1.0, 2.0], capacity=10.0) == [1.0, 2.0]

    def test_over_capacity_scales_equally(self):
        grants = share_proportionally([3.0, 1.0], capacity=2.0)
        assert grants == pytest.approx([1.5, 0.5])

    def test_zero_demand_gets_zero(self):
        assert share_proportionally([0.0, 4.0], capacity=2.0) == [0.0, 2.0]

    def test_negative_demand_treated_as_zero(self):
        assert share_proportionally([-5.0, 4.0], capacity=2.0) == [0.0, 2.0]

    def test_empty_demands(self):
        assert share_proportionally([], capacity=10.0) == []

    @given(
        wanted=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=10),
        capacity=st.floats(0.1, 1e6),
    )
    def test_property_grants_never_exceed_capacity_or_demand(self, wanted, capacity):
        grants = share_proportionally(wanted, capacity)
        assert sum(grants) <= max(capacity, 0.0) + 1e-6 or sum(grants) <= sum(wanted) + 1e-6
        for grant, want in zip(grants, wanted):
            assert grant <= want + 1e-9
            assert grant >= 0.0

    @given(
        wanted=st.lists(st.floats(0.01, 1e4), min_size=2, max_size=6),
        capacity=st.floats(0.01, 1e3),
    )
    def test_property_scaling_preserves_ratios(self, wanted, capacity):
        grants = share_proportionally(wanted, capacity)
        if sum(wanted) > capacity:
            ratios = [g / w for g, w in zip(grants, wanted)]
            assert max(ratios) - min(ratios) < 1e-9


class TestTcpGoodput:
    def test_no_loss_is_full_speed(self):
        assert tcp_goodput_factor(0.0) == 1.0

    def test_total_loss_is_zero(self):
        assert tcp_goodput_factor(1.0) == 0.0

    def test_paper_loss_rate_collapses_throughput(self):
        factor = tcp_goodput_factor(0.5)
        assert factor < 0.1  # roughly a 20x slowdown at 50% loss

    def test_out_of_range_inputs_are_clamped(self):
        assert tcp_goodput_factor(-0.5) == 1.0
        assert tcp_goodput_factor(2.0) == 0.0

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_property_monotonically_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        assert tcp_goodput_factor(lo) >= tcp_goodput_factor(hi)
