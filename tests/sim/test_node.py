"""Tests for SimNode's per-tick accounting into /proc counters."""

import pytest

from repro.sim import DISK_IO_BYTES, NodeSpec, SimNode


def make_node(**spec_kwargs) -> SimNode:
    return SimNode("n1", NodeSpec(**spec_kwargs), seed=7)


def tick(node: SimNode, dt: float = 1.0) -> None:
    node.end_tick(dt)


class TestCpuAccounting:
    def test_cpu_time_lands_in_counters(self):
        node = make_node()
        node.begin_tick()
        node.account_cpu(pid=1, user_s=1.0, sys_s=0.5)
        tick(node)
        assert node.procfs.cpu.user >= 1.0
        assert node.procfs.cpu.system >= 0.5

    def test_cpu_totals_bounded_by_capacity(self):
        node = make_node(cpu_cores=2.0)
        node.begin_tick()
        node.account_cpu(pid=1, user_s=10.0)
        tick(node)
        assert node.procfs.cpu.total() == pytest.approx(2.0, rel=0.05)

    def test_idle_fills_unused_capacity(self):
        node = make_node(cpu_cores=4.0)
        node.begin_tick()
        node.account_cpu(pid=1, user_s=1.0)
        tick(node)
        assert node.procfs.cpu.idle > 2.0

    def test_iowait_recorded(self):
        node = make_node()
        node.begin_tick()
        node.account_iowait(0.5)
        tick(node)
        assert node.procfs.cpu.iowait > 0.0


class TestDiskAccounting:
    def test_bytes_become_sectors_and_requests(self):
        node = make_node()
        node.begin_tick()
        node.account_disk(pid=1, read_bytes=DISK_IO_BYTES * 2, write_bytes=DISK_IO_BYTES)
        tick(node)
        assert node.procfs.disk.reads_completed == pytest.approx(2.0)
        assert node.procfs.disk.writes_completed == pytest.approx(1.0)
        assert node.procfs.disk.sectors_read == pytest.approx(DISK_IO_BYTES * 2 / 512)

    def test_busy_time_tracks_bandwidth_fraction(self):
        node = make_node(disk_write_mb_s=10.0)
        node.begin_tick()
        node.account_disk(pid=1, read_bytes=0.0, write_bytes=5.0 * 1024 * 1024)
        tick(node)
        assert node.procfs.disk.io_time_ms == pytest.approx(500.0, rel=0.05)


class TestNetworkAccounting:
    def test_bytes_and_packets_counted(self):
        node = make_node()
        node.begin_tick()
        node.account_net(tx_bytes=14480.0, rx_bytes=7240.0)
        tick(node)
        nic = node.procfs.nic("eth0")
        assert nic.tx_bytes == pytest.approx(14480.0)
        assert nic.rx_bytes == pytest.approx(7240.0)
        assert nic.tx_packets == pytest.approx(10.0)

    def test_drops_recorded_separately(self):
        node = make_node()
        node.begin_tick()
        node.account_net(rx_bytes=1000.0, rx_dropped=1448.0)
        tick(node)
        assert node.procfs.nic("eth0").rx_drop == pytest.approx(1.0)


class TestDerivedCounters:
    def test_context_switches_scale_with_activity(self):
        idle_node = make_node()
        idle_node.begin_tick()
        tick(idle_node)
        busy_node = make_node()
        busy_node.begin_tick()
        busy_node.account_cpu(pid=1, user_s=3.0)
        tick(busy_node)
        assert busy_node.procfs.stat.ctxt > idle_node.procfs.stat.ctxt

    def test_loadavg_rises_under_sustained_demand(self):
        node = make_node(cpu_cores=4.0)
        for _ in range(120):
            node.begin_tick()
            node.note_cpu_demand(6.0)
            node.account_cpu(pid=1, user_s=4.0)
            tick(node)
        assert node.procfs.loadavg.one > 4.0

    def test_loadavg_decays_when_idle(self):
        node = make_node()
        for _ in range(60):
            node.begin_tick()
            node.note_cpu_demand(8.0)
            tick(node)
        peak = node.procfs.loadavg.one
        for _ in range(120):
            node.begin_tick()
            tick(node)
        assert node.procfs.loadavg.one < peak / 2

    def test_runq_counts_unmet_demand(self):
        node = make_node(cpu_cores=4.0)
        node.begin_tick()
        node.note_cpu_demand(7.0)
        tick(node)
        assert node.procfs.loadavg.runq_sz == pytest.approx(4.0)

    def test_page_cache_grows_with_io(self):
        node = make_node()
        node.begin_tick()
        node.account_disk(pid=1, read_bytes=50e6, write_bytes=0.0)
        tick(node)
        assert node.procfs.mem.cached_kb > 10e3


class TestProcessTable:
    def test_ensure_and_remove(self):
        node = make_node()
        node.ensure_process(5, "java", rss_kb=1000.0)
        assert node.procfs.processes[5].rss_kb == 1000.0
        node.remove_process(5)
        assert 5 not in node.procfs.processes

    def test_remove_missing_is_noop(self):
        make_node().remove_process(12345)

    def test_per_process_cpu_attribution(self):
        node = make_node()
        node.ensure_process(5, "java", rss_kb=1000.0)
        node.begin_tick()
        node.account_cpu(pid=5, user_s=1.0, sys_s=0.2)
        tick(node)
        proc = node.procfs.processes[5]
        assert proc.utime == pytest.approx(1.0)
        assert proc.stime == pytest.approx(0.2)

    def test_memory_reflects_resident_sets(self):
        node = make_node()
        node.ensure_process(5, "big", rss_kb=1_000_000.0)
        node.begin_tick()
        tick(node)
        assert node.procfs.mem.used_kb > 1_000_000.0

    def test_plist_tracks_process_count(self):
        node = make_node()
        for pid in range(10, 15):
            node.ensure_process(pid, "p", rss_kb=10.0)
        node.begin_tick()
        tick(node)
        assert node.procfs.loadavg.plist_sz == 80.0 + 5


def test_determinism_same_seed_same_counters():
    def run():
        node = SimNode("n", NodeSpec(), seed=11)
        for _ in range(50):
            node.begin_tick()
            node.account_cpu(1, user_s=0.5)
            node.end_tick(1.0)
        return node.procfs.cpu.user, node.procfs.stat.ctxt

    assert run() == run()
