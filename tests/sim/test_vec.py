"""Parity and behavior tests for the struct-of-arrays simulator core.

The vectorized engine's contract is *bit parity*: a ``vec`` cluster
stepped through the same jobs, faults and packet loss as a ``scalar``
cluster must expose byte-identical procfs state on every node, every
tick.  These tests pin that contract at small fleet sizes; the
``bench scale --check-parity`` run asserts it at N=50 and N=200.
"""

import numpy as np
import pytest

from repro.experiments.scale import tick_parity_mismatches
from repro.hadoop import ClusterConfig, HadoopCluster
from repro.sim.vec import FleetState, VecProcFS, VecSimNode
from repro.sysstat.procfs import CpuTicks, ProcessStat, SimProcFS


def vec_cluster(num_slaves=4, seed=11):
    return HadoopCluster(
        ClusterConfig(num_slaves=num_slaves, seed=seed, engine="vec")
    )


class TestEngineSelection:
    def test_scalar_default_has_no_fleet(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=1))
        assert cluster.fleet is None

    def test_vec_builds_fleet_backed_nodes(self):
        cluster = vec_cluster()
        assert isinstance(cluster.fleet, FleetState)
        # Master + slaves all live in the same arrays.
        assert len(cluster.fleet.names) == 5
        for node in cluster.nodes.values():
            assert isinstance(node, VecSimNode)
            assert isinstance(node.procfs, VecProcFS)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            HadoopCluster(
                ClusterConfig(num_slaves=3, seed=1, engine="simd")
            )


class TestViews:
    def test_views_read_fleet_arrays(self):
        cluster = vec_cluster()
        cluster.run_until(5.0)
        node = cluster.nodes["slave01"]
        i = cluster.fleet.index["slave01"]
        assert node.procfs.cpu.idle == cluster.fleet.a["cpu_idle"][i]
        assert node.procfs.mem.free_kb == cluster.fleet.a["mem_free_kb"][i]

    def test_snapshot_materializes_plain_dataclasses(self):
        """Snapshots must be detached copies, like the scalar engine's."""
        cluster = vec_cluster()
        cluster.run_until(3.0)
        procfs = cluster.procfs("slave01")
        snap = procfs.snapshot()
        assert type(snap) is SimProcFS
        assert type(snap.cpu) is CpuTicks
        before = snap.cpu.idle
        cluster.run_until(6.0)
        assert snap.cpu.idle == before  # detached from the live arrays
        assert procfs.cpu.idle != before

    def test_snapshot_copies_processes(self):
        cluster = vec_cluster()
        cluster.run_until(3.0)
        snap = cluster.procfs("slave01").snapshot()
        for proc in snap.processes.values():
            assert type(proc) is ProcessStat

    def test_node_end_tick_is_fleet_only(self):
        """Per-node end_tick is replaced by FleetState.end_tick_all."""
        cluster = vec_cluster()
        with pytest.raises(NotImplementedError):
            cluster.nodes["slave01"].end_tick(1.0)


class TestTickParity:
    def test_bit_parity_under_jobs_faults_and_loss(self):
        """Every node's full snapshot matches the scalar engine exactly,
        tick for tick, with jobs running, CPU/disk hogs armed and packet
        loss injected."""
        assert tick_parity_mismatches(8, ticks=60, seed=11) == []

    def test_bit_parity_second_seed(self):
        assert tick_parity_mismatches(6, ticks=40, seed=77) == []


class TestFleetAccounting:
    def test_idle_fleet_accumulators_reset_each_tick(self):
        cluster = vec_cluster()
        cluster.run_until(10.0)
        fleet = cluster.fleet
        assert (fleet.acc_cpu_user == 0.0).all()
        assert (fleet.acc_net_tx == 0.0).all()

    def test_loadavg_decays_like_scalar(self):
        scalar = HadoopCluster(ClusterConfig(num_slaves=4, seed=5))
        vec = HadoopCluster(
            ClusterConfig(num_slaves=4, seed=5, engine="vec")
        )
        scalar.run_until(30.0)
        vec.run_until(30.0)
        for node in scalar.nodes:
            a = scalar.procfs(node).loadavg
            b = vec.procfs(node).loadavg
            assert (a.one, a.five, a.fifteen) == (b.one, b.five, b.fifteen)
