"""Tests for the network model."""

import pytest

from repro.sim import NetworkModel, Transfer


def make_network(**caps) -> NetworkModel:
    defaults = {"a": 1e6, "b": 1e6, "c": 1e6}
    defaults.update(caps)
    return NetworkModel(defaults)


class TestArbitration:
    def test_single_transfer_within_capacity(self):
        network = make_network()
        transfer = Transfer(src="a", dst="b", wanted_bytes=1000.0)
        network.arbitrate([transfer], dt=1.0)
        assert transfer.granted_bytes == pytest.approx(1000.0)
        assert transfer.dropped_bytes == 0.0

    def test_transfer_capped_by_sender_capacity(self):
        network = make_network(a=1000.0)
        transfer = Transfer(src="a", dst="b", wanted_bytes=5000.0)
        network.arbitrate([transfer], dt=1.0)
        assert transfer.granted_bytes == pytest.approx(1000.0)

    def test_transfer_capped_by_receiver_capacity(self):
        network = make_network(b=800.0)
        transfer = Transfer(src="a", dst="b", wanted_bytes=5000.0)
        network.arbitrate([transfer], dt=1.0)
        assert transfer.granted_bytes == pytest.approx(800.0)

    def test_competing_senders_share_receiver(self):
        network = make_network(c=1000.0)
        t1 = Transfer(src="a", dst="c", wanted_bytes=3000.0)
        t2 = Transfer(src="b", dst="c", wanted_bytes=1000.0)
        network.arbitrate([t1, t2], dt=1.0)
        assert t1.granted_bytes == pytest.approx(750.0)
        assert t2.granted_bytes == pytest.approx(250.0)

    def test_local_transfer_bypasses_network(self):
        network = make_network(a=10.0)
        transfer = Transfer(src="a", dst="a", wanted_bytes=1e9)
        network.arbitrate([transfer], dt=1.0)
        assert transfer.granted_bytes == pytest.approx(1e9)
        assert transfer.dropped_bytes == 0.0

    def test_dt_scales_capacity(self):
        network = make_network(a=1000.0)
        transfer = Transfer(src="a", dst="b", wanted_bytes=5000.0)
        network.arbitrate([transfer], dt=2.0)
        assert transfer.granted_bytes == pytest.approx(2000.0)

    def test_grant_never_exceeds_demand(self):
        network = make_network()
        transfer = Transfer(src="a", dst="b", wanted_bytes=10.0)
        network.arbitrate([transfer], dt=100.0)
        assert transfer.granted_bytes <= 10.0


class TestPacketLoss:
    def test_loss_reduces_goodput(self):
        network = make_network()
        network.set_loss_rate("a", 0.5)
        lossy = Transfer(src="a", dst="b", wanted_bytes=1000.0)
        network.arbitrate([lossy], dt=1.0)
        assert lossy.granted_bytes < 100.0  # TCP collapse at 50% loss
        assert lossy.dropped_bytes > 0.0

    def test_loss_applies_at_either_endpoint(self):
        network = make_network()
        network.set_loss_rate("b", 0.5)
        transfer = Transfer(src="a", dst="b", wanted_bytes=1000.0)
        network.arbitrate([transfer], dt=1.0)
        assert transfer.granted_bytes < 100.0

    def test_unaffected_paths_stay_fast(self):
        network = make_network()
        network.set_loss_rate("a", 0.5)
        clean = Transfer(src="b", dst="c", wanted_bytes=1000.0)
        network.arbitrate([clean], dt=1.0)
        assert clean.granted_bytes == pytest.approx(1000.0)

    def test_clear_loss_restores_goodput(self):
        network = make_network()
        network.set_loss_rate("a", 0.5)
        network.clear_loss_rate("a")
        transfer = Transfer(src="a", dst="b", wanted_bytes=1000.0)
        network.arbitrate([transfer], dt=1.0)
        assert transfer.granted_bytes == pytest.approx(1000.0)

    def test_loss_rate_is_clamped(self):
        network = make_network()
        network.set_loss_rate("a", 7.0)
        assert network.loss_rate("a") == 1.0
        network.set_loss_rate("a", -1.0)
        assert network.loss_rate("a") == 0.0

    def test_path_goodput_combines_endpoints(self):
        network = make_network()
        network.set_loss_rate("a", 0.2)
        network.set_loss_rate("b", 0.2)
        combined = network.path_goodput_factor("a", "b")
        single = network.path_goodput_factor("a", "c")
        assert combined < single


def test_packet_count_helper():
    assert NetworkModel.packets(1448.0) == pytest.approx(1.0)
    assert NetworkModel.packets(0.0) == 0.0
