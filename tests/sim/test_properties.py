"""Property-based invariants of the arbitration engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import NetworkModel, NodeSpec, SimNode, TickContext, Transfer

NODES = ("a", "b", "c", "d")


def make_context(dt: float = 1.0):
    nodes = {
        name: SimNode(name, NodeSpec(), seed=i) for i, name in enumerate(NODES)
    }
    for node in nodes.values():
        node.begin_tick()
    network = NetworkModel({name: 125e6 for name in NODES})
    return TickContext(nodes, network, dt), nodes


transfer_strategy = st.tuples(
    st.sampled_from(NODES),
    st.sampled_from(NODES),
    st.floats(0.0, 5e8),
)


class TestNetworkConservation:
    @given(st.lists(transfer_strategy, min_size=1, max_size=12))
    @settings(max_examples=30)
    def test_per_node_tx_and_rx_within_capacity(self, raw_transfers):
        network = NetworkModel({name: 125e6 for name in NODES})
        transfers = [
            Transfer(src=s, dst=d, wanted_bytes=w) for s, d, w in raw_transfers
        ]
        network.arbitrate(transfers, dt=1.0)
        for node in NODES:
            tx = sum(
                t.granted_bytes + t.dropped_bytes
                for t in transfers
                if t.src == node and t.src != t.dst
            )
            rx = sum(
                t.granted_bytes + t.dropped_bytes
                for t in transfers
                if t.dst == node and t.src != t.dst
            )
            assert tx <= 125e6 * 1.001
            assert rx <= 125e6 * 1.001

    @given(st.lists(transfer_strategy, min_size=1, max_size=12))
    @settings(max_examples=30)
    def test_grants_never_exceed_demand(self, raw_transfers):
        network = NetworkModel({name: 125e6 for name in NODES})
        transfers = [
            Transfer(src=s, dst=d, wanted_bytes=w) for s, d, w in raw_transfers
        ]
        network.arbitrate(transfers, dt=1.0)
        for transfer in transfers:
            assert transfer.granted_bytes <= transfer.wanted_bytes + 1e-6
            assert transfer.granted_bytes >= 0.0

    @given(
        st.lists(transfer_strategy, min_size=1, max_size=8),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=30)
    def test_loss_only_reduces_goodput(self, raw_transfers, loss):
        def run(loss_rate):
            network = NetworkModel({name: 125e6 for name in NODES})
            network.set_loss_rate("a", loss_rate)
            transfers = [
                Transfer(src=s, dst=d, wanted_bytes=w)
                for s, d, w in raw_transfers
            ]
            network.arbitrate(transfers, dt=1.0)
            return [t.granted_bytes for t in transfers]

        clean = run(0.0)
        lossy = run(loss)
        for before, after in zip(clean, lossy):
            assert after <= before + 1e-6


class TestCpuDiskConservation:
    @given(st.lists(st.floats(0.0, 32.0), min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_cpu_grants_bounded_by_capacity(self, demands):
        ctx, nodes = make_context()
        handles = [ctx.demand_cpu("a", pid=i, cores=d) for i, d in enumerate(demands)]
        ctx.arbitrate()
        total = sum(h.granted for h in handles)
        assert total <= nodes["a"].spec.cpu_cores * 1.001
        for handle, demand in zip(handles, demands):
            assert handle.granted <= demand + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 1e9), st.floats(0.0, 1e9)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30)
    def test_disk_busy_fraction_bounded(self, demands):
        ctx, nodes = make_context()
        handles = [
            ctx.demand_disk("a", pid=i, read_bytes=r, write_bytes=w)
            for i, (r, w) in enumerate(demands)
        ]
        ctx.arbitrate()
        spec = nodes["a"].spec
        busy = sum(
            h.read_granted / spec.disk_read_bytes_s
            + h.write_granted / spec.disk_write_bytes_s
            for h in handles
        )
        assert busy <= 1.001


class TestNodeCounterInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 6.0),   # cpu demand
                st.floats(0.0, 2e8),   # disk read
                st.floats(0.0, 2e8),   # disk write
                st.floats(0.0, 1e8),   # net tx
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=20)
    def test_counters_are_monotonic_and_cpu_conserves(self, ticks):
        node = SimNode("n", NodeSpec(), seed=1)
        previous_total = 0.0
        previous_ctxt = 0.0
        for cpu, read, write, tx in ticks:
            node.begin_tick()
            node.account_cpu(1, user_s=cpu)
            node.account_disk(1, read_bytes=read, write_bytes=write)
            node.account_net(tx_bytes=tx)
            node.end_tick(1.0)
            total = node.procfs.cpu.total()
            # Each tick adds exactly the node's core-seconds of CPU time.
            assert total == pytest.approx(previous_total + node.spec.cpu_cores, rel=1e-6)
            assert node.procfs.stat.ctxt >= previous_ctxt
            previous_total = total
            previous_ctxt = node.procfs.stat.ctxt
            assert node.procfs.mem.free_kb >= 0.0
            assert 0.0 <= node.procfs.loadavg.one < 1000.0
