"""Tests for per-tick demand collection and arbitration."""

import pytest

from repro.sim import NetworkModel, NodeSpec, SimNode, TickContext


def make_context(dt: float = 1.0, cores: float = 4.0):
    nodes = {
        name: SimNode(name, NodeSpec(cpu_cores=cores), seed=i)
        for i, name in enumerate(("a", "b"))
    }
    network = NetworkModel({name: 125e6 for name in nodes})
    for node in nodes.values():
        node.begin_tick()
    return TickContext(nodes, network, dt), nodes


class TestCpuArbitration:
    def test_under_capacity_full_grant(self):
        ctx, _ = make_context()
        demand = ctx.demand_cpu("a", pid=1, cores=2.0)
        ctx.arbitrate()
        assert demand.granted == pytest.approx(2.0)

    def test_over_capacity_proportional(self):
        ctx, _ = make_context(cores=4.0)
        d1 = ctx.demand_cpu("a", pid=1, cores=6.0)
        d2 = ctx.demand_cpu("a", pid=2, cores=2.0)
        ctx.arbitrate()
        assert d1.granted == pytest.approx(3.0)
        assert d2.granted == pytest.approx(1.0)

    def test_nodes_do_not_contend_with_each_other(self):
        ctx, _ = make_context(cores=4.0)
        d1 = ctx.demand_cpu("a", pid=1, cores=4.0)
        d2 = ctx.demand_cpu("b", pid=1, cores=4.0)
        ctx.arbitrate()
        assert d1.granted == pytest.approx(4.0)
        assert d2.granted == pytest.approx(4.0)

    def test_book_records_consumed_cpu_on_node(self):
        ctx, nodes = make_context()
        demand = ctx.demand_cpu("a", pid=1, cores=2.0)
        ctx.arbitrate()
        demand.book(1.5, iowait=0.5)
        nodes["a"].end_tick(1.0)
        assert nodes["a"].procfs.cpu.user + nodes["a"].procfs.cpu.system >= 1.4
        assert nodes["a"].procfs.cpu.iowait > 0.0

    def test_book_clamps_to_grant(self):
        ctx, nodes = make_context()
        demand = ctx.demand_cpu("a", pid=1, cores=1.0)
        ctx.arbitrate()
        demand.book(100.0)
        nodes["a"].end_tick(1.0)
        total_busy = nodes["a"].procfs.cpu.user + nodes["a"].procfs.cpu.system
        assert total_busy <= 1.1

    def test_book_all_consumes_full_grant(self):
        ctx, nodes = make_context()
        demand = ctx.demand_cpu("a", pid=1, cores=2.0)
        ctx.arbitrate()
        demand.book_all()
        nodes["a"].end_tick(1.0)
        total_busy = nodes["a"].procfs.cpu.user + nodes["a"].procfs.cpu.system
        assert total_busy == pytest.approx(2.0, rel=0.05)

    def test_demand_notes_runq_pressure(self):
        ctx, nodes = make_context(cores=4.0)
        ctx.demand_cpu("a", pid=1, cores=10.0)
        ctx.arbitrate()
        nodes["a"].end_tick(1.0)
        assert nodes["a"].procfs.loadavg.runq_sz > 0


class TestDiskArbitration:
    def test_reads_and_writes_share_device(self):
        ctx, nodes = make_context()
        spec = nodes["a"].spec
        # Demand 2x the device's one-second capability in each direction.
        demand = ctx.demand_disk(
            "a",
            pid=1,
            read_bytes=spec.disk_read_bytes_s * 2,
            write_bytes=spec.disk_write_bytes_s * 2,
        )
        ctx.arbitrate()
        busy = (
            demand.read_granted / spec.disk_read_bytes_s
            + demand.write_granted / spec.disk_write_bytes_s
        )
        assert busy == pytest.approx(1.0, rel=0.01)

    def test_small_demand_fully_granted(self):
        ctx, _ = make_context()
        demand = ctx.demand_disk("a", pid=1, read_bytes=1000.0, write_bytes=500.0)
        ctx.arbitrate()
        assert demand.read_granted == pytest.approx(1000.0)
        assert demand.write_granted == pytest.approx(500.0)

    def test_disk_grants_booked_on_node(self):
        ctx, nodes = make_context()
        ctx.demand_disk("a", pid=1, read_bytes=1024.0 * 512)
        ctx.arbitrate()
        nodes["a"].end_tick(1.0)
        assert nodes["a"].procfs.disk.sectors_read == pytest.approx(1024.0)


class TestNetworkThroughEngine:
    def test_transfer_books_both_endpoints(self):
        ctx, nodes = make_context()
        ctx.demand_transfer("a", "b", 1448.0 * 10)
        ctx.arbitrate()
        for node in nodes.values():
            node.end_tick(1.0)
        assert nodes["a"].procfs.nic("eth0").tx_bytes == pytest.approx(14480.0)
        assert nodes["b"].procfs.nic("eth0").rx_bytes == pytest.approx(14480.0)

    def test_local_transfer_books_nothing(self):
        ctx, nodes = make_context()
        ctx.demand_transfer("a", "a", 1e6)
        ctx.arbitrate()
        nodes["a"].end_tick(1.0)
        assert nodes["a"].procfs.nic("eth0").tx_bytes == 0.0
