"""Tests for the GridMix-like workload generator."""

import pytest

from repro.hadoop.job import MB
from repro.workloads import (
    JOB_CLASSES,
    SIZE_TIERS,
    GridMixConfig,
    GridMixWorkload,
    generate_workload,
)


def make_workload(**kwargs) -> GridMixWorkload:
    defaults = {"duration_s": 2000.0, "seed": 5}
    defaults.update(kwargs)
    return generate_workload(GridMixConfig(**defaults))


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        a, b = make_workload(), make_workload()
        assert [(j.job_id, j.submit_time, j.input_bytes) for j in a.jobs] == [
            (j.job_id, j.submit_time, j.input_bytes) for j in b.jobs
        ]

    def test_different_seeds_differ(self):
        a = make_workload(seed=1)
        b = make_workload(seed=2)
        assert [j.input_bytes for j in a.jobs] != [j.input_bytes for j in b.jobs]

    def test_initial_burst_at_time_zero(self):
        workload = make_workload(initial_jobs=4)
        assert sum(1 for j in workload.jobs if j.submit_time == 0.0) == 4

    def test_submissions_within_duration(self):
        workload = make_workload(duration_s=500.0)
        assert all(j.submit_time < 500.0 for j in workload.jobs)

    def test_submissions_are_sorted(self):
        times = [j.submit_time for j in make_workload().jobs]
        assert times == sorted(times)

    def test_job_ids_unique(self):
        ids = [j.job_id for j in make_workload().jobs]
        assert len(set(ids)) == len(ids)

    def test_all_five_classes_appear_over_long_run(self):
        histogram = make_workload(duration_s=8000.0).class_histogram()
        assert set(histogram) == set(JOB_CLASSES)

    def test_sizes_within_tier_bounds(self):
        low = min(tier[0] for tier in SIZE_TIERS)
        high = max(tier[1] for tier in SIZE_TIERS)
        for job in make_workload().jobs:
            assert low * MB <= job.input_bytes <= high * MB

    def test_reduce_counts_bounded(self):
        config = GridMixConfig(duration_s=2000.0, seed=5, max_reduces=6)
        for job in generate_workload(config).jobs:
            assert 1 <= job.num_reduces <= 6

    def test_cost_model_comes_from_class(self):
        for job in make_workload().jobs:
            class_name = job.name.rsplit("-", 1)[0]
            assert job.cost == JOB_CLASSES[class_name]


class TestWorkloadChange:
    def test_change_increases_submission_rate(self):
        base = make_workload(duration_s=4000.0, change_time_s=-1.0)
        changed = make_workload(
            duration_s=4000.0, change_time_s=2000.0, change_rate_factor=4.0
        )
        late_base = sum(1 for j in base.jobs if j.submit_time >= 2000.0)
        late_changed = sum(1 for j in changed.jobs if j.submit_time >= 2000.0)
        assert late_changed > late_base * 1.5

    def test_no_change_before_change_time(self):
        # With identical seeds the pre-change prefix is identical.
        base = make_workload(duration_s=4000.0, change_time_s=-1.0)
        changed = make_workload(
            duration_s=4000.0, change_time_s=3000.0, change_rate_factor=4.0
        )
        early_base = [j.submit_time for j in base.jobs if j.submit_time < 2500.0]
        early_changed = [j.submit_time for j in changed.jobs if j.submit_time < 2500.0]
        assert early_base == early_changed


class TestAggregates:
    def test_total_input_bytes(self):
        workload = make_workload()
        assert workload.total_input_bytes() == pytest.approx(
            sum(j.input_bytes for j in workload.jobs)
        )

    def test_histogram_counts_sum_to_job_count(self):
        workload = make_workload()
        assert sum(workload.class_histogram().values()) == len(workload.jobs)
