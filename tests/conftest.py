"""Shared fixtures for the test suite."""

import pytest

from repro.experiments.model import BlackBoxModel, train_blackbox_model
from repro.hadoop.cluster import ClusterConfig


@pytest.fixture(scope="session")
def tiny_model() -> BlackBoxModel:
    """A black-box model trained on a very small fault-free run.

    Session-scoped: training runs a short cluster simulation, so share
    one model across every test that needs it.
    """
    return train_blackbox_model(
        cluster_config=ClusterConfig(num_slaves=5, seed=99),
        duration_s=120.0,
        num_states=6,
        seed=0,
    )
