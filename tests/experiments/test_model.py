"""Tests for offline black-box model training."""

import numpy as np

from repro.experiments import collect_training_matrix, train_blackbox_model
from repro.hadoop import ClusterConfig
from repro.workloads import GridMixConfig


class TestTrainingMatrix:
    def test_shape_is_samples_by_catalog(self):
        matrix = collect_training_matrix(
            ClusterConfig(num_slaves=4, seed=1),
            GridMixConfig(duration_s=60.0, seed=2),
            duration_s=60.0,
        )
        # One sample per slave per second (minus the priming second).
        assert matrix.shape == (4 * 59, 64)

    def test_matrix_is_finite_and_nonnegative_mostly(self):
        matrix = collect_training_matrix(
            ClusterConfig(num_slaves=3, seed=1),
            GridMixConfig(duration_s=40.0, seed=2),
            duration_s=40.0,
        )
        assert np.isfinite(matrix).all()


class TestTrainedModel:
    def test_model_shapes(self, tiny_model):
        assert tiny_model.centroids.shape == (6, 64)
        assert tiny_model.sigma.shape == (64,)
        assert tiny_model.num_states == 6

    def test_sigma_positive(self, tiny_model):
        assert (tiny_model.sigma > 0).all()

    def test_centroids_distinct(self, tiny_model):
        for i in range(tiny_model.num_states):
            for j in range(i + 1, tiny_model.num_states):
                assert not np.allclose(
                    tiny_model.centroids[i], tiny_model.centroids[j]
                )

    def test_training_is_deterministic(self):
        kwargs = {
            "cluster_config": ClusterConfig(num_slaves=3, seed=5),
            "duration_s": 50.0,
            "num_states": 4,
            "seed": 2,
        }
        a = train_blackbox_model(**kwargs)
        b = train_blackbox_model(**kwargs)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.sigma, b.sigma)
