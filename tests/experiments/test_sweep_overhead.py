"""Tests for threshold sweeps and overhead measurement."""

import pytest

from repro.experiments import (
    blackbox_fp_sweep,
    deep_sizeof,
    measure_overheads,
    pick_knee,
    whitebox_fp_sweep,
)


def bb_stats(deviations_by_round):
    return [
        {
            "nodes": [f"n{i}" for i in range(len(devs))],
            "deviations": list(devs),
            "windows": {},
        }
        for devs in deviations_by_round
    ]


def wb_stats(means_by_round, stds=0.1):
    return [
        {
            "nodes": [f"n{i}" for i in range(len(means))],
            "means": [[m] for m in means],
            "stds": [[stds] for _ in means],
            "windows": {},
        }
        for means in means_by_round
    ]


class TestBlackboxSweep:
    def test_fp_rate_monotone_nonincreasing(self):
        rounds = bb_stats([[10, 20, 80], [15, 70, 75], [5, 10, 90]])
        curve = blackbox_fp_sweep(rounds, thresholds=[0, 30, 60, 100], consecutive=1)
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates, reverse=True)

    def test_zero_threshold_alarms_everything(self):
        rounds = bb_stats([[1, 1, 1]] * 3)
        curve = blackbox_fp_sweep(rounds, thresholds=[0.5], consecutive=1)
        assert curve[0][1] == 100.0

    def test_huge_threshold_never_alarms(self):
        rounds = bb_stats([[50, 60, 70]] * 3)
        curve = blackbox_fp_sweep(rounds, thresholds=[1000.0], consecutive=1)
        assert curve[0][1] == 0.0

    def test_consecutive_filter_reduces_fp(self):
        # One isolated anomalous round amid clean ones.
        rounds = bb_stats([[1, 1, 99], [1, 1, 1], [1, 1, 99], [1, 1, 1]])
        loose = blackbox_fp_sweep(rounds, thresholds=[50], consecutive=1)[0][1]
        strict = blackbox_fp_sweep(rounds, thresholds=[50], consecutive=2)[0][1]
        assert strict < loose

    def test_empty_rounds_give_zero(self):
        assert blackbox_fp_sweep([], thresholds=[5])[0][1] == 0.0


class TestWhiteboxSweep:
    def test_fp_rate_monotone_in_k(self):
        rounds = wb_stats([[5.0, 5.0, 9.0]] * 4, stds=1.0)
        curve = whitebox_fp_sweep(rounds, ks=[0.0, 2.0, 10.0], consecutive=1)
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates, reverse=True)

    def test_floor_keeps_fp_zero_for_tiny_deviations(self):
        rounds = wb_stats([[1.0, 1.0, 1.5]] * 4)
        curve = whitebox_fp_sweep(rounds, ks=[0.0], consecutive=1)
        assert curve[0][1] == 0.0


class TestPickKnee:
    def test_picks_first_parameter_near_best(self):
        curve = [(0.0, 80.0), (20.0, 10.0), (40.0, 1.0), (60.0, 0.5), (80.0, 0.5)]
        assert pick_knee(curve, tolerance=1.0) == 40.0

    def test_flat_curve_picks_first(self):
        assert pick_knee([(1.0, 0.0), (2.0, 0.0)]) == 1.0

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            pick_knee([])


class TestDeepSizeof:
    def test_counts_nested_containers(self):
        small = deep_sizeof([1, 2, 3])
        large = deep_sizeof([[1, 2, 3]] * 10 + [list(range(100))])
        assert large > small

    def test_handles_cycles(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_objects_with_dict(self):
        class Thing:
            def __init__(self):
                self.payload = list(range(1000))

        assert deep_sizeof(Thing()) > 8000


class TestMeasureOverheads:
    def test_report_shape_and_plausibility(self):
        report = measure_overheads(
            num_slaves=4, duration_s=60.0, training_duration_s=40.0
        )
        assert [row.process for row in report.table3] == [
            "hadoop_log_rpcd",
            "sadc_rpcd",
            "fpt-core",
        ]
        for row in report.table3:
            assert 0.0 <= row.cpu_pct < 50.0
            assert row.memory_mb > 0.0
        assert [row.rpc_type for row in report.table4] == [
            "sadc-tcp",
            "hl-dn-tcp",
            "hl-tt-tcp",
            "TCP Sum",
        ]
        total = report.table4[-1]
        assert total.per_iteration_kb_s == pytest.approx(
            sum(r.per_iteration_kb_s for r in report.table4[:-1])
        )
        assert "% CPU" in report.table3_text()
        assert "sadc-tcp" in report.table4_text()
