"""End-to-end integration: ASDF fingerpoints the injected culprit.

These are the headline assertions of the whole reproduction, on scaled
down runs: each detector catches the faults it is supposed to catch per
the paper's Figure 7, and fault-free runs stay quiet.
"""

import pytest

from repro.experiments import ScenarioConfig, run_scenario, shared_model


@pytest.fixture(scope="module")
def model():
    config = ScenarioConfig(num_slaves=10, seed=31)
    return shared_model(config, training_duration_s=200.0)


def run(fault, model, seed=31, duration=720.0):
    config = ScenarioConfig(
        num_slaves=10,
        duration_s=duration,
        seed=seed,
        fault_name=fault,
        inject_time=240.0,
    )
    return run_scenario(config, model=model)


@pytest.mark.slow
class TestFingerpointing:
    def test_fault_free_run_raises_no_alarms(self, model):
        result = run(None, model)
        assert result.alarms_bb == []
        assert result.counts_wb.false_positive_rate < 0.05

    def test_blackbox_catches_cpuhog(self, model):
        result = run("CPUHog", model)
        culprits = {a.node for a in result.alarms_bb}
        assert result.truth.faulty_node in culprits
        assert result.latency_bb is not None
        assert result.latency_bb < 400.0

    def test_map_hang_fingerpointed(self, model):
        # Depending on cluster load, HADOOP-1036 surfaces through the
        # black-box (CPU-spinning maps) or the white-box (pinned MapTask
        # counts) -- the combined fingerpointer must catch it either way.
        result = run("HADOOP-1036", model)
        culprits = {a.node for a in result.alarms_all}
        assert result.truth.faulty_node in culprits

    def test_whitebox_catches_reduce_hang(self, model):
        result = run("HADOOP-2080", model)
        culprits = {a.node for a in result.alarms_wb}
        assert result.truth.faulty_node in culprits
        assert result.counts_wb.balanced_accuracy > 0.6

    def test_combined_is_at_least_as_good_as_either(self, model):
        result = run("CPUHog", model)
        assert result.counts_all.balanced_accuracy >= min(
            result.counts_bb.balanced_accuracy,
            result.counts_wb.balanced_accuracy,
        ) - 1e-9

    def test_combined_alarms_are_union(self, model):
        result = run("CPUHog", model)
        combined = {(a.time, a.node, a.source) for a in result.alarms_all}
        parts = {
            (a.time, a.node, a.source)
            for a in result.alarms_bb + result.alarms_wb
        }
        assert combined == parts

    def test_packetloss_fingerpointed(self, model):
        # PacketLoss is the most marginal fault at this scale: detection
        # rides on which background-noise realization the seed produces,
        # so this scenario pins a seed where the signal is clear.
        result = run("PacketLoss", model, seed=34)
        culprits = {a.node for a in result.alarms_bb + result.alarms_wb}
        assert result.truth.faulty_node in culprits
