"""Tests for the bench speedup regression gate."""

import json
from types import SimpleNamespace

from repro.experiments import check_speedup_gate


def write_baseline(tmp_path, payload):
    path = tmp_path / "BENCH_baseline.json"
    path.write_text(json.dumps(payload))
    return str(path)


def report_with(speedup, jobs=0, mode="process-pool"):
    return SimpleNamespace(speedup_vs_serial=speedup, jobs=jobs, mode=mode)


class TestGate:
    def test_passes_above_floor(self, tmp_path):
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 0.8})
        ok, message = check_speedup_gate(
            report_with(0.75), baseline, slack=0.85
        )
        assert ok
        assert "PASS" in message

    def test_fails_below_floor(self, tmp_path):
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 0.8})
        ok, message = check_speedup_gate(
            report_with(0.5), baseline, slack=0.85
        )
        assert not ok
        assert "FAIL" in message

    def test_exact_floor_passes(self, tmp_path):
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 1.0})
        ok, _message = check_speedup_gate(
            report_with(0.85), baseline, slack=0.85
        )
        assert ok

    def test_serial_only_report_passes_with_explanation(self, tmp_path):
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 0.8})
        ok, message = check_speedup_gate(report_with(None), baseline)
        assert ok
        assert "no serial reference" in message

    def test_baseline_without_speedup_passes_with_explanation(self, tmp_path):
        baseline = write_baseline(tmp_path, {"format": "asdf-bench/1"})
        ok, message = check_speedup_gate(report_with(0.9), baseline)
        assert ok
        assert "nothing to gate" in message

    def test_unreadable_baseline_fails(self, tmp_path):
        ok, message = check_speedup_gate(
            report_with(0.9), tmp_path / "missing.json"
        )
        assert not ok
        assert "cannot read baseline" in message

    def test_multicore_floor_fails_a_slower_than_serial_run(
        self, tmp_path, monkeypatch
    ):
        # On real cores, jobs=2 below 1.0x is a regression no baseline
        # slack may excuse.
        import repro.experiments.runner as runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 0.9})
        ok, message = check_speedup_gate(
            report_with(0.95, jobs=2), baseline, slack=0.85
        )
        assert not ok
        assert "must reach 1.00x" in message

    def test_multicore_floor_exempts_single_core_hosts(
        self, tmp_path, monkeypatch
    ):
        import repro.experiments.runner as runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 1)
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 0.9})
        ok, _message = check_speedup_gate(
            report_with(0.95, jobs=2), baseline, slack=0.85
        )
        assert ok

    def test_multicore_floor_satisfied_passes(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
        baseline = write_baseline(tmp_path, {"speedup_vs_serial": 0.9})
        ok, message = check_speedup_gate(
            report_with(1.4, jobs=2, mode="warm-pool"), baseline, slack=0.85
        )
        assert ok
        assert "PASS" in message

    def test_committed_baseline_is_gateable(self):
        # The repository's own BENCH_table2.json must keep working as a
        # gate input (this is what CI passes to --gate).
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[2] / "BENCH_table2.json"
        ok, message = check_speedup_gate(report_with(10.0), baseline, slack=0.85)
        assert ok, message
