"""Tests for the ASCII report renderer and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.report import render_summary, render_timeline


@pytest.fixture(scope="module")
def fault_result(tiny_model):
    config = ScenarioConfig(
        num_slaves=5,
        duration_s=360.0,
        seed=13,
        window=30,
        slide=30,
        fault_name="CPUHog",
        inject_time=120.0,
    )
    return run_scenario(config, model=tiny_model)


class TestTimeline:
    def test_one_row_per_node(self, fault_result):
        text = render_timeline(fault_result)
        for node in (f"slave{i + 1:02d}" for i in range(5)):
            assert node in text

    def test_culprit_row_tagged(self, fault_result):
        text = render_timeline(fault_result)
        culprit_line = next(
            line for line in text.splitlines() if fault_result.truth.faulty_node in line
        )
        assert "<- injected" in culprit_line

    def test_injection_marker_row_present(self, fault_result):
        assert "(fault injected)" in render_timeline(fault_result)

    def test_grid_width_matches_window_count(self, fault_result):
        windows = {
            (d.window_start, d.window_end) for d in fault_result.decisions_wb
        }
        text = render_timeline(fault_result)
        culprit_line = next(
            line for line in text.splitlines()
            if fault_result.truth.faulty_node in line
        )
        grid = culprit_line.split()[1]
        assert len(grid) == len(windows)

    def test_empty_result_renders_placeholder(self, tiny_model):
        config = ScenarioConfig(
            num_slaves=5, duration_s=20.0, seed=13, window=30, slide=30
        )
        result = run_scenario(config, model=tiny_model)
        assert "no analysis windows" in render_timeline(result)


class TestSummary:
    def test_mentions_fault_and_detectors(self, fault_result):
        text = render_summary(fault_result)
        assert "CPUHog" in text
        for detector in ("black-box", "white-box", "combined"):
            assert detector in text

    def test_fault_free_summary(self, tiny_model):
        config = ScenarioConfig(
            num_slaves=5, duration_s=120.0, seed=13, window=30, slide=30
        )
        result = run_scenario(config, model=tiny_model)
        assert "fault: none" in render_summary(result)


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ("demo", "calibrate", "figure7", "overhead", "table2", "config"):
            args = parser.parse_args(
                [command] + (["--fault", "CPUHog"] if command == "demo" else [])
            )
            assert callable(args.handler)

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "HADOOP-1036" in out
        assert "CPUHog" in out

    def test_config_command_emits_parsable_config(self, capsys):
        assert main(["config", "--slaves", "3"]) == 0
        out = capsys.readouterr().out
        from repro.core import parse_config

        specs = parse_config(out)
        assert any(spec.module_type == "analysis_bb" for spec in specs)

    def test_demo_rejects_unknown_fault(self):
        with pytest.raises(SystemExit):
            main(["demo", "--fault", "Gremlins"])

    @pytest.mark.slow
    def test_demo_end_to_end(self, capsys):
        code = main(
            [
                "demo",
                "--slaves", "8",
                "--duration", "600",
                "--fault", "HADOOP-2080",
                "--inject", "200",
            ]
        )
        out = capsys.readouterr().out
        assert "fingerpointed correctly" in out
        assert code == 0
