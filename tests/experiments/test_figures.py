"""Tests for the figure/table drivers (small-scale)."""

import pytest

from repro.experiments import (
    Figure7Result,
    Figure7Row,
    ScenarioConfig,
    figure6,
    figure7,
    table2,
)


@pytest.fixture(scope="module")
def small_config():
    return ScenarioConfig(
        num_slaves=5, duration_s=300.0, seed=13, window=30, slide=30,
        inject_time=100.0,
    )


class TestTable2Driver:
    def test_covers_every_catalog_fault(self):
        rows = table2()
        assert {row.fault_name for row in rows} == {
            "CPUHog",
            "DiskHog",
            "PacketLoss",
            "HADOOP-1036",
            "HADOOP-1152",
            "HADOOP-2080",
        }

    def test_rows_carry_paper_text(self):
        rows = {row.fault_name: row for row in table2()}
        assert "Infinite loop" in rows["HADOOP-1036"].reported_failure
        assert "70%" in rows["CPUHog"].injected


class TestFigure6Driver:
    def test_curves_cover_requested_grid(self, small_config, tiny_model):
        result = figure6(
            small_config, thresholds=[0, 30, 60], ks=[0.0, 2.0], model=tiny_model
        )
        assert [t for t, _ in result.blackbox] == [0.0, 30.0, 60.0]
        assert [k for k, _ in result.whitebox] == [0.0, 2.0]

    def test_forces_fault_free_run(self, small_config, tiny_model):
        faulted = ScenarioConfig(
            **{**small_config.__dict__, "fault_name": "CPUHog"}
        )
        result = figure6(faulted, thresholds=[0], ks=[0.0], model=tiny_model)
        # Threshold 0 with a *fault-free* run still reports FPs below 100%
        # only because of the consecutive filter; the call must not crash
        # and must produce rates in range.
        assert 0.0 <= result.blackbox[0][1] <= 100.0

    def test_render_mentions_both_panels(self, small_config, tiny_model):
        result = figure6(small_config, thresholds=[0], ks=[0.0], model=tiny_model)
        text = result.render()
        assert "Figure 6(a)" in text
        assert "Figure 6(b)" in text


class TestFigure7Driver:
    def test_single_fault_single_seed(self, small_config, tiny_model):
        result = figure7(
            small_config,
            fault_names=["CPUHog"],
            seeds=(13,),
            model=tiny_model,
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.fault_name == "CPUHog"
        assert 0.0 <= row.ba_blackbox <= 1.0
        assert row.runs == 1

    def test_unknown_fault_rejected(self, small_config, tiny_model):
        with pytest.raises(KeyError):
            figure7(
                small_config, fault_names=["Nonsense"], seeds=(13,),
                model=tiny_model,
            )

    def test_mean_ba_averages_rows(self):
        result = Figure7Result(
            rows=[
                Figure7Row("A", 0.5, 0.7, 0.8, None, None, None),
                Figure7Row("B", 0.7, 0.9, 1.0, None, None, None),
            ]
        )
        bb, wb, combined = result.mean_ba()
        assert bb == pytest.approx(0.6)
        assert wb == pytest.approx(0.8)
        assert combined == pytest.approx(0.9)

    def test_render_includes_mean_and_paper_reference(self):
        result = Figure7Result(
            rows=[Figure7Row("A", 0.5, 0.7, 0.8, 100.0, None, 100.0)]
        )
        text = result.render()
        assert "MEAN" in text
        assert "paper" in text
        assert "A" in text
