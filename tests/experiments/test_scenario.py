"""Tests for the end-to-end scenario runner."""


from repro.analysis import WindowDecision
from repro.core import parse_config
from repro.experiments import (
    ScenarioConfig,
    build_asdf_config_text,
    merge_decisions,
    run_scenario,
)


def small_config(**kwargs) -> ScenarioConfig:
    defaults = {
        "num_slaves": 5,
        "duration_s": 300.0,
        "seed": 13,
        "window": 30,
        "slide": 30,
        "inject_time": 100.0,
    }
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestConfigGeneration:
    def test_generated_config_parses(self):
        text = build_asdf_config_text(["slave01", "slave02"], ScenarioConfig())
        specs = parse_config(text)
        types = {spec.module_type for spec in specs}
        assert {
            "sadc",
            "knn",
            "ibuffer",
            "analysis_bb",
            "hadoop_log",
            "analysis_wb",
            "alarm_union",
            "print",
        } <= types

    def test_one_blackbox_chain_per_node(self):
        text = build_asdf_config_text(["a", "b", "c"], ScenarioConfig())
        specs = parse_config(text)
        assert sum(1 for s in specs if s.module_type == "sadc") == 3
        assert sum(1 for s in specs if s.module_type == "knn") == 3

    def test_parameters_flow_into_config(self):
        config = ScenarioConfig(bb_threshold=42.0, wb_k=1.5)
        text = build_asdf_config_text(["a"], config)
        assert "threshold = 42.0" in text
        assert "k = 1.5" in text

    def test_fleet_knn_swaps_per_node_chains_for_one_instance(self):
        nodes = ["a", "b", "c"]
        text = build_asdf_config_text(
            nodes, ScenarioConfig(fleet_knn=True)
        )
        specs = parse_config(text)
        assert sum(1 for s in specs if s.module_type == "knnfleet") == 1
        assert sum(1 for s in specs if s.module_type == "knn") == 0
        assert sum(1 for s in specs if s.module_type == "ibuffer") == 3

    def test_fleet_knn_off_keeps_text_byte_identical(self):
        nodes = ["a", "b"]
        default = build_asdf_config_text(nodes, ScenarioConfig())
        explicit = build_asdf_config_text(
            nodes, ScenarioConfig(fleet_knn=False)
        )
        assert default == explicit
        assert "knnfleet" not in default


class TestFaultFreeRun:
    def test_produces_decisions_and_stats(self, tiny_model):
        result = run_scenario(small_config(), model=tiny_model)
        assert len(result.decisions_bb) > 0
        assert len(result.decisions_wb) > 0
        assert len(result.stats_bb) > 0
        assert result.truth.faulty_node is None

    def test_jobs_actually_ran(self, tiny_model):
        result = run_scenario(small_config(), model=tiny_model)
        assert result.jobs_completed > 0

    def test_latencies_none_without_fault(self, tiny_model):
        result = run_scenario(small_config(), model=tiny_model)
        assert result.latency_bb is None
        assert result.latency_wb is None


class TestFaultRun:
    def test_cpuhog_produces_problematic_windows(self, tiny_model):
        result = run_scenario(
            small_config(fault_name="CPUHog"), model=tiny_model
        )
        assert result.truth.faulty_node == "slave03"  # middle of 5
        positives = (
            result.counts_bb.true_positives + result.counts_bb.false_negatives
        )
        assert positives > 0

    def test_explicit_faulty_node_respected(self, tiny_model):
        result = run_scenario(
            small_config(fault_name="CPUHog", faulty_node="slave05"),
            model=tiny_model,
        )
        assert result.truth.faulty_node == "slave05"

    def test_decision_counts_match_across_detectors(self, tiny_model):
        result = run_scenario(
            small_config(fault_name="HADOOP-1036"), model=tiny_model
        )
        # Same node set scored the same number of rounds per detector.
        assert len(result.decisions_bb) % 5 == 0
        assert len(result.decisions_wb) % 5 == 0

    def test_keep_handles_exposes_core(self, tiny_model):
        result = run_scenario(
            small_config(), model=tiny_model, keep_handles=True
        )
        assert result.handles is not None
        assert "analysis_bb" in result.handles.core.instances
        result.handles.core.close()


class TestMergeDecisions:
    def test_or_semantics_on_overlap(self):
        primary = [WindowDecision("n", 0.0, 60.0, alarmed=False)]
        secondary = [WindowDecision("n", 30.0, 90.0, alarmed=True)]
        merged = merge_decisions(primary, secondary)
        assert merged[0].alarmed

    def test_non_overlapping_windows_do_not_merge(self):
        primary = [WindowDecision("n", 0.0, 60.0, alarmed=False)]
        secondary = [WindowDecision("n", 60.0, 120.0, alarmed=True)]
        assert not merge_decisions(primary, secondary)[0].alarmed

    def test_different_nodes_do_not_merge(self):
        primary = [WindowDecision("a", 0.0, 60.0, alarmed=False)]
        secondary = [WindowDecision("b", 0.0, 60.0, alarmed=True)]
        assert not merge_decisions(primary, secondary)[0].alarmed

    def test_already_alarmed_stays_alarmed(self):
        primary = [WindowDecision("a", 0.0, 60.0, alarmed=True)]
        assert merge_decisions(primary, [])[0].alarmed

    def test_grid_comes_from_primary(self):
        primary = [WindowDecision("a", 0.0, 60.0, alarmed=False)]
        secondary = [
            WindowDecision("a", 0.0, 30.0, alarmed=True),
            WindowDecision("a", 30.0, 60.0, alarmed=False),
        ]
        merged = merge_decisions(primary, secondary)
        assert len(merged) == 1
        assert merged[0].window_end == 60.0
