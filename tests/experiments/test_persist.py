"""Tests for scenario-result persistence."""

import json

import pytest

from repro.analysis import fingerpointing_latency, score_decisions
from repro.experiments import (
    ScenarioConfig,
    blackbox_fp_sweep,
    load_result,
    run_scenario,
    save_result,
    whitebox_fp_sweep,
)


@pytest.fixture(scope="module")
def result(tiny_model):
    config = ScenarioConfig(
        num_slaves=5,
        duration_s=300.0,
        seed=13,
        window=30,
        slide=30,
        fault_name="CPUHog",
        inject_time=100.0,
    )
    return run_scenario(config, model=tiny_model)


@pytest.fixture(scope="module")
def round_tripped(result, tmp_path_factory):
    path = tmp_path_factory.mktemp("persist") / "run.json"
    save_result(result, path)
    return load_result(path), path


class TestRoundTrip:
    def test_file_is_plain_json(self, round_tripped):
        _, path = round_tripped
        payload = json.loads(path.read_text())
        assert payload["format"] == "asdf-scenario-result/1"

    def test_config_and_truth_preserved(self, result, round_tripped):
        loaded, _ = round_tripped
        assert loaded.config == result.config
        assert loaded.truth == result.truth
        assert loaded.jobs_completed == result.jobs_completed

    def test_alarms_preserved(self, result, round_tripped):
        loaded, _ = round_tripped
        assert loaded.alarms_bb == result.alarms_bb
        assert loaded.alarms_wb == result.alarms_wb

    def test_decisions_preserved(self, result, round_tripped):
        loaded, _ = round_tripped
        assert loaded.decisions_bb == result.decisions_bb
        assert loaded.decisions_wb == result.decisions_wb

    def test_scores_recomputable_from_loaded_data(self, result, round_tripped):
        loaded, _ = round_tripped
        counts = score_decisions(loaded.decisions_bb, loaded.truth)
        assert counts.balanced_accuracy == pytest.approx(
            result.counts_bb.balanced_accuracy
        )
        assert fingerpointing_latency(loaded.alarms_bb, loaded.truth) == (
            result.latency_bb
        )

    def test_sweeps_run_on_loaded_stats(self, result, round_tripped):
        loaded, _ = round_tripped
        live_bb = blackbox_fp_sweep(result.stats_bb, thresholds=[20, 60])
        loaded_bb = blackbox_fp_sweep(loaded.stats_bb, thresholds=[20, 60])
        assert loaded_bb == live_bb
        live_wb = whitebox_fp_sweep(result.stats_wb, ks=[1.0, 3.0])
        loaded_wb = whitebox_fp_sweep(loaded.stats_wb, ks=[1.0, 3.0])
        assert loaded_wb == live_wb

    def test_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a saved scenario result"):
            load_result(bad)
