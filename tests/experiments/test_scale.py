"""Tests for the scaling benchmark and its scalar/vec parity fixtures."""

import pytest

from repro.experiments.scale import (
    check_scale_gate,
    measure_pipeline_rate,
    measure_tick_rate,
    run_scale_benchmark,
    scenario_parity_mismatches,
    write_scale_json,
)


class TestMeasurements:
    def test_tick_rate_shape(self):
        row = measure_tick_rate(4, "vec", ticks=5, warmup=2)
        assert row["num_slaves"] == 4
        assert row["engine"] == "vec"
        assert row["tick_wall_s"] > 0
        assert row["ticks_per_s"] > 0

    def test_pipeline_rate_counts_all_nodes(self):
        row = measure_pipeline_rate(4, "scalar", seconds=8, window=4)
        assert row["samples_per_s"] > 0
        assert row["pipeline_rounds"] >= 1

    def test_benchmark_payload(self, tmp_path):
        payload = run_scale_benchmark(
            sizes=(4, 6),
            ticks=8,
            pipeline_seconds=6,
            parity_sizes=(4,),
            parity_ticks=8,
        )
        assert payload["sizes"] == [4, 6]
        assert len(payload["rows"]) == 4  # two sizes x two engines
        assert set(payload["tick_speedup"]) == {"4", "6"}
        assert payload["parity"]["mismatches"] == 0
        path = write_scale_json(payload, directory=tmp_path)
        assert path.name == "BENCH_scale.json"
        assert path.exists()


class TestScaleGate:
    PAYLOAD = {
        "sizes": [50, 200],
        "tick_speedup": {"50": 4.0, "200": 8.0},
        "parity": {"checked": True, "mismatches": 0},
    }

    def test_passes_on_good_payload(self):
        ok, message = check_scale_gate(self.PAYLOAD, min_speedup=5.0)
        assert ok, message
        assert "PASS" in message

    def test_fails_below_speedup_floor(self):
        ok, message = check_scale_gate(self.PAYLOAD, min_speedup=10.0)
        assert not ok
        assert "below" in message

    def test_fails_on_parity_mismatch(self):
        bad = dict(
            self.PAYLOAD,
            parity={
                "checked": True,
                "mismatches": 2,
                "mismatch_labels": ["N=50: tick 3 node slave01"],
            },
        )
        ok, message = check_scale_gate(bad)
        assert not ok
        assert "parity" in message

    def test_baseline_regression(self, tmp_path):
        baseline = tmp_path / "BENCH_scale.json"
        baseline.write_text(
            '{"sizes": [50, 200], "tick_speedup": {"50": 4.0, "200": 20.0}}'
        )
        ok, message = check_scale_gate(
            self.PAYLOAD, baseline_path=baseline, slack=0.7
        )
        assert not ok
        assert "regressed" in message
        ok, _ = check_scale_gate(
            self.PAYLOAD, baseline_path=baseline, slack=0.3
        )
        assert ok

    def test_unreadable_baseline_fails(self, tmp_path):
        ok, message = check_scale_gate(
            self.PAYLOAD, baseline_path=tmp_path / "missing.json"
        )
        assert not ok
        assert "baseline" in message

    def test_empty_payload_fails(self):
        ok, _ = check_scale_gate({"sizes": [], "tick_speedup": {}})
        assert not ok


class TestScenarioParity:
    """End-to-end scalar vs vec+fleet_knn: alarms, decisions, scoreboard
    counts and the analysis channels' bytes must all match exactly."""

    def test_small_fleet(self):
        assert scenario_parity_mismatches(6, duration_s=300.0, seed=31) == []

    @pytest.mark.slow
    def test_n50(self):
        assert scenario_parity_mismatches(50, duration_s=420.0, seed=31) == []

    @pytest.mark.slow
    def test_n200(self):
        assert (
            scenario_parity_mismatches(200, duration_s=300.0, seed=31) == []
        )
