"""Robustness experiments the paper calls out explicitly.

* Workload changes must not raise false alarms: "we can localize
  performance problems ... for a variety of workloads and even in the
  face of workload changes" (the peer-comparison hypothesis: a workload
  change affects all slaves alike, so no node departs from the median).
* The strace extension (section 5) detects a behavioural shift on a
  live cluster node.
"""

import pytest

from repro.experiments import ScenarioConfig, run_scenario, shared_model


@pytest.fixture(scope="module")
def model():
    return shared_model(ScenarioConfig(num_slaves=8, seed=47), training_duration_s=200.0)


@pytest.mark.slow
class TestWorkloadChangeRobustness:
    def test_no_false_alarms_across_a_workload_change(self, model):
        config = ScenarioConfig(
            num_slaves=8,
            duration_s=720.0,
            seed=47,
            fault_name=None,
            workload_change_time_s=360.0,
            workload_change_factor=3.0,  # 3x the submission rate mid-run
        )
        result = run_scenario(config, model=model)
        assert result.alarms_bb == []
        assert result.counts_wb.false_positive_rate < 0.05

    def test_fault_still_detected_despite_workload_change(self, model):
        config = ScenarioConfig(
            num_slaves=8,
            duration_s=720.0,
            seed=47,
            fault_name="CPUHog",
            inject_time=240.0,
            workload_change_time_s=400.0,
            workload_change_factor=3.0,
        )
        result = run_scenario(config, model=model)
        culprits = {alarm.node for alarm in result.alarms_all}
        assert result.truth.faulty_node in culprits


@pytest.mark.slow
class TestStraceOnLiveCluster:
    def test_syscall_profile_shift_detected_on_hogged_node(self):
        """Wire the section 5 strace pipeline against a real simulated
        cluster: the CPU hog changes the node's syscall mix (compute
        without I/O), and the divergence detector fires on that node.

        The node-total syscall distribution shifts less sharply than a
        per-process strace would show (the hog also slows every worker
        proportionally), so the calibrated threshold here is lower than
        the module default -- the threshold is an operating point chosen
        from fault-free traces, like every other threshold in ASDF."""
        from repro.core import FptCore, SimClock
        from repro.faults import FaultSpec, make_fault
        from repro.hadoop import ClusterConfig, HadoopCluster
        from repro.modules import STRACE_CHANNEL_SERVICE, standard_registry
        from repro.rpc.daemons import StraceDaemon
        from repro.rpc.inproc import InprocChannel
        from repro.workloads import GridMixConfig, generate_workload

        cluster = HadoopCluster(ClusterConfig(num_slaves=4, seed=5))
        for spec in generate_workload(GridMixConfig(duration_s=600.0, seed=6)).jobs:
            cluster.schedule_job(spec)
        make_fault("CPUHog").arm(
            cluster, FaultSpec(node="slave02", inject_time=300.0)
        )

        channels = {
            node: InprocChannel(
                StraceDaemon(node, cluster.procfs(node), seed=i), f"strace@{node}"
            )
            for i, node in enumerate(cluster.slave_names)
        }
        lines = []
        for node in cluster.slave_names:
            lines += [
                "[strace]", f"id = st_{node}", f"node = {node}", "",
                "[syscall_anomaly]", f"id = anom_{node}",
                f"input[s] = st_{node}.counts",
                "window = 60", "baseline_windows = 3", "threshold = 0.012", "",
            ]
        lines += ["[print]", "id = alarms"]
        lines += [
            f"input[a{i}] = anom_{node}.alarms"
            for i, node in enumerate(cluster.slave_names)
        ]
        core = FptCore.from_config(
            "\n".join(lines) + "\n",
            standard_registry(),
            SimClock(),
            services={STRACE_CHANNEL_SERVICE: channels},
        )

        while cluster.time < 600.0:
            cluster.step(1.0)
            core.run_until(cluster.time)

        alarms = core.instance("alarms").alarms
        assert alarms, "no syscall anomaly detected at all"
        flagged = {alarm.node for alarm in alarms}
        assert "slave02" in flagged
        assert all(alarm.time >= 300.0 for alarm in alarms if alarm.node == "slave02")
        core.close()
