"""Attaching new data sources to a *running* deployment.

The paper's flexibility requirement (section 2.1): "ASDF should have the
flexibility to attach or detach any data source (white-box or black-box)
that is available in the system".  Here a full Hadoop deployment runs
for five simulated minutes, then the section 5 strace pipeline is
attached to the live core -- no restart -- flows data for every node,
and detaching a sink later removes its subscription cleanly.  (Detection
*quality* of the strace pipeline is asserted separately, in
test_robustness.py, at its calibrated configuration.)
"""

import pytest

from repro.experiments import ScenarioConfig, deploy_asdf, shared_model
from repro.faults import FaultSpec, make_fault
from repro.hadoop import HadoopCluster
from repro.modules.strace import STRACE_CHANNEL_SERVICE
from repro.rpc.daemons import StraceDaemon
from repro.rpc.inproc import InprocChannel
from repro.workloads import generate_workload


@pytest.mark.slow
def test_attach_strace_pipeline_to_running_deployment():
    config = ScenarioConfig(
        num_slaves=5, duration_s=700.0, seed=5, fault_name=None
    )
    model = shared_model(config, training_duration_s=150.0)
    cluster = HadoopCluster(config.cluster_config())
    for spec in generate_workload(config.workload_config()).jobs:
        cluster.schedule_job(spec)
    make_fault("CPUHog").arm(
        cluster, FaultSpec(node="slave03", inject_time=400.0)
    )
    handles = deploy_asdf(cluster, model, config)
    core = handles.core

    # Phase 1: run the stock deployment.
    while cluster.time < 300.0:
        cluster.step(1.0)
        core.run_until(cluster.time)

    # Phase 2: attach the strace pipeline to the live core.  The
    # services dict is shared by reference, so new channel registrations
    # are visible to modules attached afterwards.
    strace_channels = {
        node: InprocChannel(
            StraceDaemon(node, cluster.procfs(node), seed=i), f"strace@{node}"
        )
        for i, node in enumerate(cluster.slave_names)
    }
    core._services[STRACE_CHANNEL_SERVICE] = strace_channels
    lines = []
    for node in cluster.slave_names:
        lines += [
            "[strace]", f"id = st_{node}", f"node = {node}", "",
            "[syscall_anomaly]", f"id = anom_{node}",
            f"input[s] = st_{node}.counts",
            "window = 60", "baseline_windows = 1", "threshold = 0.012", "",
        ]
    lines += ["[print]", "id = strace_divergences"]
    lines += [
        f"input[a{i}] = anom_{node}.divergence"
        for i, node in enumerate(cluster.slave_names)
    ]
    added = core.attach("\n".join(lines) + "\n")
    assert len(added) == 2 * len(cluster.slave_names) + 1

    while cluster.time < config.duration_s:
        cluster.step(1.0)
        core.run_until(cluster.time)

    # Every attached pipeline is live: divergence scores flow from every
    # node, scored only on post-attach windows.
    samples = core.instance("strace_divergences").received
    assert samples, "attached strace pipeline produced no data"
    assert all(s.timestamp > 300.0 for s in samples)
    scored = {
        anom.node
        for node in cluster.slave_names
        for anom in [core.instance(f"anom_{node}")]
        if anom.windows_scored > 0
    }
    assert scored == set(cluster.slave_names)
    # The stock deployment kept working after the attach.
    assert core.instance("analysis_wb").rounds_processed > 5

    # Phase 3: detach the sink; the detectors lose their subscriber.
    core.detach("strace_divergences")
    divergence_output = core.dag.contexts["anom_slave01"].outputs["divergence"]
    assert divergence_output.subscribers == []
    core.close()
