"""Production-mode integration: wall-clock time and real TCP daemons.

The paper's deployment runs the fpt-core on a dedicated control node
polling real RPC daemons over the network while the monitored system
advances in wall-clock time.  These tests exercise exactly that stack:
:class:`RpcServer` instances serve sadc/hadoop_log daemons over real
sockets, the collection modules talk to them through
:class:`RpcClient`, and the scheduler runs against :class:`WallClock`.
Intervals are scaled down (tens of milliseconds) so the tests finish in
about a second.
"""

import threading
import time

import pytest

from repro.core import FptCore, WallClock
from repro.hadoop import ClusterConfig, HadoopCluster, JobSpec, MB
from repro.modules import SADC_CHANNEL_SERVICE, standard_registry
from repro.rpc import RpcClient, RpcServer
from repro.rpc.daemons import HadoopLogDaemon, SadcDaemon


@pytest.fixture
def live_cluster():
    """A cluster stepped in near-real time by a background thread."""
    cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=3))
    cluster.submit_job(
        JobSpec(
            job_id="200807070001_0001",
            name="job",
            input_bytes=256.0 * MB,
            num_reduces=2,
        )
    )
    stop = threading.Event()

    def pump():
        # 1 simulated second every 20 ms of wall time.
        while not stop.is_set():
            cluster.step(1.0)
            time.sleep(0.02)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    yield cluster
    stop.set()
    thread.join(timeout=2.0)


class TestWallClockOverTcp:
    def test_sadc_collection_over_real_sockets(self, live_cluster):
        node = "slave01"
        server = RpcServer(
            SadcDaemon(node, live_cluster.procfs(node)), f"sadc_rpcd@{node}"
        )
        with server:
            host, port = server.address
            client = RpcClient(host, port)
            core = FptCore.from_config(
                f"[sadc]\nid = s\nnode = {node}\ninterval = 0.05\n\n"
                "[print]\nid = sink\ninput[a] = s.vector\n",
                standard_registry(),
                WallClock(),
                services={SADC_CHANNEL_SERVICE: {node: client}},
            )
            core.run_for(0.8)
            sink = core.instance("sink")
            assert len(sink.received) >= 5
            # Samples carry the full 64-metric vector over the wire.
            assert sink.received[0].value.shape == (64,)
            core.close()

    def test_hadoop_log_collection_over_real_sockets(self, live_cluster):
        node = "slave01"
        # The daemon's stability lag is 2 *simulated* seconds; the pump
        # advances ~50 simulated seconds per wall second, so a fraction
        # of wall time exposes plenty of stable seconds.
        server = RpcServer(
            HadoopLogDaemon(node, live_cluster.tt_logs[node], live_cluster.dn_logs[node]),
            f"hl_rpcd@{node}",
        )
        with server:
            host, port = server.address
            client = RpcClient(host, port)
            collected = []
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and len(collected) < 30:
                result = client.call("collect", now=live_cluster.time)
                collected.extend(result["seconds"])
                time.sleep(0.05)
            client.close()
        assert len(collected) >= 30
        assert collected == sorted(collected)

    def test_wall_clock_scheduling_period_is_respected(self):
        registry = standard_registry()
        from repro.core import Module

        class Ticker(Module):
            type_name = "wallclock_ticker"

            def init(self):
                self.times = []
                self.ctx.create_output("t")
                self.ctx.schedule_every(0.05)

            def run(self, reason):
                self.times.append(time.monotonic())

        registry.register(Ticker)
        core = FptCore.from_config(
            "[wallclock_ticker]\nid = t\n", registry, WallClock()
        )
        core.run_for(0.5)
        ticker = core.instance("t")
        assert 8 <= len(ticker.times) <= 13
        gaps = [b - a for a, b in zip(ticker.times, ticker.times[1:])]
        assert max(gaps) < 0.2  # no pathological stalls
