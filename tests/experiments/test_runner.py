"""Tests for the parallel experiment engine (`repro.experiments.runner`).

The engine's core guarantee: a matrix run at any worker count produces
*byte-identical* result documents to a serial run -- deterministic
per-task seeds, a parent-trained model shipped to workers, and one
shared execution path make that possible.
"""

import json

import pytest

from repro.experiments import (
    ExperimentTask,
    ModelCache,
    ScenarioConfig,
    derive_seed,
    parity_mismatches,
    run_tasks,
    scenario_matrix,
    shared_model,
    table2_matrix,
    training_signature,
    write_bench_json,
)
from repro.experiments import runner as runner_mod
from repro.faults import FAULT_NAMES
from repro.telemetry import Telemetry

#: Small-but-real scenario: large enough to produce alarms/decisions,
#: small enough that a matrix of them stays in test-suite budget.
MINI = ScenarioConfig(num_slaves=3, duration_s=120.0, seed=11, inject_time=40.0)


@pytest.fixture(scope="module")
def mini_model():
    return shared_model(MINI, training_duration_s=120.0)


class TestChunkedDispatch:
    """Pool submissions batch tasks; flattened order must be unchanged."""

    def test_chunks_preserve_order_and_cover_everything(self):
        items = [(f"t{i}", {}, None) for i in range(11)]
        chunks = runner_mod._chunk_items(items, jobs=3)
        flattened = [item for chunk in chunks for item in chunk]
        assert flattened == items

    def test_chunk_count_bounded_by_workers(self):
        items = [(f"t{i}", {}, None) for i in range(100)]
        chunks = runner_mod._chunk_items(items, jobs=4)
        assert len(chunks) == 4 * runner_mod.CHUNKS_PER_WORKER
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1  # balanced
        assert all(sizes)

    def test_fewer_items_than_chunks(self):
        items = [("only", {}, None)]
        assert runner_mod._chunk_items(items, jobs=8) == [items]


class TestDeriveSeed:
    def test_deterministic_and_31_bit(self):
        a = derive_seed(42, "CPUHog", 0)
        assert a == derive_seed(42, "CPUHog", 0)
        assert 0 <= a < 2**31

    def test_distinct_coordinates_distinct_seeds(self):
        seeds = {
            derive_seed(42, fault, trial)
            for fault in FAULT_NAMES
            for trial in range(10)
        }
        assert len(seeds) == len(FAULT_NAMES) * 10

    def test_base_seed_changes_everything(self):
        assert derive_seed(1, "x", 0) != derive_seed(2, "x", 0)


class TestMatrices:
    def test_table2_matrix_shape(self):
        tasks = table2_matrix(MINI, faults=("CPUHog", "DiskHog"), trials=3)
        assert [t.task_id for t in tasks] == [
            "CPUHog/t0", "CPUHog/t1", "CPUHog/t2",
            "DiskHog/t0", "DiskHog/t1", "DiskHog/t2",
        ]
        assert all(t.config.fault_name in ("CPUHog", "DiskHog") for t in tasks)
        assert len({t.config.seed for t in tasks}) == len(tasks)
        # Everything except fault/seed inherited from the base config.
        assert all(t.config.num_slaves == MINI.num_slaves for t in tasks)

    def test_sweep_axis_multiplies_matrix(self):
        tasks = scenario_matrix(
            MINI,
            faults=("CPUHog",),
            trials=2,
            sweep=("bb_threshold", [40.0, 65.0]),
        )
        assert [t.task_id for t in tasks] == [
            "CPUHog/t0/bb_threshold=40.0",
            "CPUHog/t0/bb_threshold=65.0",
            "CPUHog/t1/bb_threshold=40.0",
            "CPUHog/t1/bb_threshold=65.0",
        ]
        assert {t.config.bb_threshold for t in tasks} == {40.0, 65.0}

    def test_fault_free_axis(self):
        (task,) = scenario_matrix(MINI, faults=(None,))
        assert task.task_id == "fault-free/t0"
        assert task.config.fault_name is None

    def test_bad_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            scenario_matrix(MINI, trials=0)

    def test_matrix_is_reproducible(self):
        first = table2_matrix(MINI, faults=FAULT_NAMES, trials=2)
        second = table2_matrix(MINI, faults=FAULT_NAMES, trials=2)
        assert [t.config for t in first] == [t.config for t in second]


class TestModelCache:
    def test_trains_once_per_signature(self, monkeypatch):
        calls = []

        class FakeModel:
            centroids = None
            sigma = None

        def fake_train(**kwargs):
            calls.append(kwargs)
            return FakeModel()

        monkeypatch.setattr(runner_mod, "train_blackbox_model", fake_train)
        cache = ModelCache()
        same_a = ScenarioConfig(num_slaves=3, duration_s=120.0, seed=5)
        same_b = ScenarioConfig(
            num_slaves=3, duration_s=120.0, seed=5, fault_name="CPUHog"
        )
        other = ScenarioConfig(num_slaves=3, duration_s=120.0, seed=6)
        key_a, model_a = cache.get(same_a)
        key_b, model_b = cache.get(same_b)
        key_c, _ = cache.get(other)
        assert key_a == key_b and model_a is model_b
        assert key_c != key_a
        assert cache.trainings == len(calls) == 2

    def test_signature_tracks_training_inputs(self):
        base = ScenarioConfig(num_slaves=3, duration_s=120.0, seed=5)
        assert training_signature(base) == training_signature(
            ScenarioConfig(num_slaves=3, duration_s=120.0, seed=5,
                           fault_name="DiskHog", inject_time=10.0)
        )
        assert training_signature(base) != training_signature(
            ScenarioConfig(num_slaves=4, duration_s=120.0, seed=5)
        )
        assert training_signature(base) != training_signature(
            base, training_duration_s=60.0
        )


class TestSerialParallelParity:
    def test_jobs_4_byte_identical_to_serial(self, mini_model):
        """The acceptance bar: a table2 mini-matrix at jobs=4 returns
        result documents byte-identical to jobs=1."""
        tasks = table2_matrix(MINI, faults=("CPUHog", "DiskHog"), trials=1)
        serial = run_tasks(tasks, jobs=1, model=mini_model)
        parallel = run_tasks(tasks, jobs=4, model=mini_model)
        assert serial.mode == "serial"
        assert parallel.mode in ("process-pool", "serial-fallback")
        assert parity_mismatches(serial, parallel) == []
        for a, b in zip(serial.results, parallel.results):
            assert a.task.task_id == b.task.task_id
            assert a.canonical_json() == b.canonical_json()

    def test_results_preserve_submission_order(self, mini_model):
        tasks = table2_matrix(MINI, faults=("CPUHog", "DiskHog"), trials=1)
        report = run_tasks(tasks, jobs=2, model=mini_model)
        assert [r.task.task_id for r in report.results] == [
            t.task_id for t in tasks
        ]

    def test_loaded_results_expose_scores(self, mini_model):
        (task,) = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        report = run_tasks([task], jobs=1, model=mini_model)
        loaded = report.results[0].load()
        assert loaded.truth.faulty_node is not None
        assert 0.0 <= loaded.counts_bb.balanced_accuracy <= 1.0
        assert loaded.counts_all.true_negatives >= 0
        # load() is cached: same object back.
        assert report.results[0].load() is loaded

    def test_parity_mismatches_detects_differences(self, mini_model):
        (task,) = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        a = run_tasks([task], jobs=1, model=mini_model)
        b = run_tasks([task], jobs=1, model=mini_model)
        assert parity_mismatches(a, b) == []
        b.results[0].payload["jobs_completed"] += 1
        assert parity_mismatches(a, b) == ["CPUHog/t0"]


class TestWarmPool:
    def test_warm_results_byte_identical_and_pool_persists(self, mini_model):
        tasks = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        try:
            serial = run_tasks(tasks, jobs=1, model=mini_model)
            warm = run_tasks(tasks, jobs=2, model=mini_model, warm=True)
            assert warm.mode in ("warm-pool", "serial-fallback")
            assert parity_mismatches(serial, warm) == []
            if warm.mode == "warm-pool":
                pool = runner_mod._warm_pool
                assert pool is not None
                again = run_tasks(tasks, jobs=2, model=mini_model, warm=True)
                # Same pool object across calls: that is the "warm".
                assert runner_mod._warm_pool is pool
                assert parity_mismatches(serial, again) == []
        finally:
            runner_mod.shutdown_warm_pool()
        assert runner_mod._warm_pool is None

    def test_env_gate_enables_warm_mode(self, monkeypatch):
        monkeypatch.setenv(runner_mod.WARM_WORKERS_ENV, "1")
        assert runner_mod.warm_workers_enabled()
        monkeypatch.setenv(runner_mod.WARM_WORKERS_ENV, "0")
        assert not runner_mod.warm_workers_enabled()
        monkeypatch.delenv(runner_mod.WARM_WORKERS_ENV)
        assert not runner_mod.warm_workers_enabled()

    def test_worker_model_install_is_digest_cached(self):
        payloads_a = json.dumps({"k": {"x": 1}}, sort_keys=True)
        runner_mod._install_models(payloads_a)
        first = runner_mod._worker_payloads
        runner_mod._install_models(payloads_a)
        assert runner_mod._worker_payloads is first  # cache hit: no re-parse
        runner_mod._install_models(json.dumps({"k": {"x": 2}}))
        assert runner_mod._worker_payloads is not first


class TestSerialFallback:
    def test_pool_failure_falls_back_with_identical_results(
        self, mini_model, monkeypatch
    ):
        tasks = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        serial = run_tasks(tasks, jobs=1, model=mini_model)

        def broken_pool(items, jobs, models_json):
            raise OSError("no process spawning here")

        monkeypatch.setattr(runner_mod, "_pool_results", broken_pool)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            fallback = run_tasks(tasks, jobs=4, model=mini_model)
        assert fallback.mode == "serial-fallback"
        assert parity_mismatches(serial, fallback) == []

    def test_jobs_zero_means_cpu_count(self, mini_model):
        (task,) = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        report = run_tasks([task], jobs=0, model=mini_model)
        assert report.jobs >= 1


class TestTimingsAndBench:
    def test_per_task_timings_recorded(self, mini_model):
        tasks = table2_matrix(MINI, faults=("CPUHog", "DiskHog"), trials=1)
        telemetry = Telemetry()
        report = run_tasks(tasks, jobs=1, model=mini_model, telemetry=telemetry)
        assert all(r.wall_s > 0 for r in report.results)
        assert all(r.cpu_s >= 0 for r in report.results)
        assert all(r.worker.startswith("pid:") for r in report.results)
        assert report.task_wall_s > 0 and report.cpu_s >= 0
        assert telemetry.metrics.total("asdf_experiment_tasks_total") == len(tasks)

    def test_bench_json_contents_and_dir_override(
        self, mini_model, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("ASDF_BENCH_DIR", str(tmp_path / "env-dir"))
        (task,) = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        report = run_tasks([task], jobs=1, model=mini_model)
        report.serial_wall_s = 2 * report.wall_s

        env_path = write_bench_json(report, "envtest")
        assert env_path.parent == tmp_path / "env-dir"
        explicit_path = write_bench_json(
            report, "unit", directory=tmp_path, extra={"note": "x"}
        )
        assert explicit_path == tmp_path / "BENCH_unit.json"

        payload = json.loads(explicit_path.read_text())
        assert payload["format"] == "asdf-bench/1"
        assert payload["name"] == "unit"
        assert payload["jobs"] == 1 and payload["mode"] == "serial"
        assert payload["wall_s"] > 0
        assert payload["tasks"][0]["task_id"] == "CPUHog/t0"
        assert payload["speedup_vs_serial"] == pytest.approx(2.0, abs=0.01)
        assert payload["extra"] == {"note": "x"}

    def test_report_lookup(self, mini_model):
        (task,) = table2_matrix(MINI, faults=("CPUHog",), trials=1)
        report = run_tasks([task], jobs=1, model=mini_model)
        assert report.result("CPUHog/t0") is report.results[0]
        with pytest.raises(KeyError):
            report.result("nope")
        assert report.speedup_vs_serial is None
