"""Tests for incident bundles on a multi-stage diagnosis DAG."""

import json

from repro.flightrec import (
    FlightRecorder,
    load_bundles,
    render_bundle_text,
    upstream_instances,
)

from .helpers import build_core

#: Two collectors -> smoothing -> rule analyses -> union -> sink, plus an
#: unrelated branch that must stay out of the sink's incident bundles.
MULTI_STAGE_CONFIG = """
[scripted]
id = src_a
node = slave01

[mavgvec]
id = mavg_a
input[input] = src_a.value
window = 2
slide = 2

[threshold_alarm]
id = thr_a
input[m] = mavg_a.mean
bound = 10.0
consecutive = 1

[scripted]
id = src_b
node = slave02

[threshold_alarm]
id = thr_b
input[m] = src_b.value
bound = 10.0
consecutive = 1

[alarm_union]
id = union
input[a] = thr_a.alarms
input[b] = thr_b.alarms

[print]
id = sink
input[a] = union.alarms

[scripted]
id = src_other
node = slave99

[print]
id = other_sink
input[a] = src_other.value
"""

SCRIPTS = {
    "src_a": [20.0] * 8,      # smoothed mean 20 > bound 10 -> alarms
    "src_b": [1.0] * 8,       # never violates
    "src_other": [5.0] * 8,   # unrelated traffic
}


def run_recorded(archive_dir=None):
    core = build_core(MULTI_STAGE_CONFIG, {"script": dict(SCRIPTS)})
    recorder = FlightRecorder(archive_dir=archive_dir)
    core.set_flight_recorder(recorder)
    core.run_until(8.0)
    return core, recorder


class TestUpstreamWalk:
    def test_walk_stops_at_collectors(self):
        core, _ = run_recorded()
        assert upstream_instances(core.dag, "sink") == [
            "mavg_a", "sink", "src_a", "src_b", "thr_a", "thr_b", "union",
        ]

    def test_unrelated_branch_excluded(self):
        core, _ = run_recorded()
        path = upstream_instances(core.dag, "sink")
        assert "src_other" not in path and "other_sink" not in path

    def test_collector_path_is_itself(self):
        core, _ = run_recorded()
        assert upstream_instances(core.dag, "src_a") == ["src_a"]


class TestIncidentBundle:
    def test_sink_freezes_bundle_automatically(self):
        core, recorder = run_recorded()
        assert len(recorder.incidents) == 1
        bundle = recorder.incidents[0]
        assert bundle["format"] == "asdf-incident-bundle/1"
        assert bundle["sink"] == "sink"
        assert bundle["alarm"]["node"] == "slave01"

    def test_bundle_names_true_raiser(self):
        _, recorder = run_recorded()
        bundle = recorder.incidents[0]
        # The union forwarded it, but thr_a raised it.
        assert bundle["raised_by"] == "thr_a.alarms"
        assert bundle["delivered_via"] == ["thr_a.alarms", "union.alarms"]
        assert bundle["alarm"]["via"] == ["thr_a.alarms"]

    def test_bundle_covers_the_dag_path(self):
        core, recorder = run_recorded()
        bundle = recorder.incidents[0]
        assert bundle["path"] == upstream_instances(core.dag, "sink")
        edge_pairs = {(e["src"], e["dst"]) for e in bundle["edges"]}
        assert ("src_a", "mavg_a") in edge_pairs
        assert ("union", "sink") in edge_pairs
        assert all(
            src != "src_other" and dst != "other_sink"
            for src, dst in edge_pairs
        )

    def test_bundle_contains_culprit_samples(self):
        _, recorder = run_recorded()
        channels = recorder.incidents[0]["channels"]
        assert "src_other.value" not in channels
        culprit = channels["src_a.value"]
        assert culprit["origin"]["node"] == "slave01"
        values = [s["v"] for s in culprit["samples"]]
        assert values and all(v == 20.0 for v in values)
        # The anomalous window ends at the alarm time.
        alarm_time = recorder.incidents[0]["alarm"]["time"]
        assert culprit["samples"][-1]["t"] <= alarm_time

    def test_bundle_captures_config_in_force(self):
        _, recorder = run_recorded()
        config = recorder.incidents[0]["config"]
        assert config["thr_a"]["type"] == "threshold_alarm"
        assert config["thr_a"]["params"]["bound"] == "10.0"
        assert config["mavg_a"]["params"]["window"] == "2"
        assert "src_other" not in config

    def test_bundles_written_and_reloadable(self, tmp_path):
        _, recorder = run_recorded(archive_dir=str(tmp_path))
        recorder.close()
        bundles = load_bundles(str(tmp_path))
        assert len(bundles) == 1
        path, bundle = bundles[0]
        assert path.endswith("incident-0001.json")
        assert bundle == json.loads(json.dumps(bundle))  # plain JSON
        assert bundle["alarm"]["node"] == "slave01"

    def test_render_bundle_text_digest(self):
        _, recorder = run_recorded()
        text = render_bundle_text(recorder.incidents[0])
        assert "culprit=slave01" in text
        assert "raised by: thr_a.alarms" in text
        assert "channel src_a.value" in text
        assert "config [thr_a]" in text and "bound=10.0" in text
