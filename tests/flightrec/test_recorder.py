"""Tests for the channel rings, the archive writer and the recorder."""

import json

import numpy as np

from repro.analysis.metrics import Alarm, WindowDecision
from repro.core import Origin, Sample
from repro.flightrec import ChannelRing, FlightRecorder, decode_value, encode_value
from repro.telemetry import Telemetry

from .helpers import ALARM_PIPELINE_CONFIG, ALARM_SCRIPT, build_core


class TestCodec:
    def roundtrip(self, value):
        encoded = encode_value(value)
        json.dumps(encoded)  # must be JSON-serializable as-is
        return decode_value(encoded)

    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert self.roundtrip(value) == value

    def test_numpy_scalars_become_numbers(self):
        assert self.roundtrip(np.float64(1.5)) == 1.5
        assert self.roundtrip(np.int64(7)) == 7

    def test_ndarray_roundtrip(self):
        vector = np.array([1.0, 2.5, -3.0])
        decoded = self.roundtrip(vector)
        assert isinstance(decoded, np.ndarray)
        np.testing.assert_array_equal(decoded, vector)
        assert decoded.dtype == vector.dtype

    def test_alarm_roundtrip_keeps_provenance(self):
        alarm = Alarm(
            time=3.0, node="slave01", source="rule", detail="d",
            via=("thr.alarms", "union.alarms"),
        )
        assert self.roundtrip(alarm) == alarm

    def test_decision_list_roundtrip(self):
        decisions = [
            WindowDecision(node="n", window_start=0.0, window_end=60.0,
                           alarmed=True)
        ]
        assert self.roundtrip(decisions) == decisions

    def test_nested_dict_and_tuple_roundtrip(self):
        value = {"nodes": ["a", "b"], "pair": (1, 2.0),
                 "vec": np.array([0.5])}
        decoded = self.roundtrip(value)
        assert decoded["nodes"] == ["a", "b"]
        assert decoded["pair"] == (1, 2.0)
        np.testing.assert_array_equal(decoded["vec"], np.array([0.5]))

    def test_exotic_value_degrades_to_repr(self):
        decoded = self.roundtrip(object())
        assert isinstance(decoded, str) and "object" in decoded


class TestChannelRing:
    def make_ring(self, max_samples=4, window_s=100.0):
        return ChannelRing("a.b", Origin(node="n"), max_samples, window_s)

    def test_bounded_by_sample_count(self):
        ring = self.make_ring(max_samples=3)
        for i in range(5):
            ring.push(Sample(float(i), i), est_bytes=10)
        assert len(ring) == 3
        assert [s.value for s in ring.window()] == [2, 3, 4]
        assert ring.evictions == 2
        assert ring.bytes == 30
        assert ring.total_recorded == 5

    def test_bounded_by_wall_window(self):
        ring = self.make_ring(max_samples=100, window_s=2.0)
        for i in range(6):
            ring.push(Sample(float(i), i), est_bytes=1)
        # horizon = 5 - 2 = 3: samples at t=0,1,2 are gone.
        assert [s.value for s in ring.window()] == [3, 4, 5]
        assert ring.evictions == 3

    def test_window_filters_by_timestamp(self):
        ring = self.make_ring(max_samples=10)
        for i in range(4):
            ring.push(Sample(float(i), i), est_bytes=1)
        assert [s.value for s in ring.window(1.0, 2.0)] == [1, 2]


class TestFlightRecorder:
    def run_recorded(self, archive_dir=None, telemetry=None):
        core = build_core(
            ALARM_PIPELINE_CONFIG, {"script": {"src": ALARM_SCRIPT}},
            telemetry=telemetry,
        )
        recorder = FlightRecorder(archive_dir=archive_dir)
        core.set_flight_recorder(recorder)
        core.run_until(float(len(ALARM_SCRIPT)))
        return core, recorder

    def test_rings_capture_every_channel(self):
        core, recorder = self.run_recorded()
        assert set(recorder.rings) == {
            "src.value", "thr.alarms", "union.alarms"
        }
        assert [s.value for s in recorder.window("src.value")] == ALARM_SCRIPT
        assert recorder.rings["src.value"].origin.node == "slave01"

    def test_tap_preserves_scheduler_delivery(self):
        core, recorder = self.run_recorded()
        # Input-triggered modules still fire: alarms flowed to the sink.
        assert len(core.instance("sink").alarms) == 3

    def test_stats_snapshot(self):
        core, recorder = self.run_recorded()
        stats = recorder.stats()
        assert stats["channels"] == 3
        assert stats["recorded"] == stats["buffered_samples"] > 0
        assert stats["buffered_bytes"] > 0
        assert stats["evictions"] == 0

    def test_archive_files_written(self, tmp_path):
        core, recorder = self.run_recorded(archive_dir=str(tmp_path))
        recorder.note_manifest(config_text=ALARM_PIPELINE_CONFIG)
        recorder.close()
        samples = (tmp_path / "samples.jsonl").read_text().splitlines()
        assert len(samples) == recorder.stats()["archived_records"]
        record = json.loads(samples[0])
        assert set(record) == {"t", "at", "o", "v"}
        outputs = json.loads((tmp_path / "outputs.json").read_text())
        assert outputs["src.value"]["origin"]["node"] == "slave01"
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["format"] == "asdf-flight-archive/1"
        assert manifest["config_text"] == ALARM_PIPELINE_CONFIG
        assert manifest["stats"]["incidents"] == len(recorder.incidents)

    def test_close_is_idempotent(self, tmp_path):
        _, recorder = self.run_recorded(archive_dir=str(tmp_path))
        recorder.close()
        recorder.close()

    def test_gauges_in_expositions(self):
        telemetry = Telemetry()
        core, recorder = self.run_recorded(telemetry=telemetry)
        text = telemetry.metrics.render_prometheus()
        for family in (
            "fpt_flightrec_buffered_samples",
            "fpt_flightrec_buffered_bytes",
            "fpt_flightrec_evictions_total",
            "fpt_flightrec_records_total",
            "fpt_flightrec_incidents_total",
        ):
            assert family in text
        stats = recorder.stats()
        assert (
            f"fpt_flightrec_records_total {float(stats['recorded'])}" in text
            or f"fpt_flightrec_records_total {stats['recorded']}" in text
        )

    def test_incidents_recorded_and_cooled_down(self):
        core, recorder = self.run_recorded()
        # Three alarms for the same (node, source) within the cooldown:
        # exactly one bundle, the rest suppressed.
        assert len(recorder.incidents) == 1
        assert recorder.incidents_suppressed == 2

    def test_attach_taps_runtime_attached_instances(self):
        core, recorder = self.run_recorded()
        core.attach(
            "[print]\nid = late_sink\ninput[a] = thr.alarms\n"
        )
        assert core.dag.contexts["late_sink"].services["flight_recorder"] is recorder

    def test_skipped_gauge_exposed(self):
        telemetry = Telemetry()
        core, recorder = self.run_recorded(telemetry=telemetry)
        assert "fpt_output_skipped_total" in telemetry.metrics.render_prometheus()


class TestUnattachedCost:
    def test_no_recorder_means_no_taps(self):
        core = build_core(
            ALARM_PIPELINE_CONFIG, {"script": {"src": ALARM_SCRIPT}}
        )
        assert core.flight_recorder is None
        core.run_until(float(len(ALARM_SCRIPT)))
        assert len(core.instance("sink").alarms) == 3
