"""Tests for archive replay: record a run, replay it, compare alarms."""

import pytest

from repro.core import ConfigError
from repro.flightrec import (
    FlightRecorder,
    ReplayArchive,
    make_replay_registry,
    run_replay,
)

from .helpers import ALARM_PIPELINE_CONFIG, ALARM_SCRIPT, build_core


def record_run(tmp_path):
    """One recorded run of the alarm pipeline; returns (core, archive dir)."""
    core = build_core(
        ALARM_PIPELINE_CONFIG, {"script": {"src": ALARM_SCRIPT}}
    )
    recorder = FlightRecorder(archive_dir=str(tmp_path))
    core.set_flight_recorder(recorder)
    core.run_until(float(len(ALARM_SCRIPT)))
    recorder.note_manifest(config_text=ALARM_PIPELINE_CONFIG)
    recorder.close()
    return core, str(tmp_path)


class TestReplayArchive:
    def test_load_exposes_instances_and_outputs(self, tmp_path):
        _, directory = record_run(tmp_path)
        archive = ReplayArchive.load(directory)
        assert archive.instances() == {"src", "thr", "union"}
        assert set(archive.outputs_of("src")) == {"value"}
        assert archive.outputs_of("src")["value"]["origin"]["node"] == "slave01"
        assert len(archive.samples_for_output("src.value")) == len(ALARM_SCRIPT)
        assert archive.end_time() == float(len(ALARM_SCRIPT)) - 1.0
        assert archive.manifest["config_text"] == ALARM_PIPELINE_CONFIG

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ReplayArchive.load(str(tmp_path / "nope"))


class TestReplayDeterminism:
    def test_replay_reproduces_identical_alarms(self, tmp_path):
        recorded_core, directory = record_run(tmp_path)
        recorded_alarms = recorded_core.instance("sink").alarms
        assert len(recorded_alarms) == 3

        archive = ReplayArchive.load(directory)
        result = run_replay(archive, ALARM_PIPELINE_CONFIG)
        # Same time, node, source, detail AND provenance chain -- the
        # replayed DAG is indistinguishable from the recorded one.
        assert result.alarms["sink"] == recorded_alarms
        assert result.expected["sink"] == recorded_alarms
        assert result.matches == {"sink": True}
        assert result.all_match
        result.core.close()

    def test_replay_runs_without_the_source_service(self, tmp_path):
        # The scripted source needed a "script" service; its replay
        # stand-in needs only the archive.
        _, directory = record_run(tmp_path)
        archive = ReplayArchive.load(directory)
        result = run_replay(archive, ALARM_PIPELINE_CONFIG)
        source = result.core.instance("src")
        assert type(source).type_name == "replay_source"
        assert source.samples_replayed == len(ALARM_SCRIPT)
        result.core.close()

    def test_replay_through_retuned_config(self, tmp_path):
        _, directory = record_run(tmp_path)
        archive = ReplayArchive.load(directory)
        # Lower the bound: the same trace now alarms earlier/more often.
        retuned = ALARM_PIPELINE_CONFIG.replace("bound = 5.0", "bound = 0.5")
        result = run_replay(archive, retuned)
        assert len(result.alarms["sink"]) > 3
        assert not result.all_match  # and the mismatch is reported
        result.core.close()

    def test_replay_rejects_unrelated_config(self, tmp_path):
        _, directory = record_run(tmp_path)
        archive = ReplayArchive.load(directory)
        config = (
            "[scripted]\nid = elsewhere\n\n"
            "[print]\nid = s\ninput[a] = elsewhere.value\n"
        )
        with pytest.raises(ConfigError, match="no config instance matches"):
            run_replay(archive, config)

    def test_make_replay_registry_is_idempotent(self):
        registry = make_replay_registry()
        assert "replay_source" in registry
        assert make_replay_registry(registry) is registry
