"""Tests for the simulated /proc state."""

from repro.sysstat import SimProcFS


class TestSimProcFS:
    def test_default_has_eth0(self):
        fs = SimProcFS()
        assert "eth0" in fs.nics

    def test_snapshot_is_deep_copy(self):
        fs = SimProcFS()
        snap = fs.snapshot()
        fs.cpu.user += 10.0
        fs.nic("eth0").rx_bytes += 1000.0
        fs.process(1, "init").utime += 1.0
        assert snap.cpu.user == 0.0
        assert snap.nic("eth0").rx_bytes == 0.0
        assert 1 not in snap.processes

    def test_nic_creates_on_demand(self):
        fs = SimProcFS()
        nic = fs.nic("eth1")
        assert fs.nics["eth1"] is nic

    def test_process_creates_and_reuses(self):
        fs = SimProcFS()
        proc = fs.process(42, "java")
        assert fs.process(42) is proc
        assert proc.name == "java"

    def test_cpu_total_sums_all_modes(self):
        fs = SimProcFS()
        fs.cpu.user = 1.0
        fs.cpu.system = 2.0
        fs.cpu.idle = 3.0
        fs.cpu.iowait = 0.5
        assert fs.cpu.total() == 6.5

    def test_mem_used_derives_from_free(self):
        fs = SimProcFS()
        fs.mem.total_kb = 1000.0
        fs.mem.free_kb = 400.0
        assert fs.mem.used_kb == 600.0

    def test_mem_used_never_negative(self):
        fs = SimProcFS()
        fs.mem.total_kb = 100.0
        fs.mem.free_kb = 200.0
        assert fs.mem.used_kb == 0.0
