"""Tests for the syscall tracing substrate."""

import numpy as np
import pytest

from repro.sysstat import SYSCALL_CATEGORIES, SYSCALL_INDEX, SimProcFS, SyscallTracer


@pytest.fixture
def procfs() -> SimProcFS:
    fs = SimProcFS()
    fs.process(100, "java")
    return fs


class TestTracer:
    def test_priming_returns_none(self, procfs):
        assert SyscallTracer(procfs).trace(0.0) is None
        assert SyscallTracer(procfs).trace_total(0.0) is None

    def test_category_catalog(self):
        assert len(SYSCALL_CATEGORIES) == 10
        assert SYSCALL_INDEX["read"] == 0

    def test_io_activity_becomes_read_write_calls(self, procfs):
        tracer = SyscallTracer(procfs, seed=1)
        tracer.trace(0.0)
        proc = procfs.processes[100]
        proc.read_kb += 640.0   # 10 x 64 KiB requests
        proc.write_kb += 320.0
        counts = tracer.trace(1.0)[100]
        assert counts[SYSCALL_INDEX["read"]] >= 9.0
        assert counts[SYSCALL_INDEX["write"]] >= 4.0

    def test_cpu_spin_has_low_io_syscall_share(self, procfs):
        """An infinite loop (HADOOP-1036 shape) barely syscalls at all --
        the distribution shifts away from read/write."""
        tracer = SyscallTracer(procfs, seed=1)
        tracer.trace(0.0)
        proc = procfs.processes[100]
        proc.utime += 1.0  # pure CPU, no I/O, no switches
        counts = tracer.trace(1.0)[100]
        io = counts[SYSCALL_INDEX["read"]] + counts[SYSCALL_INDEX["write"]]
        assert io < counts.sum() * 0.3

    def test_context_switches_become_futex_waits(self, procfs):
        tracer = SyscallTracer(procfs, seed=1)
        tracer.trace(0.0)
        procfs.processes[100].cswch += 100.0
        counts = tracer.trace(1.0)[100]
        assert counts[SYSCALL_INDEX["futex"]] >= 70.0

    def test_new_process_skipped_until_second_sample(self, procfs):
        tracer = SyscallTracer(procfs, seed=1)
        tracer.trace(0.0)
        procfs.process(200, "late")
        assert 200 not in tracer.trace(1.0)
        assert 200 in tracer.trace(2.0)

    def test_total_sums_processes(self, procfs):
        procfs.process(200, "other")
        tracer = SyscallTracer(procfs, seed=1)
        tracer.trace(0.0)
        procfs.processes[100].read_kb += 64.0
        procfs.processes[200].read_kb += 64.0
        total = tracer.trace_total(1.0)
        assert total[SYSCALL_INDEX["read"]] >= 2.0

    def test_deterministic_given_seed(self):
        def run():
            fs = SimProcFS()
            fs.process(1, "p")
            tracer = SyscallTracer(fs, seed=9)
            tracer.trace(0.0)
            fs.processes[1].utime += 0.5
            fs.processes[1].read_kb += 128.0
            return tracer.trace(1.0)[1]

        assert np.array_equal(run(), run())

    def test_zero_elapsed_returns_none(self, procfs):
        tracer = SyscallTracer(procfs)
        tracer.trace(1.0)
        assert tracer.trace(1.0) is None
