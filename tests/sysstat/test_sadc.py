"""Tests for the libsadc-style sampler."""

import pytest

from repro.sysstat import NODE_METRICS, Sadc, SimProcFS


@pytest.fixture
def procfs() -> SimProcFS:
    return SimProcFS(num_cpus=4)


class TestPriming:
    def test_first_collect_returns_none(self, procfs):
        assert Sadc(procfs).collect(0.0) is None

    def test_second_collect_returns_sample(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        sample = sadc.collect(1.0)
        assert sample is not None
        assert sample.timestamp == 1.0

    def test_zero_elapsed_returns_none(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(1.0)
        assert sadc.collect(1.0) is None


class TestNodeMetrics:
    def test_all_catalog_metrics_present(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        sample = sadc.collect(1.0)
        assert set(sample.node) == set(NODE_METRICS)

    def test_cpu_percentages_sum_to_100(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.user += 1.0
        procfs.cpu.system += 0.5
        procfs.cpu.iowait += 0.5
        procfs.cpu.idle += 2.0
        sample = sadc.collect(1.0)
        total = sum(
            sample.node[name]
            for name in NODE_METRICS
            if name.startswith("cpu_") and name.endswith("_pct")
        )
        assert total == pytest.approx(100.0)

    def test_cpu_user_fraction(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.user += 3.0
        procfs.cpu.idle += 1.0
        sample = sadc.collect(1.0)
        assert sample.node["cpu_user_pct"] == pytest.approx(75.0)

    def test_counter_rates_divide_by_elapsed(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 8.0
        procfs.stat.ctxt += 1000.0
        sample = sadc.collect(2.0)
        assert sample.node["cswch_per_s"] == pytest.approx(500.0)

    def test_gauges_passed_through(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        procfs.loadavg.one = 2.5
        procfs.loadavg.runq_sz = 3.0
        sample = sadc.collect(1.0)
        assert sample.node["ldavg_1"] == 2.5
        assert sample.node["runq_sz"] == 3.0

    def test_disk_rates(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        procfs.disk.sectors_written += 2048.0  # 1 MB in sectors
        sample = sadc.collect(1.0)
        assert sample.node["bwrtn_per_s"] == pytest.approx(2048.0)

    def test_counter_decrease_clamps_to_zero(self, procfs):
        sadc = Sadc(procfs)
        procfs.stat.ctxt = 100.0
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        procfs.stat.ctxt = 50.0  # counter reset
        sample = sadc.collect(1.0)
        assert sample.node["cswch_per_s"] == 0.0

    def test_node_vector_is_catalog_ordered(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        sample = sadc.collect(1.0)
        vector = sample.node_vector()
        assert vector.shape == (64,)
        assert vector[NODE_METRICS.index("cpu_idle_pct")] == pytest.approx(
            sample.node["cpu_idle_pct"]
        )


class TestNicMetrics:
    def test_nic_rates(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        nic = procfs.nic("eth0")
        nic.rx_bytes += 1024.0 * 100
        nic.tx_packets += 50.0
        sample = sadc.collect(1.0)
        assert sample.nics["eth0"]["rxkb_per_s"] == pytest.approx(100.0)
        assert sample.nics["eth0"]["txpck_per_s"] == pytest.approx(50.0)

    def test_new_nic_skipped_until_second_sample(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.nic("eth1")  # appears after priming
        procfs.cpu.idle += 4.0
        sample = sadc.collect(1.0)
        assert "eth1" not in sample.nics
        procfs.cpu.idle += 4.0
        assert "eth1" in sadc.collect(2.0).nics

    def test_ifutil_bounded(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        procfs.nic("eth0").rx_bytes += 1e12
        sample = sadc.collect(1.0)
        assert sample.nics["eth0"]["ifutil_pct"] <= 100.0


class TestProcessMetrics:
    def test_process_cpu_percent(self, procfs):
        proc = procfs.process(7, "java")
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        proc.utime += 0.5
        proc.stime += 0.25
        sample = sadc.collect(1.0)
        metrics = sample.processes[7]
        assert metrics["pcpu_user_pct"] == pytest.approx(50.0)
        assert metrics["pcpu_system_pct"] == pytest.approx(25.0)
        assert metrics["pcpu_total_pct"] == pytest.approx(75.0)

    def test_new_process_skipped_until_second_sample(self, procfs):
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.process(9, "late")
        procfs.cpu.idle += 4.0
        assert 9 not in sadc.collect(1.0).processes

    def test_process_io_rates(self, procfs):
        proc = procfs.process(7, "java")
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        proc.read_kb += 300.0
        sample = sadc.collect(1.0)
        assert sample.processes[7]["kb_rd_per_s"] == pytest.approx(300.0)

    def test_mem_pct_relative_to_total(self, procfs):
        procfs.mem.total_kb = 1000.0
        proc = procfs.process(7, "java")
        proc.rss_kb = 250.0
        sadc = Sadc(procfs)
        sadc.collect(0.0)
        procfs.cpu.idle += 4.0
        sample = sadc.collect(1.0)
        assert sample.processes[7]["mem_pct"] == pytest.approx(25.0)
