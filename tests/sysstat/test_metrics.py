"""Tests for the metric catalogs (the paper's 64/18/19 split)."""

from repro.sysstat import (
    NIC_METRIC_COUNT,
    NIC_METRICS,
    NODE_METRIC_COUNT,
    NODE_METRIC_INDEX,
    NODE_METRICS,
    PROCESS_METRIC_COUNT,
    PROCESS_METRICS,
)


def test_node_metric_count_matches_paper():
    assert NODE_METRIC_COUNT == 64
    assert len(NODE_METRICS) == 64


def test_nic_metric_count_matches_paper():
    assert NIC_METRIC_COUNT == 18
    assert len(NIC_METRICS) == 18


def test_process_metric_count_matches_paper():
    assert PROCESS_METRIC_COUNT == 19
    assert len(PROCESS_METRICS) == 19


def test_no_duplicate_names_within_catalogs():
    assert len(set(NODE_METRICS)) == len(NODE_METRICS)
    assert len(set(NIC_METRICS)) == len(NIC_METRICS)
    assert len(set(PROCESS_METRICS)) == len(PROCESS_METRICS)


def test_index_maps_every_node_metric():
    assert set(NODE_METRIC_INDEX) == set(NODE_METRICS)
    for name, index in NODE_METRIC_INDEX.items():
        assert NODE_METRICS[index] == name


def test_cpu_family_present():
    for name in ("cpu_user_pct", "cpu_system_pct", "cpu_iowait_pct", "cpu_idle_pct"):
        assert name in NODE_METRICS


def test_network_family_present():
    for name in ("net_rxkb_per_s", "net_txkb_per_s"):
        assert name in NODE_METRICS
    for name in ("rxkb_per_s", "txkb_per_s", "ifutil_pct"):
        assert name in NIC_METRICS
