"""Tests for the append-only alarm audit trail."""

import json

from repro.telemetry import AlarmAuditTrail


def make_trail() -> AlarmAuditTrail:
    trail = AlarmAuditTrail()
    trail.record(time=300.0, node="slave05", source="blackbox",
                 detail="L1 deviation 66.2 > 65.0", sink="BlackBoxAlarm",
                 inputs=("analysis_bb.alarms",))
    trail.record(time=360.0, node="slave05", source="whitebox",
                 detail="|z| 2.4 > 2.0", sink="WhiteBoxAlarm",
                 inputs=("analysis_wb.alarms",))
    trail.record(time=420.0, node="slave02", source="blackbox",
                 detail="", sink="BlackBoxAlarm")
    return trail


class TestTrail:
    def test_records_append_in_order(self):
        trail = make_trail()
        assert len(trail) == 3
        assert [r.node for r in trail.records] == ["slave05", "slave05", "slave02"]

    def test_records_view_is_immutable(self):
        trail = make_trail()
        view = trail.records
        assert isinstance(view, tuple)

    def test_for_node_and_culprits(self):
        trail = make_trail()
        assert len(trail.for_node("slave05")) == 2
        assert trail.culprits() == ["slave05", "slave02"]

    def test_describe_names_culprit_threshold_and_sink(self):
        record = make_trail().records[0]
        text = record.describe()
        assert "culprit=slave05" in text
        assert "66.2 > 65.0" in text
        assert "BlackBoxAlarm" in text
        assert "analysis_bb.alarms" in text

    def test_jsonl_round_trips(self, tmp_path):
        trail = make_trail()
        path = tmp_path / "audit.jsonl"
        trail.write_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 3
        assert rows[0]["node"] == "slave05"
        assert rows[0]["inputs"] == ["analysis_bb.alarms"]
        assert rows[1]["detail"] == "|z| 2.4 > 2.0"

    def test_render_text_limit(self):
        trail = make_trail()
        text = trail.render_text(limit=1)
        assert "and 2 more" in text


class TestFiltering:
    def test_filtered_tail(self):
        trail = make_trail()
        records = trail.filtered(tail=2)
        assert [r.time for r in records] == [360.0, 420.0]
        assert trail.filtered(tail=0) == []

    def test_filtered_since(self):
        trail = make_trail()
        records = trail.filtered(since=360.0)  # boundary is inclusive
        assert [r.time for r in records] == [360.0, 420.0]
        assert trail.filtered(since=1000.0) == []

    def test_filtered_since_then_tail(self):
        trail = make_trail()
        records = trail.filtered(tail=1, since=301.0)
        assert [r.time for r in records] == [420.0]

    def test_no_filters_returns_everything(self):
        trail = make_trail()
        assert len(trail.filtered()) == 3

    def test_render_text_reports_filtered_out(self):
        trail = make_trail()
        text = trail.render_text(tail=1)
        assert "culprit=slave02" in text
        assert "2 records filtered out" in text
        assert "culprit=slave05" not in text

    def test_render_jsonl_filters(self):
        trail = make_trail()
        lines = trail.render_jsonl(since=400.0).splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["time"] == 420.0

    def test_write_jsonl_filters(self, tmp_path):
        trail = make_trail()
        path = tmp_path / "tail.jsonl"
        trail.write_jsonl(str(path), tail=2)
        assert len(path.read_text().splitlines()) == 2
