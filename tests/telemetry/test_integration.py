"""End-to-end: a telemetry-enabled core instruments itself while running."""

import json

from repro.analysis.metrics import Alarm
from repro.core import FptCore, Module, ModuleRegistry, RunReason, SimClock
from repro.modules.alarms import PrintModule
from repro.telemetry import NULL_TELEMETRY, Telemetry

CONFIG = "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"


class SourceModule(Module):
    """Emits an incrementing counter once per second."""

    type_name = "source"

    def init(self) -> None:
        self.out = self.ctx.create_output("value")
        self.counter = 0
        self.ctx.schedule_every(1.0)

    def run(self, reason: RunReason) -> None:
        self.out.write(self.counter, self.ctx.clock.now())
        self.counter += 1


class SinkModule(Module):
    """Records everything arriving on any input."""

    type_name = "sink"

    def init(self) -> None:
        self.seen = []
        self.ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        for group in self.ctx.inputs.values():
            for connection in group:
                self.seen.extend(connection.pop_all())


def build_registry() -> ModuleRegistry:
    registry = ModuleRegistry()
    registry.register(SourceModule)
    registry.register(SinkModule)
    return registry


class AlarmSourceModule(Module):
    """Emits one Alarm per tick, for audit-trail tests."""

    type_name = "alarm_source"

    def init(self) -> None:
        self.out = self.ctx.create_output("alarms")
        self.ctx.schedule_every(1.0)

    def run(self, reason: RunReason) -> None:
        now = self.ctx.clock.now()
        self.out.write(
            Alarm(time=now, node="slave05", source="blackbox",
                  detail="L1 deviation 66.2 > 65.0"),
            now,
        )


def alarm_registry() -> ModuleRegistry:
    registry = ModuleRegistry()
    registry.register(AlarmSourceModule)
    registry.register(PrintModule)
    return registry


class TestCoreInstrumentation:
    def test_default_core_has_null_telemetry(self):
        core = FptCore.from_config(CONFIG, build_registry(), SimClock())
        assert core.telemetry is NULL_TELEMETRY
        assert not core.telemetry.enabled
        core.run_until(3.0)
        assert core.telemetry.metrics.families() == []
        assert core.telemetry.tracer.events == []

    def test_run_counters_and_latency_histograms(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            CONFIG, build_registry(), SimClock(), telemetry=telemetry
        )
        core.run_until(4.0)
        assert telemetry.metrics.value(
            "fpt_instance_runs_total", {"instance": "s", "reason": "periodic"}
        ) == 5
        assert telemetry.metrics.value(
            "fpt_instance_runs_total", {"instance": "k", "reason": "inputs"}
        ) == 5
        stats = telemetry.run_stats()
        assert stats["s"].runs == 5
        assert stats["k"].mean_latency_s >= 0.0
        assert telemetry.total_run_seconds() > 0.0

    def test_output_write_metrics(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            CONFIG, build_registry(), SimClock(), telemetry=telemetry
        )
        core.run_until(4.0)
        assert telemetry.metrics.value(
            "fpt_output_writes_total", {"output": "s.value"}
        ) == 5

    def test_trace_events_one_per_run(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            CONFIG, build_registry(), SimClock(), telemetry=telemetry
        )
        core.run_until(2.0)
        # 3 source runs + 3 sink runs.
        assert len(telemetry.tracer.events) == 6
        tracks = {event.track for event in telemetry.tracer.events}
        assert tracks == {"s", "k"}
        document = json.loads(telemetry.tracer.render_chrome_trace())
        assert len(document["traceEvents"]) == 6
        assert all("sim_time_s" in e["args"] for e in document["traceEvents"])

    def test_modules_see_the_core_telemetry(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            CONFIG, build_registry(), SimClock(), telemetry=telemetry
        )
        assert core.instance("s").ctx.telemetry is telemetry
        assert core.instance("k").ctx.telemetry is telemetry

    def test_run_errors_counted_when_suppressed(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            "[source]\nid = s\n", build_registry(), SimClock(),
            telemetry=telemetry,
        )

        def broken_run(reason):
            raise ValueError("boom")

        core.instance("s").run = broken_run
        core.scheduler.on_error = lambda inst, exc: True
        core.run_until(2.0)
        assert telemetry.metrics.value(
            "fpt_instance_run_errors_total", {"instance": "s"}
        ) == 3

    def test_annotated_dot_with_telemetry(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            CONFIG, build_registry(), SimClock(), telemetry=telemetry
        )
        core.run_until(3.0)
        dot = core.to_dot(annotate=True)
        assert "4 runs" in dot
        assert "ms mean" in dot

    def test_annotated_dot_without_telemetry_uses_scheduler_counts(self):
        core = FptCore.from_config(CONFIG, build_registry(), SimClock())
        core.run_until(3.0)
        dot = core.to_dot(annotate=True)
        assert "4 runs" in dot


class TestAlarmAuditTrail:
    def test_print_sink_records_audit_trail(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            "[alarm_source]\nid = bb\n\n"
            "[print]\nid = BlackBoxAlarm\ninput[a] = bb.alarms\n",
            alarm_registry(),
            SimClock(),
            telemetry=telemetry,
        )
        core.run_until(2.0)
        assert len(telemetry.audit) == 3
        record = telemetry.audit.records[0]
        assert record.node == "slave05"
        assert record.source == "blackbox"
        assert record.detail == "L1 deviation 66.2 > 65.0"
        assert record.sink == "BlackBoxAlarm"
        assert record.inputs == ("bb.alarms",)
        assert telemetry.audit.culprits() == ["slave05"]

    def test_no_audit_records_with_telemetry_disabled(self):
        core = FptCore.from_config(
            "[alarm_source]\nid = bb\n\n"
            "[print]\nid = BlackBoxAlarm\ninput[a] = bb.alarms\n",
            alarm_registry(),
            SimClock(),
        )
        core.run_until(2.0)
        assert len(core.telemetry.audit) == 0
        # The sink itself still received everything.
        assert len(core.instance("BlackBoxAlarm").alarms) == 3


class TestSummary:
    def test_summary_text_mentions_instances_and_culprits(self):
        telemetry = Telemetry()
        core = FptCore.from_config(
            "[alarm_source]\nid = bb\n\n"
            "[print]\nid = BlackBoxAlarm\ninput[a] = bb.alarms\n",
            alarm_registry(),
            SimClock(),
            telemetry=telemetry,
        )
        core.run_until(5.0)
        text = telemetry.summary_text()
        assert "bb" in text
        assert "slave05" in text
        assert "total run() time" in text
