"""Tests for the dependency-free metrics registry and its expositions."""

import json

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_set_max_is_a_high_watermark(self):
        g = Gauge()
        g.set_max(3)
        g.set_max(1)
        assert g.value == 3.0


class TestHistogram:
    def test_observations_land_in_first_fitting_bucket(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)  # overflow -> +Inf
        assert h.bucket_counts == [1, 1]
        assert h.overflow == 1
        assert h.count == 3
        assert h.sum == pytest.approx(105.5)
        assert h.mean == pytest.approx(105.5 / 3)

    def test_cumulative_buckets_end_with_inf(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 99.0):
            h.observe(v)
        assert h.cumulative_buckets() == [
            (1.0, 2), (10.0, 3), (float("inf"), 4),
        ]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(10.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=())


class TestRegistry:
    def test_same_name_and_labels_share_a_child(self):
        reg = MetricsRegistry()
        a = reg.counter("runs_total", labels={"instance": "x"})
        b = reg.counter("runs_total", labels={"instance": "x"})
        other = reg.counter("runs_total", labels={"instance": "y"})
        a.inc()
        assert b.value == 1.0
        assert other.value == 0.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing")

    def test_value_and_total(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"k": "a"}).inc(2)
        reg.counter("c", labels={"k": "b"}).inc(3)
        assert reg.value("c", {"k": "a"}) == 2.0
        assert reg.value("c", {"k": "missing"}) == 0.0
        assert reg.value("missing_family") == 0.0
        assert reg.total("c") == 5.0

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "Total runs.", {"instance": "s"}).inc(4)
        reg.gauge("depth", "Queue depth.").set(2)
        hist = reg.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = reg.render_prometheus()
        assert "# HELP runs_total Total runs." in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{instance="s"} 4' in text
        assert "depth 2" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text
        assert "latency_seconds_sum" in text

    def test_prometheus_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"path": 'a"b\\c\nd'}).inc()
        text = reg.render_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_json_snapshot_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", {"k": "v"}).inc(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        parsed = json.loads(reg.render_json())
        assert parsed["c"]["type"] == "counter"
        assert parsed["c"]["series"][0] == {"labels": {"k": "v"}, "value": 7.0}
        hseries = parsed["h"]["series"][0]
        assert hseries["count"] == 1
        assert hseries["buckets"][-1]["le"] == "+Inf"
