"""Tests for the span/event tracer and its export formats."""

import json

from repro.telemetry import NULL_TRACER, Tracer


class TestRecording:
    def test_span_records_a_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", category="test", track="inst", detail=1):
            pass
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event.name == "work"
        assert event.phase == "X"
        assert event.track == "inst"
        assert event.duration_s >= 0.0
        assert event.args == {"detail": 1}

    def test_complete_uses_caller_measured_times(self):
        tracer = Tracer()
        tracer.complete("run", "periodic", tracer._epoch + 1.0, 0.25,
                        track="sadc01", sim_time_s=42.0)
        event = tracer.events[0]
        assert event.start_s == 1.0
        assert event.duration_s == 0.25
        assert event.args["sim_time_s"] == 42.0

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("alarm", track="sink")
        assert tracer.events[0].phase == "i"
        assert tracer.events[0].duration_s == 0.0

    def test_max_events_bounds_memory(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.instant("e")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            pass
        tracer.instant("x")
        tracer.complete("y", "", 0.0, 1.0)
        assert tracer.events == []

    def test_null_tracer_span_is_shared_noop(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b")
        assert a is b  # no per-call allocation on the disabled path


class TestExport:
    def test_chrome_trace_is_loadable_json(self):
        tracer = Tracer()
        with tracer.span("run", category="periodic", track="sadc01"):
            pass
        tracer.instant("alarm", track="sink")
        document = json.loads(tracer.render_chrome_trace())
        assert isinstance(document["traceEvents"], list)
        complete = document["traceEvents"][0]
        assert complete["ph"] == "X"
        assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(complete)
        instant = document["traceEvents"][1]
        assert instant["ph"] == "i"
        assert "dur" not in instant

    def test_jsonl_one_object_per_line(self):
        tracer = Tracer()
        tracer.instant("a")
        tracer.instant("b")
        lines = tracer.render_jsonl().strip().split("\n")
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_write_chrome_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]
