"""Cross-process trace stitching: merged timelines, per-trace pid sets."""

from repro.telemetry import pids_by_trace_id, stitch_chrome_traces
from repro.telemetry.tracing import Tracer


def make_tracer(pid, process_name, wall_epoch):
    tracer = Tracer(enabled=True)
    tracer.pid = pid
    tracer.process_name = process_name
    tracer.wall_epoch = wall_epoch
    return tracer


class TestStitch:
    def test_offsets_by_wall_epoch(self):
        early = make_tracer(1, "central", wall_epoch=100.0)
        late = make_tracer(2, "node-01", wall_epoch=103.0)
        with early.span("round", category="rpc"):
            pass
        with late.span("serve", category="rpc"):
            pass
        doc = stitch_chrome_traces(
            [early.to_chrome_trace(), late.to_chrome_trace()]
        )
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_pid = {event["pid"]: event for event in spans}
        # The later process's events are pushed right by the epoch delta.
        assert by_pid[2]["ts"] >= by_pid[1]["ts"] + 3.0e6 - 1e3

    def test_process_name_metadata_emitted(self):
        tracer = make_tracer(7, "node-03", wall_epoch=50.0)
        with tracer.span("x"):
            pass
        doc = stitch_chrome_traces([tracer.to_chrome_trace()])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name"
            and e["args"]["name"] == "node-03"
            and e["pid"] == 7
            for e in meta
        )

    def test_events_sorted_by_timestamp(self):
        a = make_tracer(1, "a", wall_epoch=10.0)
        b = make_tracer(2, "b", wall_epoch=10.5)
        for tracer in (a, b, a, b):
            with tracer.span("s"):
                pass
        doc = stitch_chrome_traces([a.to_chrome_trace(), b.to_chrome_trace()])
        stamps = [
            e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"
        ]
        assert stamps == sorted(stamps)

    def test_empty_input(self):
        doc = stitch_chrome_traces([])
        assert doc["traceEvents"] == []


class TestPidsByTraceId:
    def test_groups_pids_under_shared_trace_id(self):
        central = make_tracer(11, "central", wall_epoch=0.0)
        node = make_tracer(22, "node-01", wall_epoch=0.0)
        with central.span("rpc.call:sample", category="rpc",
                          trace_id="t1", span_id="a"):
            pass
        with node.span("rpc.serve:sample", category="rpc",
                       trace_id="t1", span_id="b", parent_id="a"):
            pass
        with node.span("unrelated", category="rpc", trace_id="t2"):
            pass
        doc = stitch_chrome_traces(
            [central.to_chrome_trace(), node.to_chrome_trace()]
        )
        by_trace = pids_by_trace_id(doc)
        assert by_trace["t1"] == {11, 22}
        assert by_trace["t2"] == {22}

    def test_untraced_events_ignored(self):
        tracer = make_tracer(1, "x", wall_epoch=0.0)
        with tracer.span("plain"):
            pass
        assert pids_by_trace_id(stitch_chrome_traces(
            [tracer.to_chrome_trace()]
        )) == {}
