"""Tests for the rule-based threshold_alarm module."""

import numpy as np
import pytest

from repro.core import ConfigError

from .helpers import build_core


def make_core(values, bound=50.0, direction="above", consecutive=1, reduce_="max"):
    config = (
        "[scripted]\nid = src\nnode = slave09\n\n"
        "[threshold_alarm]\nid = rule\ninput[m] = src.value\n"
        f"bound = {bound}\ndirection = {direction}\n"
        f"consecutive = {consecutive}\nreduce = {reduce_}\n\n"
        "[print]\nid = sink\ninput[a] = rule.alarms\n"
    )
    return build_core(config, {"script": {"src": values}})


def alarms(core):
    return core.instance("sink").alarms


class TestRules:
    def test_above_rule_fires_on_crossing(self):
        core = make_core([10.0, 60.0, 20.0])
        core.run_until(2.0)
        fired = alarms(core)
        assert len(fired) == 1
        assert fired[0].time == 1.0
        assert fired[0].node == "slave09"
        assert fired[0].source == "rule"

    def test_below_rule(self):
        core = make_core([80.0, 30.0], direction="below")
        core.run_until(1.0)
        assert len(alarms(core)) == 1

    def test_boundary_value_does_not_fire(self):
        core = make_core([50.0])
        core.run_until(0.0)
        assert alarms(core) == []

    def test_consecutive_requirement(self):
        core = make_core([60.0, 10.0, 60.0, 60.0, 60.0], consecutive=3)
        core.run_until(4.0)
        fired = alarms(core)
        assert [a.time for a in fired] == [4.0]

    def test_streak_resets_on_recovery(self):
        core = make_core([60.0, 60.0, 10.0, 60.0, 60.0], consecutive=3)
        core.run_until(4.0)
        assert alarms(core) == []

    def test_vector_samples_reduced(self):
        core = make_core([np.array([10.0, 70.0])], reduce_="max")
        core.run_until(0.0)
        assert len(alarms(core)) == 1
        mean_core = make_core([np.array([10.0, 70.0])], reduce_="mean")
        mean_core.run_until(0.0)
        assert alarms(mean_core) == []

    def test_detail_names_metric_and_bound(self):
        core = make_core([99.0])
        core.run_until(0.0)
        detail = alarms(core)[0].detail
        assert "slave09" in detail
        assert "above 50.00" in detail


class TestValidation:
    def test_bad_direction(self):
        with pytest.raises(ConfigError, match="direction"):
            make_core([1.0], direction="sideways")

    def test_bad_reducer(self):
        with pytest.raises(ConfigError, match="unknown reduce"):
            make_core([1.0], reduce_="median")

    def test_bad_consecutive(self):
        with pytest.raises(ConfigError, match="consecutive"):
            make_core([1.0], consecutive=0)
