"""Bit-exact parity of the vectorized hot paths with per-sample math.

The knn backlog batching, the ``nearest_k_batch`` distance kernel and
the ndarray-ring :class:`TimedWindow` all replaced per-sample Python
loops; simulated evaluation runs must stay *byte-identical*, so these
tests compare the optimized paths against straightforward per-sample
reference implementations on randomized inputs -- equality is exact
(``==``), never approximate.
"""

import numpy as np

from repro.analysis.kmeans import nearest_k, nearest_k_batch
from repro.modules._window_sync import TimedWindow

from .helpers import build_core, collected, vector_series


class TestNearestKBatch:
    def test_matches_per_sample_on_random_batches(self):
        rng = np.random.default_rng(1234)
        for _ in range(20):
            n = int(rng.integers(1, 40))
            d = int(rng.integers(1, 16))
            c = int(rng.integers(1, 12))
            samples = rng.normal(size=(n, d))
            centroids = rng.normal(size=(c, d))
            for k in (1, min(2, c), c):
                batch = nearest_k_batch(samples, centroids, k)
                reference = np.stack(
                    [nearest_k(s, centroids, k) for s in samples]
                )
                assert np.array_equal(batch, reference)

    def test_tie_breaking_matches_stable_per_sample_order(self):
        # Duplicate centroids force distance ties; both paths must break
        # them identically (stable sort -> lower index wins).
        centroids = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        samples = np.array([[1.0, 0.0], [0.5, 0.0], [0.0, 0.0]])
        batch = nearest_k_batch(samples, centroids, 4)
        reference = np.stack([nearest_k(s, centroids, 4) for s in samples])
        assert np.array_equal(batch, reference)

    def test_single_sample_1d_input(self):
        centroids = np.array([[0.0], [2.0], [4.0]])
        assert np.array_equal(
            nearest_k_batch(np.array([3.1]), centroids, 2),
            nearest_k(np.array([3.1]), centroids, 2)[None, :],
        )


class TestKnnBatchedBacklog:
    """The knn module's batched run() vs the per-sample formula."""

    class Model:
        def __init__(self, centroids, sigma):
            self.centroids = np.asarray(centroids, dtype=float)
            self.sigma = np.asarray(sigma, dtype=float)

    def _run(self, values, model, k=1, trigger=None):
        trigger_line = f"trigger = {trigger}\n" if trigger else ""
        config = (
            "[scripted]\nid = src\nnode = slave01\n\n"
            f"[knn]\nid = nn\ninput[input] = src.value\nmodel = bb_model\n"
            f"k = {k}\n{trigger_line}\n"
            "[print]\nid = sink\ninput[a] = nn.output0\n"
        )
        core = build_core(config, {"script": {"src": values}, "bb_model": model})
        core.run_until(float(len(values)))
        return collected(core, "sink")

    def test_backlog_batch_matches_per_sample_reference(self):
        rng = np.random.default_rng(7)
        d, c = 6, 5
        sigma = rng.uniform(0.5, 2.0, size=d)
        centroids = rng.normal(size=(c, d))
        raw = rng.uniform(-5.0, 500.0, size=(30, d))
        model = self.Model(centroids, sigma)

        # trigger=5 makes each run() consume a 5-sample backlog, taking
        # the batched path; the reference applies the documented formula
        # one sample at a time.
        got = self._run(vector_series(raw), model, k=1, trigger=5)
        expected = []
        for row in raw:
            scaled = np.log1p(np.maximum(row, 0.0)) / sigma
            expected.append(int(nearest_k(scaled, centroids, 1)[0]))
        assert got == expected

    def test_ragged_backlog_falls_back_per_sample(self):
        model = self.Model([[0.0], [5.0]], [1.0])
        values = [
            np.array([1.0]),
            np.array([1.0, 2.0]),  # wrong width: forces the fallback
            np.array([200.0]),
        ]
        core = build_core(
            "[scripted]\nid = src\nnode = slave01\n\n"
            "[knn]\nid = nn\ninput[input] = src.value\nmodel = bb_model\n"
            "k = 1\ntrigger = 3\n\n"
            "[print]\nid = sink\ninput[a] = nn.output0\n",
            {"script": {"src": values}, "bb_model": model},
        )
        try:
            core.run_until(3.0)
        except Exception:
            pass  # the malformed sample may legitimately raise downstream
        # The well-formed first sample classified before the bad one hit.
        assert collected(core, "sink")[:1] == [0]


class ReferenceTimedWindow:
    """The original list-based TimedWindow, kept as the parity oracle."""

    def __init__(self, size, slide):
        self.size = size
        self.slide = slide
        self._times = []
        self._values = []

    def push(self, timestamp, value):
        self._times.append(float(timestamp))
        self._values.append(np.atleast_1d(np.asarray(value, dtype=float)))
        completed = []
        while len(self._values) >= self.size:
            matrix = np.array(self._values[: self.size])
            completed.append(
                (self._times[0], self._times[self.size - 1], matrix)
            )
            del self._times[: self.slide]
            del self._values[: self.slide]
        return completed


class TestTimedWindowRing:
    def test_matches_reference_on_randomized_streams(self):
        rng = np.random.default_rng(99)
        for _ in range(15):
            size = int(rng.integers(1, 12))
            slide = int(rng.integers(1, size + 1))
            width = int(rng.integers(1, 8))
            ring = TimedWindow(size, slide)
            reference = ReferenceTimedWindow(size, slide)
            for t in range(int(rng.integers(size, 6 * size))):
                row = rng.normal(size=width)
                got = ring.push(float(t), row)
                expected = reference.push(float(t), row)
                assert len(got) == len(expected)
                for (gs, ge, gm), (es, ee, em) in zip(got, expected):
                    assert gs == es and ge == ee
                    assert np.array_equal(gm, em)

    def test_emitted_matrix_is_a_copy(self):
        window = TimedWindow(2, 2)
        window.push(0.0, [1.0, 2.0])
        ((_, _, matrix),) = window.push(1.0, [3.0, 4.0])
        snapshot = matrix.copy()
        for t in range(2, 8):
            window.push(float(t), [float(t), float(t)])
        assert np.array_equal(matrix, snapshot)

    def test_len_tracks_buffered_samples(self):
        window = TimedWindow(3, 2)
        assert len(window) == 0
        window.push(0.0, [1.0])
        window.push(1.0, [1.0])
        assert len(window) == 2
        window.push(2.0, [1.0])  # completes a window, slides by 2
        assert len(window) == 1


class TestMavgvecFastPath:
    def test_single_connection_matches_reference_statistics(self):
        rng = np.random.default_rng(3)
        raw = rng.normal(size=(12, 4))
        config = (
            "[scripted]\nid = src\nnode = slave01\n\n"
            "[mavgvec]\nid = mv\ninput[input] = src.value\n"
            "window = 4\nslide = 2\n\n"
            "[print]\nid = mean_sink\ninput[a] = mv.mean\n"
        )
        core = build_core(config, {"script": {"src": vector_series(raw)}})
        core.run_until(float(len(raw)))
        means = collected(core, "mean_sink")

        reference = ReferenceTimedWindow(4, 2)
        expected = []
        for t, row in enumerate(raw):
            for _, _, matrix in reference.push(float(t), row):
                expected.append(matrix.mean(axis=0))
        assert len(means) == len(expected)
        for got, want in zip(means, expected):
            assert np.array_equal(np.asarray(got), want)
