"""Tests for the ibuffer rate-matching module."""

import pytest

from repro.core import ConfigError

from .helpers import build_core, collected


def make_core(values, size=3, slide=None):
    slide_line = f"slide = {slide}\n" if slide is not None else ""
    config = (
        "[scripted]\nid = src\n\n"
        f"[ibuffer]\nid = buf\ninput[input] = src.value\nsize = {size}\n{slide_line}\n"
        "[print]\nid = sink\ninput[a] = buf.output0\n"
    )
    return build_core(config, {"script": {"src": values}})


class TestBatching:
    def test_emits_batches_of_size(self):
        core = make_core(list(range(7)), size=3)
        core.run_until(6.0)
        assert collected(core, "sink") == [[0, 1, 2], [3, 4, 5]]

    def test_tumbling_default_slide(self):
        core = make_core(list(range(6)), size=2)
        core.run_until(5.0)
        assert collected(core, "sink") == [[0, 1], [2, 3], [4, 5]]

    def test_sliding_batches(self):
        core = make_core(list(range(5)), size=3, slide=1)
        core.run_until(4.0)
        assert collected(core, "sink") == [[0, 1, 2], [1, 2, 3], [2, 3, 4]]

    def test_batches_emitted_counter(self):
        core = make_core(list(range(9)), size=3)
        core.run_until(8.0)
        assert core.instance("buf").batches_emitted == 3

    def test_incomplete_tail_not_emitted(self):
        core = make_core(list(range(4)), size=3)
        core.run_until(3.0)
        assert collected(core, "sink") == [[0, 1, 2]]

    def test_origin_propagates_from_upstream(self):
        config = (
            "[scripted]\nid = src\nnode = slave07\n\n"
            "[ibuffer]\nid = buf\ninput[input] = src.value\nsize = 2\n"
        )
        core = build_core(config, {"script": {"src": [1, 2]}})
        assert core.dag.contexts["buf"].outputs["output0"].origin.node == "slave07"


class TestValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError, match="size"):
            make_core([1], size=0)

    def test_slide_larger_than_size_rejected(self):
        with pytest.raises(ConfigError, match="slide"):
            make_core([1], size=2, slide=3)

    def test_requires_single_input(self):
        config = (
            "[scripted]\nid = a\n\n[scripted]\nid = b\n\n"
            "[ibuffer]\nid = buf\ninput[input] = a.value\ninput[input] = b.value\nsize = 2\n"
        )
        from repro.core import ModuleError

        with pytest.raises(ModuleError, match="exactly one"):
            build_core(config, {"script": {"a": [1], "b": [1]}})
