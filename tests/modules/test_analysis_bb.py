"""Tests for the black-box peer-comparison analysis module."""

import pytest

from repro.analysis import Alarm, WindowDecision
from repro.core import ConfigError

from .helpers import build_core


def make_core(scripts, threshold=4.0, window=5, consecutive=1, num_states=3):
    nodes = sorted(scripts)
    lines = []
    for node in nodes:
        lines += [f"[scripted]", f"id = src_{node}", f"node = {node}", ""]
    lines += [
        "[analysis_bb]",
        "id = bb",
        f"threshold = {threshold}",
        f"window = {window}",
        f"slide = {window}",
        f"consecutive = {consecutive}",
        f"num_states = {num_states}",
    ]
    lines += [f"input[l{i}] = src_{node}.value" for i, node in enumerate(nodes)]
    lines += [
        "",
        "[print]",
        "id = alarms",
        "input[a] = bb.alarms",
        "",
        "[print]",
        "id = decisions",
        "input[a] = bb.decisions",
        "",
        "[print]",
        "id = stats",
        "input[a] = bb.stats",
    ]
    script = {f"src_{node}": values for node, values in scripts.items()}
    return build_core("\n".join(lines) + "\n", {"script": script})


def alarms_of(core):
    return [s.value for s in core.instance("alarms").received if isinstance(s.value, Alarm)]


def decisions_of(core):
    return [
        d
        for s in core.instance("decisions").received
        for d in s.value
        if isinstance(d, WindowDecision)
    ]


class TestDetection:
    def test_homogeneous_nodes_raise_no_alarms(self):
        scripts = {node: [0] * 10 for node in ("a", "b", "c")}
        core = make_core(scripts)
        core.run_until(9.0)
        assert alarms_of(core) == []

    def test_deviant_node_fingerpointed(self):
        scripts = {
            "a": [0] * 10,
            "b": [0] * 10,
            "c": [2] * 10,  # entirely different state histogram
        }
        core = make_core(scripts, threshold=4.0)
        core.run_until(9.0)
        culprits = {alarm.node for alarm in alarms_of(core)}
        assert culprits == {"c"}

    def test_threshold_gates_detection(self):
        scripts = {"a": [0] * 10, "b": [0] * 10, "c": [2] * 10}
        core = make_core(scripts, threshold=100.0)
        core.run_until(9.0)
        assert alarms_of(core) == []

    def test_consecutive_windows_required(self):
        # c is anomalous only in the first window of two.
        scripts = {
            "a": [0] * 10,
            "b": [0] * 10,
            "c": [2] * 5 + [0] * 5,
        }
        core = make_core(scripts, consecutive=2)
        core.run_until(9.0)
        assert alarms_of(core) == []

    def test_consecutive_streak_fires(self):
        scripts = {"a": [0] * 15, "b": [0] * 15, "c": [2] * 15}
        core = make_core(scripts, consecutive=2)
        core.run_until(14.0)
        alarms = alarms_of(core)
        assert len(alarms) == 2  # windows 2 and 3 of 3
        assert all(a.node == "c" for a in alarms)

    def test_alarm_source_is_blackbox(self):
        scripts = {"a": [0] * 5, "b": [0] * 5, "c": [2] * 5}
        core = make_core(scripts)
        core.run_until(4.0)
        assert alarms_of(core)[0].source == "blackbox"

    def test_batched_inputs_from_ibuffer(self):
        nodes = ("a", "b", "c")
        lines = []
        for node in nodes:
            lines += [
                "[scripted]", f"id = src_{node}", f"node = {node}", "",
                "[ibuffer]", f"id = buf_{node}",
                f"input[input] = src_{node}.value", "size = 5", "",
            ]
        lines += [
            "[analysis_bb]", "id = bb", "threshold = 4", "window = 5",
            "consecutive = 1", "num_states = 3",
        ]
        lines += [f"input[l{i}] = buf_{n}.output0" for i, n in enumerate(nodes)]
        lines += ["", "[print]", "id = alarms", "input[a] = bb.alarms"]
        script = {"src_a": [0] * 10, "src_b": [0] * 10, "src_c": [2] * 10}
        core = build_core("\n".join(lines) + "\n", {"script": script})
        core.run_until(9.0)
        assert {a.node for a in alarms_of(core)} == {"c"}


class TestOutputs:
    def test_decisions_cover_all_nodes_each_round(self):
        scripts = {node: [0] * 10 for node in ("a", "b", "c")}
        core = make_core(scripts)
        core.run_until(9.0)
        decisions = decisions_of(core)
        assert len(decisions) == 6  # 2 rounds x 3 nodes
        assert {d.node for d in decisions} == {"a", "b", "c"}

    def test_decision_windows_match_sample_times(self):
        scripts = {node: [0] * 5 for node in ("a", "b", "c")}
        core = make_core(scripts, window=5)
        core.run_until(4.0)
        decision = decisions_of(core)[0]
        assert decision.window_start == 0.0
        assert decision.window_end == 5.0

    def test_stats_carry_deviations(self):
        scripts = {"a": [0] * 5, "b": [0] * 5, "c": [2] * 5}
        core = make_core(scripts)
        core.run_until(4.0)
        stats = [s.value for s in core.instance("stats").received]
        assert stats[0]["nodes"] == ["a", "b", "c"]
        assert stats[0]["deviations"][2] == pytest.approx(10.0)  # full L1 shift

    def test_rounds_processed_counter(self):
        scripts = {node: [0] * 10 for node in ("a", "b", "c")}
        core = make_core(scripts)
        core.run_until(9.0)
        assert core.instance("bb").rounds_processed == 2


class TestValidation:
    def test_requires_three_nodes(self):
        with pytest.raises(ConfigError, match="at least 3"):
            make_core({"a": [0], "b": [0]})

    def test_rejects_inputs_without_node_origin(self):
        config = (
            "[scripted]\nid = src\n\n"  # no node param -> empty origin node
            "[analysis_bb]\nid = bb\nthreshold = 1\nnum_states = 2\n"
            "input[l0] = src.value\n"
        )
        with pytest.raises(ConfigError, match="node origin"):
            build_core(config, {"script": {"src": [0]}})

    def test_rejects_duplicate_node(self):
        config = (
            "[scripted]\nid = s1\nnode = a\n\n[scripted]\nid = s2\nnode = a\n\n"
            "[analysis_bb]\nid = bb\nthreshold = 1\nnum_states = 2\n"
            "input[l0] = s1.value\ninput[l1] = s2.value\n"
        )
        with pytest.raises(ConfigError, match="two inputs"):
            build_core(config, {"script": {"s1": [0], "s2": [0]}})

    def test_out_of_range_state_clipped(self):
        scripts = {"a": [0] * 5, "b": [0] * 5, "c": [99] * 5}
        core = make_core(scripts, num_states=3)
        core.run_until(4.0)  # no crash; 99 clipped into the last state
        assert {a.node for a in alarms_of(core)} == {"c"}
