"""Tests for the white-box peer-comparison analysis module."""

import numpy as np
import pytest

from repro.analysis import Alarm, WindowDecision
from repro.core import ConfigError

from .helpers import build_core, vector_series


def make_core(scripts, k=2.0, window=5, consecutive=1):
    nodes = sorted(scripts)
    lines = []
    for node in nodes:
        lines += ["[scripted]", f"id = src_{node}", f"node = {node}", ""]
    lines += [
        "[analysis_wb]",
        "id = wb",
        f"k = {k}",
        f"window = {window}",
        f"slide = {window}",
        f"consecutive = {consecutive}",
    ]
    lines += [f"input[n{i}] = src_{node}.value" for i, node in enumerate(nodes)]
    lines += [
        "",
        "[print]", "id = alarms", "input[a] = wb.alarms", "",
        "[print]", "id = decisions", "input[a] = wb.decisions", "",
        "[print]", "id = stats", "input[a] = wb.stats",
    ]
    script = {f"src_{node}": values for node, values in scripts.items()}
    return build_core("\n".join(lines) + "\n", {"script": script})


def alarms_of(core):
    return [s.value for s in core.instance("alarms").received if isinstance(s.value, Alarm)]


def steady(vector, n=10):
    return vector_series([vector] * n)


class TestDetection:
    def test_identical_nodes_raise_no_alarms(self):
        scripts = {node: steady([1.0, 0.0]) for node in ("a", "b", "c")}
        core = make_core(scripts)
        core.run_until(9.0)
        assert alarms_of(core) == []

    def test_node_with_large_mean_shift_fingerpointed(self):
        scripts = {
            "a": steady([1.0, 0.0]),
            "b": steady([1.0, 0.0]),
            "c": steady([4.0, 0.0]),  # deviation 3 > max(1, k*0) = 1
        }
        core = make_core(scripts)
        core.run_until(9.0)
        assert {a.node for a in alarms_of(core)} == {"c"}

    def test_floor_of_one_suppresses_small_count_wiggles(self):
        """A metric that differs by less than one task never alarms,
        no matter how small k is (paper section 4.4)."""
        scripts = {
            "a": steady([1.0]),
            "b": steady([1.0]),
            "c": steady([1.9]),
        }
        core = make_core(scripts, k=0.0)
        core.run_until(9.0)
        assert alarms_of(core) == []

    def test_k_scales_tolerance_for_noisy_metrics(self):
        rng = np.random.default_rng(0)
        noisy = lambda base: vector_series(
            [[base + rng.normal(0, 2.0)] for _ in range(10)]
        )
        scripts = {"a": noisy(5.0), "b": noisy(5.0), "c": noisy(11.0)}
        strict = make_core({k: list(v) for k, v in scripts.items()}, k=0.0)
        strict.run_until(9.0)
        # With k=0 the threshold floor is 1; the shifted node trips it
        # (noisy healthy nodes may occasionally trip it too).
        assert "c" in {a.node for a in alarms_of(strict)}

    def test_consecutive_requirement(self):
        scripts = {
            "a": steady([1.0]),
            "b": steady([1.0]),
            "c": vector_series([[5.0]] * 5 + [[1.0]] * 5),
        }
        core = make_core(scripts, consecutive=2)
        core.run_until(9.0)
        assert alarms_of(core) == []

    def test_alarm_names_offending_metrics(self):
        scripts = {
            "a": steady([1.0, 2.0]),
            "b": steady([1.0, 2.0]),
            "c": steady([1.0, 9.0]),
        }
        core = make_core(scripts)
        core.run_until(9.0)
        alarm = alarms_of(core)[0]
        assert alarm.source == "whitebox"
        assert "1" in alarm.detail  # metric index 1


class TestOutputsAndValidation:
    def test_decisions_one_per_node_per_round(self):
        scripts = {node: steady([1.0]) for node in ("a", "b", "c")}
        core = make_core(scripts)
        core.run_until(9.0)
        decisions = [
            d
            for s in core.instance("decisions").received
            for d in s.value
            if isinstance(d, WindowDecision)
        ]
        assert len(decisions) == 6

    def test_stats_carry_means_and_stds(self):
        scripts = {node: steady([2.0]) for node in ("a", "b", "c")}
        core = make_core(scripts)
        core.run_until(9.0)
        stats = [s.value for s in core.instance("stats").received]
        assert np.asarray(stats[0]["means"]).shape == (3, 1)
        assert np.asarray(stats[0]["stds"]).shape == (3, 1)

    def test_requires_three_nodes(self):
        with pytest.raises(ConfigError, match="at least 3"):
            make_core({"a": steady([1.0]), "b": steady([1.0])})

    def test_rejects_missing_node_origin(self):
        config = (
            "[scripted]\nid = src\n\n"
            "[analysis_wb]\nid = wb\ninput[n0] = src.value\n"
        )
        with pytest.raises(ConfigError, match="node origin"):
            build_core(config, {"script": {"src": [1.0]}})
