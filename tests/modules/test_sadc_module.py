"""Tests for the sadc data-collection module."""

import numpy as np
import pytest

from repro.core import ConfigError
from repro.modules.sadc import SADC_CHANNEL_SERVICE
from repro.sysstat import NODE_METRICS

from .helpers import FakeChannel, build_core


def sample_response(cpu_user: float = 25.0):
    node = {name: 0.0 for name in NODE_METRICS}
    node["cpu_user_pct"] = cpu_user
    node["cpu_idle_pct"] = 100.0 - cpu_user
    return {"timestamp": 0.0, "node": node, "nics": {}, "processes": {}}


def make_services(channel: FakeChannel):
    return {SADC_CHANNEL_SERVICE: {"slave01": channel}}


BASIC_CONFIG = """
[sadc]
id = s
node = slave01
interval = 1.0

[print]
id = sink
input[a] = s.vector
"""


class TestSadcModule:
    def test_polls_once_per_interval(self):
        channel = FakeChannel({"sample": lambda now: sample_response()})
        core = build_core(BASIC_CONFIG, make_services(channel))
        core.run_until(5.0)
        assert len(channel.calls) == 6  # t = 0..5

    def test_vector_output_is_catalog_ordered(self):
        channel = FakeChannel({"sample": lambda now: sample_response(cpu_user=33.0)})
        core = build_core(BASIC_CONFIG, make_services(channel))
        core.run_until(1.0)
        vectors = [s.value for s in core.instance("sink").received]
        index = NODE_METRICS.index("cpu_user_pct")
        assert vectors[0][index] == pytest.approx(33.0)
        assert vectors[0].shape == (64,)

    def test_priming_none_skipped(self):
        responses = iter([None, sample_response(), sample_response()])
        channel = FakeChannel({"sample": lambda now: next(responses)})
        core = build_core(BASIC_CONFIG, make_services(channel))
        core.run_until(2.0)
        module = core.instance("s")
        assert module.priming_skips == 1
        assert module.samples_collected == 2

    def test_named_metric_outputs(self):
        config = """
[sadc]
id = s
node = slave01
metrics = cpu_user_pct,net_rxkb_per_s

[print]
id = sink
input[a] = s.cpu_user_pct
"""
        channel = FakeChannel({"sample": lambda now: sample_response(cpu_user=70.0)})
        core = build_core(config, make_services(channel))
        core.run_until(0.0)
        assert [s.value for s in core.instance("sink").received] == [70.0]

    def test_metric_output_origin_names_node_and_metric(self):
        config = """
[sadc]
id = s
node = slave01
metrics = cpu_user_pct
"""
        channel = FakeChannel({"sample": lambda now: sample_response()})
        core = build_core(config, make_services(channel))
        origin = core.dag.contexts["s"].outputs["cpu_user_pct"].origin
        assert origin.node == "slave01"
        assert origin.metric == "cpu_user_pct"

    def test_unknown_metric_rejected_at_init(self):
        config = "[sadc]\nid = s\nnode = slave01\nmetrics = bogus_metric\n"
        with pytest.raises(ConfigError, match="unknown metric"):
            build_core(config, make_services(FakeChannel()))

    def test_unregistered_node_rejected_at_init(self):
        config = "[sadc]\nid = s\nnode = slave99\n"
        with pytest.raises(ConfigError, match="no channel registered"):
            build_core(config, make_services(FakeChannel()))

    def test_close_closes_channel(self):
        channel = FakeChannel({"sample": lambda now: sample_response()})
        core = build_core(BASIC_CONFIG, make_services(channel))
        core.close()
        assert channel.closed
