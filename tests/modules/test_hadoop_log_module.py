"""Tests for the hadoop_log module's cross-node synchronization."""

import numpy as np
import pytest

from repro.core import ConfigError
from repro.modules.hadoop_log import HADOOP_LOG_CHANNEL_SERVICE

from .helpers import FakeChannel, build_core


class ScriptedLogChannel(FakeChannel):
    """Returns pre-scripted per-second vectors respecting a lag."""

    def __init__(self, vectors_by_second, lag: int = 2, hold_after: int = 10**9):
        super().__init__()
        self.vectors_by_second = vectors_by_second
        self.lag = lag
        #: Seconds >= hold_after are withheld (simulating a stalled node).
        self.hold_after = hold_after
        self._cursor = 0

    def call(self, method, **params):
        self.calls.append((method, params))
        assert method == "collect"
        stable_end = int(params["now"]) - self.lag
        seconds = []
        vectors = []
        for second in range(self._cursor, max(self._cursor, stable_end)):
            if second >= self.hold_after:
                break
            seconds.append(second)
            vectors.append(self.vectors_by_second.get(second, [0.0] * 8))
        if seconds:
            self._cursor = seconds[-1] + 1
        return {"seconds": seconds, "vectors": vectors, "watermark": float(stable_end)}


def config_for(nodes):
    lines = [
        "[hadoop_log]",
        "id = hl",
        f"nodes = {','.join(nodes)}",
        "interval = 1.0",
        "max_skew = 5",
        "",
        "[print]",
        "id = sink",
    ]
    lines += [f"input[{node}] = hl.{node}" for node in nodes]
    return "\n".join(lines) + "\n"


def services_for(channels):
    return {HADOOP_LOG_CHANNEL_SERVICE: channels}


class TestSynchronization:
    def test_emits_only_when_all_nodes_have_the_second(self):
        channels = {
            "a": ScriptedLogChannel({0: [1.0] * 8}),
            "b": ScriptedLogChannel({0: [2.0] * 8}),
        }
        core = build_core(config_for(["a", "b"]), services_for(channels))
        core.run_until(4.0)
        module = core.instance("hl")
        assert module.seconds_emitted == 2  # seconds 0 and 1 are stable by t=4

    def test_all_nodes_get_same_timestamps(self):
        channels = {
            "a": ScriptedLogChannel({}),
            "b": ScriptedLogChannel({}),
        }
        core = build_core(config_for(["a", "b"]), services_for(channels))
        core.run_until(6.0)
        times = [s.timestamp for s in core.instance("sink").received]
        # Samples arrive interleaved per node but as (a, b) pairs per second.
        assert times == sorted(times)
        assert len(times) % 2 == 0

    def test_stalled_node_blocks_then_seconds_dropped(self):
        channels = {
            "a": ScriptedLogChannel({}),
            "b": ScriptedLogChannel({}, hold_after=3),  # b never reports t>=3
        }
        core = build_core(config_for(["a", "b"]), services_for(channels))
        core.run_until(20.0)
        module = core.instance("hl")
        assert module.seconds_dropped > 0
        # Only fully synchronized seconds were emitted.
        assert module.seconds_emitted == 3

    def test_multiple_channels_per_node_are_summed(self):
        tt = ScriptedLogChannel({0: [1.0, 0, 0, 0, 0, 0, 0, 0]})
        dn = ScriptedLogChannel({0: [0, 0, 0, 0, 0, 2.0, 0, 0]})
        channels = {"a": [tt, dn]}
        config = (
            "[hadoop_log]\nid = hl\nnodes = a\nmax_skew = 5\n\n"
            "[print]\nid = sink\ninput[a] = hl.a\n"
        )
        core = build_core(config, services_for(channels))
        core.run_until(4.0)
        first = core.instance("sink").received[0].value
        assert first[0] == 1.0
        assert first[5] == 2.0

    def test_node_incomplete_until_all_channels_report(self):
        tt = ScriptedLogChannel({})
        dn = ScriptedLogChannel({}, hold_after=0)  # datanode daemon dead
        channels = {"a": [tt, dn]}
        config = "[hadoop_log]\nid = hl\nnodes = a\nmax_skew = 5\n"
        core = build_core(config, services_for(channels))
        core.run_until(10.0)
        assert core.instance("hl").seconds_emitted == 0


class TestConfigErrors:
    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            build_core("[hadoop_log]\nid = hl\nnodes = \n", services_for({}))

    def test_missing_channel_rejected(self):
        with pytest.raises(ConfigError, match="no channel"):
            build_core(
                "[hadoop_log]\nid = hl\nnodes = a,b\n",
                services_for({"a": ScriptedLogChannel({})}),
            )

    def test_outputs_named_after_nodes(self):
        channels = {"a": ScriptedLogChannel({}), "b": ScriptedLogChannel({})}
        core = build_core(config_for(["a", "b"]), services_for(channels))
        assert set(core.dag.contexts["hl"].outputs) == {"a", "b"}
