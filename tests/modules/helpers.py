"""Shared helpers for testing the standard ASDF modules."""

from typing import Dict, List, Optional

import numpy as np

from repro.core import FptCore, Module, RunReason, SimClock
from repro.modules import standard_registry


class FakeChannel:
    """Stands in for an RPC channel: serves canned method results."""

    def __init__(self, responses: Optional[Dict[str, object]] = None) -> None:
        self.responses = responses or {}
        self.calls: List[tuple] = []
        self.closed = False

    def call(self, method: str, **params):
        self.calls.append((method, params))
        handler = self.responses.get(method)
        if callable(handler):
            return handler(**params)
        return handler

    def close(self) -> None:
        self.closed = True


class ScriptedSource(Module):
    """Emits a scripted sequence of values once per second.

    The script comes from the ``script`` service: a dict mapping this
    instance's id to a list of values.  Values equal to ``None`` are
    skipped (no write that tick).  The optional origin node comes from
    the ``node`` parameter.
    """

    type_name = "scripted"

    def init(self) -> None:
        from repro.core import Origin

        node = self.ctx.param_str("node", "")
        self.out = self.ctx.create_output(
            "value", Origin(node=node, source="scripted")
        )
        self.values = list(self.ctx.service("script")[self.ctx.instance_id])
        self.index = 0
        self.ctx.schedule_every(1.0)

    def run(self, reason: RunReason) -> None:
        if self.index < len(self.values):
            value = self.values[self.index]
            if value is not None:
                self.out.write(value, self.ctx.clock.now())
        self.index += 1


def build_core(config_text: str, services: dict, extra_modules=()) -> FptCore:
    registry = standard_registry()
    registry.register(ScriptedSource)
    for module_class in extra_modules:
        registry.register(module_class)
    return FptCore.from_config(config_text, registry, SimClock(), services=services)


def collected(core: FptCore, sink_id: str):
    """All sample values recorded by a print-module sink."""
    return [sample.value for sample in core.instance(sink_id).received]


def constant_series(value, n: int) -> list:
    return [value] * n


def vector_series(vectors) -> list:
    return [np.asarray(v, dtype=float) for v in vectors]
