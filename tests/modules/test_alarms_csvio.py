"""Tests for the print sink, the alarm union, and the CSV logger."""

import csv
from dataclasses import replace

import pytest

from repro.analysis import Alarm
from repro.core import ConfigError

from .helpers import build_core, collected


class TestPrintModule:
    def test_collects_everything(self):
        config = (
            "[scripted]\nid = src\n\n[print]\nid = sink\ninput[a] = src.value\n"
        )
        core = build_core(config, {"script": {"src": [1, 2, 3]}})
        core.run_until(2.0)
        assert collected(core, "sink") == [1, 2, 3]

    def test_alarms_property_filters(self):
        alarm = Alarm(time=1.0, node="n")
        config = (
            "[scripted]\nid = src\n\n[print]\nid = sink\ninput[a] = src.value\n"
        )
        core = build_core(config, {"script": {"src": [alarm, "not an alarm"]}})
        core.run_until(1.0)
        assert core.instance("sink").alarms == [alarm]

    def test_echoes_when_not_quiet(self, capsys):
        config = (
            "[scripted]\nid = src\n\n"
            "[print]\nid = sink\nquiet = false\nprefix = TEST\ninput[a] = src.value\n"
        )
        core = build_core(config, {"script": {"src": [Alarm(time=0.0, node="bad")]}})
        core.run_until(0.0)
        out = capsys.readouterr().out
        assert "[TEST]" in out
        assert "bad" in out

    def test_requires_at_least_one_input(self):
        with pytest.raises(ConfigError, match="no inputs"):
            build_core("[print]\nid = sink\n", {"script": {}})

    def test_echo_routes_through_logging(self, capsys):
        import logging

        from repro.modules.alarms import ALARM_LOGGER_NAME

        logger = logging.getLogger(ALARM_LOGGER_NAME)
        saved = logger.handlers[:]
        for handler in saved:
            logger.removeHandler(handler)
        messages = []

        class Capture(logging.Handler):
            def emit(self, record):
                messages.append(record.getMessage())

        logger.addHandler(Capture())
        logger.propagate = False
        try:
            config = (
                "[scripted]\nid = src\n\n"
                "[print]\nid = sink\nquiet = false\nprefix = LOGGED\n"
                "input[a] = src.value\n"
            )
            core = build_core(
                config, {"script": {"src": [Alarm(time=0.0, node="bad")]}}
            )
            core.run_until(0.0)
        finally:
            for handler in logger.handlers[:]:
                logger.removeHandler(handler)
            for handler in saved:
                logger.addHandler(handler)
        # A user-installed handler owns the echo: stdout stays silent.
        assert any("[LOGGED]" in m and "bad" in m for m in messages)
        assert capsys.readouterr().out == ""


class TestAlarmUnion:
    def test_merges_multiple_streams(self):
        a1 = Alarm(time=1.0, node="x", source="blackbox")
        a2 = Alarm(time=2.0, node="y", source="whitebox")
        config = (
            "[scripted]\nid = bb\n\n[scripted]\nid = wb\n\n"
            "[alarm_union]\nid = u\ninput[a] = bb.value\ninput[b] = wb.value\n\n"
            "[print]\nid = sink\ninput[a] = u.alarms\n"
        )
        core = build_core(config, {"script": {"bb": [a1], "wb": [None, a2]}})
        core.run_until(2.0)
        merged = collected(core, "sink")
        assert [replace(a, via=()) for a in merged] == [a1, a2]
        # The union stamps provenance: the upstream output that raised
        # each alarm survives the merge.
        assert merged[0].via == ("bb.value",)
        assert merged[1].via == ("wb.value",)
        assert merged[0].raised_by == "bb.value"

    def test_non_alarms_are_dropped(self):
        config = (
            "[scripted]\nid = src\n\n"
            "[alarm_union]\nid = u\ninput[a] = src.value\n\n"
            "[print]\nid = sink\ninput[a] = u.alarms\n"
        )
        core = build_core(config, {"script": {"src": ["noise", 42]}})
        core.run_until(1.0)
        assert collected(core, "sink") == []
        assert core.instance("u").forwarded == 0

    def test_alarm_timestamps_preserved(self):
        alarm = Alarm(time=7.5, node="x")
        config = (
            "[scripted]\nid = src\n\n"
            "[alarm_union]\nid = u\ninput[a] = src.value\n\n"
            "[print]\nid = sink\ninput[a] = u.alarms\n"
        )
        core = build_core(config, {"script": {"src": [alarm]}})
        core.run_until(0.0)
        assert core.instance("sink").received[0].timestamp == 0.0

    def test_requires_inputs(self):
        with pytest.raises(ConfigError, match="no inputs"):
            build_core("[alarm_union]\nid = u\n", {"script": {}})


class TestCsvWriter:
    def make_core(self, tmp_path, values):
        path = tmp_path / "out.csv"
        config = (
            "[scripted]\nid = src\nnode = slave01\n\n"
            f"[csv_writer]\nid = w\npath = {path}\ninput[a] = src.value\n"
        )
        core = build_core(config, {"script": {"src": values}})
        return core, path

    def test_writes_header_and_rows(self, tmp_path):
        core, path = self.make_core(tmp_path, [1.5, 2.5])
        core.run_until(1.0)
        core.close()
        rows = list(csv.reader(open(path)))
        assert rows[0][0] == "timestamp"
        assert rows[1][:2] == ["0.000", "slave01/scripted"]
        assert float(rows[1][2]) == 1.5
        assert len(rows) == 3

    def test_vector_values_flattened(self, tmp_path):
        import numpy as np

        core, path = self.make_core(tmp_path, [np.array([1.0, 2.0, 3.0])])
        core.run_until(0.0)
        core.close()
        rows = list(csv.reader(open(path)))
        assert rows[1][2:] == ["1.0", "2.0", "3.0"]

    def test_rows_written_counter(self, tmp_path):
        core, path = self.make_core(tmp_path, [1, 2, 3])
        core.run_until(2.0)
        assert core.instance("w").rows_written == 3
        core.close()

    def test_close_is_idempotent(self, tmp_path):
        core, path = self.make_core(tmp_path, [1])
        core.run_until(0.0)
        core.close()
        core.close()

    def test_requires_inputs(self, tmp_path):
        with pytest.raises(ConfigError, match="no inputs"):
            build_core(
                f"[csv_writer]\nid = w\npath = {tmp_path / 'x.csv'}\n",
                {"script": {}},
            )
