"""Tests for the mavgvec moving mean/variance module."""

import numpy as np
import pytest

from .helpers import build_core, vector_series


def make_core(values, window=3, slide=None, extra_inputs=None):
    slide_line = f"slide = {slide}\n" if slide is not None else ""
    config = (
        "[scripted]\nid = src\n\n"
        f"[mavgvec]\nid = m\ninput[input] = src.value\nwindow = {window}\n{slide_line}\n"
        "[print]\nid = means\ninput[a] = m.mean\n\n"
        "[print]\nid = vars\ninput[a] = m.var\n"
    )
    return build_core(config, {"script": {"src": values}})


class TestStatistics:
    def test_mean_over_window(self):
        core = make_core([1.0, 2.0, 3.0], window=3)
        core.run_until(2.0)
        (mean,) = [s.value for s in core.instance("means").received]
        assert mean == pytest.approx([2.0])

    def test_variance_over_window(self):
        core = make_core([1.0, 2.0, 3.0], window=3)
        core.run_until(2.0)
        (var,) = [s.value for s in core.instance("vars").received]
        assert var == pytest.approx([np.var([1.0, 2.0, 3.0])])

    def test_vector_inputs_elementwise(self):
        values = vector_series([[1.0, 10.0], [3.0, 20.0]])
        core = make_core(values, window=2)
        core.run_until(1.0)
        (mean,) = [s.value for s in core.instance("means").received]
        assert mean == pytest.approx([2.0, 15.0])

    def test_sliding_windows_emit_repeatedly(self):
        core = make_core([1.0, 2.0, 3.0, 4.0, 5.0], window=3, slide=1)
        core.run_until(4.0)
        means = [s.value[0] for s in core.instance("means").received]
        assert means == pytest.approx([2.0, 3.0, 4.0])

    def test_tumbling_windows_by_default(self):
        core = make_core([1.0, 2.0, 3.0, 4.0], window=2)
        core.run_until(3.0)
        means = [s.value[0] for s in core.instance("means").received]
        assert means == pytest.approx([1.5, 3.5])

    def test_no_output_before_window_fills(self):
        core = make_core([1.0, 2.0], window=3)
        core.run_until(1.0)
        assert core.instance("means").received == []

    def test_window_timestamp_is_last_sample(self):
        core = make_core([1.0, 2.0, 3.0], window=3)
        core.run_until(2.0)
        assert core.instance("means").received[0].timestamp == 2.0


class TestMultipleInputStreams:
    def test_streams_concatenate_into_sample_vector(self):
        config = (
            "[scripted]\nid = a\n\n[scripted]\nid = b\n\n"
            "[mavgvec]\nid = m\ninput[input] = a.value\ninput[input] = b.value\nwindow = 2\n\n"
            "[print]\nid = means\ninput[x] = m.mean\n"
        )
        core = build_core(
            config, {"script": {"a": [1.0, 3.0], "b": [10.0, 30.0]}}
        )
        core.run_until(1.0)
        (mean,) = [s.value for s in core.instance("means").received]
        assert mean == pytest.approx([2.0, 20.0])

    def test_missing_stream_sample_skips_round(self):
        config = (
            "[scripted]\nid = a\n\n[scripted]\nid = b\n\n"
            "[mavgvec]\nid = m\ninput[input] = a.value\ninput[input] = b.value\nwindow = 1\n\n"
            "[print]\nid = means\ninput[x] = m.mean\n"
        )
        # b emits nothing on tick 0, so no sample vector can be formed on
        # either triggered run; the module skips rather than crashing.
        core = build_core(config, {"script": {"a": [1.0, 2.0], "b": [None, 5.0]}})
        core.run_until(1.0)
        means = [s.value for s in core.instance("means").received]
        assert means == []
