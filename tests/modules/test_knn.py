"""Tests for the knn 1-NN classification module."""

import numpy as np
import pytest

from repro.core import ConfigError

from .helpers import build_core, collected, vector_series


class Model:
    """Bare centroids + sigma, as produced by offline training."""

    def __init__(self, centroids, sigma):
        self.centroids = np.asarray(centroids, dtype=float)
        self.sigma = np.asarray(sigma, dtype=float)


def make_core(values, model, k=1):
    config = (
        "[scripted]\nid = src\nnode = slave01\n\n"
        f"[knn]\nid = nn\ninput[input] = src.value\nmodel = bb_model\nk = {k}\n\n"
        "[print]\nid = sink\ninput[a] = nn.output0\n"
    )
    return build_core(config, {"script": {"src": values}, "bb_model": model})


class TestClassification:
    def test_scaled_log_distance_classification(self):
        """The paper's transform: s' = log(1+s)/sigma, then Euclidean 1-NN."""
        sigma = np.array([1.0, 2.0])
        # Centroids live in scaled-log space.
        idle = np.log1p(np.array([0.0, 0.0])) / sigma
        busy = np.log1p(np.array([100.0, 1000.0])) / sigma
        model = Model([idle, busy], sigma)
        core = make_core(
            vector_series([[0.5, 1.0], [90.0, 900.0]]), model
        )
        core.run_until(1.0)
        assert collected(core, "sink") == [0, 1]

    def test_negative_inputs_clamped_before_log(self):
        model = Model([[0.0], [5.0]], [1.0])
        core = make_core(vector_series([[-100.0]]), model)
        core.run_until(0.0)
        assert collected(core, "sink") == [0]

    def test_k_greater_than_one_returns_ordered_list(self):
        model = Model([[0.0], [1.0], [10.0]], [1.0])
        core = make_core(vector_series([[np.expm1(0.9)]]), model, k=2)
        core.run_until(0.0)
        (result,) = collected(core, "sink")
        assert result == [1, 0]

    def test_counts_samples(self):
        model = Model([[0.0], [5.0]], [1.0])
        core = make_core(vector_series([[1.0]] * 4), model)
        core.run_until(3.0)
        assert core.instance("nn").samples_classified == 4

    def test_origin_propagates(self):
        model = Model([[0.0]], [1.0])
        core = make_core(vector_series([[1.0]]), model)
        assert core.dag.contexts["nn"].outputs["output0"].origin.node == "slave01"


class TestValidation:
    def test_sigma_dimension_mismatch(self):
        model = Model([[0.0, 0.0]], [1.0])  # 2-D centroids, 1-D sigma
        with pytest.raises(ConfigError, match="sigma shape"):
            make_core(vector_series([[1.0, 1.0]]), model)

    def test_k_out_of_range(self):
        model = Model([[0.0], [1.0]], [1.0])
        with pytest.raises(ConfigError, match="out of range"):
            make_core(vector_series([[1.0]]), model, k=5)

    def test_centroids_must_be_matrix(self):
        model = Model([0.0, 1.0], [1.0])
        with pytest.raises(ConfigError, match="2-D"):
            make_core(vector_series([[1.0]]), model)
