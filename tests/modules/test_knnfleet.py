"""Tests for the fleet-batched knnfleet classification module."""

import numpy as np
import pytest

from repro.core import ConfigError

from .helpers import build_core, collected, vector_series


class Model:
    """Bare centroids + sigma, as produced by offline training."""

    def __init__(self, centroids, sigma):
        self.centroids = np.asarray(centroids, dtype=float)
        self.sigma = np.asarray(sigma, dtype=float)


NODES = ("slave01", "slave02", "slave03")


def make_fleet_core(series_by_node, model, k=1):
    lines = []
    for node in NODES:
        lines += [f"[scripted]\nid = src_{node}\nnode = {node}\n"]
    lines += [f"[knnfleet]\nid = nn\nmodel = bb_model\nk = {k}"]
    lines += [
        f"input[v{i}] = src_{node}.value" for i, node in enumerate(NODES)
    ]
    lines += [""]
    for node in NODES:
        lines += [f"[print]\nid = sink_{node}\ninput[a] = nn.{node}\n"]
    scripts = {f"src_{node}": series_by_node[node] for node in NODES}
    return build_core(
        "\n".join(lines), {"script": scripts, "bb_model": model}
    )


def make_pernode_core(series_by_node, model, k=1):
    lines = []
    for node in NODES:
        lines += [
            f"[scripted]\nid = src_{node}\nnode = {node}\n",
            f"[knn]\nid = nn_{node}\ninput[input] = src_{node}.value\n"
            f"model = bb_model\nk = {k}\n",
            f"[print]\nid = sink_{node}\ninput[a] = nn_{node}.output0\n",
        ]
    scripts = {f"src_{node}": series_by_node[node] for node in NODES}
    return build_core(
        "\n".join(lines), {"script": scripts, "bb_model": model}
    )


def series():
    rng = np.random.default_rng(23)
    return {
        node: vector_series(rng.gamma(2.0, 50.0, size=(6, 4)))
        for node in NODES
    }


def model():
    rng = np.random.default_rng(31)
    return Model(rng.gamma(2.0, 1.0, size=(5, 4)), np.full(4, 2.0))


class TestFleetClassification:
    def test_identical_to_per_node_knn_modules(self):
        """The fleet batch must match N independent knn instances."""
        data, shared = series(), model()
        fleet = make_fleet_core(data, shared)
        pernode = make_pernode_core(data, shared)
        fleet.run_until(5.0)
        pernode.run_until(5.0)
        for node in NODES:
            assert collected(fleet, f"sink_{node}") == collected(
                pernode, f"sink_{node}"
            )

    def test_identical_for_k_greater_than_one(self):
        data, shared = series(), model()
        fleet = make_fleet_core(data, shared, k=3)
        pernode = make_pernode_core(data, shared, k=3)
        fleet.run_until(5.0)
        pernode.run_until(5.0)
        for node in NODES:
            values = collected(fleet, f"sink_{node}")
            assert values == collected(pernode, f"sink_{node}")
            assert all(len(v) == 3 for v in values)

    def test_counts_samples_across_fleet(self):
        core = make_fleet_core(series(), model())
        core.run_until(5.0)
        assert core.instance("nn").samples_classified == 6 * len(NODES)

    def test_output_timestamps_follow_samples(self):
        core = make_fleet_core(series(), model())
        core.run_until(5.0)
        stamps = [
            s.timestamp for s in core.instance("sink_slave01").received
        ]
        assert stamps == [float(t) for t in range(6)]


class TestConfigErrors:
    def test_requires_node_origins(self):
        config = (
            "[scripted]\nid = src\n\n"
            "[knnfleet]\nid = nn\nmodel = bb_model\n"
            "input[v0] = src.value\n\n"
            "[print]\nid = sink\ninput[a] = nn.slave01\n"
        )
        with pytest.raises(ConfigError, match="node origin"):
            build_core(
                config, {"script": {"src": [[1.0]]}, "bb_model": model()}
            )

    def test_rejects_duplicate_node(self):
        config = (
            "[scripted]\nid = a\nnode = slave01\n\n"
            "[scripted]\nid = b\nnode = slave01\n\n"
            "[knnfleet]\nid = nn\nmodel = bb_model\n"
            "input[v0] = a.value\ninput[v1] = b.value\n\n"
            "[print]\nid = sink\ninput[x] = nn.slave01\n"
        )
        with pytest.raises(ConfigError, match="two inputs"):
            build_core(
                config,
                {"script": {"a": [[1.0]], "b": [[1.0]]}, "bb_model": model()},
            )

    def test_rejects_bad_sigma(self):
        bad = Model([[0.0, 1.0]], [1.0])
        with pytest.raises(ConfigError, match="sigma"):
            make_fleet_core(series(), bad)
