"""Tests for the section 5 extensions: strace tracing and mitigation."""

import numpy as np
import pytest

from repro.analysis import Alarm
from repro.core import ConfigError
from repro.modules import js_divergence
from repro.modules.strace import STRACE_CHANNEL_SERVICE

from .helpers import FakeChannel, build_core


class TestJsDivergence:
    def test_identical_distributions_are_zero(self):
        p = np.array([0.5, 0.3, 0.2])
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_distributions_hit_the_bound(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert js_divergence(p, q) == pytest.approx(np.log(2.0), rel=1e-3)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        p, q = rng.dirichlet(np.ones(5)), rng.dirichlet(np.ones(5))
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_unnormalized_inputs_accepted(self):
        assert js_divergence([10, 10], [1, 1]) == pytest.approx(0.0, abs=1e-9)


def io_heavy(n):
    # read-dominated distribution.
    return [np.array([50.0, 20.0, 5, 5, 10, 5, 0, 2, 2, 1]) for _ in range(n)]


def spin_heavy(n):
    # futex/yield-dominated: an infinite loop's profile.
    return [np.array([0.5, 0.5, 0, 0, 40.0, 10.0, 0, 1, 1, 30.0]) for _ in range(n)]


class TestSyscallAnomalyModule:
    def make_core(self, values, window=5, baseline_windows=2, threshold=0.15):
        config = (
            "[scripted]\nid = src\nnode = slave01\n\n"
            "[syscall_anomaly]\nid = anom\ninput[s] = src.value\n"
            f"window = {window}\nbaseline_windows = {baseline_windows}\n"
            f"threshold = {threshold}\n\n"
            "[print]\nid = alarms\ninput[a] = anom.alarms\n\n"
            "[print]\nid = divs\ninput[a] = anom.divergence\n"
        )
        return build_core(config, {"script": {"src": values}})

    def test_stable_behaviour_stays_quiet(self):
        core = self.make_core(io_heavy(30))
        core.run_until(29.0)
        assert core.instance("alarms").alarms == []
        assert core.instance("anom").windows_scored == 4  # 6 windows - 2 baseline

    def test_behaviour_shift_alarms(self):
        values = io_heavy(15) + spin_heavy(15)
        core = self.make_core(values)
        core.run_until(29.0)
        alarms = core.instance("alarms").alarms
        assert alarms
        assert alarms[0].node == "slave01"
        assert alarms[0].source == "strace"

    def test_divergence_stream_emitted(self):
        core = self.make_core(io_heavy(30))
        core.run_until(29.0)
        divergences = [s.value for s in core.instance("divs").received]
        assert len(divergences) == 4
        assert all(d < 0.05 for d in divergences)

    def test_baseline_windows_not_scored(self):
        core = self.make_core(io_heavy(10), baseline_windows=2, window=5)
        core.run_until(9.0)
        assert core.instance("anom").windows_scored == 0


class TestStraceModule:
    def test_polls_and_emits_vectors(self):
        responses = iter([None] + [[1.0] * 10] * 5)
        channel = FakeChannel({"trace": lambda now: next(responses)})
        config = (
            "[strace]\nid = st\nnode = slave01\n\n"
            "[print]\nid = sink\ninput[a] = st.counts\n"
        )
        core = build_core(config, {STRACE_CHANNEL_SERVICE: {"slave01": channel}})
        core.run_until(4.0)
        module = core.instance("st")
        assert module.priming_skips == 1
        assert module.samples_collected == 4
        assert core.instance("sink").received[0].value.shape == (10,)

    def test_missing_channel_rejected(self):
        config = "[strace]\nid = st\nnode = slave99\n"
        with pytest.raises(ConfigError, match="no channel"):
            build_core(config, {STRACE_CHANNEL_SERVICE: {}})


class FakeController:
    def __init__(self):
        self.calls = []

    def mitigate(self, node, now):
        self.calls.append((node, now))


class TestMitigationModule:
    def make_core(self, alarms, min_alarms=2):
        controller = FakeController()
        config = (
            "[scripted]\nid = src\n\n"
            f"[mitigate]\nid = m\ninput[a] = src.value\nmin_alarms = {min_alarms}\n\n"
            "[print]\nid = sink\ninput[a] = m.actions\n"
        )
        core = build_core(
            config,
            {"script": {"src": alarms}, "mitigation_controller": controller},
        )
        return core, controller

    def test_acts_after_min_alarms(self):
        alarms = [Alarm(time=float(i), node="bad") for i in range(4)]
        core, controller = self.make_core(alarms, min_alarms=2)
        core.run_until(3.0)
        assert controller.calls == [("bad", 1.0)]

    def test_acts_once_per_node(self):
        alarms = [Alarm(time=float(i), node="bad") for i in range(10)]
        core, controller = self.make_core(alarms, min_alarms=1)
        core.run_until(9.0)
        assert len(controller.calls) == 1

    def test_separate_nodes_act_independently(self):
        alarms = [
            Alarm(time=0.0, node="x"),
            Alarm(time=1.0, node="y"),
            Alarm(time=2.0, node="x"),
            Alarm(time=3.0, node="y"),
        ]
        core, controller = self.make_core(alarms, min_alarms=2)
        core.run_until(3.0)
        assert {node for node, _ in controller.calls} == {"x", "y"}

    def test_non_alarm_values_ignored(self):
        core, controller = self.make_core(["noise", 42], min_alarms=1)
        core.run_until(1.0)
        assert controller.calls == []

    def test_actions_output_stream(self):
        alarms = [Alarm(time=float(i), node="bad") for i in range(3)]
        core, controller = self.make_core(alarms, min_alarms=1)
        core.run_until(2.0)
        actions = [s.value for s in core.instance("sink").received]
        assert actions == [{"time": 0.0, "node": "bad"}]


class TestBlacklistIntegration:
    def test_mitigation_stops_new_assignments(self):
        from repro.hadoop import ClusterConfig, HadoopCluster, JobSpec, MB
        from repro.hadoop.cluster import BlacklistController

        cluster = HadoopCluster(ClusterConfig(num_slaves=4, seed=3))
        controller = BlacklistController(cluster)
        for i in range(4):
            cluster.submit_job(
                JobSpec(
                    job_id=f"200807070001_{i:04d}",
                    name="job",
                    input_bytes=512.0 * MB,
                    num_reduces=2,
                )
            )
        cluster.run_until(60.0)
        controller.mitigate("slave02", cluster.time)
        launches_before = sum(
            1
            for r in cluster.tt_logs["slave02"].records()
            if "LaunchTaskAction" in r.line
        )
        cluster.run_until(240.0)
        launches_after = sum(
            1
            for r in cluster.tt_logs["slave02"].records()
            if "LaunchTaskAction" in r.line
        )
        assert launches_after == launches_before
        # Other nodes keep receiving work and jobs still finish.
        assert cluster.jobs_succeeded() > 0
