"""Tests for the analysis plumbing: timed windows, alignment, streaks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.modules._window_sync import (
    ConsecutiveCounter,
    TimedWindow,
    WindowAligner,
)


class TestTimedWindow:
    def test_emits_with_time_bounds(self):
        window = TimedWindow(size=3, slide=3)
        assert window.push(10.0, 1.0) == []
        assert window.push(11.0, 2.0) == []
        ((start, end, matrix),) = window.push(12.0, 3.0)
        assert (start, end) == (10.0, 12.0)
        assert matrix.shape == (3, 1)

    def test_sliding_overlap(self):
        window = TimedWindow(size=3, slide=1)
        emitted = []
        for i in range(5):
            emitted.extend(window.push(float(i), float(i)))
        starts = [start for start, _, _ in emitted]
        assert starts == [0.0, 1.0, 2.0]

    def test_vector_samples_stack(self):
        window = TimedWindow(size=2, slide=2)
        window.push(0.0, np.array([1.0, 2.0]))
        ((_, _, matrix),) = window.push(1.0, np.array([3.0, 4.0]))
        assert matrix.shape == (2, 2)
        assert matrix[1, 1] == 4.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            TimedWindow(size=0, slide=1)
        with pytest.raises(ValueError):
            TimedWindow(size=5, slide=6)

    @given(
        n=st.integers(0, 40),
        size=st.integers(1, 8),
    )
    @settings(max_examples=30)
    def test_property_every_sample_in_at_most_ceil_size_over_slide_windows(
        self, n, size
    ):
        window = TimedWindow(size=size, slide=size)
        count = 0
        for i in range(n):
            count += len(window.push(float(i), float(i)))
        assert count == n // size


class TestWindowAligner:
    def test_round_released_only_when_all_nodes_ready(self):
        aligner = WindowAligner(["a", "b"])
        assert aligner.push("a", [(0.0, 1.0, np.zeros((2, 1)))]) == []
        rounds = aligner.push("b", [(0.0, 1.0, np.ones((2, 1)))])
        assert len(rounds) == 1
        assert set(rounds[0]) == {"a", "b"}

    def test_multiple_rounds_release_in_order(self):
        aligner = WindowAligner(["a", "b"])
        windows = lambda k: [(float(i), float(i) + 1, np.zeros((1, 1))) for i in range(k)]
        aligner.push("a", windows(3))
        rounds = aligner.push("b", windows(3))
        assert len(rounds) == 3
        assert [r["a"][0] for r in rounds] == [0.0, 1.0, 2.0]

    def test_lagging_node_buffers_leader(self):
        aligner = WindowAligner(["a", "b", "c"])
        aligner.push("a", [(0.0, 1.0, np.zeros((1, 1)))] * 5)
        aligner.push("b", [(0.0, 1.0, np.zeros((1, 1)))] * 5)
        assert aligner.push("c", [(0.0, 1.0, np.zeros((1, 1)))]) != []


class TestConsecutiveCounter:
    def test_fires_at_threshold(self):
        counter = ConsecutiveCounter(["n"], required=3)
        assert counter.update({"n": True}) == []
        assert counter.update({"n": True}) == []
        assert counter.update({"n": True}) == ["n"]

    def test_keeps_firing_while_anomalous(self):
        counter = ConsecutiveCounter(["n"], required=2)
        counter.update({"n": True})
        assert counter.update({"n": True}) == ["n"]
        assert counter.update({"n": True}) == ["n"]

    def test_reset_on_recovery(self):
        counter = ConsecutiveCounter(["n"], required=2)
        counter.update({"n": True})
        counter.update({"n": False})
        assert counter.update({"n": True}) == []
        assert counter.streak("n") == 1

    def test_independent_nodes(self):
        counter = ConsecutiveCounter(["a", "b"], required=2)
        counter.update({"a": True, "b": False})
        fired = counter.update({"a": True, "b": True})
        assert fired == ["a"]

    def test_required_must_be_positive(self):
        with pytest.raises(ValueError):
            ConsecutiveCounter(["n"], required=0)

    @given(st.lists(st.booleans(), min_size=1, max_size=50), st.integers(1, 5))
    @settings(max_examples=40)
    def test_property_fires_iff_streak_reached(self, flags, required):
        counter = ConsecutiveCounter(["n"], required=required)
        streak = 0
        for flag in flags:
            fired = counter.update({"n": flag})
            streak = streak + 1 if flag else 0
            assert (fired == ["n"]) == (streak >= required)
