"""Scheduler hot-path regressions: threshold caching, hook chains,
and the periodic re-arm race.

``Output.write`` is the hottest call site in the core; these tests pin
down that (a) the trigger threshold is cached instead of recomputed via
``connection_count()`` on every write, (b) the cache is invalidated on
every registration change, (c) attaching an output twice never
double-counts updates, and (d) an instance may remove itself from its
own periodic ``run()`` without resurrecting via the re-arm.
"""

import pytest

from repro.core import (
    FptCore,
    RunReason,
    Scheduler,
    SimClock,
    WriteHookChain,
)

from .helpers import build_registry


def make_core(text: str) -> FptCore:
    return FptCore.from_config(text, build_registry(), SimClock())


class TestThresholdCache:
    def test_connection_count_not_called_per_write(self):
        # `double` declares no explicit trigger, so its threshold comes
        # from ctx.connection_count() -- which must be consulted once,
        # not on every one of the source's writes.
        core = make_core(
            "[source]\nid = s\ninterval = 1.0\n\n"
            "[double]\nid = d\ninput[input] = s.value\n\n"
            "[sink]\nid = k\ninput[a] = d.value\n"
        )
        ctx = core.instance("d").ctx
        calls = []
        original = ctx.connection_count

        def counting():
            calls.append(1)
            return original()

        ctx.connection_count = counting
        core.run_until(50.0)
        assert len(calls) <= 1
        # Behavior unchanged: every tick still propagated to the sink.
        assert [v for _, v in core.instance("k").seen] == [
            2 * i for i in range(51)
        ]

    def test_set_trigger_invalidates_cache(self):
        core = make_core(
            "[source]\nid = s\ninterval = 1.0\n\n"
            "[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_until(2.0)  # 3 writes at threshold 1 -> 3 triggered runs
        scheduler = core.scheduler
        assert scheduler.runs_by_instance["k"] == 3
        scheduler.set_trigger("k", 3)
        core.run_until(8.0)  # 6 more writes at threshold 3 -> 2 runs
        assert scheduler.runs_by_instance["k"] == 5

    def test_remove_instance_invalidates_cache(self):
        core = make_core(
            "[source]\nid = s\ninterval = 1.0\n\n"
            "[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_until(1.0)
        assert "k" in core.scheduler._threshold_cache
        core.scheduler.remove_instance("k")
        assert "k" not in core.scheduler._threshold_cache
        # Further writes to the detached consumer must not run it.
        core.run_until(3.0)
        assert core.scheduler.runs_by_instance["k"] == 2


class TestAttachOutputIdempotence:
    def test_double_attach_does_not_double_count(self):
        core = make_core(
            "[source]\nid = s\ninterval = 1.0\n\n"
            "[sink]\nid = k\ninput[a] = s.value\ntrigger = 2\n"
        )
        # Re-attaching the already-wired output (e.g. a probe detaching
        # and the core re-installing hooks) must be a no-op.
        core.scheduler.attach_output(core.instance("s").out)
        core.run_until(4.0)
        # 5 writes at threshold 2 -> 2 triggered runs; a stacked second
        # hook would count every write twice and yield 5 runs.
        assert core.scheduler.runs_by_instance.get("k", 0) == 2

    def test_foreign_hook_chained_once_and_preserved(self):
        core = make_core(
            "[source]\nid = s\ninterval = 1.0\n\n"
            "[sink]\nid = k\ninput[a] = s.value\n"
        )
        out = core.instance("s").out
        seen = []
        # A foreign probe replaces the hook wholesale (discarding the
        # scheduler's): re-attach must rebuild the chain around it, not
        # stack blindly or drop bookkeeping.
        out.on_write = lambda output, sample: seen.append(sample.value)
        core.scheduler.attach_output(out)
        assert isinstance(out.on_write, WriteHookChain)
        core.scheduler.attach_output(out)  # second attach: no-op
        assert [
            h for h in out.on_write.hooks
            if getattr(h, "__self__", None) is core.scheduler
        ] == [out.on_write.hooks[-1]]
        core.run_until(3.0)
        assert seen == [0, 1, 2, 3]
        assert core.scheduler.runs_by_instance["k"] == 4


class _SelfRemovingModule:
    """Minimal periodic instance that detaches itself mid-run."""

    def __init__(self, instance_id: str, scheduler: Scheduler) -> None:
        self.instance_id = instance_id
        self.scheduler = scheduler
        self.runs = 0

    def run(self, reason: RunReason) -> None:
        self.runs += 1
        self.scheduler.remove_instance(self.instance_id)


class TestPeriodicRearmRace:
    def test_self_removal_cancels_rearm(self):
        scheduler = Scheduler(SimClock())
        module = _SelfRemovingModule("s", scheduler)
        scheduler.add_instance(module)
        scheduler.schedule_periodic("s", 1.0, 0.0)
        # Pre-fix this raised KeyError on the dropped interval when
        # run_until re-armed the just-removed instance.
        scheduler.run_until(5.0)
        assert module.runs == 1
        assert scheduler.next_deadline() is None

    def test_peer_removal_mid_run_stops_future_firings(self):
        scheduler = Scheduler(SimClock())

        class Remover:
            instance_id = "remover"

            def run(self, reason):
                if "victim" in scheduler._instances:
                    scheduler.remove_instance("victim")

        victim = _SelfRemovingModule("victim", scheduler)
        victim.run = lambda reason: None  # plain periodic peer
        scheduler.add_instance(Remover())
        scheduler.add_instance(victim)
        scheduler.schedule_periodic("remover", 1.0, 0.0)
        scheduler.schedule_periodic("victim", 1.0, 0.5)
        scheduler.run_until(5.0)
        assert "victim" not in scheduler._instances
