"""Tests for outputs, connections, and input groups."""

import pytest

from repro.core import InputGroup, ModuleError, Origin, Output, Sample


def make_output(name: str = "out") -> Output:
    return Output(owner_id="src0", name=name)


class TestOrigin:
    def test_describe_joins_parts(self):
        origin = Origin(node="slave01", source="sadc", metric="cpu_user_pct")
        assert origin.describe() == "slave01/sadc/cpu_user_pct"

    def test_describe_skips_empty_parts(self):
        assert Origin(node="slave01").describe() == "slave01"

    def test_describe_empty_origin(self):
        assert Origin().describe() == "<unknown>"

    def test_is_hashable_and_equatable(self):
        assert Origin(node="a") == Origin(node="a")
        assert hash(Origin(node="a")) == hash(Origin(node="a"))


class TestOutput:
    def test_full_name(self):
        assert make_output("vector").full_name == "src0.vector"

    def test_write_without_subscribers_counts(self):
        output = make_output()
        output.write(1.0, timestamp=0.0)
        assert output.total_written == 1

    def test_write_fans_out_to_all_subscribers(self):
        output = make_output()
        first = output.subscribe()
        second = output.subscribe()
        output.write(42, timestamp=3.0)
        assert first.pop() == Sample(3.0, 42)
        assert second.pop() == Sample(3.0, 42)

    def test_on_write_hook_invoked(self):
        output = make_output()
        seen = []
        output.on_write = lambda out, sample: seen.append((out.name, sample.value))
        output.write("x", timestamp=1.0)
        assert seen == [("out", "x")]


class TestConnection:
    def test_pop_all_drains_in_order(self):
        output = make_output()
        conn = output.subscribe()
        for i in range(3):
            output.write(i, timestamp=float(i))
        values = [s.value for s in conn.pop_all()]
        assert values == [0, 1, 2]
        assert conn.pop_all() == []

    def test_pop_returns_none_when_empty(self):
        conn = make_output().subscribe()
        assert conn.pop() is None

    def test_peek_does_not_consume(self):
        output = make_output()
        conn = output.subscribe()
        output.write(5, timestamp=0.0)
        assert conn.peek().value == 5
        assert len(conn) == 1

    def test_latest_drains_and_returns_newest(self):
        output = make_output()
        conn = output.subscribe()
        output.write(1, timestamp=0.0)
        output.write(2, timestamp=1.0)
        assert conn.latest().value == 2
        assert len(conn) == 0

    def test_latest_on_empty_is_none(self):
        assert make_output().subscribe().latest() is None

    def test_latest_counts_skipped_samples(self):
        output = make_output()
        conn = output.subscribe()
        for i in range(4):
            output.write(i, timestamp=float(i))
        assert conn.latest().value == 3
        # Three older samples were silently discarded -- now accounted.
        assert conn.total_skipped == 3
        assert conn.latest() is None
        assert conn.total_skipped == 3

    def test_latest_single_sample_skips_nothing(self):
        output = make_output()
        conn = output.subscribe()
        output.write(1, timestamp=0.0)
        assert conn.latest().value == 1
        assert conn.total_skipped == 0

    def test_skipped_is_distinct_from_dropped(self):
        output = make_output()
        conn = output.subscribe(capacity=2)
        for i in range(5):
            output.write(i, timestamp=float(i))
        assert conn.latest().value == 4
        assert conn.total_dropped == 3   # capacity overflow at write time
        assert conn.total_skipped == 1   # consumer-side rate mismatch

    def test_capacity_drops_oldest(self):
        output = make_output()
        conn = output.subscribe(capacity=2)
        for i in range(5):
            output.write(i, timestamp=float(i))
        assert [s.value for s in conn.pop_all()] == [3, 4]
        assert conn.total_dropped == 3
        assert conn.total_received == 5

    def test_origin_comes_from_output(self):
        output = Output(owner_id="a", name="b", origin=Origin(node="n1"))
        assert output.subscribe().origin == Origin(node="n1")


class TestInputGroup:
    def test_single_with_one_connection(self):
        group = InputGroup("input")
        conn = make_output().subscribe()
        group.connections.append(conn)
        assert group.single() is conn

    def test_single_with_zero_connections_raises(self):
        with pytest.raises(ModuleError):
            InputGroup("input").single()

    def test_single_with_two_connections_raises(self):
        group = InputGroup("input")
        group.connections.append(make_output().subscribe())
        group.connections.append(make_output().subscribe())
        with pytest.raises(ModuleError):
            group.single()

    def test_iteration_and_indexing(self):
        group = InputGroup("input")
        conns = [make_output().subscribe() for _ in range(3)]
        group.connections.extend(conns)
        assert list(group) == conns
        assert group[1] is conns[1]
        assert len(group) == 3

    def test_pop_latest_vector_preserves_order(self):
        group = InputGroup("input")
        outputs = [make_output(f"o{i}") for i in range(2)]
        for output in outputs:
            group.connections.append(output.subscribe())
        outputs[0].write(10, timestamp=0.0)
        outputs[1].write(20, timestamp=0.0)
        outputs[1].write(21, timestamp=1.0)
        samples = group.pop_latest_vector()
        assert samples[0].value == 10
        assert samples[1].value == 21

    def test_pop_latest_vector_with_missing_data(self):
        group = InputGroup("input")
        group.connections.append(make_output().subscribe())
        assert group.pop_latest_vector() == [None]

    def test_pop_latest_vector_counts_skipped(self):
        group = InputGroup("input")
        output = make_output()
        group.connections.append(output.subscribe())
        for i in range(3):
            output.write(i, timestamp=float(i))
        assert group.pop_latest_vector()[0].value == 2
        assert group[0].total_skipped == 2

    def test_output_stats_aggregate_skips(self):
        output = make_output()
        conn = output.subscribe()
        for i in range(5):
            output.write(i, timestamp=float(i))
        conn.latest()
        stats = output.stats()
        assert stats["skipped"] == 4
        assert stats["dropped"] == 0
