"""Small test modules shared by the core framework tests."""

from repro.core import Module, ModuleRegistry, RunReason


class SourceModule(Module):
    """Emits an incrementing counter on a periodic schedule."""

    type_name = "source"

    def init(self) -> None:
        self.ctx.require_no_inputs()
        self.out = self.ctx.create_output("value")
        self.counter = 0
        self.ctx.schedule_every(
            self.ctx.param_float("interval", 1.0),
            self.ctx.param_float("phase", 0.0),
        )

    def run(self, reason: RunReason) -> None:
        self.out.write(self.counter, self.ctx.clock.now())
        self.counter += 1


class DoubleModule(Module):
    """Doubles every sample from its single input."""

    type_name = "double"

    def init(self) -> None:
        self.connection = self.ctx.input("input").single()
        self.out = self.ctx.create_output("value")

    def run(self, reason: RunReason) -> None:
        for sample in self.connection.pop_all():
            self.out.write(sample.value * 2, sample.timestamp)


class SinkModule(Module):
    """Records everything arriving on any input."""

    type_name = "sink"

    def init(self) -> None:
        self.seen = []
        self.run_reasons = []
        self.ctx.trigger_after_updates(
            self.ctx.param_int("trigger", self.ctx.connection_count() or 1)
        )

    def run(self, reason: RunReason) -> None:
        self.run_reasons.append(reason)
        for group in self.ctx.inputs.values():
            for connection in group:
                for sample in connection.pop_all():
                    self.seen.append((sample.timestamp, sample.value))


class NoOutputModule(Module):
    """A module that declares no outputs (valid terminal vertex)."""

    type_name = "no_output"

    def init(self) -> None:
        pass

    def run(self, reason: RunReason) -> None:
        pass


def build_registry() -> ModuleRegistry:
    registry = ModuleRegistry()
    registry.register(SourceModule)
    registry.register(DoubleModule)
    registry.register(SinkModule)
    registry.register(NoOutputModule)
    return registry
