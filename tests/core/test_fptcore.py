"""Tests for the FptCore facade."""

import pytest

from repro.core import ConfigError, FptCore, Module, ModuleRegistry, RunReason, SimClock

from .helpers import build_registry


class ServiceEcho(Module):
    type_name = "service_echo"

    def init(self) -> None:
        self.value = self.ctx.service("payload")
        self.out = self.ctx.create_output("value")
        self.ctx.schedule_every(1.0)

    def run(self, reason: RunReason) -> None:
        self.out.write(self.value, self.ctx.clock.now())


class Closeable(Module):
    type_name = "closeable"

    closed_count = 0

    def init(self) -> None:
        self.ctx.create_output("value")

    def run(self, reason: RunReason) -> None:
        pass

    def close(self) -> None:
        type(self).closed_count += 1


def registry_with_extras() -> ModuleRegistry:
    registry = build_registry()
    registry.register(ServiceEcho)
    registry.register(Closeable)
    return registry


class TestFptCore:
    def test_from_config_builds_and_runs(self):
        core = FptCore.from_config(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n",
            build_registry(),
            SimClock(),
        )
        core.run_until(2.0)
        assert len(core.instance("k").seen) == 3

    def test_instances_sorted(self):
        core = FptCore.from_config(
            "[source]\nid = zed\n\n[source]\nid = abel\n",
            build_registry(),
            SimClock(),
        )
        assert core.instances == ["abel", "zed"]

    def test_services_reach_modules(self):
        core = FptCore.from_config(
            "[service_echo]\nid = e\n\n[sink]\nid = k\ninput[a] = e.value\n",
            registry_with_extras(),
            SimClock(),
            services={"payload": "hello"},
        )
        core.run_until(1.0)
        assert core.instance("k").seen[0][1] == "hello"

    def test_missing_service_fails_at_build_time(self):
        with pytest.raises(ConfigError, match="payload"):
            FptCore.from_config(
                "[service_echo]\nid = e\n", registry_with_extras(), SimClock()
            )

    def test_default_clock_is_simulated(self):
        core = FptCore.from_config("[source]\nid = s\n", build_registry())
        assert isinstance(core.clock, SimClock)

    def test_close_is_idempotent_and_calls_modules(self):
        Closeable.closed_count = 0
        core = FptCore.from_config(
            "[closeable]\nid = c\n", registry_with_extras(), SimClock()
        )
        core.close()
        core.close()
        assert Closeable.closed_count == 1

    def test_context_manager_closes(self):
        Closeable.closed_count = 0
        with FptCore.from_config(
            "[closeable]\nid = c\n", registry_with_extras(), SimClock()
        ):
            pass
        assert Closeable.closed_count == 1

    def test_edges_and_dot_exported(self):
        core = FptCore.from_config(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n",
            build_registry(),
            SimClock(),
        )
        assert len(core.edges) == 1
        assert "digraph" in core.to_dot()

    def test_queue_capacity_is_applied(self):
        core = FptCore.from_config(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\ntrigger = 1000\n",
            build_registry(),
            SimClock(),
            queue_capacity=3,
        )
        core.run_until(10.0)  # sink never triggers; queue overflows at 3
        conn = core.dag.contexts["k"].inputs["a"].single()
        assert len(conn) == 3
        assert conn.total_dropped == 8
