"""Tests for the module registry."""

import pytest

from repro.core import ConfigError, Module, ModuleRegistry, RunReason


class Alpha(Module):
    type_name = "alpha"

    def run(self, reason: RunReason) -> None:
        pass


class Beta(Module):
    type_name = "beta"

    def run(self, reason: RunReason) -> None:
        pass


class AlphaImpostor(Module):
    type_name = "alpha"

    def run(self, reason: RunReason) -> None:
        pass


class Nameless(Module):
    def run(self, reason: RunReason) -> None:
        pass


class TestRegistry:
    def test_register_and_resolve(self):
        registry = ModuleRegistry()
        registry.register(Alpha)
        assert registry.resolve("alpha") is Alpha

    def test_register_is_usable_as_decorator(self):
        registry = ModuleRegistry()
        returned = registry.register(Alpha)
        assert returned is Alpha

    def test_resolve_unknown_raises_with_candidates(self):
        registry = ModuleRegistry()
        registry.register(Alpha)
        with pytest.raises(ConfigError, match="alpha"):
            registry.resolve("missing")

    def test_reregistering_same_class_is_idempotent(self):
        registry = ModuleRegistry()
        registry.register(Alpha)
        registry.register(Alpha)
        assert len(registry) == 1

    def test_conflicting_registration_raises(self):
        registry = ModuleRegistry()
        registry.register(Alpha)
        with pytest.raises(ConfigError, match="already registered"):
            registry.register(AlphaImpostor)

    def test_nameless_module_rejected(self):
        with pytest.raises(ConfigError, match="no type_name"):
            ModuleRegistry().register(Nameless)

    def test_contains_and_iteration(self):
        registry = ModuleRegistry()
        registry.register(Beta)
        registry.register(Alpha)
        assert "alpha" in registry
        assert "gamma" not in registry
        assert list(registry) == ["alpha", "beta"]

    def test_copy_is_independent(self):
        registry = ModuleRegistry()
        registry.register(Alpha)
        clone = registry.copy()
        clone.register(Beta)
        assert "beta" in clone
        assert "beta" not in registry


def test_standard_registry_contains_all_paper_modules():
    from repro.modules import standard_registry

    registry = standard_registry()
    for name in (
        "sadc",
        "hadoop_log",
        "ibuffer",
        "mavgvec",
        "knn",
        "analysis_bb",
        "analysis_wb",
        "print",
        "alarm_union",
        "csv_writer",
    ):
        assert name in registry
