"""Tests for the clock abstraction."""

import time

import pytest

from repro.core import SchedulerError, SimClock, WallClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now() == 12.5

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_backwards_raises(self):
        clock = SimClock(5.0)
        with pytest.raises(SchedulerError):
            clock.advance_to(4.0)

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(2.5)
        assert clock.now() == 3.5

    def test_advance_by_negative_raises(self):
        with pytest.raises(SchedulerError):
            SimClock().advance_by(-1.0)

    def test_sleep_until_jumps_forward(self):
        clock = SimClock()
        clock.sleep_until(7.0)
        assert clock.now() == 7.0

    def test_sleep_until_past_deadline_is_noop(self):
        clock = SimClock(10.0)
        clock.sleep_until(3.0)
        assert clock.now() == 10.0


class TestWallClock:
    def test_starts_near_zero(self):
        assert WallClock().now() < 0.5

    def test_is_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_until_waits(self):
        clock = WallClock()
        deadline = clock.now() + 0.05
        clock.sleep_until(deadline)
        assert clock.now() >= deadline

    def test_sleep_until_past_deadline_returns_immediately(self):
        clock = WallClock()
        start = time.monotonic()
        clock.sleep_until(clock.now() - 5.0)
        assert time.monotonic() - start < 0.05
