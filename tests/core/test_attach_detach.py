"""Tests for runtime attach/detach (paper section 2.1 flexibility)."""

import pytest

from repro.core import ConfigError, FptCore, SimClock

from .helpers import build_registry


def make_core() -> FptCore:
    return FptCore.from_config(
        "[source]\nid = src\n\n[sink]\nid = snk\ninput[a] = src.value\n",
        build_registry(),
        SimClock(),
    )


class TestAttach:
    def test_attach_new_consumer_of_existing_output(self):
        core = make_core()
        core.run_until(2.0)
        added = core.attach("[sink]\nid = late\ninput[a] = src.value\n")
        assert added == ["late"]
        core.run_until(5.0)
        # The late sink only sees samples produced after it attached.
        late_values = [v for _, v in core.instance("late").seen]
        assert late_values == [3, 4, 5]

    def test_attach_whole_new_chain(self):
        core = make_core()
        core.run_until(1.0)
        added = core.attach(
            "[source]\nid = src2\ninterval = 2.0\n\n"
            "[double]\nid = dbl\ninput[input] = src2.value\n\n"
            "[sink]\nid = snk2\ninput[a] = dbl.value\n"
        )
        assert set(added) == {"src2", "dbl", "snk2"}
        core.run_until(5.0)
        assert [v for _, v in core.instance("snk2").seen] == [0, 2, 4]

    def test_attached_instances_appear_in_introspection(self):
        core = make_core()
        core.attach("[sink]\nid = late\ninput[a] = src.value\n")
        assert "late" in core.instances
        assert any(edge.dst_instance == "late" for edge in core.edges)

    def test_attach_duplicate_id_rejected(self):
        core = make_core()
        with pytest.raises(ConfigError, match="already exists"):
            core.attach("[source]\nid = src\n")

    def test_attach_unknown_upstream_rejected(self):
        core = make_core()
        with pytest.raises(ConfigError, match="unknown instance"):
            core.attach("[sink]\nid = s2\ninput[a] = ghost.value\n")

    def test_attach_cycle_rejected_and_rolled_back(self):
        core = make_core()
        with pytest.raises(ConfigError, match="cycle or missing"):
            core.attach(
                "[double]\nid = a\ninput[input] = b.value\n\n"
                "[double]\nid = b\ninput[input] = a.value\n"
            )
        assert "a" not in core.instances
        assert "b" not in core.instances


class TestDetach:
    def test_detach_terminal_sink(self):
        core = make_core()
        core.run_until(1.0)
        seen_before = list(core.instance("snk").seen)
        core.detach("snk")
        assert "snk" not in core.instances
        core.run_until(5.0)  # must not crash on stale wiring
        # The source no longer pays for an unread subscriber.
        assert core.dag.contexts["src"].outputs["value"].subscribers == []
        assert seen_before  # data collected before detach is intact

    def test_detach_producer_with_consumers_rejected(self):
        core = make_core()
        with pytest.raises(ConfigError, match="consume its outputs"):
            core.detach("src")

    def test_detach_then_reattach_same_id(self):
        core = make_core()
        core.detach("snk")
        core.attach("[sink]\nid = snk\ninput[a] = src.value\n")
        core.run_until(2.0)
        assert len(core.instance("snk").seen) == 3

    def test_detach_unknown_instance(self):
        core = make_core()
        with pytest.raises(ConfigError, match="no such instance"):
            core.detach("ghost")

    def test_detach_periodic_source_after_consumers_removed(self):
        core = make_core()
        core.run_until(1.0)
        core.detach("snk")
        core.detach("src")
        # Stale heap entries for the removed source are skipped silently.
        core.run_until(10.0)
        assert core.instances == []

    def test_detached_module_is_closed(self):
        core = make_core()
        closed = []
        core.instance("snk").close = lambda: closed.append("snk")
        core.detach("snk")
        assert closed == ["snk"]
