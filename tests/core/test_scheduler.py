"""Tests for the scheduler: periodic events, input triggers, determinism."""

import pytest

from repro.core import FptCore, RunReason, SchedulerError, SimClock

from .helpers import build_registry


def make_core(text: str) -> FptCore:
    return FptCore.from_config(text, build_registry(), SimClock())


class TestPeriodicScheduling:
    def test_source_fires_once_per_interval(self):
        core = make_core("[source]\nid = s\ninterval = 1.0\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(5.0)
        sink = core.instance("k")
        assert [v for _, v in sink.seen] == [0, 1, 2, 3, 4, 5]

    def test_interval_other_than_one(self):
        core = make_core("[source]\nid = s\ninterval = 2.0\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(6.0)
        assert [t for t, _ in core.instance("k").seen] == [0.0, 2.0, 4.0, 6.0]

    def test_phase_offsets_first_firing(self):
        core = make_core("[source]\nid = s\ninterval = 2.0\nphase = 0.5\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(5.0)
        assert [t for t, _ in core.instance("k").seen] == [0.5, 2.5, 4.5]

    def test_two_sources_interleave_in_time_order(self):
        core = make_core(
            "[source]\nid = a\ninterval = 2.0\n\n"
            "[source]\nid = b\ninterval = 3.0\n\n"
            "[sink]\nid = k\ninput[x] = a.value\ninput[y] = b.value\ntrigger = 1\n"
        )
        core.run_until(6.0)
        times = [t for t, _ in core.instance("k").seen]
        assert times == sorted(times)

    def test_run_until_in_the_past_raises(self):
        core = make_core("[source]\nid = s\n")
        core.run_until(3.0)
        with pytest.raises(SchedulerError, match="in the past"):
            core.run_until(2.0)

    def test_run_for_advances_relative(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_for(2.0)
        core.run_for(2.0)
        assert core.clock.now() == 4.0
        assert len(core.instance("k").seen) == 5

    def test_clock_rests_at_end_time_even_without_events(self):
        core = make_core("[source]\nid = s\ninterval = 100.0\n")
        core.run_until(5.0)
        assert core.clock.now() == 5.0


class TestInputTriggering:
    def test_downstream_runs_in_same_timestamp(self):
        core = make_core(
            "[source]\nid = s\n\n[double]\nid = d\ninput[input] = s.value\n\n"
            "[sink]\nid = k\ninput[a] = d.value\n"
        )
        core.run_until(2.0)
        assert core.instance("k").seen == [(0.0, 0), (1.0, 2), (2.0, 4)]

    def test_default_trigger_waits_for_all_connections(self):
        core = make_core(
            "[source]\nid = a\ninterval = 1.0\n\n"
            "[source]\nid = b\ninterval = 2.0\n\n"
            "[sink]\nid = k\ninput[x] = a.value\ninput[y] = b.value\n"
        )
        core.run_until(4.0)
        sink = core.instance("k")
        # The default trigger is count-based: the sink runs after every
        # 2 input updates.  a fires 5 times + b fires 3 times = 8 updates
        # -> 4 triggered runs (not one per source tick).
        assert len(sink.run_reasons) == 4
        assert all(reason is RunReason.INPUTS for reason in sink.run_reasons)

    def test_custom_trigger_fires_on_every_update(self):
        core = make_core(
            "[source]\nid = a\n\n[source]\nid = b\ninterval = 2.0\n\n"
            "[sink]\nid = k\ninput[x] = a.value\ninput[y] = b.value\ntrigger = 1\n"
        )
        core.run_until(4.0)
        # a fires 5 times, b fires 3 times -> 8 triggered runs.
        assert len(core.instance("k").run_reasons) == 8

    def test_manual_run_propagates(self):
        core = make_core(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_instance("s")
        assert core.instance("k").seen == [(0.0, 0)]

    def test_manual_run_unknown_instance(self):
        core = make_core("[source]\nid = s\n")
        with pytest.raises(SchedulerError, match="no such instance"):
            core.run_instance("ghost")


class TestStopAndErrors:
    def test_stop_exits_run_loop_early(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")

        original_run = core.instance("k").run

        def stopping_run(reason):
            original_run(reason)
            if len(core.instance("k").seen) >= 3:
                core.stop()

        core.instance("k").run = stopping_run
        core.run_until(100.0)
        assert len(core.instance("k").seen) == 3

    def test_module_exception_propagates_by_default(self):
        core = make_core("[source]\nid = s\n")

        def broken_run(reason):
            raise ValueError("boom")

        core.instance("s").run = broken_run
        with pytest.raises(ValueError, match="boom"):
            core.run_until(1.0)

    def test_error_hook_can_suppress(self):
        core = make_core("[source]\nid = s\n")
        failures = []

        def broken_run(reason):
            raise ValueError("boom")

        core.instance("s").run = broken_run
        core.scheduler.on_error = lambda inst, exc: failures.append(inst) or True
        core.run_until(2.0)
        assert failures == ["s", "s", "s"]

    def test_total_runs_counted(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(3.0)
        assert core.scheduler.total_runs == 8  # 4 source + 4 sink

    def test_next_deadline(self):
        core = make_core("[source]\nid = s\ninterval = 2.0\nphase = 1.0\n")
        assert core.scheduler.next_deadline() == 1.0


class TestDeterminism:
    def test_same_config_same_results(self):
        def run():
            core = make_core(
                "[source]\nid = a\ninterval = 1.0\n\n"
                "[double]\nid = d\ninput[input] = a.value\n\n"
                "[sink]\nid = k\ninput[x] = d.value\n"
            )
            core.run_until(20.0)
            return core.instance("k").seen

        assert run() == run()
