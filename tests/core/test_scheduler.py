"""Tests for the scheduler: periodic events, input triggers, determinism."""

import pytest

from repro.core import FptCore, RunReason, SchedulerError, SimClock

from .helpers import build_registry


def make_core(text: str) -> FptCore:
    return FptCore.from_config(text, build_registry(), SimClock())


class TestPeriodicScheduling:
    def test_source_fires_once_per_interval(self):
        core = make_core("[source]\nid = s\ninterval = 1.0\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(5.0)
        sink = core.instance("k")
        assert [v for _, v in sink.seen] == [0, 1, 2, 3, 4, 5]

    def test_interval_other_than_one(self):
        core = make_core("[source]\nid = s\ninterval = 2.0\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(6.0)
        assert [t for t, _ in core.instance("k").seen] == [0.0, 2.0, 4.0, 6.0]

    def test_phase_offsets_first_firing(self):
        core = make_core("[source]\nid = s\ninterval = 2.0\nphase = 0.5\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(5.0)
        assert [t for t, _ in core.instance("k").seen] == [0.5, 2.5, 4.5]

    def test_two_sources_interleave_in_time_order(self):
        core = make_core(
            "[source]\nid = a\ninterval = 2.0\n\n"
            "[source]\nid = b\ninterval = 3.0\n\n"
            "[sink]\nid = k\ninput[x] = a.value\ninput[y] = b.value\ntrigger = 1\n"
        )
        core.run_until(6.0)
        times = [t for t, _ in core.instance("k").seen]
        assert times == sorted(times)

    def test_run_until_in_the_past_raises(self):
        core = make_core("[source]\nid = s\n")
        core.run_until(3.0)
        with pytest.raises(SchedulerError, match="in the past"):
            core.run_until(2.0)

    def test_run_for_advances_relative(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_for(2.0)
        core.run_for(2.0)
        assert core.clock.now() == 4.0
        assert len(core.instance("k").seen) == 5

    def test_clock_rests_at_end_time_even_without_events(self):
        core = make_core("[source]\nid = s\ninterval = 100.0\n")
        core.run_until(5.0)
        assert core.clock.now() == 5.0


class TestInputTriggering:
    def test_downstream_runs_in_same_timestamp(self):
        core = make_core(
            "[source]\nid = s\n\n[double]\nid = d\ninput[input] = s.value\n\n"
            "[sink]\nid = k\ninput[a] = d.value\n"
        )
        core.run_until(2.0)
        assert core.instance("k").seen == [(0.0, 0), (1.0, 2), (2.0, 4)]

    def test_default_trigger_waits_for_all_connections(self):
        core = make_core(
            "[source]\nid = a\ninterval = 1.0\n\n"
            "[source]\nid = b\ninterval = 2.0\n\n"
            "[sink]\nid = k\ninput[x] = a.value\ninput[y] = b.value\n"
        )
        core.run_until(4.0)
        sink = core.instance("k")
        # The default trigger is count-based: the sink runs after every
        # 2 input updates.  a fires 5 times + b fires 3 times = 8 updates
        # -> 4 triggered runs (not one per source tick).
        assert len(sink.run_reasons) == 4
        assert all(reason is RunReason.INPUTS for reason in sink.run_reasons)

    def test_custom_trigger_fires_on_every_update(self):
        core = make_core(
            "[source]\nid = a\n\n[source]\nid = b\ninterval = 2.0\n\n"
            "[sink]\nid = k\ninput[x] = a.value\ninput[y] = b.value\ntrigger = 1\n"
        )
        core.run_until(4.0)
        # a fires 5 times, b fires 3 times -> 8 triggered runs.
        assert len(core.instance("k").run_reasons) == 8

    def test_manual_run_propagates(self):
        core = make_core(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_instance("s")
        assert core.instance("k").seen == [(0.0, 0)]

    def test_manual_run_unknown_instance(self):
        core = make_core("[source]\nid = s\n")
        with pytest.raises(SchedulerError, match="no such instance"):
            core.run_instance("ghost")


class TestStopAndErrors:
    def test_stop_exits_run_loop_early(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")

        original_run = core.instance("k").run

        def stopping_run(reason):
            original_run(reason)
            if len(core.instance("k").seen) >= 3:
                core.stop()

        core.instance("k").run = stopping_run
        core.run_until(100.0)
        assert len(core.instance("k").seen) == 3

    def test_module_exception_propagates_by_default(self):
        core = make_core("[source]\nid = s\n")

        def broken_run(reason):
            raise ValueError("boom")

        core.instance("s").run = broken_run
        with pytest.raises(ValueError, match="boom"):
            core.run_until(1.0)

    def test_error_hook_can_suppress(self):
        core = make_core("[source]\nid = s\n")
        failures = []

        def broken_run(reason):
            raise ValueError("boom")

        core.instance("s").run = broken_run
        core.scheduler.on_error = lambda inst, exc: failures.append(inst) or True
        core.run_until(2.0)
        assert failures == ["s", "s", "s"]

    def test_total_runs_counted(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")
        core.run_until(3.0)
        assert core.scheduler.total_runs == 8  # 4 source + 4 sink

    def test_error_hook_returning_false_re_raises(self):
        core = make_core("[source]\nid = s\n")
        failures = []

        def broken_run(reason):
            raise ValueError("boom")

        core.instance("s").run = broken_run
        core.scheduler.on_error = lambda inst, exc: bool(failures.append(inst))
        with pytest.raises(ValueError, match="boom"):
            core.run_until(2.0)
        # The hook saw the failure exactly once before the re-raise.
        assert failures == ["s"]

    def test_next_deadline(self):
        core = make_core("[source]\nid = s\ninterval = 2.0\nphase = 1.0\n")
        assert core.scheduler.next_deadline() == 1.0


class TestReasonSplitCounters:
    def test_runs_split_by_reason(self):
        core = make_core(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_until(3.0)
        core.run_instance("s")
        by_reason = core.scheduler.runs_by_reason
        assert by_reason[RunReason.PERIODIC] == 4
        # 4 triggered by periodic writes + 1 by the manual write.
        assert by_reason[RunReason.INPUTS] == 5
        assert by_reason[RunReason.MANUAL] == 1

    def test_total_runs_is_derived_from_the_split(self):
        core = make_core("[source]\nid = s\n")
        core.run_until(2.0)
        scheduler = core.scheduler
        assert scheduler.total_runs == sum(scheduler.runs_by_reason.values())

    def test_runs_by_instance(self):
        core = make_core(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_until(3.0)
        assert core.scheduler.runs_by_instance == {"s": 4, "k": 4}


class TestRemoveInstance:
    def test_stale_heap_entry_is_skipped(self):
        core = make_core(
            "[source]\nid = s\n\n[source]\nid = t\ninterval = 2.0\n"
        )
        core.run_until(1.0)
        # 's' still has a pending heap entry for t=2.0 when detached.
        core.scheduler.remove_instance("s")
        core.run_until(5.0)  # must not KeyError on the stale entry
        assert core.scheduler.runs_by_instance["s"] == 2  # t=0 and t=1 only
        assert core.scheduler.runs_by_instance["t"] == 3  # t=0, 2, 4

    def test_pending_input_triggered_run_is_dropped(self):
        core = make_core(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"
        )
        scheduler = core.scheduler
        # Queue an input-triggered run by hand, then remove the instance
        # before it drains.
        scheduler._enqueue("k")
        scheduler.remove_instance("k")
        assert "k" not in scheduler._pending
        assert "k" not in scheduler._pending_set
        scheduler._drain_input_triggered()  # must not KeyError
        assert scheduler.runs_by_instance.get("k", 0) == 0

    def test_remove_unknown_instance_raises(self):
        core = make_core("[source]\nid = s\n")
        with pytest.raises(SchedulerError, match="no such instance"):
            core.scheduler.remove_instance("ghost")

    def test_removed_instance_no_longer_triggered_by_writes(self):
        core = make_core(
            "[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n"
        )
        core.run_until(1.0)
        core.scheduler.remove_instance("k")
        core.run_until(4.0)
        assert core.scheduler.runs_by_instance["k"] == 2  # before removal


class TestAttachOutput:
    def test_existing_hook_is_chained_not_overwritten(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")
        output = core.instance("s").ctx.outputs["value"]
        seen = []
        output.on_write = lambda out, sample: seen.append(sample.value)
        core.scheduler.attach_output(output)
        core.run_until(2.0)
        # The foreign hook fired on every write...
        assert seen == [0, 1, 2]
        # ...and the scheduler's trigger bookkeeping still worked.
        assert len(core.instance("k").seen) == 3

    def test_attaching_twice_does_not_double_trigger(self):
        core = make_core("[source]\nid = s\n\n[sink]\nid = k\ninput[a] = s.value\n")
        output = core.instance("s").ctx.outputs["value"]
        # FptCore already attached during construction; attach again.
        core.scheduler.attach_output(output)
        core.scheduler.attach_output(output)
        core.run_until(2.0)
        assert len(core.instance("k").seen) == 3


class TestDeterminism:
    def test_same_config_same_results(self):
        def run():
            core = make_core(
                "[source]\nid = a\ninterval = 1.0\n\n"
                "[double]\nid = d\ninput[input] = a.value\n\n"
                "[sink]\nid = k\ninput[x] = d.value\n"
            )
            core.run_until(20.0)
            return core.instance("k").seen

        assert run() == run()
