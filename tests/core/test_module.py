"""Tests for the ModuleContext plug-in API."""

import pytest

from repro.core import (
    ConfigError,
    InputGroup,
    ModuleContext,
    ModuleError,
    SimClock,
)


def make_context(params=None, services=None) -> ModuleContext:
    return ModuleContext("inst0", params or {}, SimClock(), services)


class TestParams:
    def test_str_param(self):
        assert make_context({"node": "slave01"}).param_str("node") == "slave01"

    def test_int_param_parses(self):
        assert make_context({"size": "10"}).param_int("size") == 10

    def test_int_param_bad_value(self):
        with pytest.raises(ConfigError, match="integer"):
            make_context({"size": "ten"}).param_int("size")

    def test_float_param_parses(self):
        assert make_context({"t": "2.5"}).param_float("t") == 2.5

    def test_float_param_bad_value(self):
        with pytest.raises(ConfigError, match="number"):
            make_context({"t": "x"}).param_float("t")

    @pytest.mark.parametrize("text,expected", [
        ("1", True), ("true", True), ("Yes", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_bool_param_parses(self, text, expected):
        assert make_context({"q": text}).param_bool("q") is expected

    def test_bool_param_bad_value(self):
        with pytest.raises(ConfigError, match="boolean"):
            make_context({"q": "maybe"}).param_bool("q")

    def test_list_param_splits_and_strips(self):
        ctx = make_context({"nodes": "a, b ,c,,"})
        assert ctx.param_list("nodes") == ["a", "b", "c"]

    def test_missing_required_param(self):
        with pytest.raises(ConfigError, match="missing required"):
            make_context().param_str("node")

    def test_default_is_returned_when_absent(self):
        assert make_context().param_int("size", 5) == 5
        assert make_context().param_float("t", 1.5) == 1.5
        assert make_context().param_bool("q", True) is True
        assert make_context().param_list("l", []) == []

    def test_unconsumed_params_reported(self):
        ctx = make_context({"used": "1", "stray": "2", "id": "x"})
        ctx.param_int("used")
        assert ctx.unconsumed_params() == ["stray"]


class TestServices:
    def test_service_lookup(self):
        ctx = make_context(services={"model": object()})
        assert ctx.service("model") is ctx.services["model"]

    def test_missing_service_raises_with_available(self):
        ctx = make_context(services={"model": 1})
        with pytest.raises(ConfigError, match="model"):
            ctx.service("other")


class TestOutputsAndInputs:
    def test_create_output_registers(self):
        ctx = make_context()
        output = ctx.create_output("value")
        assert ctx.outputs["value"] is output
        assert output.owner_id == "inst0"

    def test_duplicate_output_rejected(self):
        ctx = make_context()
        ctx.create_output("value")
        with pytest.raises(ModuleError, match="twice"):
            ctx.create_output("value")

    def test_input_lookup_missing_raises(self):
        with pytest.raises(ModuleError, match="not wired"):
            make_context().input("input")

    def test_require_no_inputs_passes_when_empty(self):
        make_context().require_no_inputs()

    def test_require_no_inputs_raises_when_wired(self):
        ctx = make_context()
        ctx.inputs["x"] = InputGroup("x")
        with pytest.raises(ModuleError, match="accepts no inputs"):
            ctx.require_no_inputs()

    def test_connection_count_sums_groups(self):
        ctx = make_context()
        from repro.core import Output

        group = InputGroup("x")
        group.connections.append(Output("a", "o").subscribe())
        group.connections.append(Output("a", "p").subscribe())
        ctx.inputs["x"] = group
        assert ctx.connection_count() == 2


class TestSchedulingHooks:
    def test_schedule_without_hooks_raises(self):
        with pytest.raises(ModuleError, match="hooks"):
            make_context().schedule_every(1.0)

    def test_trigger_without_hooks_raises(self):
        with pytest.raises(ModuleError, match="hooks"):
            make_context().trigger_after_updates(1)

    def test_non_positive_interval_rejected(self):
        ctx = make_context()
        ctx._schedule_periodic = lambda *a: None
        with pytest.raises(ModuleError, match="non-positive"):
            ctx.schedule_every(0.0)

    def test_non_positive_trigger_rejected(self):
        ctx = make_context()
        ctx._set_trigger = lambda *a: None
        with pytest.raises(ModuleError, match="non-positive"):
            ctx.trigger_after_updates(0)

    def test_hooks_are_forwarded(self):
        calls = []
        ctx = make_context()
        ctx._schedule_periodic = lambda *a: calls.append(("p", a))
        ctx._set_trigger = lambda *a: calls.append(("t", a))
        ctx.schedule_every(2.0, phase=0.5)
        ctx.trigger_after_updates(3)
        assert calls == [("p", ("inst0", 2.0, 0.5)), ("t", ("inst0", 3))]
