"""Tests for the fpt-core configuration parser."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ConfigError, InputSpec, parse_config, render_config

FIG3_SNIPPET = """
[ibuffer]
id = buf1
input[input] = onenn0.output0
size = 10

[ibuffer]
id = buf2
input[input] = onenn0.output0
size = 10

[analysis_bb]
id = analysis
threshold = 5
window = 15
slide = 5
input[l0] = @buf0
input[l1] = @buf1

[print]
id = BlackBoxAlarm
input[a] = @analysis
"""


class TestParsing:
    def test_paper_figure3_snippet_parses(self):
        specs = parse_config(FIG3_SNIPPET)
        assert [s.instance_id for s in specs] == [
            "buf1",
            "buf2",
            "analysis",
            "BlackBoxAlarm",
        ]
        assert specs[0].module_type == "ibuffer"
        assert specs[0].params == {"size": "10"}
        assert specs[2].params["threshold"] == "5"

    def test_named_output_input(self):
        specs = parse_config("[m]\nid = a\ninput[x] = other.out\n")
        assert specs[0].inputs == [InputSpec("x", "other", "out")]

    def test_at_syntax_wires_all_outputs(self):
        specs = parse_config("[m]\nid = a\ninput[x] = @other\n")
        assert specs[0].inputs == [InputSpec("x", "other", None)]

    def test_auto_generated_ids_count_per_type(self):
        specs = parse_config("[sadc]\n\n[sadc]\n\n[knn]\n")
        assert [s.instance_id for s in specs] == ["sadc0", "sadc1", "knn0"]

    def test_comments_are_stripped(self):
        specs = parse_config("# leading comment\n[m]\nid = a ; trailing\nk = v # tail\n")
        assert specs[0].instance_id == "a"
        assert specs[0].params == {"k": "v"}

    def test_values_may_contain_spaces_and_equals(self):
        specs = parse_config("[m]\nid = a\npath = /tmp/x y=z\n")
        assert specs[0].params["path"] == "/tmp/x y=z"

    def test_empty_config_gives_no_specs(self):
        assert parse_config("") == []
        assert parse_config("\n\n# only comments\n") == []

    def test_multiple_inputs_on_same_name_allowed(self):
        specs = parse_config("[m]\nid = a\ninput[x] = b.o1\ninput[x] = b.o2\n")
        assert len(specs[0].inputs) == 2


class TestErrors:
    def test_assignment_outside_section(self):
        with pytest.raises(ConfigError, match="outside"):
            parse_config("k = v\n")

    def test_line_without_equals(self):
        with pytest.raises(ConfigError, match="key = value"):
            parse_config("[m]\nnonsense\n")

    def test_duplicate_parameter(self):
        with pytest.raises(ConfigError, match="duplicate parameter"):
            parse_config("[m]\nk = 1\nk = 2\n")

    def test_duplicate_id_assignment(self):
        with pytest.raises(ConfigError, match="duplicate 'id'"):
            parse_config("[m]\nid = a\nid = b\n")

    def test_duplicate_instance_ids_across_sections(self):
        with pytest.raises(ConfigError, match="duplicate instance id"):
            parse_config("[m]\nid = a\n\n[n]\nid = a\n")

    def test_bad_instance_id(self):
        with pytest.raises(ConfigError, match="bad instance id"):
            parse_config("[m]\nid = has space\n")

    def test_input_value_without_dot_or_at(self):
        with pytest.raises(ConfigError, match="instance.output"):
            parse_config("[m]\ninput[x] = nodots\n")

    def test_input_value_with_bad_at_target(self):
        with pytest.raises(ConfigError, match="bad instance id"):
            parse_config("[m]\ninput[x] = @bad name\n")

    def test_duplicate_identical_input_wiring(self):
        with pytest.raises(ConfigError, match="duplicate input"):
            parse_config("[m]\ninput[x] = a.o\ninput[x] = a.o\n")

    def test_empty_key(self):
        with pytest.raises(ConfigError):
            parse_config("[m]\n = v\n")


class TestRendering:
    def test_render_parse_round_trip(self):
        specs = parse_config(FIG3_SNIPPET)
        rendered = render_config(specs)
        assert parse_config(rendered) == specs

    def test_render_includes_inputs_and_params(self):
        text = render_config(parse_config("[m]\nid = a\ninput[x] = @b\nk = v\n"))
        assert "input[x] = @b" in text
        assert "k = v" in text


_IDENT = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)


@given(
    types=st.lists(_IDENT, min_size=1, max_size=4),
    params=st.dictionaries(
        _IDENT,
        st.text(
            alphabet=st.characters(
                whitelist_categories=("L", "N"), whitelist_characters=" ._/"
            ),
            min_size=1,
            max_size=12,
        ).map(str.strip).filter(bool),
        max_size=3,
    ),
)
def test_property_render_parse_round_trip(types, params):
    """Any config built from valid identifiers round-trips exactly."""
    lines = []
    for index, module_type in enumerate(types):
        lines.append(f"[{module_type}]")
        lines.append(f"id = inst{index}")
        for key, value in params.items():
            if key == "id":
                continue
            lines.append(f"{key} = {value}")
    text = "\n".join(lines) + "\n"
    specs = parse_config(text)
    assert parse_config(render_config(specs)) == specs
