"""Tests for DAG construction (the paper's section 3.3 algorithm)."""

import pytest

from repro.core import ConfigError, SimClock, build_dag, parse_config

from .helpers import build_registry


def _install_noop_hooks(ctx):
    ctx._schedule_periodic = lambda *args: None
    ctx._set_trigger = lambda *args: None


def build(text: str):
    return build_dag(
        parse_config(text),
        build_registry(),
        SimClock(),
        install_hooks=_install_noop_hooks,
    )


PIPELINE = """
[source]
id = src

[double]
id = dbl
input[input] = src.value

[sink]
id = snk
input[a] = dbl.value
"""


class TestConstruction:
    def test_linear_pipeline_builds(self):
        dag = build(PIPELINE)
        assert sorted(dag.instances) == ["dbl", "snk", "src"]

    def test_edges_record_wiring(self):
        dag = build(PIPELINE)
        edges = {(e.src_instance, e.dst_instance) for e in dag.edges}
        assert edges == {("src", "dbl"), ("dbl", "snk")}

    def test_at_syntax_subscribes_every_output(self):
        dag = build(
            "[source]\nid = a\n\n[source]\nid = b\n\n"
            "[sink]\nid = s\ninput[x] = @a\ninput[x] = @b\n"
        )
        sink_ctx = dag.contexts["s"]
        assert len(sink_ctx.inputs["x"]) == 2

    def test_topological_order_respects_edges(self):
        dag = build(PIPELINE)
        order = dag.topological_order()
        assert order.index("src") < order.index("dbl") < order.index("snk")

    def test_initialization_happens_in_dependency_waves(self):
        # A diamond: src feeds two doubles which feed one sink.
        dag = build(
            "[source]\nid = src\n\n"
            "[double]\nid = d1\ninput[input] = src.value\n\n"
            "[double]\nid = d2\ninput[input] = src.value\n\n"
            "[sink]\nid = s\ninput[a] = d1.value\ninput[b] = d2.value\n"
        )
        assert len(dag.instances) == 4
        assert dag.contexts["s"].connection_count() == 2

    def test_connection_owner_is_recorded(self):
        dag = build(PIPELINE)
        conn = dag.contexts["dbl"].inputs["input"].single()
        assert conn.owner_instance == "dbl"

    def test_to_dot_mentions_every_instance(self):
        dot = build(PIPELINE).to_dot()
        for name in ("src", "dbl", "snk"):
            assert name in dot
        assert dot.startswith("digraph")

    def test_to_dot_escapes_quotes_and_backslashes(self):
        # The config parser rejects exotic ids, but programmatically
        # built specs can carry them; the dot rendering must stay valid.
        from repro.core import InstanceSpec

        dag = build_dag(
            [InstanceSpec("source", 'we"ird\\name')],
            build_registry(),
            SimClock(),
            install_hooks=_install_noop_hooks,
        )
        dot = dag.to_dot()
        assert '"we\\"ird\\\\name"' in dot
        # No unescaped quote may terminate an id early: every line's
        # quoted strings stay balanced.
        for line in dot.splitlines():
            assert line.count('"') - line.count('\\"') * 2 in (0, 2, 4)

    def test_to_dot_run_stats_annotation(self):
        from repro.telemetry import RunStats

        dag = build(PIPELINE)
        stats = {"src": RunStats(12, 0.0005, 0)}
        dot = dag.to_dot(run_stats=stats)
        assert "12 runs, 0.500 ms mean" in dot
        # Instances without stats render unannotated.
        assert "dbl\\n(double)" in dot

    def test_instance_lookup(self):
        dag = build(PIPELINE)
        assert dag.instance("src").instance_id == "src"
        with pytest.raises(ConfigError):
            dag.instance("nope")


class TestConstructionFailures:
    def test_unknown_upstream_instance(self):
        with pytest.raises(ConfigError, match="unknown instance"):
            build("[sink]\nid = s\ninput[a] = ghost.value\n")

    def test_missing_output_name(self):
        with pytest.raises(ConfigError, match="does not exist"):
            build("[source]\nid = src\n\n[sink]\nid = s\ninput[a] = src.wrong\n")

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigError, match="own outputs"):
            build("[double]\nid = d\ninput[input] = d.value\n")

    def test_cycle_is_detected(self):
        with pytest.raises(ConfigError, match="cycle or missing"):
            build(
                "[double]\nid = a\ninput[input] = b.value\n\n"
                "[double]\nid = b\ninput[input] = a.value\n"
            )

    def test_at_reference_to_output_less_instance(self):
        with pytest.raises(ConfigError, match="declared no outputs"):
            build("[no_output]\nid = n\n\n[sink]\nid = s\ninput[a] = @n\n")

    def test_unknown_module_type(self):
        with pytest.raises(ConfigError, match="unknown module type"):
            build("[mystery]\nid = m\n")
