"""Tests for the assembled Hadoop cluster simulator."""

import pytest

from repro.hadoop import (
    BugKind,
    ClusterConfig,
    ExternalLoad,
    HadoopCluster,
    JobCostModel,
    JobSpec,
    MB,
)


def small_cluster(num_slaves: int = 4, seed: int = 3) -> HadoopCluster:
    return HadoopCluster(ClusterConfig(num_slaves=num_slaves, seed=seed))


def quick_job(job_id: str = "200807070001_0001", input_mb: float = 64.0) -> JobSpec:
    return JobSpec(
        job_id=job_id,
        name="quick",
        input_bytes=input_mb * MB,
        num_reduces=1,
        cost=JobCostModel(map_mb_per_cpu_s=32.0, sort_mb_per_cpu_s=32.0,
                          reduce_mb_per_cpu_s=32.0),
    )


class TestBasicOperation:
    def test_cluster_has_master_and_slaves(self):
        cluster = small_cluster(num_slaves=3)
        assert cluster.slave_names == ["slave01", "slave02", "slave03"]
        assert "master" in cluster.nodes

    def test_job_runs_to_completion(self):
        cluster = small_cluster()
        cluster.submit_job(quick_job())
        cluster.run_until(300.0)
        assert cluster.jobs_succeeded() == 1

    def test_logs_contain_lifecycle_lines(self):
        cluster = small_cluster()
        cluster.submit_job(quick_job())
        cluster.run_until(300.0)
        all_tt = "\n".join(
            cluster.tt_logs[n].text() for n in cluster.slave_names
        )
        assert "LaunchTaskAction: task_200807070001_0001_m_000000_0" in all_tt
        assert "Task task_200807070001_0001_r_000000_0 is done." in all_tt

    def test_scheduled_jobs_submit_at_their_time(self):
        cluster = small_cluster()
        spec = quick_job()
        spec.submit_time = 50.0
        cluster.schedule_job(spec)
        cluster.run_until(40.0)
        assert len(cluster.jobtracker.jobs) == 0
        cluster.run_until(60.0)
        assert len(cluster.jobtracker.jobs) == 1

    def test_time_advances_by_dt(self):
        cluster = small_cluster()
        cluster.step(1.0)
        cluster.step(1.0)
        assert cluster.time == 2.0

    def test_determinism(self):
        def run():
            cluster = small_cluster(seed=9)
            cluster.submit_job(quick_job())
            cluster.run_until(120.0)
            return cluster.tt_logs["slave01"].text(), cluster.procfs("slave01").cpu.user

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == pytest.approx(second[1])

    def test_procfs_counters_progress(self):
        cluster = small_cluster()
        cluster.submit_job(quick_job())
        cluster.run_until(60.0)
        fs = cluster.procfs("slave01")
        assert fs.cpu.total() > 0.0
        assert fs.stat.ctxt > 0.0


class TestExternalLoads:
    def test_cpu_load_consumes_cpu(self):
        cluster = small_cluster()
        cluster.add_external_load(
            ExternalLoad(node="slave01", pid=9001, cpu_cores=3.0, start_time=0.0)
        )
        cluster.run_until(30.0)
        fs = cluster.procfs("slave01")
        busy_fraction = (fs.cpu.user + fs.cpu.system) / fs.cpu.total()
        assert busy_fraction > 0.5

    def test_disk_load_stops_after_budget(self):
        budget = 50e6
        load = ExternalLoad(
            node="slave01",
            pid=9002,
            disk_write_bytes_s=100e6,
            total_write_bytes=budget,
            start_time=0.0,
        )
        cluster = small_cluster()
        cluster.add_external_load(load)
        cluster.run_until(30.0)
        assert load.written_bytes == pytest.approx(budget, rel=0.02)
        assert not load.active(cluster.time)

    def test_load_respects_time_window(self):
        load = ExternalLoad(
            node="slave01", pid=9003, cpu_cores=1.0, start_time=10.0, end_time=20.0
        )
        assert not load.active(5.0)
        assert load.active(15.0)
        assert not load.active(25.0)

    def test_hog_pid_allocator_unique(self):
        cluster = small_cluster()
        assert cluster.allocate_hog_pid() != cluster.allocate_hog_pid()


class TestBugBoard:
    def test_bug_active_only_in_window(self):
        cluster = small_cluster()
        cluster.set_bug("slave02", BugKind.MAP_HANG_1036, 100.0, 200.0)
        assert cluster.bug_for("slave02", 50.0) is None
        assert cluster.bug_for("slave02", 150.0) is BugKind.MAP_HANG_1036
        assert cluster.bug_for("slave02", 250.0) is None

    def test_bug_scoped_to_node(self):
        cluster = small_cluster()
        cluster.set_bug("slave02", BugKind.REDUCE_HANG_2080, 0.0)
        assert cluster.bug_for("slave01", 10.0) is None

    def test_open_ended_bug(self):
        cluster = small_cluster()
        cluster.set_bug("slave02", BugKind.SHUFFLE_FAIL_1152, 10.0)
        assert cluster.bug_for("slave02", 1e9) is BugKind.SHUFFLE_FAIL_1152


class TestScheduledActions:
    def test_action_runs_at_time(self):
        cluster = small_cluster()
        fired = []
        cluster.at(5.0, lambda c: fired.append(c.time))
        cluster.run_until(4.0)
        assert fired == []
        cluster.run_until(6.0)
        assert fired == [5.0]

    def test_actions_run_in_time_order(self):
        cluster = small_cluster()
        fired = []
        cluster.at(7.0, lambda c: fired.append("late"))
        cluster.at(3.0, lambda c: fired.append("early"))
        cluster.run_until(10.0)
        assert fired == ["early", "late"]


class TestFairness:
    def test_work_spreads_across_slaves(self):
        cluster = small_cluster(num_slaves=6)
        for i in range(6):
            spec = quick_job(job_id=f"200807070001_{i:04d}", input_mb=256.0)
            cluster.submit_job(spec)
        cluster.run_until(400.0)
        launches = {
            n: sum(
                1 for r in cluster.tt_logs[n].records() if "LaunchTaskAction" in r.line
            )
            for n in cluster.slave_names
        }
        assert min(launches.values()) > 0
