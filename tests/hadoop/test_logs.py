"""Tests for Hadoop log formatting and the DaemonLog store."""

import pytest

from repro.hadoop import (
    DaemonLog,
    TASKTRACKER_CLASS,
    format_line,
    format_timestamp,
    parse_timestamp,
)


class TestTimestamps:
    def test_round_trip_whole_seconds(self):
        assert parse_timestamp(format_timestamp(125.0)) == pytest.approx(125.0)

    def test_round_trip_with_milliseconds(self):
        assert parse_timestamp(format_timestamp(3.25)) == pytest.approx(3.25)

    def test_matches_paper_figure5_format(self):
        # Figure 5: "2008-04-15 14:23:15,324"
        text = format_timestamp(23 * 60 + 15 + 0.324)
        assert text == "2008-04-15 14:23:15,324"

    def test_parse_without_millis(self):
        assert parse_timestamp("2008-04-15 14:00:10") == pytest.approx(10.0)

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_timestamp("not a timestamp")


class TestFormatLine:
    def test_full_line_shape(self):
        line = format_line(0.0, "INFO", TASKTRACKER_CLASS, "LaunchTaskAction: task_x")
        assert line == (
            "2008-04-15 14:00:00,000 INFO org.apache.hadoop.mapred.TaskTracker: "
            "LaunchTaskAction: task_x"
        )


class TestDaemonLog:
    def test_append_and_records(self):
        log = DaemonLog("slave01", "tasktracker")
        log.append(1.0, "INFO", TASKTRACKER_CLASS, "hello")
        assert len(log) == 1
        assert log.records()[0].time == 1.0
        assert "hello" in log.records()[0].line

    def test_read_from_returns_new_records_and_offset(self):
        log = DaemonLog("slave01", "tasktracker")
        for i in range(3):
            log.append(float(i), "INFO", TASKTRACKER_CLASS, f"line{i}")
        records, offset = log.read_from(0)
        assert len(records) == 3 and offset == 3
        log.append(3.0, "INFO", TASKTRACKER_CLASS, "line3")
        records, offset = log.read_from(offset)
        assert len(records) == 1 and offset == 4

    def test_read_from_negative_offset(self):
        log = DaemonLog("slave01", "tasktracker")
        log.append(0.0, "INFO", TASKTRACKER_CLASS, "x")
        records, offset = log.read_from(-5)
        assert len(records) == 1

    def test_read_from_past_end_is_empty(self):
        log = DaemonLog("slave01", "tasktracker")
        records, offset = log.read_from(10)
        assert records == [] and offset == 0

    def test_text_joins_lines(self):
        log = DaemonLog("slave01", "tasktracker")
        log.append(0.0, "INFO", TASKTRACKER_CLASS, "a")
        log.append(1.0, "WARN", TASKTRACKER_CLASS, "b")
        assert log.text().count("\n") == 1

    def test_last_time(self):
        log = DaemonLog("slave01", "tasktracker")
        assert log.last_time() is None
        log.append(9.0, "INFO", TASKTRACKER_CLASS, "x")
        assert log.last_time() == 9.0
