"""Tests for the SALSA-style log parser (paper section 4.4, Figure 5)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.hadoop import (
    ClusterConfig,
    HadoopCluster,
    JobSpec,
    MB,
    NodeLogParser,
    WHITEBOX_STATE_INDEX,
    WHITEBOX_STATES,
    format_line,
)
from repro.hadoop.logs import DATANODE_CLASS, TASKTRACKER_CLASS


def tt_line(t: float, message: str) -> str:
    return format_line(t, "INFO", TASKTRACKER_CLASS, message)


def dn_line(t: float, message: str) -> str:
    return format_line(t, "INFO", DATANODE_CLASS, message)


def state(vector: np.ndarray, name: str) -> float:
    return vector[WHITEBOX_STATE_INDEX[name]]


class TestFigure5Semantics:
    def test_paper_figure5_snippet(self):
        """The exact scenario from the paper's Figure 5: a map launch at
        14:23:15 and a reduce launch at 14:23:16 produce MapTask=1 at the
        first instant and MapTask=1, ReduceTask=1 at the second."""
        parser = NodeLogParser("slave01")
        base = 23 * 60 + 15  # 14:23:15 relative to the 14:00:00 epoch
        parser.feed_line(tt_line(base, "LaunchTaskAction: task_0001_m_000096_0"))
        parser.feed_line(tt_line(base + 1, "LaunchTaskAction: task_0001_r_000003_0"))
        first = parser.state_vector(base)
        second = parser.state_vector(base + 1)
        assert state(first, "MapTask") == 1 and state(first, "ReduceTask") == 0
        assert state(second, "MapTask") == 1 and state(second, "ReduceTask") == 1

    def test_map_interval_closes_on_done(self):
        parser = NodeLogParser("n")
        parser.feed_line(tt_line(10, "LaunchTaskAction: task_0001_m_000000_0"))
        parser.feed_line(tt_line(40, "Task task_0001_m_000000_0 is done."))
        assert state(parser.state_vector(10), "MapTask") == 1
        assert state(parser.state_vector(39), "MapTask") == 1
        assert state(parser.state_vector(40), "MapTask") == 0

    def test_removed_task_also_closes_interval(self):
        parser = NodeLogParser("n")
        parser.feed_line(tt_line(10, "LaunchTaskAction: task_0001_m_000000_0"))
        parser.feed_line(
            tt_line(30, "Removing task 'task_0001_m_000000_0' from running tasks")
        )
        assert state(parser.state_vector(35), "MapTask") == 0

    def test_concurrent_tasks_counted(self):
        parser = NodeLogParser("n")
        for i in range(3):
            parser.feed_line(tt_line(5, f"LaunchTaskAction: task_0001_m_{i:06d}_0"))
        assert state(parser.state_vector(6), "MapTask") == 3


class TestReducePhases:
    def _start_reduce(self, parser, t=0):
        parser.feed_line(tt_line(t, "LaunchTaskAction: task_0001_r_000001_0"))

    def test_reduce_defaults_to_copy_phase(self):
        parser = NodeLogParser("n")
        self._start_reduce(parser)
        vector = parser.state_vector(1)
        assert state(vector, "ReduceTask") == 1
        assert state(vector, "ReduceCopy") == 1

    def test_phase_transitions_follow_progress_lines(self):
        parser = NodeLogParser("n")
        self._start_reduce(parser, t=0)
        parser.feed_line(
            tt_line(5, "task_0001_r_000001_0 0.10% reduce > copy (1 of 4 at 1.00 MB/s) >")
        )
        parser.feed_line(tt_line(20, "task_0001_r_000001_0 0.50% reduce > sort"))
        parser.feed_line(tt_line(30, "task_0001_r_000001_0 0.80% reduce > reduce"))
        assert state(parser.state_vector(10), "ReduceCopy") == 1
        assert state(parser.state_vector(25), "ReduceSort") == 1
        assert state(parser.state_vector(35), "ReduceReduce") == 1
        # Exactly one phase at a time.
        for second in (10, 25, 35):
            vector = parser.state_vector(second)
            phases = (
                state(vector, "ReduceCopy")
                + state(vector, "ReduceSort")
                + state(vector, "ReduceReduce")
            )
            assert phases == 1

    def test_phase_state_ends_with_task(self):
        parser = NodeLogParser("n")
        self._start_reduce(parser, t=0)
        parser.feed_line(tt_line(10, "task_0001_r_000001_0 0.80% reduce > reduce"))
        parser.feed_line(tt_line(20, "Task task_0001_r_000001_0 is done."))
        assert state(parser.state_vector(25), "ReduceReduce") == 0


class TestDataNodeStates:
    def test_write_block_interval(self):
        parser = NodeLogParser("n")
        parser.feed_line(
            dn_line(10, "Receiving block blk_1001 src: /10.0.0.1:50010 dest: /10.0.0.2:50010")
        )
        parser.feed_line(dn_line(30, "Received block blk_1001 of size 1000 from /10.0.0.1"))
        assert state(parser.state_vector(15), "WriteBlock") == 1
        assert state(parser.state_vector(30), "WriteBlock") == 0

    def test_read_block_is_instant(self):
        parser = NodeLogParser("n")
        parser.feed_line(dn_line(12.3, "10.0.0.2:50010 Served block blk_1002 to /10.0.0.5"))
        assert state(parser.state_vector(12), "ReadBlock") == 1
        assert state(parser.state_vector(13), "ReadBlock") == 0

    def test_delete_block_is_instant(self):
        parser = NodeLogParser("n")
        parser.feed_line(
            dn_line(50, "Deleting block blk_1003 file /hadoop/dfs/data/current/blk_1003")
        )
        assert state(parser.state_vector(50), "DeleteBlock") == 1
        assert state(parser.state_vector(51), "DeleteBlock") == 0

    def test_multiple_reads_in_one_second(self):
        parser = NodeLogParser("n")
        for i in range(3):
            parser.feed_line(
                dn_line(7.0 + i * 0.2, f"x Served block blk_{2000 + i} to /10.0.0.5")
            )
        assert state(parser.state_vector(7), "ReadBlock") == 3


class TestRobustness:
    def test_unknown_lines_are_skipped(self):
        parser = NodeLogParser("n")
        parser.feed_line("complete garbage")
        parser.feed_line(format_line(1.0, "INFO", "org.apache.hadoop.ipc.Server", "noise"))
        assert parser.lines_skipped == 2
        assert parser.lines_parsed == 0

    def test_done_without_launch_is_ignored(self):
        parser = NodeLogParser("n")
        parser.feed_line(tt_line(5, "Task task_0001_m_000000_0 is done."))
        assert state(parser.state_vector(5), "MapTask") == 0

    def test_watermark_tracks_latest_time(self):
        parser = NodeLogParser("n")
        assert parser.watermark() is None
        parser.feed_line(tt_line(10, "LaunchTaskAction: task_0001_m_000000_0"))
        parser.feed_line(tt_line(5, "LaunchTaskAction: task_0001_m_000001_0"))
        assert parser.watermark() == 10.0

    def test_prune_preserves_counts_after_cutoff(self):
        parser = NodeLogParser("n")
        parser.feed_line(tt_line(0, "LaunchTaskAction: task_0001_m_000000_0"))
        parser.feed_line(tt_line(10, "Task task_0001_m_000000_0 is done."))
        parser.feed_line(tt_line(20, "LaunchTaskAction: task_0001_m_000001_0"))
        before = parser.state_vector(25).copy()
        parser.prune(15.0)
        assert np.array_equal(parser.state_vector(25), before)

    def test_state_vectors_matrix_shape(self):
        parser = NodeLogParser("n")
        matrix = parser.state_vectors(0, 10)
        assert matrix.shape == (10, len(WHITEBOX_STATES))


class TestAgainstSimulator:
    def test_parser_counts_match_actual_running_attempts(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=4, seed=5))
        cluster.submit_job(
            JobSpec(
                job_id="200807070001_0001",
                name="job",
                input_bytes=256.0 * MB,
                num_reduces=2,
            )
        )
        running = {n: [] for n in cluster.slave_names}

        def on_tick(c):
            for n in c.slave_names:
                running[n].append(len(c.trackers[n].running))

        cluster.run_until(200.0, on_tick=on_tick)
        for node in cluster.slave_names:
            parser = NodeLogParser(node)
            for record in cluster.tt_logs[node].records():
                parser.feed_line(record.line)
            for second in range(0, 200, 7):
                vector = parser.state_vector(second)
                observed = state(vector, "MapTask") + state(vector, "ReduceTask")
                assert observed == running[node][second]


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 60), st.integers(0, 20)),
        min_size=1,
        max_size=20,
    )
)
def test_property_counts_are_bounded_by_launches(tasks):
    """For any launch/done schedule, per-second counts are within
    [0, number of launches] and never negative."""
    parser = NodeLogParser("n")
    events = []
    for index, (start, duration, _) in enumerate(tasks):
        events.append((start, f"LaunchTaskAction: task_0001_m_{index:06d}_0"))
        events.append((start + duration, f"Task task_0001_m_{index:06d}_0 is done."))
    events.sort(key=lambda e: e[0])
    for t, message in events:
        parser.feed_line(tt_line(float(t), message))
    for second in range(0, 120, 5):
        count = state(parser.state_vector(second), "MapTask")
        assert 0 <= count <= len(tasks)
