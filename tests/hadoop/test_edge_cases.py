"""Corner cases of the cluster simulator."""


from repro.hadoop import (
    ClusterConfig,
    HadoopCluster,
    JobSpec,
    JobStatus,
    MB,
)
from repro.sim import NodeSpec


def job(job_id="200807070001_0001", input_mb=64.0, reduces=1, **cost):
    from repro.hadoop import JobCostModel

    return JobSpec(
        job_id=job_id,
        name="edge",
        input_bytes=input_mb * MB,
        num_reduces=reduces,
        cost=JobCostModel(**cost) if cost else JobCostModel(),
    )


class TestSmallClusters:
    def test_single_slave_cluster_completes_jobs(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=1, seed=2))
        cluster.submit_job(job(input_mb=32.0))
        cluster.run_until(300.0)
        assert cluster.jobs_succeeded() == 1

    def test_replication_clamps_to_cluster_size(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=2, replication=3, seed=2))
        cluster.submit_job(job())
        cluster.run_until(300.0)
        for block in cluster.namenode.blocks.values():
            assert len(block.replicas) <= 2

    def test_replication_one(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=4, replication=1, seed=2))
        cluster.submit_job(job(input_mb=128.0))
        cluster.run_until(400.0)
        assert cluster.jobs_succeeded() == 1


class TestJobShapes:
    def test_tiny_job_one_map_one_reduce(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=4))
        cluster.submit_job(job(input_mb=1.0))
        cluster.run_until(200.0)
        assert cluster.jobs_succeeded() == 1

    def test_map_only_output_ratio_zero(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=4))
        cluster.submit_job(job(input_mb=64.0, map_output_ratio=0.0))
        cluster.run_until(300.0)
        assert cluster.jobs_succeeded() == 1

    def test_many_reduces_for_few_maps(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=4))
        cluster.submit_job(job(input_mb=64.0, reduces=6))
        cluster.run_until(400.0)
        assert cluster.jobs_succeeded() == 1

    def test_empty_workload_idles_quietly(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=4))
        cluster.run_until(120.0)
        assert cluster.jobs_completed() == 0
        fs = cluster.procfs("slave01")
        busy = (fs.cpu.user + fs.cpu.system) / fs.cpu.total()
        assert busy < 0.1
        for node in cluster.slave_names:
            assert len(cluster.tt_logs[node]) == 0

    def test_two_jobs_fifo_ordering(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=4))
        first = cluster.submit_job(job("200807070001_0001", input_mb=128.0))
        second = cluster.submit_job(job("200807070001_0002", input_mb=128.0))
        cluster.run_until(600.0)
        assert first.status is JobStatus.SUCCEEDED
        assert second.status is JobStatus.SUCCEEDED
        assert first.finish_time <= second.finish_time


class TestHardwareVariants:
    def test_slow_disk_cluster_still_completes(self):
        config = ClusterConfig(
            num_slaves=3,
            seed=4,
            node_spec=NodeSpec(disk_read_mb_s=10.0, disk_write_mb_s=8.0),
        )
        cluster = HadoopCluster(config)
        cluster.submit_job(job(input_mb=64.0))
        cluster.run_until(600.0)
        assert cluster.jobs_succeeded() == 1

    def test_single_core_nodes(self):
        config = ClusterConfig(
            num_slaves=3, seed=4, node_spec=NodeSpec(cpu_cores=1.0)
        )
        cluster = HadoopCluster(config)
        cluster.submit_job(job(input_mb=64.0))
        cluster.run_until(900.0)
        assert cluster.jobs_succeeded() == 1

    def test_slow_network_throttles_but_completes(self):
        config = ClusterConfig(
            num_slaves=3, seed=4, node_spec=NodeSpec(nic_mbit_s=10.0)
        )
        cluster = HadoopCluster(config)
        cluster.submit_job(job(input_mb=64.0, reduces=2))
        cluster.run_until(900.0)
        assert cluster.jobs_succeeded() == 1


class TestFractionalTicks:
    def test_half_second_ticks_match_whole_second_throughput(self):
        def run(dt):
            cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=4))
            cluster.submit_job(job(input_mb=64.0))
            while cluster.time < 300.0:
                cluster.step(dt)
            return cluster.jobs_succeeded()

        assert run(0.5) == run(1.0) == 1
