"""Tests for the MapReduce engine through the cluster facade."""


from repro.hadoop import (
    BugKind,
    ClusterConfig,
    HadoopCluster,
    JobCostModel,
    JobSpec,
    JobStatus,
    MB,
    TaskStatus,
)
from repro.hadoop.mapreduce import TASK_TIMEOUT_S


def cluster_with_job(
    num_slaves: int = 4,
    input_mb: float = 128.0,
    reduces: int = 2,
    seed: int = 5,
):
    cluster = HadoopCluster(ClusterConfig(num_slaves=num_slaves, seed=seed))
    spec = JobSpec(
        job_id="200807070001_0001",
        name="job",
        input_bytes=input_mb * MB,
        num_reduces=reduces,
        cost=JobCostModel(
            map_mb_per_cpu_s=16.0, sort_mb_per_cpu_s=16.0, reduce_mb_per_cpu_s=16.0
        ),
    )
    job = cluster.submit_job(spec)
    return cluster, job


class TestJobLifecycle:
    def test_maps_then_reduces_then_done(self):
        cluster, job = cluster_with_job()
        cluster.run_until(400.0)
        assert job.status is JobStatus.SUCCEEDED
        assert job.maps_done == len(job.maps)
        assert job.reduces_done == len(job.reduces)

    def test_finish_time_recorded(self):
        cluster, job = cluster_with_job()
        cluster.run_until(400.0)
        assert job.finish_time is not None
        assert job.finish_time > job.submit_time

    def test_map_outputs_registered(self):
        cluster, job = cluster_with_job()
        cluster.run_until(400.0)
        assert set(job.map_outputs) == set(range(len(job.maps)))
        for output in job.map_outputs.values():
            assert output.total_bytes > 0

    def test_input_blocks_deleted_after_job(self):
        cluster, job = cluster_with_job()
        cluster.run_until(400.0)
        deleting = sum(
            1
            for n in cluster.slave_names
            for r in cluster.dn_logs[n].records()
            if "Deleting block" in r.line
        )
        assert deleting > 0

    def test_reduce_phase_progression_in_logs(self):
        cluster, job = cluster_with_job()
        cluster.run_until(400.0)
        text = "\n".join(cluster.tt_logs[n].text() for n in cluster.slave_names)
        copy_pos = text.find("reduce > copy")
        sort_pos = text.find("reduce > sort")
        reduce_pos = text.find("reduce > reduce")
        assert 0 <= copy_pos < sort_pos < reduce_pos

    def test_output_block_written_with_replicas(self):
        cluster, job = cluster_with_job()
        cluster.run_until(400.0)
        assert job.output_blocks
        received = sum(
            1
            for n in cluster.slave_names
            for r in cluster.dn_logs[n].records()
            if "Received block" in r.line
        )
        assert received > 0


class TestBugManifestations:
    def test_map_hang_1036_blocks_completions_on_node(self):
        cluster, job = cluster_with_job(num_slaves=4, input_mb=512.0)
        cluster.set_bug("slave02", BugKind.MAP_HANG_1036, 0.0)
        cluster.run_until(200.0)
        done_lines = [
            r.line
            for r in cluster.tt_logs["slave02"].records()
            if "_m_" in r.line and "is done" in r.line
        ]
        assert done_lines == []
        # The hung attempts burn CPU on the sick node.
        fs = cluster.procfs("slave02")
        assert fs.cpu.user > 50.0

    def test_map_hang_timeout_triggers_kill_and_retry(self):
        cluster, job = cluster_with_job(num_slaves=4, input_mb=128.0)
        cluster.set_bug("slave02", BugKind.MAP_HANG_1036, 0.0)
        cluster.run_until(TASK_TIMEOUT_S + 200.0)
        killed = [
            r.line
            for r in cluster.tt_logs["slave02"].records()
            if "Killing" in r.line
        ]
        # Either no map ever landed there, or the hang was killed.
        launched = any(
            "LaunchTaskAction" in r.line and "_m_" in r.line
            for r in cluster.tt_logs["slave02"].records()
        )
        if launched:
            assert killed
        assert job.status is JobStatus.SUCCEEDED

    def test_shuffle_fail_1152_crash_loops_and_job_survives(self):
        cluster, job = cluster_with_job(num_slaves=4, input_mb=256.0, reduces=3)
        cluster.set_bug("slave02", BugKind.SHUFFLE_FAIL_1152, 0.0)
        cluster.run_until(600.0)
        failures = [
            r.line
            for r in cluster.tt_logs["slave02"].records()
            if "Error from" in r.line and "_r_" in r.line
        ]
        launched_reduce = any(
            "LaunchTaskAction" in r.line and "_r_" in r.line
            for r in cluster.tt_logs["slave02"].records()
        )
        if launched_reduce:
            assert failures
        assert job.status is JobStatus.SUCCEEDED

    def test_failed_node_avoided_on_retry(self):
        cluster, job = cluster_with_job(num_slaves=4, input_mb=256.0, reduces=3)
        cluster.set_bug("slave02", BugKind.SHUFFLE_FAIL_1152, 0.0)
        cluster.run_until(600.0)
        for task in job.reduces:
            assert task.status is TaskStatus.SUCCEEDED
            assert task.finished_on != "slave02" or "slave02" not in task.failed_on

    def test_reduce_hang_2080_wedges_attempts(self):
        cluster, job = cluster_with_job(num_slaves=4, input_mb=256.0, reduces=3)
        cluster.set_bug("slave02", BugKind.REDUCE_HANG_2080, 0.0)
        cluster.run_until(500.0)
        launched_reduce = any(
            "LaunchTaskAction" in r.line and "_r_" in r.line
            for r in cluster.tt_logs["slave02"].records()
        )
        done_reduce = any(
            "_r_" in r.line and "is done" in r.line
            for r in cluster.tt_logs["slave02"].records()
        )
        if launched_reduce:
            assert not done_reduce


class TestLocality:
    def test_majority_of_maps_run_data_local(self):
        cluster = HadoopCluster(ClusterConfig(num_slaves=6, seed=5))
        local = 0
        total = 0
        for i in range(4):
            spec = JobSpec(
                job_id=f"200807070001_{i:04d}",
                name="job",
                input_bytes=512.0 * MB,
                num_reduces=1,
            )
            job = cluster.submit_job(spec)
            cluster.run_until(cluster.time + 300.0)
            for task in job.maps:
                if task.status is TaskStatus.SUCCEEDED:
                    total += 1
                    if task.finished_on in task.block.replicas:
                        local += 1
        assert total > 0
        assert local / total > 0.6
