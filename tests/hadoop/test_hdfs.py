"""Tests for the HDFS substrate."""

import pytest

from repro.hadoop import DaemonLog, DataNode, NameNode


def make_hdfs(num_nodes: int = 5, replication: int = 3):
    datanodes = {}
    for i in range(num_nodes):
        name = f"slave{i + 1:02d}"
        log = DaemonLog(name, "datanode")
        datanodes[name] = DataNode(name, log, ip=f"10.0.0.{i + 2}")
    return NameNode(datanodes, replication=replication, seed=1), datanodes


class TestAllocation:
    def test_replica_count(self):
        namenode, _ = make_hdfs()
        block = namenode.allocate(1000.0)
        assert len(block.replicas) == 3

    def test_replicas_are_distinct_nodes(self):
        namenode, _ = make_hdfs()
        for _ in range(20):
            block = namenode.allocate(1000.0)
            assert len(set(block.replicas)) == len(block.replicas)

    def test_preferred_node_gets_first_replica(self):
        namenode, _ = make_hdfs()
        block = namenode.allocate(1000.0, preferred="slave03")
        assert block.replicas[0] == "slave03"

    def test_replication_clamped_to_cluster_size(self):
        namenode, _ = make_hdfs(num_nodes=2, replication=3)
        block = namenode.allocate(1000.0)
        assert len(block.replicas) == 2

    def test_blocks_stored_on_datanodes(self):
        namenode, datanodes = make_hdfs()
        block = namenode.allocate(1000.0)
        for node in block.replicas:
            assert datanodes[node].has_block(block.block_id)

    def test_block_ids_unique(self):
        namenode, _ = make_hdfs()
        ids = {namenode.allocate(10.0).block_id for _ in range(50)}
        assert len(ids) == 50

    def test_block_name_format(self):
        namenode, _ = make_hdfs()
        block = namenode.allocate(10.0)
        assert block.name == f"blk_{block.block_id}"

    def test_materialize_input(self):
        namenode, _ = make_hdfs()
        blocks = namenode.materialize_input([100.0, 200.0])
        assert [b.size for b in blocks] == [100.0, 200.0]


class TestReads:
    def test_local_replica_preferred(self):
        namenode, _ = make_hdfs()
        block = namenode.allocate(1000.0, preferred="slave02")
        assert namenode.choose_read_replica(block, "slave02") == "slave02"

    def test_remote_read_picks_a_replica(self):
        namenode, _ = make_hdfs(num_nodes=5, replication=2)
        block = namenode.allocate(1000.0)
        non_replica = next(
            n for n in ("slave01", "slave02", "slave03", "slave04", "slave05")
            if n not in block.replicas
        )
        chosen = namenode.choose_read_replica(block, non_replica)
        assert chosen in block.replicas


class TestLogsAndDeletion:
    def test_serve_logs_served_block_line(self):
        namenode, datanodes = make_hdfs()
        block = namenode.allocate(1000.0)
        serving = datanodes[block.replicas[0]]
        serving.log_serve(block, "10.0.0.9", now=5.0)
        assert f"Served block {block.name} to /10.0.0.9" in serving.log.records()[-1].line

    def test_receive_logs_pair(self):
        namenode, datanodes = make_hdfs()
        block = namenode.allocate(500.0)
        datanode = datanodes[block.replicas[0]]
        datanode.log_receive_start(block, "10.0.0.9", now=1.0)
        datanode.log_receive_end(block, "10.0.0.9", now=2.0)
        lines = [r.line for r in datanode.log.records()]
        assert any("Receiving block" in line for line in lines)
        assert any("Received block" in line and "of size 500" in line for line in lines)

    def test_delete_removes_and_logs_everywhere(self):
        namenode, datanodes = make_hdfs()
        block = namenode.allocate(1000.0)
        replicas = list(block.replicas)
        namenode.delete_block(block, now=9.0)
        assert block.block_id not in namenode.blocks
        for node in replicas:
            assert not datanodes[node].has_block(block.block_id)
            assert any(
                "Deleting block" in r.line for r in datanodes[node].log.records()
            )

    def test_double_delete_is_safe(self):
        namenode, datanodes = make_hdfs()
        block = namenode.allocate(1000.0)
        namenode.delete_block(block, now=1.0)
        namenode.delete_block(block, now=2.0)  # no error, no extra log
        deleting_lines = sum(
            1
            for dn in datanodes.values()
            for r in dn.log.records()
            if "Deleting block" in r.line
        )
        assert deleting_lines == 3


def test_allocation_without_datanodes_raises():
    namenode = NameNode({}, replication=3, seed=0)
    with pytest.raises(RuntimeError):
        namenode.allocate(10.0)
