"""Property-based invariants of the Hadoop simulator.

Randomized (seeded) workloads are pushed through the whole cluster; the
invariants below must hold for every schedule:

* succeeded jobs have every task succeeded and every map output placed;
* log timestamps are non-decreasing within each daemon log;
* per-tracker concurrency never exceeds the configured slots;
* launch lines dominate completion lines on every node;
* HDFS replica sets stay distinct and within the replication factor.
"""

from hypothesis import given, settings, strategies as st

from repro.hadoop import (
    ClusterConfig,
    HadoopCluster,
    JobSpec,
    JobStatus,
    MB,
    TaskStatus,
)


@st.composite
def workloads(draw):
    jobs = draw(st.integers(1, 4))
    specs = []
    for index in range(jobs):
        size_mb = draw(st.floats(16.0, 512.0))
        reduces = draw(st.integers(1, 4))
        submit = draw(st.floats(0.0, 120.0))
        spec = JobSpec(
            job_id=f"200807070001_{index:04d}",
            name=f"job{index}",
            input_bytes=size_mb * MB,
            num_reduces=reduces,
        )
        spec.submit_time = submit
        specs.append(spec)
    return specs


@given(specs=workloads(), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_cluster_invariants_hold_for_any_workload(specs, seed):
    cluster = HadoopCluster(ClusterConfig(num_slaves=4, seed=seed))
    for spec in specs:
        cluster.schedule_job(spec)

    max_running = {node: 0 for node in cluster.slave_names}

    def on_tick(c):
        for node in c.slave_names:
            max_running[node] = max(
                max_running[node], len(c.trackers[node].running)
            )

    cluster.run_until(700.0, on_tick=on_tick)

    # Concurrency bounded by slots.
    for node, peak in max_running.items():
        tracker = cluster.trackers[node]
        assert peak <= tracker.map_slots + tracker.reduce_slots

    # Jobs finish (no faults injected) with complete task sets.
    for job in cluster.jobtracker.completed_jobs:
        assert job.status is JobStatus.SUCCEEDED
        assert all(t.status is TaskStatus.SUCCEEDED for t in job.maps)
        assert all(t.status is TaskStatus.SUCCEEDED for t in job.reduces)
        assert set(job.map_outputs) == set(range(len(job.maps)))

    for node in cluster.slave_names:
        for log in (cluster.tt_logs[node], cluster.dn_logs[node]):
            times = [record.time for record in log.records()]
            assert times == sorted(times)
        launches = sum(
            1
            for record in cluster.tt_logs[node].records()
            if "LaunchTaskAction" in record.line
        )
        dones = sum(
            1
            for record in cluster.tt_logs[node].records()
            if "is done" in record.line
        )
        assert dones <= launches

    # HDFS replicas: distinct nodes, within the replication factor.
    for block in cluster.namenode.blocks.values():
        assert len(set(block.replicas)) == len(block.replicas)
        assert len(block.replicas) <= cluster.config.replication


@given(seed=st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_simulation_is_a_pure_function_of_its_seed(seed):
    def run():
        cluster = HadoopCluster(ClusterConfig(num_slaves=3, seed=seed))
        cluster.submit_job(
            JobSpec(
                job_id="200807070001_0001",
                name="job",
                input_bytes=128.0 * MB,
                num_reduces=2,
            )
        )
        cluster.run_until(200.0)
        return (
            cluster.tt_logs["slave01"].text(),
            cluster.procfs("slave02").cpu.user,
            cluster.jobs_completed(),
        )

    first = run()
    second = run()
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]
