"""Tests for job specs and task id handling."""

import pytest

from repro.hadoop import BLOCK_SIZE, MB, JobCostModel, JobSpec, TaskKind, parse_task_id, task_id


def make_spec(input_mb: float, reduces: int = 2) -> JobSpec:
    return JobSpec(
        job_id="200807070001_0001",
        name="test",
        input_bytes=input_mb * MB,
        num_reduces=reduces,
    )


class TestJobSpec:
    def test_one_map_per_block(self):
        assert make_spec(64.0).num_maps == 1
        assert make_spec(65.0).num_maps == 2
        assert make_spec(256.0).num_maps == 4

    def test_tiny_job_has_one_map(self):
        assert make_spec(0.5).num_maps == 1

    def test_full_blocks_sized_at_block_size(self):
        spec = make_spec(130.0)
        assert spec.map_input_bytes(0) == BLOCK_SIZE
        assert spec.map_input_bytes(1) == BLOCK_SIZE

    def test_last_block_holds_remainder(self):
        spec = make_spec(130.0)
        assert spec.map_input_bytes(2) == pytest.approx(2.0 * MB)

    def test_exact_multiple_has_no_remainder_block(self):
        spec = make_spec(128.0)
        assert spec.num_maps == 2
        assert spec.map_input_bytes(1) == BLOCK_SIZE

    def test_cost_model_defaults(self):
        cost = JobCostModel()
        assert cost.task_cpu_cores == 1.0
        assert cost.map_output_ratio == 1.0


class TestTaskIds:
    def test_render_matches_hadoop_format(self):
        rendered = task_id("200807070001_0001", TaskKind.MAP, 96, 0)
        assert rendered == "task_200807070001_0001_m_000096_0"

    def test_round_trip(self):
        rendered = task_id("200807070001_0002", TaskKind.REDUCE, 3, 1)
        job, kind, index, attempt = parse_task_id(rendered)
        assert job == "200807070001_0002"
        assert kind is TaskKind.REDUCE
        assert index == 3
        assert attempt == 1

    def test_parse_rejects_non_task(self):
        with pytest.raises(ValueError):
            parse_task_id("attempt_123_m_0_0")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_task_id("task_only")
