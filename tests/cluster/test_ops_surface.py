"""The cluster surface mounted on a real OpsServer (HTTP round trips)."""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.cluster import DaemonRuntime, MetricsFederator, write_runtime
from repro.obsv import Observatory, OpsServer
from repro.telemetry.metrics import MetricsRegistry


class StubCentral:
    def __init__(self):
        self.commands = []
        registry = MetricsRegistry()
        registry.counter("asdf_rounds_total", "Rounds.").inc(4)
        self._registry = registry

    def stats_obj(self):
        return {"rounds": 4, "nodes": {"node-01": {"connected": True}}}

    def enqueue(self, command):
        self.commands.append(command)
        return True

    def own_metrics_snapshot(self):
        return self._registry.snapshot()

    def collect_trace(self):
        return {"traceEvents": [], "otherData": {"producer": "stub"}}


@pytest.fixture()
def served(tmp_path):
    write_runtime(str(tmp_path), DaemonRuntime(
        role="node", name="node-01", pid=os.getpid(), host="127.0.0.1",
        rpc_port=4000, ops_port=1, started_wall=0.0,
    ))
    central = StubCentral()
    federator = MetricsFederator(str(tmp_path), central)
    with OpsServer(Observatory(), cluster=federator) as server:
        yield server, central


def get_json(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5.0) as response:
        return json.loads(response.read())


class TestClusterRoutes:
    def test_cluster_topology(self, served):
        server, _central = served
        doc = get_json(server, "/cluster")
        assert doc["rounds"] == 4
        (daemon,) = doc["daemons"]
        assert daemon["name"] == "node-01"
        assert daemon["alive"] is True

    def test_metrics_is_federated(self, served):
        server, _central = served
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=5.0) as response:
            body = response.read().decode()
        assert 'asdf_rounds_total{daemon="central"} 4.0' in body

    def test_status_is_cluster_wide(self, served):
        server, _central = served
        doc = get_json(server, "/status")
        assert doc["rounds"] == 4
        assert doc["daemons"][0]["name"] == "node-01"

    def test_control_round_trip(self, served):
        server, central = served
        doc = get_json(server, "/control/inject?node=node-01&kind=cpuhog")
        assert doc["queued"] is True
        assert central.commands[0]["node"] == "node-01"

    def test_control_trace(self, served):
        server, _central = served
        doc = get_json(server, "/control/trace")
        assert doc["otherData"]["producer"] == "stub"

    def test_without_cluster_routes_404(self):
        with OpsServer(Observatory()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get_json(server, "/cluster")
            assert excinfo.value.code == 404
