"""End-to-end cluster test: real OS processes, real sockets, one bench.

This is the acceptance test of cluster mode: a 3-daemon deployment plus
central is spawned as actual subprocesses, driven through the measured
scenario (sustain, inject, SIGKILL + respawn), and the committed bench
contract is asserted on the artifact it produces.
"""

import json
import os
import threading

import pytest

from repro.cluster import CLUSTER_BENCH_FORMAT, ClusterLauncher, run_drive


@pytest.fixture(scope="module")
def bench(tmp_path_factory):
    state_dir = str(tmp_path_factory.mktemp("cluster-state"))
    out_dir = str(tmp_path_factory.mktemp("cluster-out"))
    launcher = ClusterLauncher(state_dir, nodes=3, interval_s=0.2)
    launcher.up()
    try:
        assert launcher.wait_ready(timeout_s=60.0), "cluster never published"
        # The supervisor must run during the drive: it is what respawns
        # the SIGKILLed daemon.
        supervisor = threading.Thread(target=launcher.supervise, daemon=True)
        supervisor.start()
        result = run_drive(state_dir, out_dir, sustain_s=2.0, shutdown=True)
        supervisor.join(timeout=30.0)
        yield result, out_dir
    finally:
        launcher.shutdown()


class TestClusterBench:
    def test_artifact_written_and_tagged(self, bench):
        result, out_dir = bench
        path = os.path.join(out_dir, "BENCH_cluster.json")
        with open(path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk["format"] == CLUSTER_BENCH_FORMAT
        assert on_disk["nodes"] == 3
        assert result["format"] == CLUSTER_BENCH_FORMAT

    def test_scenario_passed(self, bench):
        result, _ = bench
        assert result["failures"] == []
        assert result["ok"] is True

    def test_sustained_sampling_measured(self, bench):
        result, _ = bench
        assert result["samples"]["measured"] > 0
        assert result["samples"]["per_sec"] > 0

    def test_fault_detected_online(self, bench):
        result, _ = bench
        assert result["fault"]["node"] == "node-01"
        assert result["fault"]["detection_s"] is not None
        assert result["fault"]["detection_s"] < 30.0

    def test_kill_respawn_reconnect(self, bench):
        result, _ = bench
        reconnect = result["reconnect"]
        assert reconnect["reconnected"] is True
        assert reconnect["respawned_pid"] != reconnect["killed_pid"]
        assert reconnect["downtime_s"] < 30.0

    def test_trace_spans_multiple_real_pids(self, bench):
        result, out_dir = bench
        assert result["trace"]["multi_pid_traces"] >= 1
        assert len(result["trace"]["distinct_pids"]) >= 2
        trace_path = os.path.join(out_dir, "trace_cluster.json")
        with open(trace_path, encoding="utf-8") as fh:
            doc = json.load(fh)
        pids = {
            event["pid"] for event in doc["traceEvents"]
            if event.get("ph") == "X"
        }
        assert len(pids) >= 2
