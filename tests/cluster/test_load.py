"""Synthetic wall-clock load generation for live collection daemons."""

import pytest

from repro.cluster import SyntheticNodeLoad
from repro.cluster.load import LOAD_FAULTS


class TestBaseline:
    def test_first_advance_primes_only(self):
        load = SyntheticNodeLoad("n1", seed=7)
        load.advance_to(100.0)
        assert load.procfs.cpu.user == 0.0

    def test_counters_accrue_monotonically(self):
        load = SyntheticNodeLoad("n1", seed=7)
        load.advance_to(100.0)
        load.advance_to(101.0)
        first = (load.procfs.cpu.user, load.procfs.disk.sectors_written)
        load.advance_to(102.0)
        assert load.procfs.cpu.user > first[0]
        assert load.procfs.disk.sectors_written > first[1]

    def test_non_advancing_clock_is_ignored(self):
        load = SyntheticNodeLoad("n1", seed=7)
        load.advance_to(100.0)
        load.advance_to(101.0)
        user = load.procfs.cpu.user
        load.advance_to(100.5)  # clock went backwards: no accrual
        assert load.procfs.cpu.user == user

    def test_seed_fallback_is_deterministic(self):
        a = SyntheticNodeLoad("node-01")
        b = SyntheticNodeLoad("node-01")
        for load in (a, b):
            load.advance_to(0.0)
            load.advance_to(10.0)
        assert a.procfs.cpu.user == b.procfs.cpu.user


def busy_fraction(load, start, end):
    """Run [start, end] and return the busy share of CPU time."""
    load.advance_to(start)
    before_busy = load.procfs.cpu.user + load.procfs.cpu.system
    before_idle = load.procfs.cpu.idle
    load.advance_to(end)
    busy = load.procfs.cpu.user + load.procfs.cpu.system - before_busy
    idle = load.procfs.cpu.idle - before_idle
    return busy / (busy + idle)


class TestFaults:
    def test_cpuhog_raises_busy_fraction(self):
        quiet = SyntheticNodeLoad("n1", seed=3)
        loud = SyntheticNodeLoad("n1", seed=3)
        loud.inject("cpuhog", intensity=1.0)
        assert busy_fraction(loud, 0.0, 10.0) > \
            busy_fraction(quiet, 0.0, 10.0) + 0.5

    def test_diskhog_raises_sector_rate(self):
        quiet = SyntheticNodeLoad("n1", seed=3)
        loud = SyntheticNodeLoad("n1", seed=3)
        loud.inject("diskhog", intensity=1.0)
        for load in (quiet, loud):
            load.advance_to(0.0)
            load.advance_to(10.0)
        assert loud.procfs.disk.sectors_written > \
            quiet.procfs.disk.sectors_written * 10

    def test_clear_restores_baseline(self):
        load = SyntheticNodeLoad("n1", seed=3)
        load.inject("cpuhog")
        load.clear()
        assert load.active_fault is None
        assert busy_fraction(load, 0.0, 10.0) < 0.3

    def test_unknown_fault_rejected(self):
        load = SyntheticNodeLoad("n1")
        with pytest.raises(ValueError, match="unknown load fault"):
            load.inject("packetloss")

    def test_intensity_clamped(self):
        load = SyntheticNodeLoad("n1")
        load.inject("cpuhog", intensity=7.5)
        assert load.intensity == 1.0

    def test_catalog_names(self):
        assert LOAD_FAULTS == ("cpuhog", "diskhog")
