"""Metrics federation: re-rendering scraped snapshots, cluster views."""

import os

from repro.cluster import (
    DaemonRuntime,
    MetricsFederator,
    render_snapshot_prometheus,
    write_runtime,
)
from repro.telemetry.metrics import MetricsRegistry


def make_snapshot():
    registry = MetricsRegistry()
    registry.counter(
        "asdf_things_total", "Things.", labels={"kind": "a"}
    ).inc(3)
    registry.histogram(
        "asdf_lat_seconds", "Latency.", labels={"svc": "x"}
    ).observe(0.2)
    return registry.snapshot()


class TestRenderSnapshot:
    def test_series_carry_extra_labels(self):
        text = render_snapshot_prometheus(
            make_snapshot(), {"daemon": "node-01"}
        )
        assert (
            'asdf_things_total{daemon="node-01",kind="a"} 3.0' in text
        )

    def test_help_and_type_lines(self):
        text = render_snapshot_prometheus(make_snapshot())
        assert "# HELP asdf_things_total Things." in text
        assert "# TYPE asdf_things_total counter" in text
        assert "# TYPE asdf_lat_seconds histogram" in text

    def test_histograms_expand_to_buckets(self):
        text = render_snapshot_prometheus(make_snapshot(), {"daemon": "n"})
        assert 'asdf_lat_seconds_bucket{daemon="n",le="+Inf",svc="x"} 1' \
            in text
        assert 'asdf_lat_seconds_sum{daemon="n",svc="x"} 0.2' in text
        assert 'asdf_lat_seconds_count{daemon="n",svc="x"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_snapshot_prometheus({}) == ""


class StubCentral:
    """Duck-typed central: canned stats, recorded commands."""

    def __init__(self):
        self.commands = []
        self.stats = {
            "rounds": 5,
            "nodes": {"node-01": {"connected": True, "samples": 9}},
        }

    def stats_obj(self):
        return self.stats

    def enqueue(self, command):
        self.commands.append(command)
        return True

    def own_metrics_snapshot(self):
        return make_snapshot()

    def collect_trace(self):
        return {"traceEvents": []}


def publish(state_dir, name, role, pid):
    write_runtime(state_dir, DaemonRuntime(
        role=role, name=name, pid=pid, host="127.0.0.1",
        rpc_port=4000, ops_port=1,  # nothing listens on port 1
        started_wall=0.0,
    ))


class TestFederator:
    def test_cluster_obj_merges_runtime_and_poll_state(self, tmp_path):
        publish(str(tmp_path), "node-01", "node", os.getpid())
        publish(str(tmp_path), "central", "central", os.getpid())
        federator = MetricsFederator(str(tmp_path), StubCentral())
        doc = federator.cluster_obj()
        assert doc["rounds"] == 5
        by_name = {d["name"]: d for d in doc["daemons"]}
        assert by_name["node-01"]["alive"] is True
        assert by_name["node-01"]["samples"] == 9
        assert by_name["central"]["role"] == "central"

    def test_dead_pid_reported_not_alive(self, tmp_path):
        publish(str(tmp_path), "node-01", "node", 2 ** 22 + 999)
        federator = MetricsFederator(str(tmp_path), StubCentral())
        (daemon,) = federator.cluster_obj()["daemons"]
        assert daemon["alive"] is False

    def test_unreachable_daemon_counts_scrape_error(self, tmp_path):
        publish(str(tmp_path), "node-01", "node", os.getpid())
        federator = MetricsFederator(str(tmp_path), StubCentral())
        assert federator.scrape_all() == {}
        assert federator.scrape_errors == 1
        # The central's own snapshot still renders.
        assert 'daemon="central"' in federator.render_metrics()

    def test_control_stats_and_trace_are_read_only(self, tmp_path):
        central = StubCentral()
        federator = MetricsFederator(str(tmp_path), central)
        assert federator.control("stats", {})["rounds"] == 5
        assert federator.control("trace", {}) == {"traceEvents": []}
        assert central.commands == []

    def test_control_inject_enqueues_command(self, tmp_path):
        central = StubCentral()
        federator = MetricsFederator(str(tmp_path), central)
        doc = federator.control("inject", {
            "node": ["node-01"], "kind": ["diskhog"], "intensity": ["0.5"],
        })
        assert doc["queued"] is True
        assert central.commands == [{
            "action": "inject", "node": "node-01",
            "kind": "diskhog", "intensity": 0.5,
        }]

    def test_control_unknown_action_errors(self, tmp_path):
        federator = MetricsFederator(str(tmp_path), StubCentral())
        assert "error" in federator.control("reboot", {})
