"""Central-daemon integration over real sockets, all in one process.

Three ``ClusterNodeDaemon`` handlers run behind real ``RpcServer``
sockets; the central polls them exactly as it would separate OS
processes.  (Only the e2e test spawns actual subprocesses.)
"""

import time

import pytest

from repro.cluster import DaemonRuntime, write_runtime
from repro.cluster.central import CentralDaemon
from repro.cluster.load import SyntheticNodeLoad
from repro.rpc import ClusterNodeDaemon, RpcServer

NODES = ("node-01", "node-02", "node-03")


@pytest.fixture()
def node_servers(tmp_path):
    servers = {}
    loads = {}
    for i, name in enumerate(NODES):
        load = SyntheticNodeLoad(name, seed=100 + i)
        server = RpcServer(
            ClusterNodeDaemon(name, load), service=f"sadc@{name}"
        )
        server.start()
        write_runtime(str(tmp_path), DaemonRuntime(
            role="node", name=name, pid=1000 + i, host="127.0.0.1",
            rpc_port=server.address[1], ops_port=1, started_wall=0.0,
        ))
        servers[name] = server
        loads[name] = load
    yield servers, loads
    for server in servers.values():
        server.stop()


@pytest.fixture()
def central(tmp_path, node_servers):
    daemon = CentralDaemon(str(tmp_path), interval_s=0.05, k_rounds=2)
    yield daemon
    daemon.close()


def run_rounds(central, count, sleep_s=0.05):
    for _ in range(count):
        central.round()
        time.sleep(sleep_s)


class TestPolling:
    def test_samples_flow_from_every_node(self, central):
        run_rounds(central, 4)
        stats = central.stats_obj()
        assert stats["rounds"] == 4
        assert set(stats["nodes"]) == set(NODES)
        for node in NODES:
            entry = stats["nodes"][node]
            assert entry["connected"] is True
            assert entry["samples"] >= 2  # first poll primes differencing
            assert entry["rpc_bytes_received"] > 0

    def test_busy_readings_and_watermarks(self, central):
        run_rounds(central, 4)
        stats = central.stats_obj()
        for node in NODES:
            entry = stats["nodes"][node]
            assert 0.0 <= entry["busy_pct"] <= 100.0
            assert entry["watermark_lag_s"] >= 0.0

    def test_round_spans_carry_trace_ids(self, central):
        run_rounds(central, 2)
        rounds = [
            event for event in central.telemetry.tracer.events
            if event.name == "round"
        ]
        assert rounds
        assert all("trace_id" in event.args for event in rounds)
        calls = [
            event for event in central.telemetry.tracer.events
            if event.name.startswith("rpc.call:")
        ]
        trace_ids = {event.args.get("trace_id") for event in calls}
        assert trace_ids <= {event.args["trace_id"] for event in rounds}


class TestDetection:
    def test_cpuhog_indicts_the_loud_node(self, central):
        run_rounds(central, 3)
        assert central.stats_obj()["alarms_total"] == 0
        assert central.enqueue({
            "action": "inject", "node": "node-02",
            "kind": "cpuhog", "intensity": 1.0,
        })
        run_rounds(central, 8, sleep_s=0.08)
        stats = central.stats_obj()
        assert stats["alarms_total"] >= 1
        alarm = stats["alarms"][0]
        assert alarm["node"] == "node-02"
        assert alarm["source"] == "peer-deviation"
        assert alarm["wall_latency_s"] >= 0.0
        assert stats["alarm_wall_latency_s"]["count"] >= 1
        assert stats["alarm_wall_latency_s"]["p50"] >= 0.0

    def test_clear_resets_the_streak(self, central):
        central.enqueue({
            "action": "inject", "node": "node-02",
            "kind": "cpuhog", "intensity": 1.0,
        })
        run_rounds(central, 6, sleep_s=0.08)
        central.enqueue({"action": "clear", "node": "node-02"})
        run_rounds(central, 6, sleep_s=0.08)
        assert central.stats_obj()["nodes"]["node-02"]["streak"] == 0


class TestRespawnAdoption:
    def test_new_address_is_adopted_and_counted(self, tmp_path, central,
                                                node_servers):
        servers, loads = node_servers
        run_rounds(central, 3)
        assert central.stats_obj()["nodes"]["node-03"]["reconnects"] == 0

        # "Respawn" node-03: a fresh server on a new port, republished
        # under a new pid -- what the launcher does after a SIGKILL.
        servers["node-03"].stop()
        replacement = RpcServer(
            ClusterNodeDaemon("node-03", SyntheticNodeLoad("node-03")),
            service="sadc@node-03",
        )
        replacement.start()
        servers["node-03"] = replacement
        write_runtime(str(tmp_path), DaemonRuntime(
            role="node", name="node-03", pid=9999, host="127.0.0.1",
            rpc_port=replacement.address[1], ops_port=1, started_wall=1.0,
        ))

        run_rounds(central, 3)
        entry = central.stats_obj()["nodes"]["node-03"]
        assert entry["connected"] is True
        assert entry["reconnects"] >= 1
        assert central.stats_obj()["reconnects"] >= 1

    def test_mark_resets_throughput_window(self, central):
        run_rounds(central, 3)
        central.enqueue({"action": "mark"})
        central.round()
        stats = central.stats_obj()
        assert stats["samples_since_mark"] <= len(NODES)
        assert stats["samples_total"] >= stats["samples_since_mark"]
