"""CLI wiring for the cluster subcommands."""

from repro.cli import _render_cluster_top, build_parser, main


class TestParser:
    def test_cluster_subcommands_registered(self):
        parser = build_parser()
        cases = [
            (["cluster", "up", "--nodes", "5"], "cmd_cluster_up"),
            (["cluster", "node", "--name", "n1"], "cmd_cluster_node"),
            (["cluster", "central", "--interval", "0.1"],
             "cmd_cluster_central"),
            (["cluster", "drive", "--out", "x"], "cmd_cluster_drive"),
            (["cluster", "top", "--once"], "cmd_cluster_top"),
        ]
        for argv, handler_name in cases:
            args = parser.parse_args(argv)
            assert args.handler.__name__ == handler_name

    def test_max_frame_bytes_flag(self):
        parser = build_parser()
        args = parser.parse_args(
            ["cluster", "node", "--name", "n1", "--max-frame-bytes", "4096"]
        )
        assert args.max_frame_bytes == 4096

    def test_drive_fault_kind_restricted(self):
        parser = build_parser()
        args = parser.parse_args(
            ["cluster", "drive", "--fault-kind", "diskhog"]
        )
        assert args.fault_kind == "diskhog"


class TestRenderClusterTop:
    STATS = {
        "rounds": 12,
        "samples_total": 30,
        "samples_per_sec": 11.5,
        "alarms_total": 1,
        "backpressure": {"rounds_late": 0},
        "alarm_wall_latency_s": {
            "count": 1, "p50": 0.002, "p90": 0.002, "p99": 0.002,
        },
        "nodes": {
            "node-01": {
                "connected": True, "busy_pct": 17.3, "streak": 0,
                "samples": 10, "watermark_lag_s": 0.004, "reconnects": 0,
            },
            "node-02": {
                "connected": False, "busy_pct": None, "streak": 0,
                "samples": 4, "watermark_lag_s": None, "reconnects": 1,
            },
        },
        "alarms": [{
            "node": "node-01", "detail": "busy 80% vs median 17%",
            "wall_latency_s": 0.002,
        }],
    }
    CLUSTER = {
        "daemons": [
            {"name": "central", "role": "central", "pid": 1, "alive": True},
            {"name": "node-01", "role": "node", "pid": 2, "alive": True},
            {"name": "node-02", "role": "node", "pid": 3, "alive": False},
        ],
    }

    def test_rows_and_header(self):
        frame = _render_cluster_top(self.STATS, self.CLUSTER)
        assert "rounds 12" in frame
        assert "11.5/s" in frame
        assert "node-01" in frame and "node-02" in frame
        assert "central" not in frame.splitlines()[-1]  # nodes only in table

    def test_missing_readings_render_dashes(self):
        frame = _render_cluster_top(self.STATS, self.CLUSTER)
        node02 = next(
            line for line in frame.splitlines()
            if line.startswith("node-02")
        )
        assert " - " in node02 or node02.rstrip().count(" -") >= 1

    def test_alarm_tail_rendered(self):
        frame = _render_cluster_top(self.STATS, self.CLUSTER)
        assert "ALARM node-01" in frame

    def test_no_ansi_escapes(self):
        # The cluster dashboard is plain text; ANSI would garble CI logs.
        assert "\x1b[" not in _render_cluster_top(self.STATS, self.CLUSTER)


class TestClusterTopCommand:
    def test_missing_central_is_an_error(self, tmp_path, capsys):
        code = main([
            "cluster", "top", "--dir", str(tmp_path), "--once",
        ])
        assert code == 2
        assert "no live central daemon" in capsys.readouterr().err
