"""Runtime-file discovery and the stop-marker protocol."""

import os

from repro.cluster import (
    DaemonRuntime,
    list_runtimes,
    pid_alive,
    read_runtime,
    request_stop,
    stop_requested,
    write_runtime,
)
from repro.cluster.state import runtime_path


def make_runtime(name="node-01", role="node", pid=1234):
    return DaemonRuntime(
        role=role, name=name, pid=pid, host="127.0.0.1",
        rpc_port=4000, ops_port=5000, started_wall=100.0,
    )


class TestRuntimeFiles:
    def test_write_read_round_trip(self, tmp_path):
        runtime = make_runtime()
        path = write_runtime(str(tmp_path), runtime)
        assert path == runtime_path(str(tmp_path), "node-01")
        assert read_runtime(path) == runtime

    def test_ops_url(self):
        assert make_runtime().ops_url == "http://127.0.0.1:5000"

    def test_missing_file_is_none(self, tmp_path):
        assert read_runtime(runtime_path(str(tmp_path), "ghost")) is None

    def test_malformed_file_is_none(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        assert read_runtime(runtime_path(str(tmp_path), "bad")) is None

    def test_write_is_atomic_replace(self, tmp_path):
        write_runtime(str(tmp_path), make_runtime(pid=1))
        path = write_runtime(str(tmp_path), make_runtime(pid=2))
        assert read_runtime(path).pid == 2
        # No leftover temp files.
        assert sorted(os.listdir(tmp_path)) == ["node-01.json"]

    def test_list_runtimes_filters_by_role(self, tmp_path):
        write_runtime(str(tmp_path), make_runtime("node-01", role="node"))
        write_runtime(str(tmp_path), make_runtime("central", role="central"))
        assert set(list_runtimes(str(tmp_path))) == {"node-01", "central"}
        assert set(list_runtimes(str(tmp_path), role="node")) == {"node-01"}

    def test_list_runtimes_empty_dir(self, tmp_path):
        assert list_runtimes(str(tmp_path / "nope")) == {}


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_bogus_pid_is_dead(self):
        # pid_max on Linux cannot exceed 2^22; this pid never exists.
        assert not pid_alive(2 ** 22 + 12345)


class TestStopMarker:
    def test_request_and_observe(self, tmp_path):
        assert not stop_requested(str(tmp_path))
        request_stop(str(tmp_path))
        assert stop_requested(str(tmp_path))

    def test_request_is_idempotent(self, tmp_path):
        request_stop(str(tmp_path))
        request_stop(str(tmp_path))
        assert stop_requested(str(tmp_path))
