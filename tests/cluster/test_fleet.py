"""The shared vectorized fleet behind packed node-host processes."""

import pytest

from repro.cluster import FleetLoad
from repro.cluster.load import FLEET_TICK_S
from repro.rpc import ClusterNodeDaemon
from repro.sysstat.metrics import NODE_METRICS
from repro.sysstat.sadc import Sadc

NAMES = ["node-01", "node-02", "node-03"]


def _fleet(**kwargs):
    kwargs.setdefault("seed", 2)
    return FleetLoad(NAMES, **kwargs)


class TestFleetClock:
    def test_advance_is_idempotent_per_wall_time(self):
        fleet = _fleet()
        fleet.advance_to(1000.0)
        fleet.advance_to(1003.0)
        ticks = fleet.ticks
        fleet.advance_to(1003.0)  # same wall time: no extra ticks
        assert fleet.ticks == ticks

    def test_ticks_track_wall_in_fixed_quanta(self):
        fleet = _fleet()
        fleet.advance_to(1000.0)  # origin
        fleet.advance_to(1002.0)
        assert fleet.cluster.time == pytest.approx(2.0)
        assert fleet.ticks == int(2.0 / FLEET_TICK_S)

    def test_long_pause_rebases_instead_of_replaying(self):
        fleet = _fleet()
        fleet.advance_to(1000.0)
        fleet.advance_to(1001.0)
        fleet.advance_to(1000.0 + 3600.0)  # an hour-long SIGSTOP
        # One capped advance must not replay the whole gap...
        from repro.cluster.load import MAX_TICKS_PER_ADVANCE

        assert fleet.ticks <= MAX_TICKS_PER_ADVANCE + 2
        # ...and the next regular advance resumes near the new wall time.
        ticks = fleet.ticks
        fleet.advance_to(1000.0 + 3600.0 + 1.0)
        assert fleet.ticks - ticks <= 3

    def test_sample_time_is_quantized_wall(self):
        fleet = _fleet()
        fleet.advance_to(1000.0)
        fleet.advance_to(1001.2)
        # Sim advanced 1.0s (two 0.5s ticks): sample clock lags wall.
        assert fleet.sample_time() == pytest.approx(1001.0)

    def test_views_share_one_cluster(self):
        fleet = _fleet()
        views = [fleet.view(name) for name in NAMES]
        assert len({id(view._fleet.cluster) for view in views}) == 1
        assert views[0].procfs is not views[1].procfs


class TestFleetTelemetry:
    def test_sadc_over_fleet_yields_full_catalog(self):
        fleet = _fleet()
        view = fleet.view("node-01")
        sadc = Sadc(view.procfs)
        view.advance_to(1000.0)
        sadc.collect(fleet.sample_time())
        view.advance_to(1004.0)
        sample = sadc.collect(fleet.sample_time())
        assert sample is not None
        assert set(sample.node) == set(NODE_METRICS)

    def test_workload_produces_nonidle_nodes(self):
        fleet = _fleet()
        view = fleet.view("node-01")
        sadc = Sadc(view.procfs)
        view.advance_to(1000.0)
        sadc.collect(fleet.sample_time())
        view.advance_to(1010.0)
        sample = sadc.collect(fleet.sample_time())
        assert sample.node["cpu_idle_pct"] < 100.0

    def test_cpuhog_deviates_target_from_peers(self):
        fleet = _fleet()
        views = {name: fleet.view(name) for name in NAMES}
        sadcs = {name: Sadc(view.procfs) for name, view in views.items()}
        fleet.advance_to(1000.0)
        for sadc in sadcs.values():
            sadc.collect(fleet.sample_time())
        fleet.advance_to(1005.0)
        baseline = {
            name: sadc.collect(fleet.sample_time()).node["cpu_idle_pct"]
            for name, sadc in sadcs.items()
        }
        views["node-01"].inject("cpuhog", 1.0)
        fleet.advance_to(1012.0)
        after = {
            name: sadc.collect(fleet.sample_time()).node["cpu_idle_pct"]
            for name, sadc in sadcs.items()
        }
        assert after["node-01"] < baseline["node-01"] - 30.0
        assert after["node-02"] > 5.0  # peers keep some idle headroom

    def test_clear_removes_the_hog(self):
        fleet = _fleet()
        view = fleet.view("node-01")
        view.advance_to(1000.0)
        view.inject("cpuhog", 1.0)
        assert view.active_fault == "cpuhog"
        assert any(
            load.name == "cpuhog" for load in fleet.cluster.external_loads
        )
        view.clear()
        assert view.active_fault is None
        assert not any(
            load.name == "cpuhog" for load in fleet.cluster.external_loads
        )

    def test_unknown_fault_rejected(self):
        view = _fleet().view("node-01")
        with pytest.raises(ValueError, match="unknown load fault"):
            view.inject("packetloss")


class TestBufferedDaemonOverFleet:
    def _primed(self, fleet, daemon, start=1000.0, seconds=4):
        fleet.advance_to(start)
        daemon.buffer_sample(start)
        for i in range(1, seconds + 1):
            now = start + float(i)
            fleet.advance_to(now)
            daemon.buffer_sample(now)

    def test_buffer_then_poll_many_drains_batch(self):
        fleet = _fleet()
        daemon = ClusterNodeDaemon(
            "node-01", fleet.view("node-01"), buffered=True
        )
        self._primed(fleet, daemon)
        batch = daemon.rpc_poll_many(1004.0, max_windows=32)
        assert batch["node_name"] == "node-01"
        assert len(batch["windows"]) == 4  # priming call emits nothing
        assert daemon.rpc_poll_many(1004.0)["windows"] == []

    def test_zero_tick_interval_emits_no_window(self):
        fleet = _fleet()
        daemon = ClusterNodeDaemon(
            "node-01", fleet.view("node-01"), buffered=True
        )
        self._primed(fleet, daemon)
        daemon.rpc_poll_many(1004.0)
        # A sampler wakeup inside the same tick must not produce a
        # zero-delta window (it would decode as 0% idle = 100% busy).
        assert daemon.buffer_sample(1004.1) is False
        assert daemon.rpc_poll_many(1004.2)["windows"] == []

    def test_windows_carry_sane_idle(self):
        fleet = _fleet()
        daemon = ClusterNodeDaemon(
            "node-01", fleet.view("node-01"), buffered=True
        )
        self._primed(fleet, daemon, seconds=6)
        batch = daemon.rpc_poll_many(1006.0)
        idles = [w["node"]["cpu_idle_pct"] for w in batch["windows"]]
        assert idles and all(0.0 < idle <= 100.0 for idle in idles)

    def test_rpc_sample_serves_newest_buffered_window(self):
        fleet = _fleet()
        daemon = ClusterNodeDaemon(
            "node-01", fleet.view("node-01"), buffered=True
        )
        self._primed(fleet, daemon)
        sample = daemon.rpc_sample(1004.0)
        assert sample["timestamp"] == pytest.approx(1004.0)
        assert daemon.rpc_sample(1004.0) is None  # buffer drained

    def test_buffer_overflow_drops_oldest_and_counts(self):
        from repro.rpc.daemons import MAX_BUFFERED_WINDOWS

        fleet = _fleet(workload=False)
        daemon = ClusterNodeDaemon(
            "node-01", fleet.view("node-01"), buffered=True
        )
        start = 1000.0
        fleet.advance_to(start)
        daemon.buffer_sample(start)
        for i in range(1, MAX_BUFFERED_WINDOWS + 10):
            now = start + float(i)
            fleet.advance_to(now)
            daemon.buffer_sample(now)
        assert len(daemon._windows) == MAX_BUFFERED_WINDOWS
        assert daemon.windows_dropped > 0

    def test_metric_names_catalog_matches_windows(self):
        fleet = _fleet()
        daemon = ClusterNodeDaemon(
            "node-01", fleet.view("node-01"), buffered=True
        )
        self._primed(fleet, daemon)
        window = daemon.rpc_poll_many(1004.0)["windows"][0]
        assert tuple(window["node"]) == daemon.metric_names
