"""Tests for the log-scaling transform."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import MIN_SIGMA, LogScaler


def training_matrix(seed: int = 0, n: int = 100, d: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.gamma(2.0, 100.0, size=(n, d))


class TestFit:
    def test_sigma_shape_matches_metrics(self):
        scaler = LogScaler.fit(training_matrix(d=7))
        assert scaler.sigma.shape == (7,)
        assert scaler.n_metrics == 7

    def test_sigma_is_of_logged_data(self):
        matrix = training_matrix()
        scaler = LogScaler.fit(matrix)
        expected = np.log1p(matrix).std(axis=0)
        assert scaler.sigma == pytest.approx(expected)

    def test_constant_metric_gets_sigma_floor(self):
        matrix = np.ones((50, 3)) * 7.0
        scaler = LogScaler.fit(matrix)
        assert np.all(scaler.sigma == MIN_SIGMA)

    def test_fit_rejects_vectors(self):
        with pytest.raises(ValueError):
            LogScaler.fit(np.ones(10))

    def test_fit_rejects_single_sample(self):
        with pytest.raises(ValueError):
            LogScaler.fit(np.ones((1, 4)))


class TestTransform:
    def test_transform_formula(self):
        scaler = LogScaler.fit(training_matrix())
        raw = np.array([10.0, 20.0, 0.0, 5.0, 1.0])
        expected = np.log1p(raw) / scaler.sigma
        assert scaler.transform(raw) == pytest.approx(expected)

    def test_negative_values_clamped(self):
        scaler = LogScaler(sigma=np.ones(2))
        assert scaler.transform(np.array([-5.0, -1.0])) == pytest.approx([0.0, 0.0])

    def test_matrix_transform(self):
        scaler = LogScaler.fit(training_matrix())
        matrix = training_matrix(seed=1)
        out = scaler.transform(matrix)
        assert out.shape == matrix.shape

    @given(
        st.floats(0.0, 1e9),
        st.floats(0.0, 1e9),
    )
    def test_property_monotone_in_each_metric(self, a, b):
        scaler = LogScaler(sigma=np.array([2.0]))
        lo, hi = sorted((a, b))
        assert scaler.transform(np.array([lo]))[0] <= scaler.transform(np.array([hi]))[0]

    def test_zero_maps_to_zero(self):
        scaler = LogScaler(sigma=np.ones(3))
        assert scaler.transform(np.zeros(3)) == pytest.approx(np.zeros(3))
