"""Bit-parity tests for the fleet-batched analysis kernels.

The batched helpers are only usable because they are *exactly* the
per-node loops -- these tests pin that equivalence at the bit level
(``==`` on float64 arrays, no tolerances).
"""

import numpy as np
import pytest

from repro.analysis.fleet import state_histogram_batch, window_moments_batch
from repro.analysis.peer import state_histogram


class TestStateHistogramBatch:
    def test_bit_identical_to_per_row_loop(self):
        rng = np.random.default_rng(5)
        for n, w, k in [(3, 7, 4), (50, 60, 7), (200, 61, 7)]:
            assignments = rng.integers(0, k, size=(n, w))
            batched = state_histogram_batch(assignments, k)
            looped = np.array(
                [state_histogram(row, k) for row in assignments]
            )
            assert batched.dtype == looped.dtype == np.float64
            assert (batched == looped).all()

    def test_counts_are_exact(self):
        histograms = state_histogram_batch([[0, 0, 2], [1, 1, 1]], 3)
        assert histograms.tolist() == [[2.0, 0.0, 1.0], [0.0, 3.0, 0.0]]

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            state_histogram_batch([0, 1, 2], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            state_histogram_batch([[0, 3]], 3)
        with pytest.raises(ValueError):
            state_histogram_batch([[-1, 0]], 3)

    def test_empty_window(self):
        histograms = state_histogram_batch(np.empty((2, 0), dtype=int), 3)
        assert histograms.shape == (2, 3)
        assert (histograms == 0.0).all()


class TestWindowMomentsBatch:
    def test_bit_identical_to_per_matrix_loop(self):
        rng = np.random.default_rng(9)
        for n, w, d in [(3, 5, 2), (10, 60, 19), (50, 61, 3)]:
            tensor = rng.gamma(2.0, 10.0, size=(n, w, d))
            means, stds = window_moments_batch(tensor)
            loop_means = np.array([m.mean(axis=0) for m in tensor])
            loop_stds = np.array([m.std(axis=0) for m in tensor])
            assert (means == loop_means).all()
            assert (stds == loop_stds).all()

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            window_moments_batch(np.zeros((4, 5)))
