"""Tests for window geometry and the streaming accumulator."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import StreamingWindow, WindowSpec


class TestWindowSpec:
    def test_non_overlapping_bounds(self):
        spec = WindowSpec(size=60, slide=60)
        assert spec.bounds(180) == [(0, 60), (60, 120), (120, 180)]

    def test_overlapping_bounds(self):
        spec = WindowSpec(size=4, slide=2)
        assert spec.bounds(8) == [(0, 4), (2, 6), (4, 8)]

    def test_overlap_property(self):
        assert WindowSpec(size=60, slide=45).overlap == 15

    def test_window_count_matches_bounds(self):
        spec = WindowSpec(size=10, slide=3)
        for n in (0, 9, 10, 11, 30, 100):
            assert spec.window_count(n) == len(spec.bounds(n))

    def test_iter_windows_slices_correctly(self):
        spec = WindowSpec(size=3, slide=3)
        data = np.arange(9)
        windows = list(spec.iter_windows(data))
        assert [list(w) for w in windows] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_window_end_time(self):
        spec = WindowSpec(size=60, slide=60)
        assert spec.window_end_time(0) == 60.0
        assert spec.window_end_time(2, start_time=100.0) == 280.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(size=0, slide=1)
        with pytest.raises(ValueError):
            WindowSpec(size=10, slide=0)
        with pytest.raises(ValueError):
            WindowSpec(size=10, slide=11)

    @given(
        n=st.integers(0, 500),
        size=st.integers(1, 50),
        slide_frac=st.floats(0.1, 1.0),
    )
    def test_property_windows_stay_in_range(self, n, size, slide_frac):
        slide = max(1, int(size * slide_frac))
        spec = WindowSpec(size=size, slide=slide)
        for start, end in spec.bounds(n):
            assert 0 <= start < end <= n
            assert end - start == size


class TestStreamingWindow:
    def test_emits_on_completion(self):
        window = StreamingWindow(WindowSpec(size=3, slide=3))
        assert window.push(np.array([1.0])) == []
        assert window.push(np.array([2.0])) == []
        (completed,) = window.push(np.array([3.0]))
        assert completed.shape == (3, 1)
        assert list(completed.ravel()) == [1.0, 2.0, 3.0]

    def test_tumbling_windows_do_not_overlap(self):
        window = StreamingWindow(WindowSpec(size=2, slide=2))
        emitted = []
        for i in range(6):
            emitted.extend(window.push(np.array([float(i)])))
        assert [list(w.ravel()) for w in emitted] == [[0, 1], [2, 3], [4, 5]]

    def test_sliding_windows_overlap(self):
        window = StreamingWindow(WindowSpec(size=3, slide=1))
        emitted = []
        for i in range(5):
            emitted.extend(window.push(np.array([float(i)])))
        assert [list(w.ravel()) for w in emitted] == [
            [0, 1, 2],
            [1, 2, 3],
            [2, 3, 4],
        ]

    def test_pending_counts_buffered_samples(self):
        window = StreamingWindow(WindowSpec(size=3, slide=3))
        window.push(np.array([1.0]))
        assert window.pending() == 1

    def test_windows_emitted_counter(self):
        window = StreamingWindow(WindowSpec(size=2, slide=2))
        for i in range(7):
            window.push(np.array([float(i)]))
        assert window.windows_emitted == 3

    @given(
        n=st.integers(0, 60),
        size=st.integers(1, 10),
    )
    def test_property_stream_matches_batch(self, n, size):
        """Streaming emission equals batch WindowSpec.bounds slicing."""
        spec = WindowSpec(size=size, slide=size)
        data = np.arange(n, dtype=float).reshape(-1, 1)
        window = StreamingWindow(spec)
        streamed = []
        for row in data:
            streamed.extend(window.push(row))
        batched = [data[s:e] for s, e in spec.bounds(n)]
        assert len(streamed) == len(batched)
        for got, expected in zip(streamed, batched):
            assert np.array_equal(got, expected)
