"""Tests for detection-quality metrics (paper section 4.6)."""

import pytest

from repro.analysis import (
    Alarm,
    ConfusionCounts,
    GroundTruth,
    WindowDecision,
    alarms_by_node,
    fingerpointing_latency,
    score_decisions,
)


class TestGroundTruth:
    def test_window_on_culprit_after_injection_is_problematic(self):
        truth = GroundTruth(faulty_node="slave03", inject_time=100.0)
        assert truth.window_is_problematic("slave03", 120.0, 180.0)

    def test_window_before_injection_is_clean(self):
        truth = GroundTruth(faulty_node="slave03", inject_time=100.0)
        assert not truth.window_is_problematic("slave03", 0.0, 60.0)

    def test_window_straddling_injection_is_problematic(self):
        truth = GroundTruth(faulty_node="slave03", inject_time=100.0)
        assert truth.window_is_problematic("slave03", 60.0, 120.0)

    def test_other_nodes_always_clean(self):
        truth = GroundTruth(faulty_node="slave03", inject_time=0.0)
        assert not truth.window_is_problematic("slave01", 50.0, 110.0)

    def test_fault_free_run_has_no_problematic_windows(self):
        truth = GroundTruth(faulty_node=None)
        assert not truth.window_is_problematic("slave01", 0.0, 60.0)

    def test_clear_time_bounds_problem_period(self):
        truth = GroundTruth(faulty_node="s", inject_time=100.0, clear_time=200.0)
        assert truth.window_is_problematic("s", 150.0, 210.0)
        assert not truth.window_is_problematic("s", 200.0, 260.0)


class TestConfusionCounts:
    def test_balanced_accuracy_perfect(self):
        counts = ConfusionCounts(true_positives=5, true_negatives=20)
        assert counts.balanced_accuracy == 1.0

    def test_balanced_accuracy_blind_detector(self):
        counts = ConfusionCounts(false_negatives=5, true_negatives=20)
        assert counts.balanced_accuracy == 0.5

    def test_balanced_accuracy_mixed(self):
        counts = ConfusionCounts(
            true_positives=3, false_negatives=1, true_negatives=9, false_positives=1
        )
        assert counts.balanced_accuracy == pytest.approx(0.5 * (0.75 + 0.9))

    def test_fp_rate(self):
        counts = ConfusionCounts(true_negatives=90, false_positives=10)
        assert counts.false_positive_rate == pytest.approx(0.1)

    def test_rates_with_no_samples_are_zero(self):
        counts = ConfusionCounts()
        assert counts.true_positive_rate == 0.0
        assert counts.false_positive_rate == 0.0

    def test_add_accumulates(self):
        a = ConfusionCounts(true_positives=1, false_positives=2)
        a.add(ConfusionCounts(true_positives=3, true_negatives=4))
        assert a.true_positives == 4
        assert a.false_positives == 2
        assert a.true_negatives == 4
        assert a.total == 10


class TestScoring:
    def test_score_decisions_full_matrix(self):
        truth = GroundTruth(faulty_node="bad", inject_time=100.0)
        decisions = [
            WindowDecision("bad", 120, 180, alarmed=True),    # TP
            WindowDecision("bad", 180, 240, alarmed=False),   # FN
            WindowDecision("good", 120, 180, alarmed=True),   # FP
            WindowDecision("good", 180, 240, alarmed=False),  # TN
            WindowDecision("bad", 0, 60, alarmed=False),      # TN (pre-injection)
        ]
        counts = score_decisions(decisions, truth)
        assert (counts.true_positives, counts.false_negatives) == (1, 1)
        assert (counts.false_positives, counts.true_negatives) == (1, 2)

    def test_score_on_fault_free_truth(self):
        truth = GroundTruth(faulty_node=None)
        decisions = [
            WindowDecision("a", 0, 60, alarmed=True),
            WindowDecision("b", 0, 60, alarmed=False),
        ]
        counts = score_decisions(decisions, truth)
        assert counts.false_positives == 1
        assert counts.true_negatives == 1


class TestLatency:
    def test_first_culprit_alarm_after_injection(self):
        truth = GroundTruth(faulty_node="bad", inject_time=100.0)
        alarms = [
            Alarm(time=50.0, node="bad"),     # before injection: ignored
            Alarm(time=140.0, node="good"),   # wrong node: ignored
            Alarm(time=220.0, node="bad"),
            Alarm(time=260.0, node="bad"),
        ]
        assert fingerpointing_latency(alarms, truth) == pytest.approx(120.0)

    def test_no_alarms_means_none(self):
        truth = GroundTruth(faulty_node="bad", inject_time=0.0)
        assert fingerpointing_latency([], truth) is None

    def test_fault_free_run_has_no_latency(self):
        truth = GroundTruth(faulty_node=None)
        assert fingerpointing_latency([Alarm(time=1.0, node="x")], truth) is None


class TestAlarmHelpers:
    def test_alarms_by_node_groups(self):
        alarms = [
            Alarm(time=1.0, node="a"),
            Alarm(time=2.0, node="b"),
            Alarm(time=3.0, node="a"),
        ]
        grouped = alarms_by_node(alarms)
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1

    def test_describe_mentions_node_and_source(self):
        alarm = Alarm(time=42.0, node="slave03", source="whitebox", detail="x")
        text = alarm.describe()
        assert "slave03" in text
        assert "whitebox" in text
