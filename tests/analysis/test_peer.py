"""Tests for median peer comparison -- the paper's localization core."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    state_histogram,
    state_vector_l1_deviation,
    whitebox_anomalies,
    whitebox_deviations,
    whitebox_thresholds,
)


class TestStateHistogram:
    def test_counts_assignments(self):
        histogram = state_histogram(np.array([0, 1, 1, 3]), k=4)
        assert list(histogram) == [1, 2, 0, 1]

    def test_empty_assignments(self):
        assert list(state_histogram(np.array([], dtype=int), k=3)) == [0, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            state_histogram(np.array([0, 5]), k=3)
        with pytest.raises(ValueError):
            state_histogram(np.array([-1]), k=3)

    def test_sums_to_sample_count(self):
        assignments = np.array([2, 2, 0, 1, 2, 0])
        assert state_histogram(assignments, k=3).sum() == 6


class TestL1Deviation:
    def test_identical_nodes_have_zero_deviation(self):
        histograms = np.tile(np.array([10.0, 20.0, 30.0]), (5, 1))
        assert state_vector_l1_deviation(histograms) == pytest.approx(np.zeros(5))

    def test_outlier_node_stands_out(self):
        histograms = np.array(
            [[30.0, 30.0], [30.0, 30.0], [30.0, 30.0], [0.0, 60.0]]
        )
        deviations = state_vector_l1_deviation(histograms)
        assert deviations[3] == pytest.approx(60.0)
        assert deviations[:3] == pytest.approx(np.zeros(3))

    def test_median_is_robust_to_minority(self):
        """With more than half the nodes fault-free, the median tracks
        the fault-free behaviour (the paper's assumption ii)."""
        healthy = np.tile(np.array([50.0, 10.0]), (6, 1))
        faulty = np.tile(np.array([0.0, 60.0]), (2, 1))
        deviations = state_vector_l1_deviation(np.vstack([healthy, faulty]))
        assert np.all(deviations[:6] == 0.0)
        assert np.all(deviations[6:] == 100.0)

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            state_vector_l1_deviation(np.array([1.0, 2.0]))

    @given(
        st.integers(3, 8),
        st.integers(2, 5),
        st.integers(0, 1000),
    )
    def test_property_deviation_nonnegative(self, n_nodes, k, seed):
        rng = np.random.default_rng(seed)
        histograms = rng.integers(0, 60, size=(n_nodes, k)).astype(float)
        deviations = state_vector_l1_deviation(histograms)
        assert np.all(deviations >= 0.0)

    @given(st.integers(0, 100))
    def test_property_permutation_invariance(self, seed):
        rng = np.random.default_rng(seed)
        histograms = rng.integers(0, 60, size=(5, 4)).astype(float)
        deviations = state_vector_l1_deviation(histograms)
        perm = rng.permutation(5)
        permuted = state_vector_l1_deviation(histograms[perm])
        assert permuted == pytest.approx(deviations[perm])


class TestWhiteboxComparison:
    def test_deviations_against_median(self):
        means = np.array([[1.0, 2.0], [1.0, 2.0], [4.0, 2.0]])
        deviations = whitebox_deviations(means)
        assert deviations[2, 0] == pytest.approx(3.0)
        assert deviations[0, 1] == 0.0

    def test_threshold_floor_of_one(self):
        """max(1, k*sigma_median): zero variance must not alarm on
        count metrics that wiggle by 1 (paper section 4.4)."""
        stds = np.zeros((5, 3))
        thresholds = whitebox_thresholds(stds, k=3.0)
        assert thresholds == pytest.approx(np.ones(3))

    def test_threshold_scales_with_sigma(self):
        stds = np.full((5, 2), 2.0)
        thresholds = whitebox_thresholds(stds, k=3.0)
        assert thresholds == pytest.approx([6.0, 6.0])

    def test_threshold_uses_median_of_stds(self):
        stds = np.array([[0.0], [0.0], [0.0], [10.0], [10.0]])
        # median std = 0 -> floor applies even though two nodes vary.
        assert whitebox_thresholds(stds, k=5.0) == pytest.approx([1.0])

    def test_anomalies_flag_offending_node_and_metric(self):
        means = np.array([[1.0, 5.0]] * 4 + [[1.0, 30.0]])
        stds = np.full((5, 2), 0.5)
        verdict = whitebox_anomalies(means, stds, k=3.0)
        assert list(verdict.anomalous_nodes) == [False] * 4 + [True]
        assert verdict.anomalous_metrics[4] == [1]

    def test_no_anomalies_on_identical_nodes(self):
        means = np.tile(np.array([3.0, 4.0]), (6, 1))
        stds = np.full((6, 2), 1.0)
        verdict = whitebox_anomalies(means, stds, k=2.0)
        assert not verdict.anomalous_nodes.any()

    def test_larger_k_is_more_permissive(self):
        rng = np.random.default_rng(0)
        means = rng.normal(5.0, 2.0, size=(8, 4))
        stds = rng.uniform(0.1, 0.5, size=(8, 4))
        strict = whitebox_anomalies(means, stds, k=0.0).anomalous_nodes.sum()
        loose = whitebox_anomalies(means, stds, k=10.0).anomalous_nodes.sum()
        assert loose <= strict

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            whitebox_deviations(np.ones(3))
        with pytest.raises(ValueError):
            whitebox_thresholds(np.ones(3), k=1.0)

    @given(st.integers(0, 200))
    def test_property_median_node_never_anomalous_alone(self, seed):
        """A node exactly at the median has zero deviation everywhere."""
        rng = np.random.default_rng(seed)
        means = rng.uniform(0, 10, size=(5, 3))
        median = np.median(means, axis=0)
        means[2] = median
        deviations = whitebox_deviations(means)
        assert deviations[2] == pytest.approx(np.zeros(3), abs=1e-12)
