"""Tests for from-scratch k-means and 1-NN assignment."""

import numpy as np
import pytest

from repro.analysis import assign_nearest, fit_kmeans, nearest_k


def blobs(seed: int = 0, per_cluster: int = 50):
    """Three well-separated 2-D clusters."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    samples = np.vstack(
        [center + rng.normal(0, 0.5, size=(per_cluster, 2)) for center in centers]
    )
    return samples, centers


class TestFitKmeans:
    def test_recovers_separated_clusters(self):
        samples, centers = blobs()
        model = fit_kmeans(samples, k=3, seed=1)
        found = model.centroids[np.argsort(model.centroids[:, 0])]
        expected = centers[np.argsort(centers[:, 0])]
        assert found == pytest.approx(expected, abs=0.5)

    def test_inertia_is_small_on_tight_clusters(self):
        samples, _ = blobs()
        model = fit_kmeans(samples, k=3, seed=1)
        assert model.inertia < samples.shape[0] * 1.0

    def test_deterministic_given_seed(self):
        samples, _ = blobs()
        a = fit_kmeans(samples, k=3, seed=5)
        b = fit_kmeans(samples, k=3, seed=5)
        assert np.array_equal(a.centroids, b.centroids)

    def test_k_equals_one_gives_mean(self):
        samples, _ = blobs()
        model = fit_kmeans(samples, k=1, seed=0)
        assert model.centroids[0] == pytest.approx(samples.mean(axis=0))

    def test_more_clusters_reduce_inertia(self):
        samples, _ = blobs()
        small = fit_kmeans(samples, k=2, seed=0)
        large = fit_kmeans(samples, k=6, seed=0)
        assert large.inertia <= small.inertia

    def test_explicit_initial_centroids(self):
        samples, centers = blobs()
        model = fit_kmeans(samples, k=3, initial_centroids=centers)
        assert model.centroids == pytest.approx(centers, abs=0.5)

    def test_duplicate_points_do_not_crash(self):
        samples = np.ones((20, 3))
        model = fit_kmeans(samples, k=2, seed=0)
        assert model.centroids.shape == (2, 3)

    def test_errors(self):
        samples, _ = blobs()
        with pytest.raises(ValueError, match="k must be positive"):
            fit_kmeans(samples, k=0)
        with pytest.raises(ValueError, match="cannot fit"):
            fit_kmeans(samples[:2], k=5)
        with pytest.raises(ValueError, match="2-D"):
            fit_kmeans(np.ones(5), k=1)
        with pytest.raises(ValueError, match="initial centroids shape"):
            fit_kmeans(samples, k=3, initial_centroids=np.ones((2, 2)))


class TestAssignment:
    def test_assign_nearest_labels_correctly(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        samples = np.array([[0.5, 0.2], [9.0, 11.0], [-1.0, 0.0]])
        assert list(assign_nearest(samples, centroids)) == [0, 1, 0]

    def test_assign_accepts_single_vector(self):
        centroids = np.array([[0.0], [10.0]])
        assert assign_nearest(np.array([9.0]), centroids)[0] == 1

    def test_nearest_k_orders_by_distance(self):
        centroids = np.array([[0.0], [5.0], [100.0]])
        order = nearest_k(np.array([4.0]), centroids, k=3)
        assert list(order) == [1, 0, 2]

    def test_nearest_k_subsets(self):
        centroids = np.array([[0.0], [5.0], [100.0]])
        assert list(nearest_k(np.array([4.0]), centroids, k=1)) == [1]

    def test_tie_breaks_are_stable(self):
        centroids = np.array([[1.0], [-1.0]])
        assert assign_nearest(np.array([[0.0]]), centroids)[0] == 0
