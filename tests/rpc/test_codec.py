"""Tests for the binary codec v2: packing, negotiation, interop."""

import struct

import pytest

from repro.rpc import ProtocolError, RpcClient, RpcServer, TraceContext
from repro.rpc.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    MAGIC,
    decode_message,
    encode_request_frame,
    encode_response_frame,
    frame_length,
    is_binary_payload,
)
from repro.rpc.protocol import _LENGTH, encode_frame

CATALOG = ("cpu_idle_pct", "loadavg_1", "disk_sectors_written_per_s")


def _window(ts: float, idle: float) -> dict:
    return {
        "timestamp": ts,
        "node_name": "node-01",
        "node": {
            "cpu_idle_pct": idle,
            "loadavg_1": 1.5,
            "disk_sectors_written_per_s": 640.0,
        },
        "emit_wall": ts + 0.001,
    }


class TestRequestRoundTrip:
    def test_binary_sample_request(self):
        frame = encode_request_frame(
            7, "sample", {"now": 12.5}, None, CODEC_BINARY
        )
        assert is_binary_payload(frame[_LENGTH.size:])
        payload, consumed = decode_message(frame)
        assert consumed == len(frame)
        assert payload == {"id": 7, "method": "sample", "params": {"now": 12.5}}

    def test_binary_poll_many_request_with_trace(self):
        trace = TraceContext.new_root(origin="central@pid1").to_wire()
        frame = encode_request_frame(
            9, "poll_many", {"now": 3.0, "max_windows": 32},
            trace, CODEC_BINARY,
        )
        assert is_binary_payload(frame[_LENGTH.size:])
        payload, _ = decode_message(frame)
        assert payload["params"] == {"now": 3.0, "max_windows": 32}
        assert payload["trace"]["id"] == trace["id"]
        assert payload["trace"]["span"] == trace["span"]
        assert payload["trace"]["origin"] == "central@pid1"

    def test_child_trace_carries_parent(self):
        root = TraceContext.new_root(origin="o")
        child = root.child()
        frame = encode_request_frame(
            1, "sample", {}, child.to_wire(), CODEC_BINARY
        )
        payload, _ = decode_message(frame)
        assert payload["trace"]["parent"] == root.span_id

    def test_json_codec_always_json(self):
        frame = encode_request_frame(1, "sample", {"now": 1.0}, None, CODEC_JSON)
        assert not is_binary_payload(frame[_LENGTH.size:])
        payload, _ = decode_message(frame)
        assert payload["method"] == "sample"

    def test_unpackable_method_falls_back_to_json(self):
        frame = encode_request_frame(
            2, "inject", {"kind": "cpuhog"}, None, CODEC_BINARY
        )
        assert not is_binary_payload(frame[_LENGTH.size:])
        payload, _ = decode_message(frame)
        assert payload["params"] == {"kind": "cpuhog"}

    def test_extra_params_fall_back_to_json(self):
        frame = encode_request_frame(
            3, "sample", {"now": 1.0, "verbose": True}, None, CODEC_BINARY
        )
        assert not is_binary_payload(frame[_LENGTH.size:])

    def test_non_hex_trace_falls_back_to_json(self):
        trace = {"id": "not-hex!", "span": "nope", "origin": "x"}
        frame = encode_request_frame(4, "sample", {}, trace, CODEC_BINARY)
        assert not is_binary_payload(frame[_LENGTH.size:])
        payload, _ = decode_message(frame)
        assert payload["trace"] == trace


class TestResponseRoundTrip:
    def test_poll_many_batch(self):
        windows = [_window(10.0 + i, 40.0 + i) for i in range(5)]
        payload = {
            "id": 3,
            "result": {"node_name": "node-01", "windows": windows},
        }
        frame = encode_response_frame(
            payload, method="poll_many", metric_names=CATALOG,
            codec=CODEC_BINARY,
        )
        assert is_binary_payload(frame[_LENGTH.size:])
        decoded, consumed = decode_message(frame, metric_names=CATALOG)
        assert consumed == len(frame)
        assert decoded == payload

    def test_single_sample(self):
        payload = {"id": 4, "result": _window(5.0, 33.0)}
        frame = encode_response_frame(
            payload, method="sample", metric_names=CATALOG,
            codec=CODEC_BINARY,
        )
        assert is_binary_payload(frame[_LENGTH.size:])
        decoded, _ = decode_message(frame, metric_names=CATALOG)
        assert decoded == payload

    def test_priming_none_result(self):
        payload = {"id": 5, "result": None}
        frame = encode_response_frame(
            payload, method="sample", metric_names=CATALOG,
            codec=CODEC_BINARY,
        )
        assert is_binary_payload(frame[_LENGTH.size:])
        decoded, _ = decode_message(frame, metric_names=CATALOG)
        assert decoded == payload

    def test_error_response_binary(self):
        payload = {"id": 6, "error": "no such method 'bogus'"}
        frame = encode_response_frame(
            payload, method="bogus", metric_names=CATALOG,
            codec=CODEC_BINARY,
        )
        assert is_binary_payload(frame[_LENGTH.size:])
        decoded, _ = decode_message(frame, metric_names=CATALOG)
        assert decoded == payload

    def test_catalog_mismatch_falls_back_to_json(self):
        window = _window(1.0, 50.0)
        window["node"]["extra_metric"] = 1.0
        payload = {
            "id": 7,
            "result": {"node_name": "n", "windows": [window]},
        }
        frame = encode_response_frame(
            payload, method="poll_many", metric_names=CATALOG,
            codec=CODEC_BINARY,
        )
        assert not is_binary_payload(frame[_LENGTH.size:])
        decoded, _ = decode_message(frame, metric_names=CATALOG)
        assert decoded == payload

    def test_non_sample_result_falls_back_to_json(self):
        payload = {"id": 8, "result": {"acknowledged": True}}
        frame = encode_response_frame(
            payload, method="poll_many", metric_names=CATALOG,
            codec=CODEC_BINARY,
        )
        assert not is_binary_payload(frame[_LENGTH.size:])

    def test_binary_batch_is_smaller_than_json(self):
        windows = [_window(float(i), 50.0) for i in range(10)]
        payload = {"id": 1, "result": {"node_name": "n", "windows": windows}}
        binary = encode_response_frame(
            payload, "poll_many", CATALOG, CODEC_BINARY
        )
        json_frame = encode_frame(payload)
        assert len(binary) < len(json_frame)


class TestMalformedFrames:
    def _binary_frame(self, body: bytes) -> bytes:
        return _LENGTH.pack(len(body)) + body

    def test_truncated_binary_body(self):
        good = encode_request_frame(1, "sample", {"now": 1.0}, None,
                                    CODEC_BINARY)
        body = good[_LENGTH.size:-2]
        with pytest.raises(ProtocolError, match="truncated binary frame"):
            decode_message(self._binary_frame(body), peer="10.0.0.9:1234")

    def test_error_carries_peer(self):
        good = encode_request_frame(1, "sample", {"now": 1.0}, None,
                                    CODEC_BINARY)
        body = good[_LENGTH.size:-2]
        with pytest.raises(ProtocolError, match="10.0.0.9:1234"):
            decode_message(self._binary_frame(body), peer="10.0.0.9:1234")

    def test_trailing_bytes_rejected(self):
        good = encode_request_frame(1, "sample", {"now": 1.0}, None,
                                    CODEC_BINARY)
        body = good[_LENGTH.size:] + b"\x00\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            decode_message(self._binary_frame(body))

    def test_unknown_method_id_rejected(self):
        body = struct.pack(">BBIB", MAGIC, 1, 1, 0) + bytes([250])
        with pytest.raises(ProtocolError, match="unknown binary method id"):
            decode_message(self._binary_frame(body))

    def test_unknown_kind_rejected(self):
        body = struct.pack(">BBIB", MAGIC, 9, 1, 0)
        with pytest.raises(ProtocolError, match="unknown binary message kind"):
            decode_message(self._binary_frame(body))

    def test_sample_frame_without_catalog_rejected(self):
        payload = {"id": 1, "result": _window(1.0, 50.0)}
        frame = encode_response_frame(payload, "sample", CATALOG, CODEC_BINARY)
        with pytest.raises(ProtocolError, match="no interned metric catalog"):
            decode_message(frame, metric_names=())

    def test_frame_length_incomplete_prefix(self):
        assert frame_length(b"\x00\x00") is None
        assert frame_length(b"") is None

    def test_frame_length_oversized_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds maximum"):
            frame_length(_LENGTH.pack(1 << 30))

    def test_frame_length_of_valid_frame(self):
        frame = encode_request_frame(1, "sample", {}, None, CODEC_BINARY)
        assert frame_length(frame) == len(frame)
        assert frame_length(frame + b"more") == len(frame)


class _NodeHandler:
    """Poll-shaped handler advertising an interned metric catalog."""

    metric_names = CATALOG

    def __init__(self):
        self.polls = 0

    def rpc_sample(self, now=None):
        self.polls += 1
        if self.polls == 1:
            return None  # priming
        return _window(float(now or 0.0), 42.0)

    def rpc_poll_many(self, now=None, max_windows=32):
        return {
            "node_name": "node-01",
            "windows": [_window(float(now or 0.0) + i, 42.0)
                        for i in range(3)],
        }

    def rpc_inject(self, kind, intensity=1.0):
        return {"node": "node-01", "fault": kind}


class TestLiveInterop:
    """v1 <-> v2 interoperability over real sockets."""

    def test_v2_client_v2_server_negotiates_binary(self):
        with RpcServer(_NodeHandler(), "sadc") as server:
            host, port = server.address
            with RpcClient(host, port, codec="auto") as client:
                assert client.codec == CODEC_BINARY
                assert client.metric_names == CATALOG
                assert client.call("sample", now=1.0) is None  # priming
                sample = client.call("sample", now=2.0)
                assert sample["node"]["cpu_idle_pct"] == 42.0
                batch = client.call("poll_many", now=3.0, max_windows=8)
                assert len(batch["windows"]) == 3
                assert batch["windows"][0]["node"]["loadavg_1"] == 1.5

    def test_v1_client_on_v2_server_stays_json(self):
        with RpcServer(_NodeHandler(), "sadc") as server:
            host, port = server.address
            with RpcClient(host, port, codec="json") as client:
                assert client.codec == CODEC_JSON
                assert client.metric_names == ()
                client.call("sample", now=1.0)
                sample = client.call("sample", now=2.0)
                assert sample["node"]["cpu_idle_pct"] == 42.0

    def test_v2_client_on_v1_server_stays_json(self):
        with RpcServer(_NodeHandler(), "sadc", codec="json") as server:
            host, port = server.address
            with RpcClient(host, port, codec="auto") as client:
                assert client.codec == CODEC_JSON
                client.call("sample", now=1.0)
                sample = client.call("sample", now=2.0)
                assert sample["node"]["cpu_idle_pct"] == 42.0

    def test_both_codecs_return_identical_values(self):
        with RpcServer(_NodeHandler(), "sadc") as server:
            host, port = server.address
            with RpcClient(host, port, codec="auto") as v2:
                with RpcClient(host, port, codec="json") as v1:
                    v2.call("sample", now=1.0)
                    v1.call("sample", now=1.0)
                    a = v2.call("poll_many", now=5.0)
                    b = v1.call("poll_many", now=5.0)
                    assert a == b

    def test_binary_connection_moves_fewer_bytes(self):
        with RpcServer(_NodeHandler(), "sadc") as server:
            host, port = server.address
            with RpcClient(host, port, codec="auto") as v2:
                with RpcClient(host, port, codec="json") as v1:
                    for client in (v2, v1):
                        for i in range(5):
                            client.call("poll_many", now=float(i))
                    assert (v2.counter.rx_payload
                            < 0.5 * v1.counter.rx_payload)

    def test_non_poll_methods_work_over_binary_connection(self):
        with RpcServer(_NodeHandler(), "sadc") as server:
            host, port = server.address
            with RpcClient(host, port, codec="auto") as client:
                assert client.codec == CODEC_BINARY
                result = client.call("inject", kind="cpuhog", intensity=0.5)
                assert result == {"node": "node-01", "fault": "cpuhog"}

    def test_server_without_catalog_never_negotiates_binary(self):
        class Bare:
            def rpc_echo(self, value):
                return value

        with RpcServer(Bare(), "bare") as server:
            host, port = server.address
            with RpcClient(host, port, codec="auto") as client:
                assert client.codec == CODEC_JSON
                assert client.call("echo", value="x") == "x"
