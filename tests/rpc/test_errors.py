"""Error-path tests for the RPC layer: bad frames, dead sockets, limits.

The happy path is covered by ``test_protocol``/``test_transports``; this
file exercises what the cluster deployment actually hits in anger --
truncated frames, peers vanishing mid-frame, frame-size limits, and a
client outliving a server restart.
"""

import socket
import struct
import threading

import pytest

from repro.rpc import (
    ProtocolError,
    RpcClient,
    RpcServer,
    decode_frame,
    encode_frame,
    max_frame_bytes,
    set_max_frame_bytes,
)


class ToyHandler:
    def rpc_echo(self, value):
        return value


@pytest.fixture()
def frame_limit_reset():
    yield
    set_max_frame_bytes(None)


class TestFrameLimit:
    def test_default_limit(self, frame_limit_reset, monkeypatch):
        monkeypatch.delenv("ASDF_MAX_FRAME_BYTES", raising=False)
        assert max_frame_bytes() == 16 * 1024 * 1024

    def test_env_var_overrides_default(self, frame_limit_reset, monkeypatch):
        monkeypatch.setenv("ASDF_MAX_FRAME_BYTES", "4096")
        assert max_frame_bytes() == 4096

    def test_explicit_override_beats_env(self, frame_limit_reset, monkeypatch):
        monkeypatch.setenv("ASDF_MAX_FRAME_BYTES", "4096")
        set_max_frame_bytes(64)
        assert max_frame_bytes() == 64

    def test_bad_env_value_ignored(self, frame_limit_reset, monkeypatch):
        monkeypatch.setenv("ASDF_MAX_FRAME_BYTES", "not-a-number")
        assert max_frame_bytes() == 16 * 1024 * 1024

    def test_oversized_encode_rejected(self, frame_limit_reset):
        set_max_frame_bytes(32)
        with pytest.raises(ProtocolError, match="frame too large"):
            encode_frame({"blob": "x" * 100})

    def test_oversized_decode_rejected(self, frame_limit_reset):
        frame = encode_frame({"blob": "x" * 100})
        set_max_frame_bytes(32)
        with pytest.raises(ProtocolError, match="exceeds maximum"):
            decode_frame(frame)


class TestPeerLabelledErrors:
    def test_decode_error_names_the_peer(self):
        with pytest.raises(ProtocolError, match=r"peer 10\.0\.0\.7:99"):
            decode_frame(b"\x00\x00", peer="10.0.0.7:99")

    def test_oversized_error_names_the_peer(self):
        with pytest.raises(ProtocolError, match="peer far-host:1"):
            decode_frame(struct.pack(">I", 1 << 30) + b"x", peer="far-host:1")

    def test_errors_without_peer_stay_unlabelled(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"\x00\x00")
        assert "peer" not in str(excinfo.value)


def _raw_server(respond):
    """One-shot TCP server running ``respond(conn)`` in a thread."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def accept():
        conn, _addr = listener.accept()
        try:
            respond(conn)
        finally:
            conn.close()
            listener.close()

    thread = threading.Thread(target=accept, daemon=True)
    thread.start()
    return listener.getsockname()


class TestDeadSockets:
    def test_close_before_welcome(self):
        def respond(conn):
            conn.recv(4096)  # swallow the hello, say nothing

        host, port = _raw_server(respond)
        with pytest.raises(ProtocolError, match="closed before frame"):
            RpcClient(host, port, timeout=5.0)

    def test_disconnect_mid_frame(self):
        def respond(conn):
            conn.recv(4096)
            welcome = encode_frame(
                {"welcome": "toy", "version": 1, "methods": ["echo"]}
            )
            conn.sendall(welcome)
            conn.recv(4096)  # the request
            # Declare a 1000-byte frame but send only a sliver of it.
            conn.sendall(struct.pack(">I", 1000) + b'{"id"')

        host, port = _raw_server(respond)
        client = RpcClient(host, port, timeout=5.0)
        with pytest.raises(ProtocolError, match="closed mid-frame"):
            client.call("echo", value=1)
        client.close()

    def test_mid_frame_error_names_the_peer(self):
        def respond(conn):
            conn.recv(4096)

        host, port = _raw_server(respond)
        with pytest.raises(ProtocolError, match=f"{host}:{port}"):
            RpcClient(host, port, timeout=5.0)


class TestReconnect:
    def test_reconnect_after_server_restart(self):
        # A one-shot server that answers exactly one call and then dies,
        # like a SIGKILLed collection daemon.
        def respond(conn):
            conn.recv(4096)  # hello
            conn.sendall(encode_frame(
                {"welcome": "toy", "version": 1, "methods": ["echo"]}
            ))
            request, _ = decode_frame(conn.recv(65536))
            conn.sendall(encode_frame(
                {"id": request["id"],
                 "result": request["params"]["value"]}
            ))

        host, port = _raw_server(respond)
        client = RpcClient(host, port, timeout=5.0)
        assert client.call("echo", value=1) == 1

        # The daemon is gone: the next call dies on the wire.
        with pytest.raises((ProtocolError, OSError)):
            client.call("echo", value=2)

        # A fresh server appears (the respawn); point the client at its
        # new address and reconnect.
        server = RpcServer(ToyHandler(), "toy")
        server.start()
        try:
            client.host, client.port = server.address
            client.reconnect(retries=10, delay_s=0.05)
            assert client.reconnects == 1
            assert client.call("echo", value=3) == 3
        finally:
            client.close()
            server.stop()

    def test_reconnect_exhaustion_raises_with_peer(self):
        server = RpcServer(ToyHandler(), "toy")
        server.start()
        host, port = server.address
        client = RpcClient(host, port, timeout=5.0)
        server.stop()
        with pytest.raises(ProtocolError, match=f"{host}:{port}"):
            client.reconnect(retries=2, delay_s=0.01)
        client.close()
