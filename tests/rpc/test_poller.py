"""Tests for the selectors-based multi-peer poller."""

import time

import pytest

from repro.rpc import MultiPoller, RpcClient, RpcServer, TraceContext

CATALOG = ("cpu_idle_pct", "loadavg_1")


class SlowableHandler:
    """A poll handler whose response can be delayed per instance."""

    metric_names = CATALOG

    def __init__(self, name: str, delay_s: float = 0.0):
        self.name = name
        self.delay_s = delay_s

    def rpc_sample(self, now=None):
        if self.delay_s:
            time.sleep(self.delay_s)
        return {
            "timestamp": float(now or 0.0),
            "node_name": self.name,
            "node": {"cpu_idle_pct": 60.0, "loadavg_1": 0.5},
            "emit_wall": time.time(),  # fpt: noqa[FPT201] -- live-socket test fixture
        }

    def rpc_poll_many(self, now=None, max_windows=32):
        return {
            "node_name": self.name,
            "windows": [self.rpc_sample(now)],
        }


def _cluster(delays):
    """Spawn one server+client per delay; returns (servers, clients)."""
    servers = []
    clients = []
    for index, delay in enumerate(delays):
        server = RpcServer(
            SlowableHandler(f"node-{index}", delay), f"sadc@{index}"
        )
        server.start()
        servers.append(server)
        host, port = server.address
        clients.append(RpcClient(host, port, codec="auto"))
    return servers, clients


def _teardown(servers, clients):
    for client in clients:
        client.close()
    for server in servers:
        server.stop()


class TestMultiPoller:
    def test_polls_every_peer(self):
        servers, clients = _cluster([0.0] * 4)
        try:
            calls = {
                f"node-{i}": (client, "sample", {"now": 1.0})
                for i, client in enumerate(clients)
            }
            outcomes = MultiPoller().poll(calls, trace=None, timeout_s=5.0)
            assert set(outcomes) == set(calls)
            assert all(outcome.ok for outcome in outcomes.values())
            for i, client in enumerate(clients):
                assert outcomes[f"node-{i}"].result["node_name"] == f"node-{i}"
        finally:
            _teardown(servers, clients)

    def test_round_tracks_slowest_not_sum(self):
        # Four peers each sleeping 0.3s: a serial poll costs ~1.2s, a
        # pipelined one ~0.3s.  The 0.8s ceiling fails the serial case
        # deterministically while leaving slack for scheduler noise.
        delay = 0.3
        servers, clients = _cluster([delay] * 4)
        try:
            calls = {
                f"node-{i}": (client, "sample", {"now": 1.0})
                for i, client in enumerate(clients)
            }
            started = time.perf_counter()
            outcomes = MultiPoller().poll(calls, trace=None, timeout_s=10.0)
            elapsed = time.perf_counter() - started
            assert all(outcome.ok for outcome in outcomes.values())
            assert elapsed < len(clients) * delay * 0.67, (
                f"poll took {elapsed:.2f}s -- looks serial, not pipelined"
            )
        finally:
            _teardown(servers, clients)

    def test_slow_peer_times_out_others_succeed(self):
        servers, clients = _cluster([0.0, 5.0, 0.0])
        try:
            calls = {
                f"node-{i}": (client, "sample", {"now": 1.0})
                for i, client in enumerate(clients)
            }
            outcomes = MultiPoller().poll(calls, trace=None, timeout_s=1.0)
            assert outcomes["node-0"].ok
            assert outcomes["node-2"].ok
            assert not outcomes["node-1"].ok
            assert "timed out" in str(outcomes["node-1"].error)
        finally:
            _teardown(servers, clients)

    def test_rtt_recorded_per_peer(self):
        servers, clients = _cluster([0.0, 0.2])
        try:
            calls = {
                f"node-{i}": (client, "sample", {"now": 1.0})
                for i, client in enumerate(clients)
            }
            outcomes = MultiPoller().poll(calls, trace=None, timeout_s=5.0)
            assert outcomes["node-1"].rtt_s >= 0.2
            assert outcomes["node-0"].rtt_s < outcomes["node-1"].rtt_s
        finally:
            _teardown(servers, clients)

    def test_empty_calls(self):
        assert MultiPoller().poll({}, trace=None, timeout_s=1.0) == {}

    def test_trace_propagates_through_pipelined_poll(self):
        servers, clients = _cluster([0.0])
        try:
            trace = TraceContext.new_root(origin="test")
            calls = {"node-0": (clients[0], "sample", {"now": 1.0})}
            outcomes = MultiPoller().poll(calls, trace=trace, timeout_s=5.0)
            assert outcomes["node-0"].ok
        finally:
            _teardown(servers, clients)

    def test_dead_peer_fails_without_blocking_others(self):
        servers, clients = _cluster([0.0, 0.0])
        try:
            clients[1].close()  # connection already torn down
            calls = {
                f"node-{i}": (client, "sample", {"now": 1.0})
                for i, client in enumerate(clients)
            }
            outcomes = MultiPoller().poll(calls, trace=None, timeout_s=2.0)
            assert outcomes["node-0"].ok
            assert not outcomes["node-1"].ok
        finally:
            _teardown(servers, clients)
