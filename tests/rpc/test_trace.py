"""Trace-context propagation across the RPC boundary."""

from repro.rpc import (
    InprocChannel,
    RpcClient,
    RpcServer,
    TraceContext,
    frame_trace,
    make_request,
)
from repro.telemetry import Telemetry


class ToyHandler:
    def rpc_echo(self, value):
        return value


class TestTraceContext:
    def test_new_root_has_no_parent(self):
        root = TraceContext.new_root(origin="central@pid1")
        assert root.parent_id is None
        assert root.trace_id
        assert root.origin == "central@pid1"

    def test_child_keeps_trace_id_links_parent(self):
        root = TraceContext.new_root(origin="a")
        child = root.child(origin="b")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.origin == "b"

    def test_wire_round_trip(self):
        root = TraceContext.new_root(origin="a")
        assert TraceContext.from_wire(root.to_wire()) == root

    def test_from_wire_rejects_garbage(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({"span": "x"}) is None
        assert TraceContext.from_wire("nope") is None

    def test_frame_trace_reads_request_frames(self):
        root = TraceContext.new_root(origin="a")
        frame = make_request(1, "echo", {"value": 2}, trace=root)
        assert frame_trace(frame) == root
        assert frame_trace(make_request(2, "echo")) is None

    def test_span_args_expose_ids(self):
        root = TraceContext.new_root(origin="a")
        args = root.span_args()
        assert args["trace_id"] == root.trace_id
        assert args["span_id"] == root.span_id


def _spans(telemetry):
    return [
        event for event in telemetry.tracer.events
        if event.category == "rpc"
    ]


class TestPropagationOverTcp:
    def test_client_and_server_spans_share_trace_id(self):
        client_side = Telemetry(trace=True)
        server_side = Telemetry(trace=True)
        root = TraceContext.new_root(origin="test")
        with RpcServer(ToyHandler(), "toy", telemetry=server_side) as server:
            host, port = server.address
            with RpcClient(host, port, telemetry=client_side) as client:
                assert client.call("echo", trace=root, value=7) == 7

        client_spans = _spans(client_side)
        server_spans = _spans(server_side)
        assert any(
            span.args.get("trace_id") == root.trace_id
            for span in client_spans
        )
        assert any(
            span.args.get("trace_id") == root.trace_id
            for span in server_spans
        )
        # The serve span is a *child*: same trace, chained parent.
        serve = next(
            span for span in server_spans
            if span.args.get("trace_id") == root.trace_id
        )
        assert serve.args.get("parent_id") == root.span_id

    def test_untraced_calls_stay_untraced(self):
        server_side = Telemetry(trace=True)
        with RpcServer(ToyHandler(), "toy", telemetry=server_side) as server:
            host, port = server.address
            with RpcClient(host, port) as client:
                assert client.call("echo", value=1) == 1
        assert all(
            "trace_id" not in span.args for span in _spans(server_side)
        )


class TestPropagationInproc:
    def test_inproc_serve_span_carries_trace(self):
        telemetry = Telemetry(trace=True)
        channel = InprocChannel(ToyHandler(), "toy", telemetry=telemetry)
        root = TraceContext.new_root(origin="test")
        assert channel.call("echo", trace=root, value=3) == 3
        assert any(
            span.args.get("trace_id") == root.trace_id
            for span in _spans(telemetry)
        )
