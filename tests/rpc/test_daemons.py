"""Tests for the sadc and hadoop_log collection daemons."""

import pytest

from repro.hadoop import DaemonLog, TASKTRACKER_CLASS
from repro.rpc import LOG_PARSER_LAG_S, HadoopLogDaemon, SadcDaemon
from repro.sysstat import NODE_METRICS, SimProcFS


class TestSadcDaemon:
    def test_priming_call_returns_none(self):
        daemon = SadcDaemon("slave01", SimProcFS())
        assert daemon.rpc_sample(now=0.0) is None

    def test_sample_contains_catalog(self):
        procfs = SimProcFS()
        daemon = SadcDaemon("slave01", procfs)
        daemon.rpc_sample(now=0.0)
        procfs.cpu.idle += 4.0
        sample = daemon.rpc_sample(now=1.0)
        assert set(sample["node"]) == set(NODE_METRICS)
        assert sample["timestamp"] == 1.0

    def test_process_keys_are_strings_for_json(self):
        procfs = SimProcFS()
        procfs.process(42, "java")
        daemon = SadcDaemon("slave01", procfs)
        daemon.rpc_sample(now=0.0)
        procfs.cpu.idle += 4.0
        sample = daemon.rpc_sample(now=1.0)
        assert "42" in sample["processes"]

    def test_list_metrics(self):
        daemon = SadcDaemon("slave01", SimProcFS())
        catalog = daemon.rpc_list_metrics()
        assert len(catalog["node"]) == 64
        assert len(catalog["nic"]) == 18
        assert len(catalog["process"]) == 19

    def test_cpu_meter_accumulates(self):
        procfs = SimProcFS()
        daemon = SadcDaemon("slave01", procfs)
        for t in range(5):
            procfs.cpu.idle += 4.0
            daemon.rpc_sample(now=float(t))
        assert daemon.meter.calls == 5
        assert daemon.meter.cpu_seconds >= 0.0


def tt_log_with_task(node: str = "slave01") -> DaemonLog:
    log = DaemonLog(node, "tasktracker")
    log.append(1.0, "INFO", TASKTRACKER_CLASS, "LaunchTaskAction: task_0001_m_000000_0")
    log.append(20.0, "INFO", TASKTRACKER_CLASS, "Task task_0001_m_000000_0 is done.")
    return log


class TestHadoopLogDaemon:
    def test_needs_at_least_one_log(self):
        with pytest.raises(ValueError):
            HadoopLogDaemon("slave01")

    def test_collect_respects_parser_lag(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        result = daemon.rpc_collect(now=10.0)
        assert result["seconds"] == list(range(0, 10 - LOG_PARSER_LAG_S))

    def test_each_second_returned_exactly_once(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        first = daemon.rpc_collect(now=10.0)
        second = daemon.rpc_collect(now=12.0)
        assert set(first["seconds"]).isdisjoint(second["seconds"])
        assert second["seconds"] == [8, 9]

    def test_vectors_reflect_task_interval(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        result = daemon.rpc_collect(now=30.0)
        by_second = dict(zip(result["seconds"], result["vectors"]))
        assert by_second[5][0] == 1.0   # MapTask live at t=5
        assert by_second[25][0] == 0.0  # done by t=25

    def test_incremental_log_growth(self):
        log = DaemonLog("slave01", "tasktracker")
        daemon = HadoopLogDaemon("slave01", log)
        daemon.rpc_collect(now=5.0)
        log.append(6.0, "INFO", TASKTRACKER_CLASS, "LaunchTaskAction: task_0001_m_000001_0")
        result = daemon.rpc_collect(now=10.0)
        by_second = dict(zip(result["seconds"], result["vectors"]))
        assert by_second[7][0] == 1.0

    def test_collect_before_lag_is_empty(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        result = daemon.rpc_collect(now=1.0)
        assert result["seconds"] == []

    def test_watermark_reported(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        result = daemon.rpc_collect(now=30.0)
        assert result["watermark"] == 20.0

    def test_stats_endpoint(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        daemon.rpc_collect(now=10.0)
        stats = daemon.rpc_stats()
        assert stats["lines_parsed"] == 2
        assert stats["cursor"] == 8

    def test_vector_is_json_friendly(self):
        daemon = HadoopLogDaemon("slave01", tt_log_with_task())
        result = daemon.rpc_collect(now=10.0)
        for vector in result["vectors"]:
            assert all(isinstance(x, float) for x in vector)


class TestObservatoryDaemon:
    def make_daemon(self):
        from repro.analysis.metrics import Alarm, GroundTruth
        from repro.obsv import Observatory
        from repro.rpc import ObservatoryDaemon

        observatory = Observatory()
        observatory.register_ground_truth(
            "CPUHog", GroundTruth(faulty_node="slave01", inject_time=10.0)
        )
        observatory.observe_alarm(
            Alarm(time=30.0, node="slave01", source="blackbox"),
            delivered=(),
            sim_now=30.0,
        )
        return ObservatoryDaemon(observatory)

    def test_health_and_scoreboard(self):
        daemon = self.make_daemon()
        assert daemon.rpc_health()["alarms_seen"] == 1
        scoreboard = daemon.rpc_scoreboard()
        assert scoreboard["format"] == "asdf-scoreboard/1"
        assert scoreboard["faults"]["CPUHog"]["true_alarms"] == 1

    def test_alarms_casts_wire_floats(self):
        # RPC params arrive as JSON numbers; tail must tolerate floats.
        daemon = self.make_daemon()
        doc = daemon.rpc_alarms(tail=1.0)
        assert set(doc) == {"total", "returned", "alarms"}

    def test_metrics_exposition_and_meter(self):
        daemon = self.make_daemon()
        text = daemon.rpc_metrics()
        assert isinstance(text, str)
        assert daemon.meter.calls >= 1

    def test_methods_are_rpc_discoverable(self):
        from repro.rpc import handler_methods

        methods = handler_methods(self.make_daemon())
        assert {"health", "status", "scoreboard", "alarms", "metrics"} <= set(
            methods
        )
