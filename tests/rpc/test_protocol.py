"""Tests for the wire protocol and byte accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc import (
    ByteCounter,
    ProtocolError,
    SEGMENT_PAYLOAD_BYTES,
    WIRE_HEADER_BYTES,
    decode_frame,
    encode_frame,
    make_error,
    make_hello,
    make_request,
    make_response,
    make_welcome,
    wire_bytes,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 1, "method": "sample", "params": {"now": 5.0}}
        decoded, consumed = decode_frame(encode_frame(payload))
        assert decoded == payload
        assert consumed == len(encode_frame(payload))

    def test_decode_with_trailing_data(self):
        frame = encode_frame({"a": 1})
        decoded, consumed = decode_frame(frame + b"extra")
        assert decoded == {"a": 1}
        assert consumed == len(frame)

    def test_short_length_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="length prefix"):
            decode_frame(b"\x00\x00")

    def test_truncated_body_rejected(self):
        frame = encode_frame({"a": 1})
        with pytest.raises(ProtocolError, match="short frame"):
            decode_frame(frame[:-2])

    def test_non_json_body_rejected(self):
        bad = b"\x00\x00\x00\x03abc"
        with pytest.raises(ProtocolError, match="bad frame payload"):
            decode_frame(bad)

    def test_non_object_payload_rejected(self):
        import json
        import struct

        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(struct.pack(">I", len(body)) + body)

    def test_oversized_declared_length_rejected(self):
        import struct

        with pytest.raises(ProtocolError, match="exceeds maximum"):
            decode_frame(struct.pack(">I", 1 << 30) + b"x")

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=16)),
            max_size=5,
        )
    )
    def test_property_round_trip_any_object(self, payload):
        decoded, _ = decode_frame(encode_frame(payload))
        assert decoded == payload


class TestMessageHelpers:
    def test_request_shape(self):
        assert make_request(3, "collect", {"now": 1.0}) == {
            "id": 3,
            "method": "collect",
            "params": {"now": 1.0},
        }

    def test_request_default_params(self):
        assert make_request(1, "x")["params"] == {}

    def test_response_and_error(self):
        assert make_response(2, [1, 2]) == {"id": 2, "result": [1, 2]}
        assert make_error(2, "bad") == {"id": 2, "error": "bad"}

    def test_hello_and_welcome_carry_version(self):
        from repro.rpc.protocol import PROTOCOL_VERSION

        assert make_hello("asdf")["version"] == PROTOCOL_VERSION
        welcome = make_welcome("sadc_rpcd", ["sample"])
        assert welcome["welcome"] == "sadc_rpcd"
        assert welcome["methods"] == ["sample"]

    def test_hello_welcome_v1_shape_without_codec(self):
        # Without negotiation fields the frames are exactly the v1
        # shapes: no "codecs" in hello, no "codec"/"metrics" in welcome.
        assert "codecs" not in make_hello("asdf")
        welcome = make_welcome("sadc_rpcd", ["sample"])
        assert "codec" not in welcome and "metrics" not in welcome

    def test_hello_welcome_negotiation_fields(self):
        assert make_hello("asdf", codecs=["bin", "json"])["codecs"] == [
            "bin", "json",
        ]
        welcome = make_welcome(
            "sadc_rpcd", ["sample"], codec="bin", metrics=["cpu_idle_pct"]
        )
        assert welcome["codec"] == "bin"
        assert welcome["metrics"] == ["cpu_idle_pct"]


class TestWireEstimation:
    def test_zero_payload_zero_wire(self):
        assert wire_bytes(0) == 0

    def test_small_payload_one_segment(self):
        assert wire_bytes(100) == 100 + WIRE_HEADER_BYTES

    def test_large_payload_multiple_segments(self):
        size = SEGMENT_PAYLOAD_BYTES * 3 + 10
        assert wire_bytes(size) == size + 4 * WIRE_HEADER_BYTES


class TestByteCounter:
    def test_tx_rx_accumulate(self):
        counter = ByteCounter()
        counter.count_tx(100)
        counter.count_rx(200)
        assert counter.tx_payload == 100
        assert counter.rx_payload == 200
        assert counter.messages_sent == 1
        assert counter.messages_received == 1
        assert counter.total_wire == wire_bytes(100) + wire_bytes(200)

    def test_static_flag_routes_to_static_wire(self):
        counter = ByteCounter()
        counter.count_tx(100, static=True)
        counter.count_rx(50)
        assert counter.static_wire == wire_bytes(100)
        assert counter.dynamic_wire == wire_bytes(50)

    def test_handshake_counts_as_static(self):
        counter = ByteCounter()
        counter.count_handshake()
        assert counter.static_wire > 0
        assert counter.dynamic_wire == 0
