"""Tests for the TCP and in-process RPC transports."""

import pytest

from repro.rpc import InprocChannel, RemoteError, RpcClient, RpcServer, dispatch, handler_methods
from repro.rpc.protocol import make_request


class ToyHandler:
    """A minimal daemon handler for transport tests."""

    def rpc_add(self, a, b):
        return a + b

    def rpc_echo(self, value):
        return value

    def rpc_fail(self):
        raise RuntimeError("deliberate")

    def not_an_rpc(self):  # pragma: no cover - should never be callable
        return "hidden"


class TestDispatch:
    def test_handler_methods_lists_rpc_prefixed(self):
        assert handler_methods(ToyHandler()) == ["add", "echo", "fail"]

    def test_dispatch_success(self):
        response = dispatch(ToyHandler(), make_request(1, "add", {"a": 2, "b": 3}))
        assert response == {"id": 1, "result": 5}

    def test_dispatch_unknown_method(self):
        response = dispatch(ToyHandler(), make_request(1, "missing"))
        assert "no such method" in response["error"]

    def test_dispatch_bad_params(self):
        response = dispatch(ToyHandler(), make_request(1, "add", {"a": 2}))
        assert "bad parameters" in response["error"]

    def test_dispatch_handler_exception_reported(self):
        response = dispatch(ToyHandler(), make_request(1, "fail"))
        assert "RuntimeError" in response["error"]

    def test_dispatch_missing_method_name(self):
        response = dispatch(ToyHandler(), {"id": 9})
        assert "missing method" in response["error"]

    def test_dispatch_non_dict_params(self):
        response = dispatch(ToyHandler(), {"id": 1, "method": "add", "params": [1]})
        assert "params must be an object" in response["error"]

    def test_private_methods_not_exposed(self):
        response = dispatch(ToyHandler(), make_request(1, "not_an_rpc"))
        assert "error" in response


class TestTcpTransport:
    def test_call_over_real_socket(self):
        with RpcServer(ToyHandler(), "toy") as server:
            host, port = server.address
            with RpcClient(host, port) as client:
                assert client.call("add", a=1, b=2) == 3
                assert client.service == "toy"
                assert "echo" in client.methods

    def test_remote_error_raised_client_side(self):
        with RpcServer(ToyHandler(), "toy") as server:
            host, port = server.address
            with RpcClient(host, port) as client:
                with pytest.raises(RemoteError, match="deliberate"):
                    client.call("fail")
                # The connection survives an error response.
                assert client.call("echo", value="still alive") == "still alive"

    def test_multiple_sequential_calls(self):
        with RpcServer(ToyHandler(), "toy") as server:
            host, port = server.address
            with RpcClient(host, port) as client:
                for i in range(10):
                    assert client.call("add", a=i, b=1) == i + 1

    def test_two_clients_share_a_server(self):
        with RpcServer(ToyHandler(), "toy") as server:
            host, port = server.address
            with RpcClient(host, port) as c1, RpcClient(host, port) as c2:
                assert c1.call("echo", value=1) == 1
                assert c2.call("echo", value=2) == 2

    def test_byte_counters_populated(self):
        with RpcServer(ToyHandler(), "toy") as server:
            host, port = server.address
            with RpcClient(host, port) as client:
                client.call("add", a=1, b=2)
                assert client.counter.static_wire > 0
                assert client.counter.dynamic_wire > 0
            assert server.counter.messages_received >= 2  # hello + request


class TestInprocTransport:
    def test_call_matches_tcp_semantics(self):
        channel = InprocChannel(ToyHandler(), "toy")
        assert channel.call("add", a=4, b=5) == 9
        assert channel.methods == ["add", "echo", "fail"]

    def test_remote_error(self):
        channel = InprocChannel(ToyHandler(), "toy")
        with pytest.raises(RemoteError, match="deliberate"):
            channel.call("fail")

    def test_counts_bytes_like_wire_transport(self):
        channel = InprocChannel(ToyHandler(), "toy")
        static_before = channel.counter.static_wire
        assert static_before > 0
        channel.call("echo", value="x" * 100)
        assert channel.counter.dynamic_wire > 100
        assert channel.counter.static_wire == static_before

    def test_json_round_trip_enforced(self):
        """Values that cannot survive JSON must fail, exactly as on TCP."""

        class BadHandler:
            def rpc_bad(self):
                return {1, 2, 3}  # sets are not JSON-serializable

        channel = InprocChannel(BadHandler(), "bad")
        with pytest.raises(Exception):
            channel.call("bad")

    def test_close_is_noop(self):
        InprocChannel(ToyHandler(), "toy").close()
