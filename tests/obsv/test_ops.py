"""HTTP tests for the live ops surface (real sockets, stdlib client)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.analysis.metrics import GroundTruth
from repro.obsv import Observatory, OpsServer

from .helpers import SCORED_PIPELINE_CONFIG, ALARM_SCRIPT, build_core


@pytest.fixture()
def served():
    observatory = Observatory()
    observatory.register_ground_truth(
        "CPUHog", GroundTruth(faulty_node="slave01", inject_time=2.0)
    )
    core = build_core(
        SCORED_PIPELINE_CONFIG,
        services={
            "script": {"src": ALARM_SCRIPT},
            "observatory": observatory,
        },
    )
    observatory.attach(core)
    core.run_until(float(len(ALARM_SCRIPT)))
    with OpsServer(observatory) as server:
        yield server
    core.close()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5.0) as response:
        return response.status, response.headers, response.read()


def get_json(server, path):
    status, _headers, body = get(server, path)
    assert status == 200
    return json.loads(body)


class TestRoutes:
    def test_health(self, served):
        doc = get_json(served, "/health")
        assert doc["status"] == "ok"
        assert doc["alarms_seen"] == 3
        # The root path is an alias.
        assert get_json(served, "/")["status"] == "ok"

    def test_metrics_is_prometheus_text(self, served):
        status, headers, body = get(served, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"asdf_alarm_sim_latency_seconds" in body

    def test_status_has_topology(self, served):
        doc = get_json(served, "/status")
        assert "board" in doc["instances"]
        assert any(edge["to"] == "board" for edge in doc["edges"])

    def test_scoreboard(self, served):
        doc = get_json(served, "/scoreboard")
        assert doc["format"] == "asdf-scoreboard/1"
        assert doc["faults"]["CPUHog"]["true_alarms"] == 3

    def test_alarms_tail_and_since(self, served):
        # The scoreboard sink does not feed the audit trail; the counts
        # endpoint must still answer with a well-formed document.
        doc = get_json(served, "/alarms?tail=2&since=3.5")
        assert set(doc) == {"total", "returned", "alarms"}
        assert doc["returned"] <= 2

    def test_unknown_route_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, "/nope")
        assert excinfo.value.code == 404

    def test_shutdown_sets_event(self, served):
        assert not served.shutdown_requested.is_set()
        doc = get_json(served, "/shutdown")
        assert doc["shutting_down"] is True
        assert served.shutdown_requested.is_set()


class TestLifecycle:
    def test_ephemeral_port_and_idempotent_start_stop(self):
        server = OpsServer(Observatory())
        server.start()
        server.start()  # no-op
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")
        server.stop()
        server.stop()  # no-op
