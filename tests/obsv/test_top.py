"""Tests for the pure dashboard renderer behind ``repro top``."""

from repro.analysis.metrics import GroundTruth
from repro.obsv import CLEAR_SCREEN, Observatory, render_top

from .helpers import ALARM_SCRIPT, SCORED_PIPELINE_CONFIG, build_core


def scored_observatory():
    observatory = Observatory()
    observatory.register_ground_truth(
        "CPUHog", GroundTruth(faulty_node="slave01", inject_time=2.0)
    )
    core = build_core(
        SCORED_PIPELINE_CONFIG,
        services={
            "script": {"src": ALARM_SCRIPT},
            "observatory": observatory,
        },
    )
    observatory.attach(core)
    core.run_until(float(len(ALARM_SCRIPT)))
    core.close()
    return observatory


class TestRenderTop:
    def test_empty_observatory_renders_placeholders(self):
        frame = render_top(Observatory(), color=False)
        assert "asdf top" in frame
        assert "no alarms and no registered faults" in frame
        assert "no measured alarms yet" in frame
        assert "\x1b[" not in frame  # color off means no ANSI codes

    def test_scored_run_shows_nodes_and_latencies(self):
        frame = render_top(scored_observatory(), color=False)
        assert "alarms=3" in frame
        assert "slave01" in frame
        assert "CPUHog" in frame
        assert "p50=" in frame and "fingerpoint=" in frame
        # The union stage shows up in the per-stage breakdown.
        assert "union.alarms" in frame

    def test_color_frames_carry_ansi(self):
        frame = render_top(scored_observatory(), color=True)
        assert "\x1b[1m" in frame  # bold header
        assert CLEAR_SCREEN.startswith("\x1b[")
