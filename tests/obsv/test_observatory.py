"""End-to-end observatory tests over a real fpt-core pipeline."""

from repro.analysis.metrics import GroundTruth, WindowDecision
from repro.obsv import Observatory
from repro.telemetry import Telemetry

from .helpers import ALARM_SCRIPT, SCORED_PIPELINE_CONFIG, build_core


def run_scored_pipeline(observatory, script=ALARM_SCRIPT, telemetry=None):
    core = build_core(
        SCORED_PIPELINE_CONFIG,
        services={
            "script": {"src": script},
            "observatory": observatory,
        },
        telemetry=telemetry,
    )
    observatory.attach(core)
    core.run_until(float(len(script)))
    return core


class TestPipeline:
    def test_alarms_flow_into_scoreboard_with_latency(self):
        observatory = Observatory()
        observatory.register_ground_truth(
            "CPUHog",
            GroundTruth(faulty_node="slave01", inject_time=2.0),
        )
        core = run_scored_pipeline(observatory)
        board = core.instance("board")
        assert board.alarms_routed == 3  # t=3, 4 and 7
        score = observatory.scoreboard.fault_scores()["CPUHog"]
        assert score.true_alarms == 3
        assert score.false_alarms == 0
        assert score.fingerpointing_latency_s == 1.0  # inject 2 -> alarm 3
        # Every record walked a union-forwarded multi-hop chain.
        assert len(observatory.recent) == 3
        for record in observatory.recent:
            assert record.measured
            assert record.delivered == ("thr.alarms", "union.alarms")
            assert record.total_sim_s is not None
            assert record.total_wall_s >= 0.0
        core.close()

    def test_decision_batches_route_to_detector_rows(self):
        observatory = Observatory()
        observatory.register_ground_truth(
            "CPUHog",
            GroundTruth(faulty_node="slave01", inject_time=2.0),
        )
        decisions = [
            [WindowDecision("slave01", 2.0, 3.0, alarmed=True)],
            [WindowDecision("slave01", 3.0, 4.0, alarmed=False)],
        ]
        core = build_core(
            """
            [scripted]
            id = src
            node = slave01

            [scoreboard]
            id = board
            input[d] = src.value
            """,
            services={
                "script": {"src": decisions},
                "observatory": observatory,
            },
        )
        observatory.attach(core)
        core.run_until(float(len(decisions)))
        board = core.instance("board")
        assert board.decision_batches_routed == 2
        counts = observatory.scoreboard.fault_scores()["CPUHog"].detectors[
            "src.value"
        ]
        assert counts.true_positives == 1
        assert counts.false_negatives == 1
        core.close()

    def test_latency_histograms_reach_telemetry(self):
        telemetry = Telemetry(trace=False)
        observatory = Observatory(telemetry=telemetry)
        observatory.register_ground_truth(
            "CPUHog",
            GroundTruth(faulty_node="slave01", inject_time=2.0),
        )
        core = run_scored_pipeline(observatory, telemetry=telemetry)
        text = telemetry.metrics.render_prometheus()
        assert 'asdf_alarm_sim_latency_seconds' in text
        assert 'stage="total"' in text
        assert 'fault="CPUHog"' in text
        core.close()


class TestViews:
    def build(self):
        observatory = Observatory()
        observatory.register_ground_truth(
            "CPUHog",
            GroundTruth(faulty_node="slave01", inject_time=2.0),
        )
        core = run_scored_pipeline(observatory)
        return observatory, core

    def test_health_obj_counts(self):
        observatory, core = self.build()
        health = observatory.health_obj()
        assert health["status"] == "ok"
        assert health["alarms_seen"] == 3
        assert health["sim_time_s"] == float(len(ALARM_SCRIPT))
        assert health["writes_observed"] > 0
        core.close()

    def test_status_obj_names_real_edges(self):
        observatory, core = self.build()
        status = observatory.status_obj()
        assert "board" in status["instances"]
        edges = {
            (edge["output"], edge["to"]) for edge in status["edges"]
        }
        assert ("union.alarms", "board") in edges
        assert ("src.value", "thr") in edges
        core.close()

    def test_detached_observatory_reports_so(self):
        observatory = Observatory()
        assert observatory.health_obj()["status"] == "detached"
        assert observatory.sim_time() is None
        assert "instances" not in observatory.status_obj()

    def test_write_scoreboard(self, tmp_path):
        observatory, core = self.build()
        path = observatory.write_scoreboard(directory=str(tmp_path))
        assert (tmp_path / "BENCH_scoreboard.json").exists()
        assert path.endswith("BENCH_scoreboard.json")
        core.close()
