"""Unit tests for the sample-to-alarm latency tracer."""

from types import SimpleNamespace

from repro.analysis.metrics import Alarm
from repro.obsv import LatencyTracer


def write(tracer, name, owner, timestamp):
    """Feed one fake channel write through the tracer's hook."""
    output = SimpleNamespace(full_name=name, owner_id=owner)
    sample = SimpleNamespace(timestamp=timestamp)
    tracer.on_write(output, sample)


def make_pipeline_tracer():
    """src (source) -> analysis -> union, with known write stamps."""
    tracer = LatencyTracer()
    tracer._upstreams = {
        "src": (),
        "analysis": ("src.value",),
        "union": ("analysis.alarms",),
    }
    return tracer


class TestWatermarks:
    def test_source_write_is_its_own_ingest(self):
        tracer = make_pipeline_tracer()
        write(tracer, "src.value", "src", 10.0)
        assert tracer.ingest_watermark("src.value")[0] == 10.0
        assert tracer.writes_observed == 1

    def test_downstream_inherits_newest_upstream_watermark(self):
        tracer = make_pipeline_tracer()
        write(tracer, "src.value", "src", 10.0)
        write(tracer, "analysis.alarms", "analysis", 12.0)
        assert tracer.ingest_watermark("analysis.alarms")[0] == 10.0
        # A newer source sample advances the inherited watermark.
        write(tracer, "src.value", "src", 11.0)
        write(tracer, "analysis.alarms", "analysis", 13.0)
        assert tracer.ingest_watermark("analysis.alarms")[0] == 11.0

    def test_unknown_upstream_leaves_watermark_absent(self):
        tracer = make_pipeline_tracer()
        write(tracer, "analysis.alarms", "analysis", 12.0)
        assert tracer.ingest_watermark("analysis.alarms") is None


class TestRecordAlarm:
    def test_empty_chain_yields_explicit_absence(self):
        tracer = make_pipeline_tracer()
        alarm = Alarm(time=30.0, node="slave01", source="blackbox")
        record = tracer.record_alarm(alarm, (), sim_now=30.0)
        assert not record.measured
        assert record.delivered == ()
        assert record.stages == ()
        assert record.ingest_sim is None
        assert record.total_sim_s is None
        assert record.total_wall_s is None
        assert record.deliver_sim_s is None

    def test_unknown_chain_head_yields_none_totals(self):
        # Replayed archives re-run the analysis stages but not raw
        # collection: the chain head has no ingest watermark, so totals
        # must be explicitly absent rather than fabricated.
        tracer = make_pipeline_tracer()
        write(tracer, "union.alarms", "union", 30.0)
        alarm = Alarm(time=30.0, node="slave01", via=("analysis.alarms",))
        record = tracer.record_alarm(
            alarm, ("analysis.alarms", "union.alarms"), sim_now=30.0
        )
        assert not record.measured
        assert record.total_sim_s is None
        assert record.ingest_sim is None
        # The unseen stage carries None; the seen one has no reference
        # point either (previous stamp missing at walk start).
        assert record.stages[0].sim_s is None

    def test_multi_hop_chain_stage_latencies(self):
        tracer = make_pipeline_tracer()
        write(tracer, "src.value", "src", 10.0)
        write(tracer, "analysis.alarms", "analysis", 12.0)
        write(tracer, "union.alarms", "union", 13.0)
        alarm = Alarm(
            time=13.0, node="slave01", source="blackbox",
            via=("analysis.alarms",),
        )
        record = tracer.record_alarm(
            alarm, ("analysis.alarms", "union.alarms"), sim_now=15.0
        )
        assert record.measured
        assert record.ingest_sim == 10.0
        assert [s.output for s in record.stages] == [
            "analysis.alarms", "union.alarms"
        ]
        # ingest(10) -> analysis write(12) -> union write(13).
        assert record.stages[0].sim_s == 2.0
        assert record.stages[1].sim_s == 1.0
        assert record.deliver_sim_s == 2.0
        assert record.total_sim_s == 5.0
        assert record.total_wall_s is not None
        assert record.total_wall_s >= 0.0

    def test_stage_latency_never_negative(self):
        tracer = make_pipeline_tracer()
        write(tracer, "src.value", "src", 10.0)
        # An out-of-order stamp (analysis carries an older timestamp)
        # clamps to zero instead of going negative.
        write(tracer, "analysis.alarms", "analysis", 9.0)
        alarm = Alarm(time=9.0, node="slave01")
        record = tracer.record_alarm(alarm, ("analysis.alarms",), sim_now=9.0)
        assert record.stages[0].sim_s == 0.0
        assert record.total_sim_s == 0.0

    def test_json_object_is_serializable(self):
        import json

        tracer = make_pipeline_tracer()
        write(tracer, "src.value", "src", 10.0)
        alarm = Alarm(time=10.0, node="slave01")
        record = tracer.record_alarm(alarm, ("src.value",), sim_now=10.0)
        obj = record.to_json_obj()
        assert json.loads(json.dumps(obj)) == obj
        assert obj["delivered"] == ["src.value"]
