"""Shared helpers for the diagnosis-observatory tests."""

from repro.core import FptCore, Module, Origin, RunReason, SimClock
from repro.modules import standard_registry


class ScriptedSource(Module):
    """Emits a scripted sequence of values once per second.

    Mirrors the module-test helper of the same name (the test trees are
    separate top-level packages, so it cannot be imported from here).
    """

    type_name = "scripted"

    def init(self) -> None:
        node = self.ctx.param_str("node", "")
        self.out = self.ctx.create_output(
            "value", Origin(node=node, source="scripted")
        )
        self.values = list(self.ctx.service("script")[self.ctx.instance_id])
        self.index = 0
        self.ctx.schedule_every(1.0)

    def run(self, reason: RunReason) -> None:
        if self.index < len(self.values):
            value = self.values[self.index]
            if value is not None:
                self.out.write(value, self.ctx.clock.now())
        self.index += 1


def build_core(config_text: str, services: dict, telemetry=None) -> FptCore:
    registry = standard_registry()
    registry.register(ScriptedSource)
    return FptCore.from_config(
        config_text, registry, SimClock(), services=services,
        telemetry=telemetry,
    )


#: scripted source -> threshold -> union -> scoreboard: the smallest
#: pipeline that exercises online scoring and the via-chain walk.
SCORED_PIPELINE_CONFIG = """
[scripted]
id = src
node = slave01

[threshold_alarm]
id = thr
input[m] = src.value
bound = 5.0
consecutive = 2

[alarm_union]
id = union
input[a] = thr.alarms

[scoreboard]
id = board
input[a] = union.alarms
"""

#: A script with two violation episodes (alarms at t=3, 4 and 7).
ALARM_SCRIPT = [1, 2, 9, 9, 9, 1, 9, 9]
