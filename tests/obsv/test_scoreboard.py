"""Unit tests for the online ground-truth scoreboard."""

import json

from repro.analysis.metrics import (
    Alarm,
    GroundTruth,
    WindowDecision,
    score_decisions,
)
from repro.obsv import SCOREBOARD_FORMAT, Scoreboard, percentile, write_scoreboard_json


def make_decisions():
    """Node-window decisions spanning hits, misses and false alarms."""
    return [
        WindowDecision("slave01", 240.0, 300.0, alarmed=False),  # TN (pre)
        WindowDecision("slave01", 300.0, 360.0, alarmed=True),   # TP
        WindowDecision("slave01", 360.0, 420.0, alarmed=False),  # FN
        WindowDecision("slave02", 300.0, 360.0, alarmed=True),   # FP
        WindowDecision("slave02", 360.0, 420.0, alarmed=False),  # TN
    ]


TRUTH = GroundTruth(faulty_node="slave01", inject_time=300.0, clear_time=None)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50.0) is None

    def test_single_value(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 95.0) == 7.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 95.0) == 40.0
        assert percentile(values, 25.0) == 10.0


class TestAlarms:
    def test_covering_alarm_is_true_and_charged_with_latency(self):
        board = Scoreboard()
        board.register_truth("CPUHog", TRUTH)
        fault = board.observe_alarm(Alarm(time=360.0, node="slave01"))
        assert fault == "CPUHog"
        score = board.fault_scores()["CPUHog"]
        assert score.true_alarms == 1
        assert score.detection_latencies_s == [60.0]
        assert score.fingerpointing_latency_s == 60.0

    def test_uncovered_alarm_is_false_on_primary_fault(self):
        board = Scoreboard()
        board.register_truth("CPUHog", TRUTH)
        # Wrong node, and a pre-injection alarm on the right node.
        board.observe_alarm(Alarm(time=360.0, node="slave02"))
        board.observe_alarm(Alarm(time=100.0, node="slave01"))
        score = board.fault_scores()["CPUHog"]
        assert score.false_alarms == 2
        assert score.true_alarms == 0
        assert score.detection_latencies_s == []

    def test_fault_free_run_charges_fault_free_label(self):
        board = Scoreboard()
        board.register_truth(None, GroundTruth(faulty_node=None))
        fault = board.observe_alarm(Alarm(time=50.0, node="slave01"))
        assert fault == "fault-free"
        assert board.fault_scores()["fault-free"].false_alarms == 1

    def test_detection_after_clear_still_counts(self):
        board = Scoreboard()
        board.register_truth(
            "DiskHog",
            GroundTruth(
                faulty_node="slave03", inject_time=300.0, clear_time=400.0
            ),
        )
        fault = board.observe_alarm(Alarm(time=420.0, node="slave03"))
        assert fault == "DiskHog"
        assert board.fault_scores()["DiskHog"].detection_latencies_s == [120.0]


class TestDecisions:
    def test_online_counts_match_offline_scorer(self):
        board = Scoreboard()
        board.register_truth("CPUHog", TRUTH)
        decisions = make_decisions()
        board.observe_decisions("analysis_bb.decisions", decisions)
        offline = score_decisions(decisions, TRUTH)
        counts = board.fault_scores()["CPUHog"].detectors[
            "analysis_bb.decisions"
        ]
        assert counts.true_positives == offline.true_positives
        assert counts.false_positives == offline.false_positives
        assert counts.false_negatives == offline.false_negatives
        assert counts.true_negatives == offline.true_negatives
        assert board.decisions_seen == len(decisions)

    def test_detectors_are_tallied_independently(self):
        board = Scoreboard()
        board.register_truth("CPUHog", TRUTH)
        board.observe_decisions(
            "bb", [WindowDecision("slave01", 300.0, 360.0, alarmed=True)]
        )
        board.observe_decisions(
            "wb", [WindowDecision("slave01", 300.0, 360.0, alarmed=False)]
        )
        score = board.fault_scores()["CPUHog"]
        assert score.detectors["bb"].true_positives == 1
        assert score.detectors["wb"].false_negatives == 1
        totals = board.totals()
        assert totals.true_positives == 1
        assert totals.false_negatives == 1


class TestSnapshotAndEmission:
    def make_board(self):
        board = Scoreboard()
        board.register_truth("CPUHog", TRUTH)
        board.observe_alarm(Alarm(time=360.0, node="slave01"))
        board.observe_decisions("analysis_bb.decisions", make_decisions())
        return board

    def test_snapshot_shape(self):
        snap = self.make_board().snapshot()
        assert snap["format"] == SCOREBOARD_FORMAT
        assert snap["alarms_seen"] == 1
        assert snap["truths"][0]["node"] == "slave01"
        fault = snap["faults"]["CPUHog"]
        assert fault["true_alarms"] == 1
        assert fault["detection_latency_s"]["p50"] == 60.0
        detector = fault["detectors"]["analysis_bb.decisions"]
        assert {"tp", "fp", "fn", "tn", "balanced_accuracy"} <= set(detector)
        assert snap["totals"]["tp"] == 1

    def test_write_scoreboard_json(self, tmp_path):
        path = write_scoreboard_json(self.make_board(), directory=str(tmp_path))
        assert path == str(tmp_path / "BENCH_scoreboard.json")
        doc = json.loads((tmp_path / "BENCH_scoreboard.json").read_text())
        assert doc["format"] == SCOREBOARD_FORMAT
        assert doc["faults"]["CPUHog"]["true_alarms"] == 1
        assert isinstance(doc["created_unix"], int)

    def test_write_scoreboard_respects_bench_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ASDF_BENCH_DIR", str(tmp_path / "bench"))
        path = write_scoreboard_json(self.make_board())
        assert path == str(tmp_path / "bench" / "BENCH_scoreboard.json")
        assert (tmp_path / "bench" / "BENCH_scoreboard.json").exists()
