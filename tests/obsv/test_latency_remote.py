"""Remote-hop accounting in the latency tracer (cluster mode)."""

from repro.analysis.metrics import Alarm
from repro.obsv.latency import LatencyTracer


def make_alarm(node="node-01", via=()):
    return Alarm(time=10.0, node=node, source="peer-deviation", via=tuple(via))


class TestNoteWrites:
    def test_note_write_stamps_without_ingest(self):
        tracer = LatencyTracer()
        tracer.note_write("detect:n1", sim=5.0, wall=1.0)
        assert tracer.last_write("detect:n1") == (5.0, 1.0)
        assert tracer.ingest_watermark("detect:n1") is None

    def test_note_remote_write_is_ingest(self):
        tracer = LatencyTracer()
        tracer.note_remote_write("collect:n1", sim=5.0, wall=1.0,
                                 hop_wall_s=0.004)
        assert tracer.last_write("collect:n1") == (5.0, 1.0)
        assert tracer.ingest_watermark("collect:n1") == (5.0, 1.0)

    def test_negative_hop_clamped_to_zero(self):
        # Wall clocks of two hosts can disagree; never report negative
        # transport time.
        tracer = LatencyTracer()
        tracer.note_remote_write("collect:n1", sim=5.0, wall=1.0,
                                 hop_wall_s=-0.5)
        record = tracer.record_alarm(
            make_alarm(via=("collect:n1",)), ("collect:n1",),
            sim_now=6.0, wall_now=1.5,
        )
        assert record.remote_hop_wall_s == 0.0


class TestAlarmRecords:
    def test_remote_hops_summed_over_chain(self):
        tracer = LatencyTracer()
        tracer.note_remote_write("collect:n1", sim=5.0, wall=1.0,
                                 hop_wall_s=0.010)
        tracer.note_write("detect:n1", sim=5.0, wall=1.2)
        record = tracer.record_alarm(
            make_alarm(via=("collect:n1",)), ("collect:n1", "detect:n1"),
            sim_now=5.0, wall_now=1.3,
        )
        assert record.remote_hop_wall_s == 0.010
        assert record.measured
        assert record.total_wall_s is not None
        assert abs(record.total_wall_s - 0.3) < 1e-9

    def test_no_remote_stage_reports_none(self):
        tracer = LatencyTracer()
        tracer.note_write("detect:n1", sim=5.0, wall=1.0)
        record = tracer.record_alarm(
            make_alarm(via=()), ("detect:n1",), sim_now=5.0, wall_now=1.1,
        )
        assert record.remote_hop_wall_s is None

    def test_remote_hop_serialized(self):
        tracer = LatencyTracer()
        tracer.note_remote_write("collect:n1", sim=1.0, wall=0.0,
                                 hop_wall_s=0.002)
        record = tracer.record_alarm(
            make_alarm(via=("collect:n1",)), ("collect:n1",),
            sim_now=1.0, wall_now=0.1,
        )
        assert record.to_json_obj()["remote_hop_wall_s"] == 0.002
