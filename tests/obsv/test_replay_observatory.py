"""Observatory semantics over replayed flight archives.

Replayed alarms must never produce fabricated latencies: a chain whose
stages were actually re-run yields measured records (replay sources are
ingest points), while stages that never wrote in the replayed DAG yield
explicit absence (covered at the unit level in test_latency).
"""

from repro.analysis.metrics import GroundTruth
from repro.flightrec import FlightRecorder, ReplayArchive, replay_core
from repro.obsv import Observatory

from .helpers import ALARM_SCRIPT, SCORED_PIPELINE_CONFIG, build_core


def record_run(tmp_path):
    observatory = Observatory()
    core = build_core(
        SCORED_PIPELINE_CONFIG,
        services={
            "script": {"src": ALARM_SCRIPT},
            "observatory": observatory,
        },
    )
    observatory.attach(core)
    recorder = FlightRecorder(archive_dir=str(tmp_path))
    core.set_flight_recorder(recorder)
    core.run_until(float(len(ALARM_SCRIPT)))
    recorder.note_manifest(config_text=SCORED_PIPELINE_CONFIG)
    recorder.close()
    core.close()
    return observatory


class TestReplayedAlarms:
    def test_replayed_alarms_yield_well_defined_records(self, tmp_path):
        recorded = record_run(tmp_path)
        assert len(recorded.recent) == 3

        replay_observatory = Observatory()
        replay_observatory.register_ground_truth(
            "CPUHog", GroundTruth(faulty_node="slave01", inject_time=2.0)
        )
        archive = ReplayArchive.load(str(tmp_path))
        core = replay_core(
            archive,
            SCORED_PIPELINE_CONFIG,
            services={"observatory": replay_observatory},
        )
        replay_observatory.attach(core)
        core.run_until(archive.end_time() + 1.0)

        # Same alarms as the recording, each with a well-defined record:
        # the replay source is itself an ingest point, so the chain walk
        # measures the replayed pipeline (never a fabricated number).
        records = list(replay_observatory.recent)
        assert len(records) == 3
        for record in records:
            assert record.delivered == ("thr.alarms", "union.alarms")
            assert record.measured
            assert record.total_sim_s >= 0.0
            assert all(
                stage.sim_s is None or stage.sim_s >= 0.0
                for stage in record.stages
            )
        score = replay_observatory.scoreboard.fault_scores()["CPUHog"]
        assert score.true_alarms == 3
        assert score.unmeasured_alarms == 0
        core.close()
