"""The six injected faults of the paper's Table 2, plus the catalog.

``FAULT_CATALOG`` maps the names used throughout the evaluation
(CPUHog, DiskHog, PacketLoss, HADOOP-1036, HADOOP-1152, HADOOP-2080) to
fault factories.  :class:`DaemonKill` -- the first fault acting on a
*real* OS process (cluster mode's kill-and-respawn of a live collection
daemon) -- is exported here but deliberately kept out of the catalog,
which enumerates only the simulated Table 2 faults.
"""

from typing import Callable, Dict

from .base import Fault, FaultSpec
from .bugs import MapHang1036, ReduceHang2080, ShuffleFail1152
from .process import DaemonKill
from .resource import GB, CpuHog, DiskHog, PacketLoss

#: Fault name -> zero-argument factory producing a default-configured fault.
FAULT_CATALOG: Dict[str, Callable[[], Fault]] = {
    "CPUHog": CpuHog,
    "DiskHog": DiskHog,
    "PacketLoss": PacketLoss,
    "HADOOP-1036": MapHang1036,
    "HADOOP-1152": ShuffleFail1152,
    "HADOOP-2080": ReduceHang2080,
}

#: Canonical evaluation order (matches the paper's Figure 7 x-axis).
FAULT_NAMES = (
    "CPUHog",
    "DiskHog",
    "HADOOP-1036",
    "HADOOP-1152",
    "HADOOP-2080",
    "PacketLoss",
)


def make_fault(name: str) -> Fault:
    """Instantiate a fault from the catalog by its Table 2 name."""
    try:
        factory = FAULT_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r} (catalog: {sorted(FAULT_CATALOG)})"
        ) from None
    return factory()


__all__ = [
    "CpuHog",
    "DaemonKill",
    "DiskHog",
    "FAULT_CATALOG",
    "FAULT_NAMES",
    "Fault",
    "FaultSpec",
    "GB",
    "MapHang1036",
    "PacketLoss",
    "ReduceHang2080",
    "ShuffleFail1152",
    "make_fault",
]
