"""Fault-injection interface.

A :class:`Fault` knows how to arm itself against a
:class:`repro.hadoop.HadoopCluster` on a chosen node at a chosen time,
and produces the :class:`repro.analysis.GroundTruth` the evaluation
scores against.  The six concrete faults reproduce the paper's Table 2
exactly -- see :mod:`repro.faults.resource` and :mod:`repro.faults.bugs`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..analysis.metrics import GroundTruth
from ..hadoop.cluster import HadoopCluster


@dataclass(frozen=True)
class FaultSpec:
    """Where and when a fault is injected."""

    node: str
    inject_time: float
    clear_time: Optional[float] = None


class Fault(abc.ABC):
    """One injectable fault from the paper's Table 2."""

    #: Catalog name, e.g. ``"CPUHog"`` or ``"HADOOP-1036"``.
    name: str = ""
    #: The reported failure this fault simulates (Table 2, middle column).
    reported_failure: str = ""

    @abc.abstractmethod
    def arm(self, cluster: HadoopCluster, spec: FaultSpec) -> None:
        """Register the fault with the cluster; takes effect at inject_time."""

    def ground_truth(self, spec: FaultSpec) -> GroundTruth:
        return GroundTruth(
            faulty_node=spec.node,
            inject_time=spec.inject_time,
            clear_time=spec.clear_time,
        )

    def register_ground_truth(self, observatory, spec: FaultSpec) -> None:
        """Publish this fault's labeled truth window to an online scorer.

        ``observatory`` is anything exposing
        ``register_ground_truth(fault_name, truth)`` -- normally a
        :class:`repro.obsv.Observatory`, whose scoreboard then scores
        the alarm stream against the window as the run proceeds.
        """
        observatory.register_ground_truth(self.name, self.ground_truth(spec))
