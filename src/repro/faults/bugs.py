"""Application-bug faults (paper Table 2, bottom half).

These reproduce the three Hadoop JIRA bugs the paper triggered by
reverting to older Hadoop versions or mis-computing checksums.  Each is
armed as a per-node bug flag that the task state machines in
:mod:`repro.hadoop.mapreduce` consult:

* **HADOOP-1036** -- "Infinite loop at slave node due to an unhandled
  exception from a Hadoop subtask that terminates unexpectedly": map
  attempts on the node spin forever.
* **HADOOP-1152** -- "Reduce tasks fail while copying map output due to
  an attempt to rename a deleted file": reduce attempts on the node fail
  as soon as they start copying.
* **HADOOP-2080** -- "Reduce tasks hang due to a miscalculated
  checksum": reduce attempts on the node wedge at the end of the copy
  phase.

The latter two stay *dormant* until reduces actually reach their copy
phase -- the delayed manifestation behind the long fingerpointing
latencies in the paper's Figure 7(b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hadoop.cluster import HadoopCluster
from ..hadoop.mapreduce import BugKind
from .base import Fault, FaultSpec


@dataclass
class _BugFault(Fault):
    """Common arming logic for the three JIRA bugs."""

    kind: BugKind = BugKind.MAP_HANG_1036

    def arm(self, cluster: HadoopCluster, spec: FaultSpec) -> None:
        cluster.set_bug(spec.node, self.kind, spec.inject_time, spec.clear_time)


@dataclass
class MapHang1036(_BugFault):
    kind: BugKind = BugKind.MAP_HANG_1036

    name = "HADOOP-1036"
    reported_failure = (
        "Infinite loop at slave node due to an unhandled exception from a "
        "Hadoop subtask that terminates unexpectedly"
    )


@dataclass
class ShuffleFail1152(_BugFault):
    kind: BugKind = BugKind.SHUFFLE_FAIL_1152

    name = "HADOOP-1152"
    reported_failure = (
        "Reduce tasks fail while copying map output due to an attempt to "
        "rename a deleted file"
    )


@dataclass
class ReduceHang2080(_BugFault):
    kind: BugKind = BugKind.REDUCE_HANG_2080

    name = "HADOOP-2080"
    reported_failure = "Reduce tasks hang due to a miscalculated checksum"
