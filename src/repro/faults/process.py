"""Real-process faults for the live cluster deployment.

The Table 2 faults perturb a *simulated* Hadoop cluster; cluster mode
(PR 7) adds the first fault that acts on an actual operating-system
process: killing a live collection daemon with SIGKILL.  The paper's
deployment tolerates exactly this -- a crashed ``sadc_rpcd`` is
restarted and the control node reconnects -- and the cluster bench
measures how long that takes (``reconnect.downtime_s`` in
``BENCH_cluster.json``).

:class:`DaemonKill` is intentionally *not* in ``FAULT_CATALOG``: the
catalog enumerates the simulated Table 2 faults consumed by the
experiment engine and the generated fpt-core config, while this fault
needs a running cluster state directory, not a ``HadoopCluster``.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

from ..cluster.state import list_runtimes, pid_alive

__all__ = ["DaemonKill"]


class DaemonKill:
    """SIGKILL one live collection daemon; verify respawn + republish.

    Usage::

        fault = DaemonKill(state_dir, "node-02")
        killed_pid = fault.inject()
        fault.wait_respawned(timeout_s=30.0)   # new pid published

    The class only touches pids it read from the cluster's own runtime
    files, so it cannot kill anything the launcher does not own.
    """

    name = "DaemonKill"
    reported_failure = "Collection daemon process crash (paper section 4.3)"

    def __init__(self, state_dir: str, node: str) -> None:
        self.state_dir = state_dir
        self.node = node
        self.killed_pid: Optional[int] = None
        self.killed_wall: Optional[float] = None

    def inject(self) -> int:
        """Kill the daemon; returns the pid that was killed."""
        runtime = list_runtimes(self.state_dir, role="node").get(self.node)
        if runtime is None:
            raise LookupError(
                f"no published collection daemon named {self.node!r} "
                f"in {self.state_dir}"
            )
        os.kill(runtime.pid, signal.SIGKILL)
        self.killed_pid = runtime.pid
        self.killed_wall = time.time()
        return runtime.pid

    def respawned(self) -> Optional[int]:
        """The respawned daemon's pid, or ``None`` while still down."""
        runtime = list_runtimes(self.state_dir, role="node").get(self.node)
        if runtime is None or runtime.pid == self.killed_pid:
            return None
        return runtime.pid if pid_alive(runtime.pid) else None

    def wait_respawned(self, timeout_s: float = 30.0,
                       poll_s: float = 0.25) -> Optional[int]:
        """Block until a fresh pid is published; ``None`` on timeout."""
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            pid = self.respawned()
            if pid is not None:
                return pid
            time.sleep(poll_s)
        return self.respawned()

    def downtime_s(self) -> Optional[float]:
        """Seconds from the kill to now (caller stops the clock)."""
        if self.killed_wall is None:
            return None
        return time.time() - self.killed_wall
