"""Resource-contention faults (paper Table 2, top half).

* **CPUHog** -- "[Hadoop mailing list, Sep 13 2007] CPU bottleneck from
  running master and slave daemons on same node": an external task that
  consumes 70% of the node's CPU.
* **DiskHog** -- "[Hadoop mailing list, Sep 26 2007] Excessive messages
  logged to file": a sequential disk workload writing 20 GB.
* **PacketLoss** -- "[HADOOP-2956] Degraded network connectivity between
  datanodes results in long block transfer times": 50% packet loss on
  the node's interface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hadoop.cluster import ExternalLoad, HadoopCluster
from .base import Fault, FaultSpec

GB = 1024.0**3


@dataclass
class CpuHog(Fault):
    """External CPU-intensive task stealing a fraction of all cores."""

    utilization: float = 0.70

    name = "CPUHog"
    reported_failure = (
        "CPU bottleneck from running master and slave daemons on same node"
    )

    def arm(self, cluster: HadoopCluster, spec: FaultSpec) -> None:
        # A spinner achieving ~70% utilization under fair-share
        # arbitration must *demand* more than 70% of the cores: if the
        # hog demands H and co-located tasks demand T, it receives
        # H/(H+T) of the capacity C.  Demanding u*C/(1-u) yields the
        # target utilization u whenever T <= C (the usual case).
        cores = cluster.config.node_spec.cpu_cores
        demand = self.utilization * cores / max(0.05, 1.0 - self.utilization)
        cluster.add_external_load(
            ExternalLoad(
                node=spec.node,
                pid=cluster.allocate_hog_pid(),
                name="cpuhog",
                cpu_cores=demand,
                start_time=spec.inject_time,
                end_time=spec.clear_time,
            )
        )


@dataclass
class DiskHog(Fault):
    """Sequential writer pushing ``total_gb`` through the node's disk."""

    total_gb: float = 20.0
    #: The hog queues far more I/O than the device can absorb (a blast
    #: of buffered sequential writes); demanding a multiple of the
    #: device bandwidth makes proportional-share arbitration starve
    #: co-located tasks the way a saturating writer does in practice.
    demand_factor: float = 3.0

    name = "DiskHog"
    reported_failure = "Excessive messages logged to file"

    def arm(self, cluster: HadoopCluster, spec: FaultSpec) -> None:
        rate = (
            cluster.config.node_spec.disk_write_bytes_s * self.demand_factor
        )
        self._device_bytes_s = cluster.config.node_spec.disk_write_bytes_s
        cluster.add_external_load(
            ExternalLoad(
                node=spec.node,
                pid=cluster.allocate_hog_pid(),
                name="diskhog",
                disk_write_bytes_s=rate,
                total_write_bytes=self.total_gb * GB,
                start_time=spec.inject_time,
                end_time=spec.clear_time,
            )
        )

    def ground_truth(self, spec: FaultSpec):
        # The hog ends once its 20 GB is written, so the problematic
        # period does too.  The device is the hog's bottleneck, so the
        # write takes roughly total bytes / device write bandwidth.
        truth = super().ground_truth(spec)
        if truth.clear_time is None:
            device = getattr(self, "_device_bytes_s", 70.0 * 1024 * 1024)
            duration = self.total_gb * GB / device
            truth = replace(truth, clear_time=spec.inject_time + duration)
        return truth


@dataclass
class PacketLoss(Fault):
    """Induced packet loss on the node's network interface."""

    loss_rate: float = 0.50

    name = "PacketLoss"
    reported_failure = (
        "Degraded network connectivity between datanodes results in long "
        "block transfer times (HADOOP-2956)"
    )

    def arm(self, cluster: HadoopCluster, spec: FaultSpec) -> None:
        node = spec.node
        rate = self.loss_rate
        cluster.at(
            spec.inject_time,
            lambda c: c.network.set_loss_rate(node, rate),
        )
        if spec.clear_time is not None:
            cluster.at(
                spec.clear_time,
                lambda c: c.network.clear_loss_rate(node),
            )
