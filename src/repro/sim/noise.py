"""Draw-ahead background-noise sampling for simulated nodes.

Every tick, :meth:`repro.sim.node.SimNode.end_tick` folds a fixed set of
eight seeded background-OS noise draws into the node's ``/proc``
counters: two gamma-distributed CPU noise terms, three Poisson event
counts (multicast frames, forks, major faults) and three normal jitter
terms (context switches, interrupts, minor faults).  Issuing eight
scalar ``Generator`` calls per node per tick dominates the tick cost at
fleet scale -- each call costs far more in dispatch overhead than in
actual bit-stream consumption.

:class:`TickNoise` amortizes that overhead by drawing ``block`` ticks'
worth of every distribution at once (numpy fills array requests by
repeated sequential sampling from the same bit stream, so the
distributions are unchanged) and then serving per-tick rows out of the
buffer.  The buffer is keyed to the ``dt`` it was drawn for: a tick with
a different ``dt`` flushes and redraws, so runs remain deterministic
functions of ``(seed, dt sequence)``.

Both the scalar and the vectorized simulator paths consume the same
per-node buffers, which is what makes their outputs bit-identical by
construction (see :mod:`repro.sim.vec`).
"""

from __future__ import annotations

import numpy as np

#: Ticks of noise drawn per refill.  Larger blocks amortize Generator
#: call overhead further at the cost of a bigger resident buffer
#: (``8 * block`` float64 per node).
NOISE_BLOCK = 64

#: Row indices into the (8, block) noise buffer, in draw order.
GAMMA_USER = 0      #: gamma(2.0, 0.004) -- background user CPU, per dt
GAMMA_SYS = 1       #: gamma(2.0, 0.003) -- background system CPU, per dt
POISSON_MCAST = 2   #: poisson(0.5 * dt) -- multicast frames
NORMAL_CTXT = 3     #: normal(0, 20 * dt) -- context-switch jitter
NORMAL_INTR = 4     #: normal(0, 10 * dt) -- interrupt jitter
POISSON_FORKS = 5   #: poisson(1.5 * dt) -- background forks
NORMAL_PGFAULT = 6  #: normal(0, 5 * dt) -- minor-fault jitter
POISSON_PGMAJ = 7   #: poisson(0.05 * dt) -- major faults


class TickNoise:
    """Buffered per-tick noise rows for one node's seeded generator."""

    __slots__ = ("rng", "block", "_dt", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, block: int = NOISE_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"noise block must be >= 1, got {block}")
        self.rng = rng
        self.block = int(block)
        self._dt: float = float("nan")
        self._buf: np.ndarray = np.empty((8, 0))
        self._pos: int = 0

    def _refill(self, dt: float) -> None:
        block = self.block
        rng = self.rng
        buf = np.empty((8, block))
        buf[GAMMA_USER] = rng.gamma(2.0, 0.004, block)
        buf[GAMMA_SYS] = rng.gamma(2.0, 0.003, block)
        buf[POISSON_MCAST] = rng.poisson(0.5 * dt, block)
        buf[NORMAL_CTXT] = rng.normal(0.0, 20.0 * dt, block)
        buf[NORMAL_INTR] = rng.normal(0.0, 10.0 * dt, block)
        buf[POISSON_FORKS] = rng.poisson(1.5 * dt, block)
        buf[NORMAL_PGFAULT] = rng.normal(0.0, 5.0 * dt, block)
        buf[POISSON_PGMAJ] = rng.poisson(0.05 * dt, block)
        self._buf = buf
        self._dt = dt
        self._pos = 0

    def draw(self, dt: float) -> np.ndarray:
        """The next tick's eight noise values, drawn for ``dt``."""
        if self._pos >= self._buf.shape[1] or dt != self._dt:
            self._refill(dt)
        row = self._buf[:, self._pos]
        self._pos += 1
        return row


__all__ = [
    "GAMMA_SYS",
    "GAMMA_USER",
    "NOISE_BLOCK",
    "NORMAL_CTXT",
    "NORMAL_INTR",
    "NORMAL_PGFAULT",
    "POISSON_FORKS",
    "POISSON_MCAST",
    "POISSON_PGMAJ",
    "TickNoise",
]
