"""Node/resource/network simulation substrate under the Hadoop layer.

Models each cluster node as four contended resources (CPU, disk, NIC,
memory) with proportional-share arbitration, a TCP-like response to
packet loss, and coherent ``/proc`` counter generation via
:class:`SimNode`.
"""

from .engine import CpuDemand, DiskDemand, TickContext
from .network import PACKET_BYTES, NetworkModel, Transfer
from .node import DISK_IO_BYTES, SimNode
from .noise import NOISE_BLOCK, TickNoise
from .resources import NodeSpec, share_proportionally, tcp_goodput_factor

__all__ = [
    "CpuDemand",
    "DISK_IO_BYTES",
    "DiskDemand",
    "NOISE_BLOCK",
    "NetworkModel",
    "NodeSpec",
    "PACKET_BYTES",
    "SimNode",
    "TickContext",
    "TickNoise",
    "Transfer",
    "share_proportionally",
    "tcp_goodput_factor",
]
