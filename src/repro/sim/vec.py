"""Struct-of-arrays fleet state: the vectorized simulator core.

The scalar simulator advances every node in a Python loop -- each
:meth:`repro.sim.node.SimNode.end_tick` performs a few hundred scalar
operations, and each daemon/heartbeat declares its demand through one
Python call per node per tick.  At fleet scale that loop dominates the
tick cost.  This module keeps *all* per-node simulator state in
``(N_nodes,)`` numpy arrays and advances the whole fleet in one
vectorized pass per tick:

- :class:`FleetState` owns one float64 array per ``/proc`` counter and
  per tick accumulator, plus the per-node load-average matrix;
- :class:`VecProcFS` / the generated view classes expose the exact
  ``SimProcFS`` attribute surface as thin views over the arrays, so the
  collection stack (``sadc`` snapshots, tests, daemons) is unchanged;
- :class:`VecSimNode` is a :class:`~repro.sim.node.SimNode` whose
  ``account_*`` methods write fleet arrays, so task attempts, external
  loads and fault hooks work unmodified;
- :class:`VecTickContext` collects CPU/network demand as an *ordered*
  stream of bulk blocks (all tasktracker daemons at once, all heartbeat
  transfers at once) and per-activity demand objects, then arbitrates
  with ``np.bincount`` totals instead of per-node Python grouping.

Bit parity with the scalar path is a design invariant, not a tolerance:
``np.bincount`` accumulates each bin's weights sequentially in input
order, so per-node demand totals see the same left-to-right float
addition order as :func:`repro.sim.resources.share_proportionally`, and
every derived expression in :meth:`FleetState.end_tick_all` mirrors the
scalar :meth:`SimNode.end_tick` term for term (``np.where`` plus guarded
``np.divide`` replace the data-dependent branches).  Both paths draw
background noise from the same per-node :class:`repro.sim.noise.TickNoise`
buffers, so the random streams are identical by construction.
"""

from __future__ import annotations

import copy
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sysstat.procfs import (
    CpuTicks,
    DiskCounters,
    KernelStat,
    KernelTables,
    LoadAvg,
    MemInfo,
    NicCounters,
    ProcessStat,
    SimProcFS,
    SockStat,
    TcpCounters,
    VmCounters,
)
from .engine import CpuDemand, TickContext
from .network import PACKET_BYTES, NetworkModel, Transfer
from .node import _LOAD_TAU, DISK_IO_BYTES, SimNode
from .noise import (
    GAMMA_SYS,
    GAMMA_USER,
    NORMAL_CTXT,
    NORMAL_INTR,
    NORMAL_PGFAULT,
    POISSON_FORKS,
    POISSON_MCAST,
    POISSON_PGMAJ,
)
from .resources import NodeSpec

#: (fleet attribute, array-key prefix, procfs dataclass) -- one counter
#: array per dataclass field, initialized to the dataclass default.
_PROC_GROUPS: Tuple[Tuple[str, type], ...] = (
    ("cpu", CpuTicks),
    ("disk", DiskCounters),
    ("vm", VmCounters),
    ("stat", KernelStat),
    ("mem", MemInfo),
    ("loadavg", LoadAvg),
    ("sockstat", SockStat),
    ("tcp", TcpCounters),
    ("nic", NicCounters),
)

#: Per-tick accumulator arrays (the vector twins of SimNode._cpu_user &c).
_ACCUMULATORS = (
    "acc_cpu_user",
    "acc_cpu_sys",
    "acc_cpu_iowait",
    "acc_cpu_demand",
    "acc_disk_read",
    "acc_disk_write",
    "acc_net_tx",
    "acc_net_rx",
    "acc_net_tx_drop",
    "acc_net_rx_drop",
    "acc_forks",
    "acc_iowait_procs",
    "acc_streams",
)


class FleetState:
    """All per-node simulator state for ``N`` nodes, as numpy arrays."""

    def __init__(self, names: Sequence[str]) -> None:
        self.names: List[str] = list(names)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        if len(self.index) != len(self.names):
            raise ValueError("duplicate node names in fleet")
        n = len(self.names)
        self.n = n

        # /proc counter arrays, keyed "<group>_<field>".
        self.a: Dict[str, np.ndarray] = {}
        for prefix, cls in _PROC_GROUPS:
            proto = cls()
            for f in dataclass_fields(cls):
                self.a[f"{prefix}_{f.name}"] = np.full(
                    n, float(getattr(proto, f.name))
                )

        # Hardware spec arrays (filled as nodes register).
        self.cpu_cores = np.zeros(n)
        self.disk_read_bps = np.ones(n)
        self.disk_write_bps = np.ones(n)
        self.nic_bps = np.ones(n)
        self.base_mem_kb = np.full(n, 300.0 * 1024.0)

        # Load-average EMA state, one column per tau.
        self.loads = np.zeros((n, len(_LOAD_TAU)))

        # Tick accumulators.
        for name in _ACCUMULATORS:
            setattr(self, name, np.zeros(n))
        self._acc_arrays = [getattr(self, name) for name in _ACCUMULATORS]

        # Cached process-table aggregates (exact in-order re-sums of the
        # per-node tables, recomputed only for nodes whose table changed).
        self.proc_rss_kb = np.zeros(n)
        self.proc_vsz_kb = np.zeros(n)
        self.proc_count = np.zeros(n)
        self.proc_dirty = set(range(n))

        self.nodes: List[Optional["VecSimNode"]] = [None] * n

    def register(self, node: "VecSimNode") -> None:
        i = node._i
        self.nodes[i] = node
        spec = node.spec
        self.cpu_cores[i] = spec.cpu_cores
        self.disk_read_bps[i] = spec.disk_read_bytes_s
        self.disk_write_bps[i] = spec.disk_write_bytes_s
        self.nic_bps[i] = spec.nic_bytes_s
        self.a["mem_total_kb"][i] = spec.memory_mb * 1024.0
        self.a["mem_free_kb"][i] = spec.memory_mb * 1024.0
        self.a["nic_speed_mbps"][i] = spec.nic_mbit_s

    # -- tick lifecycle --------------------------------------------------------

    def begin_tick_all(self) -> None:
        for arr in self._acc_arrays:
            arr.fill(0.0)
        for node in self.nodes:
            if node is not None and node._per_proc:
                node._per_proc.clear()

    def _refresh_proc_aggregates(self) -> None:
        for i in self.proc_dirty:
            node = self.nodes[i]
            if node is None:
                continue
            procs = node.procfs.processes
            self.proc_rss_kb[i] = sum(p.rss_kb for p in procs.values())
            self.proc_vsz_kb[i] = sum(p.vsz_kb for p in procs.values())
            self.proc_count[i] = len(procs)
        self.proc_dirty.clear()

    def end_tick_all(self, dt: float) -> None:
        """Fold every node's tick into its counters in one array pass.

        Mirrors :meth:`repro.sim.node.SimNode.end_tick` expression for
        expression; any edit there must be replicated here (the parity
        tests compare the two paths byte for byte).
        """
        a = self.a
        n = self.n
        self._refresh_proc_aggregates()

        # Per-node background noise, from the same buffers the scalar
        # path reads (each node's own seeded generator).
        noise = np.empty((8, n))
        for i, node in enumerate(self.nodes):
            noise[:, i] = node.noise.draw(dt)

        capacity = self.cpu_cores * dt
        noise_user = noise[GAMMA_USER] * dt
        noise_sys = noise[GAMMA_SYS] * dt

        user = self.acc_cpu_user + noise_user
        system = self.acc_cpu_sys + noise_sys
        irq = np.minimum(
            0.01 * dt + 1e-9 * (self.acc_net_rx + self.acc_net_tx),
            capacity * 0.05,
        )
        softirq = irq * 0.6
        nice = np.minimum(0.0005 * dt, capacity * 0.01)
        available = capacity - irq - softirq - nice
        busy = user + system
        over = busy > available
        scale = np.ones(n)
        np.divide(available, busy, out=scale, where=over)
        user = np.where(over, user * scale, user)
        system = np.where(over, system * scale, system)
        busy = np.where(over, available, busy)
        iowait = np.minimum(self.acc_cpu_iowait, available - busy)
        idle = np.maximum(0.0, available - busy - iowait)

        a["cpu_user"] += user
        a["cpu_system"] += system
        a["cpu_iowait"] += iowait
        a["cpu_idle"] += idle
        a["cpu_irq"] += irq
        a["cpu_softirq"] += softirq
        a["cpu_nice"] += nice

        reads = self.acc_disk_read / DISK_IO_BYTES
        writes = self.acc_disk_write / DISK_IO_BYTES
        a["disk_reads_completed"] += reads
        a["disk_writes_completed"] += writes
        a["disk_sectors_read"] += self.acc_disk_read / 512.0
        a["disk_sectors_written"] += self.acc_disk_write / 512.0
        read_busy = self.acc_disk_read / self.disk_read_bps
        write_busy = self.acc_disk_write / self.disk_write_bps
        busy_frac = np.minimum(1.0, read_busy + write_busy)
        a["disk_io_time_ms"] += busy_frac * dt * 1000.0
        queue_depth = 1.0 + 3.0 * busy_frac + self.acc_iowait_procs
        a["disk_weighted_io_time_ms"] += busy_frac * dt * 1000.0 * queue_depth

        tx_pkts = (self.acc_net_tx + self.acc_net_tx_drop) / PACKET_BYTES
        rx_pkts = (self.acc_net_rx + self.acc_net_rx_drop) / PACKET_BYTES
        a["nic_tx_bytes"] += self.acc_net_tx
        a["nic_rx_bytes"] += self.acc_net_rx
        a["nic_tx_packets"] += tx_pkts
        a["nic_rx_packets"] += rx_pkts
        a["nic_tx_drop"] += self.acc_net_tx_drop / PACKET_BYTES
        a["nic_rx_drop"] += self.acc_net_rx_drop / PACKET_BYTES
        a["nic_tx_errs"] += self.acc_net_tx_drop / PACKET_BYTES * 0.1
        a["nic_rx_errs"] += self.acc_net_rx_drop / PACKET_BYTES * 0.1
        a["nic_multicast"] += noise[POISSON_MCAST]

        ios = reads + writes
        a["stat_ctxt"] += (
            800.0 * dt + 300.0 * busy + 0.5 * (tx_pkts + rx_pkts) + 2.0 * ios
            + noise[NORMAL_CTXT]
        )
        a["stat_intr"] += (
            250.0 * dt + tx_pkts + rx_pkts + ios + noise[NORMAL_INTR]
        )
        a["stat_processes"] += self.acc_forks + noise[POISSON_FORKS]
        a["tcp_in_segs"] += rx_pkts
        a["tcp_out_segs"] += tx_pkts
        a["tcp_active_opens"] += 0.2 * dt + 0.02 * self.acc_streams
        a["tcp_passive_opens"] += 0.2 * dt + 0.02 * self.acc_streams

        a["vm_pgpgin_kb"] += self.acc_disk_read / 1024.0
        a["vm_pgpgout_kb"] += self.acc_disk_write / 1024.0
        a["vm_pgfault"] += 50.0 * dt + 400.0 * busy + noise[NORMAL_PGFAULT]
        a["vm_pgmajfault"] += noise[POISSON_PGMAJ]
        a["vm_pgfree"] += (
            60.0 * dt + 0.3 * (self.acc_disk_read + self.acc_disk_write) / 4096.0
        )

        rss_total = self.proc_rss_kb
        a["mem_cached_kb"][:] = np.minimum(
            a["mem_total_kb"] * 0.5,
            a["mem_cached_kb"] * 0.999
            + (self.acc_disk_read + self.acc_disk_write) / 1024.0,
        )
        a["mem_buffers_kb"][:] = np.minimum(
            200e3, a["mem_buffers_kb"] * 0.995 + ios * 4.0
        )
        used = (
            self.base_mem_kb + rss_total + a["mem_cached_kb"] + a["mem_buffers_kb"]
        )
        a["mem_free_kb"][:] = np.maximum(64.0 * 1024.0, a["mem_total_kb"] - used)
        a["mem_committed_kb"][:] = self.base_mem_kb + self.proc_vsz_kb
        a["mem_active_kb"][:] = rss_total + a["mem_cached_kb"] * 0.4

        runq = np.maximum(0.0, self.acc_cpu_demand - self.cpu_cores) + np.where(
            self.acc_cpu_demand > 0, 1.0, 0.0
        )
        a["loadavg_runq_sz"][:] = runq
        occupancy = np.minimum(self.acc_cpu_demand, self.cpu_cores) + runq
        for k, tau in enumerate(_LOAD_TAU):
            alpha = 1.0 - np.exp(-dt / tau)
            self.loads[:, k] += alpha * (occupancy - self.loads[:, k])
        a["loadavg_one"][:] = self.loads[:, 0]
        a["loadavg_five"][:] = self.loads[:, 1]
        a["loadavg_fifteen"][:] = self.loads[:, 2]
        a["loadavg_plist_sz"][:] = 80.0 + self.proc_count

        a["sockstat_tcpsck"][:] = 12.0 + 2.0 * self.acc_streams
        a["sockstat_totsck"][:] = 40.0 + 2.0 * self.acc_streams
        a["sockstat_tcp_tw"][:] = np.maximum(0.0, a["sockstat_tcp_tw"] * 0.9) + (
            0.5 * self.acc_streams
        )

        # Per-process fold: stays a Python loop over the (few) nodes with
        # booked per-process activity this tick -- bit-identical to scalar.
        for node in self.nodes:
            pp = node._per_proc
            if not pp:
                continue
            fs_procs = node.procfs.processes
            spec = node.spec
            for pid, (u, s, r, w) in pp.items():
                if pid not in fs_procs:
                    continue
                proc = fs_procs[pid]
                proc.utime += u
                proc.stime += s
                proc.read_kb += r / 1024.0
                proc.write_kb += w / 1024.0
                proc.minflt += 200.0 * (u + s)
                proc.cswch += 50.0 * (u + s) + (r + w) / DISK_IO_BYTES
                proc.nvcswch += 10.0 * (u + s)
                proc.iodelay_ticks += 100.0 * min(
                    dt, (r / spec.disk_read_bytes_s)
                    + (w / spec.disk_write_bytes_s),
                )
            pp.clear()

        for arr in self._acc_arrays:
            arr.fill(0.0)


# -- array-backed /proc views -------------------------------------------------


def _field_property(key: str) -> property:
    def _get(self):
        return self._f.a[key][self._i]

    def _set(self, value):
        self._f.a[key][self._i] = value

    return property(_get, _set)


class _View:
    __slots__ = ("_f", "_i")

    def __init__(self, fleet: FleetState, i: int) -> None:
        self._f = fleet
        self._i = i


def _make_view(name: str, prefix: str, cls: type, extra=None) -> type:
    ns = {
        f.name: _field_property(f"{prefix}_{f.name}")
        for f in dataclass_fields(cls)
    }
    ns["__slots__"] = ()
    if extra:
        ns.update(extra)
    return type(name, (_View,), ns)


def _cpu_total(self) -> float:
    return (
        self.user + self.nice + self.system + self.iowait
        + self.steal + self.idle + self.irq + self.softirq
    )


def _mem_used_kb(self) -> float:
    return max(0.0, self.total_kb - self.free_kb)


VecCpuView = _make_view("VecCpuView", "cpu", CpuTicks, {"total": _cpu_total})
VecDiskView = _make_view("VecDiskView", "disk", DiskCounters)
VecVmView = _make_view("VecVmView", "vm", VmCounters)
VecStatView = _make_view("VecStatView", "stat", KernelStat)
VecMemView = _make_view(
    "VecMemView", "mem", MemInfo, {"used_kb": property(_mem_used_kb)}
)
VecLoadAvgView = _make_view("VecLoadAvgView", "loadavg", LoadAvg)
VecSockStatView = _make_view("VecSockStatView", "sockstat", SockStat)
VecTcpView = _make_view("VecTcpView", "tcp", TcpCounters)
VecNicView = _make_view("VecNicView", "nic", NicCounters)


class VecProcFS:
    """The ``SimProcFS`` surface of one node, backed by fleet arrays.

    Only ``eth0`` is array-backed (the simulator never folds activity
    into other interfaces); additional NICs requested through
    :meth:`nic` get ordinary :class:`NicCounters` instances.
    """

    def __init__(self, fleet: FleetState, i: int, num_cpus: int) -> None:
        self._fleet = fleet
        self._i = i
        self.num_cpus = num_cpus
        self.cpu = VecCpuView(fleet, i)
        self.disk = VecDiskView(fleet, i)
        self.vm = VecVmView(fleet, i)
        self.stat = VecStatView(fleet, i)
        self.mem = VecMemView(fleet, i)
        self.loadavg = VecLoadAvgView(fleet, i)
        self.sockstat = VecSockStatView(fleet, i)
        self.tcp = VecTcpView(fleet, i)
        self.tables = KernelTables()
        self.nics: Dict[str, object] = {"eth0": VecNicView(fleet, i)}
        self.processes: Dict[int, ProcessStat] = {}

    def nic(self, name: str = "eth0"):
        nic = self.nics.get(name)
        if nic is None:
            nic = NicCounters()
            self.nics[name] = nic
        return nic

    def process(self, pid: int, name: str = "") -> ProcessStat:
        proc = self.processes.get(pid)
        if proc is None:
            proc = ProcessStat(pid=pid, name=name)
            self.processes[pid] = proc
        self._fleet.proc_dirty.add(self._i)
        return proc

    def _materialize(self, cls: type, prefix: str):
        a = self._fleet.a
        i = self._i
        return cls(**{
            f.name: float(a[f"{prefix}_{f.name}"][i])
            for f in dataclass_fields(cls)
        })

    def snapshot(self) -> SimProcFS:
        """A plain, detached ``SimProcFS`` copy for rate differencing."""
        nics = {"eth0": self._materialize(NicCounters, "nic")}
        for name, nic in self.nics.items():
            if name != "eth0":
                nics[name] = copy.deepcopy(nic)
        return SimProcFS(
            num_cpus=self.num_cpus,
            cpu=self._materialize(CpuTicks, "cpu"),
            disk=self._materialize(DiskCounters, "disk"),
            vm=self._materialize(VmCounters, "vm"),
            stat=self._materialize(KernelStat, "stat"),
            mem=self._materialize(MemInfo, "mem"),
            loadavg=self._materialize(LoadAvg, "loadavg"),
            sockstat=self._materialize(SockStat, "sockstat"),
            tcp=self._materialize(TcpCounters, "tcp"),
            tables=copy.deepcopy(self.tables),
            nics=nics,
            processes={pid: copy.copy(p) for pid, p in self.processes.items()},
        )


class VecSimNode(SimNode):
    """A ``SimNode`` whose accounting lands in :class:`FleetState` arrays."""

    def __init__(
        self, name: str, spec: NodeSpec, seed: int, fleet: FleetState, index: int
    ) -> None:
        self.name = name
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        from .noise import TickNoise

        self.noise = TickNoise(self.rng)
        self._fleet = fleet
        self._i = index
        self.procfs = VecProcFS(fleet, index, num_cpus=int(round(spec.cpu_cores)))
        self._base_mem_kb = 300.0 * 1024.0
        self._per_proc: Dict[int, Tuple[float, float, float, float]] = {}
        fleet.register(self)

    # -- per-tick accounting (array-backed twins of the SimNode methods) -------

    def begin_tick(self) -> None:
        f = self._fleet
        i = self._i
        for arr in f._acc_arrays:
            arr[i] = 0.0
        self._per_proc.clear()

    def account_cpu(self, pid: int, user_s: float, sys_s: float = 0.0) -> None:
        f = self._fleet
        i = self._i
        f.acc_cpu_user[i] += max(0.0, user_s)
        f.acc_cpu_sys[i] += max(0.0, sys_s)
        u, s, r, w = self._per_proc.get(pid, (0.0, 0.0, 0.0, 0.0))
        self._per_proc[pid] = (u + max(0.0, user_s), s + max(0.0, sys_s), r, w)

    def note_cpu_demand(self, cores: float) -> None:
        self._fleet.acc_cpu_demand[self._i] += max(0.0, cores)

    def account_disk(self, pid: int, read_bytes: float, write_bytes: float) -> None:
        f = self._fleet
        i = self._i
        f.acc_disk_read[i] += max(0.0, read_bytes)
        f.acc_disk_write[i] += max(0.0, write_bytes)
        u, s, r, w = self._per_proc.get(pid, (0.0, 0.0, 0.0, 0.0))
        self._per_proc[pid] = (
            u, s, r + max(0.0, read_bytes), w + max(0.0, write_bytes)
        )

    def account_iowait(self, seconds: float) -> None:
        f = self._fleet
        i = self._i
        f.acc_cpu_iowait[i] += max(0.0, seconds)
        f.acc_iowait_procs[i] += 1.0

    def account_net(
        self,
        tx_bytes: float = 0.0,
        rx_bytes: float = 0.0,
        tx_dropped: float = 0.0,
        rx_dropped: float = 0.0,
    ) -> None:
        f = self._fleet
        i = self._i
        f.acc_net_tx[i] += max(0.0, tx_bytes)
        f.acc_net_rx[i] += max(0.0, rx_bytes)
        f.acc_net_tx_drop[i] += max(0.0, tx_dropped)
        f.acc_net_rx_drop[i] += max(0.0, rx_dropped)
        if tx_bytes > 0 or rx_bytes > 0:
            f.acc_streams[i] += 1.0

    def account_forks(self, count: float) -> None:
        self._fleet.acc_forks[self._i] += max(0.0, count)

    def remove_process(self, pid: int) -> None:
        self.procfs.processes.pop(pid, None)
        self._fleet.proc_dirty.add(self._i)

    def end_tick(self, dt: float) -> None:
        raise NotImplementedError(
            "vectorized nodes advance together via FleetState.end_tick_all"
        )


# -- vectorized tick context --------------------------------------------------


class VecTickContext(TickContext):
    """A ``TickContext`` that arbitrates with array math.

    Demand arrives as an ordered stream of *segments*: bulk blocks
    (``demand_cpu_bulk`` / ``demand_transfer_bulk`` -- one array per
    fleet-wide declaration such as "every tasktracker daemon wants 0.02
    cores") interleaved with per-activity :class:`CpuDemand` /
    :class:`Transfer` objects from task attempts and external loads.
    Flattening the segments in order reproduces the scalar declaration
    sequence, so per-node ``bincount`` totals match the scalar sums bit
    for bit.
    """

    def __init__(
        self,
        nodes: Dict[str, SimNode],
        network: NetworkModel,
        dt: float,
        fleet: FleetState,
    ) -> None:
        super().__init__(nodes, network, dt)
        self.fleet = fleet
        # Ordered streams: a CpuDemand/Transfer object, or a bulk tuple.
        self._cpu_stream: List[object] = []
        self._net_stream: List[object] = []

    # -- declaration -----------------------------------------------------------

    def demand_cpu(self, node, pid, cores, sys_fraction=0.15):
        demand = super().demand_cpu(node, pid, cores, sys_fraction)
        self._cpu_stream.append(demand)
        return demand

    def demand_cpu_bulk(self, idx: np.ndarray, cores: float) -> None:
        """Declare ``cores`` on every node in ``idx`` (zero-booking daemons).

        The scalar path books these grants immediately at declaration
        time -- while ``granted`` is still 0.0 -- so they only influence
        arbitration totals and the run-queue, never the booked counters.
        The bulk path therefore skips the no-op zero booking entirely.
        """
        wanted = np.full(len(idx), max(0.0, cores) * self.dt)
        self._cpu_stream.append(("bulk", idx, wanted))
        self.fleet.acc_cpu_demand[idx] += max(0.0, cores)

    def demand_transfer(self, src, dst, wanted_bytes, tag=""):
        transfer = super().demand_transfer(src, dst, wanted_bytes, tag)
        self._net_stream.append(transfer)
        return transfer

    def demand_transfer_bulk(
        self, src_idx: np.ndarray, dst_idx: np.ndarray, wanted_bytes: float
    ) -> None:
        """Declare one ``wanted_bytes`` transfer per (src, dst) pair."""
        wanted = np.full(len(src_idx), max(0.0, wanted_bytes))
        self._net_stream.append(("bulk", src_idx, dst_idx, wanted))

    # -- arbitration -----------------------------------------------------------

    def _flatten_cpu(self):
        """The ordered (node_idx, wanted) stream plus object positions."""
        index = self.fleet.index
        chunks_i: List[np.ndarray] = []
        chunks_w: List[np.ndarray] = []
        positions: List[Tuple[CpuDemand, int]] = []
        pend_i: List[int] = []
        pend_w: List[float] = []
        pend_obj: List[CpuDemand] = []
        offset = 0

        def flush():
            nonlocal offset
            if pend_i:
                chunks_i.append(np.array(pend_i, dtype=np.intp))
                chunks_w.append(np.array(pend_w))
                for j, obj in enumerate(pend_obj):
                    positions.append((obj, offset + j))
                offset += len(pend_i)
                pend_i.clear()
                pend_w.clear()
                pend_obj.clear()

        for seg in self._cpu_stream:
            if isinstance(seg, CpuDemand):
                pend_i.append(index[seg.node])
                pend_w.append(seg.wanted)
                pend_obj.append(seg)
            else:
                flush()
                _, idx, wanted = seg
                chunks_i.append(idx)
                chunks_w.append(wanted)
                offset += len(idx)
        flush()
        if not chunks_i:
            return None, None, positions
        return np.concatenate(chunks_i), np.concatenate(chunks_w), positions

    def _flatten_net(self):
        index = self.fleet.index
        chunks_s: List[np.ndarray] = []
        chunks_d: List[np.ndarray] = []
        chunks_w: List[np.ndarray] = []
        positions: List[Tuple[Transfer, int]] = []
        pend_s: List[int] = []
        pend_d: List[int] = []
        pend_w: List[float] = []
        pend_obj: List[Transfer] = []
        offset = 0

        def flush():
            nonlocal offset
            if pend_s:
                chunks_s.append(np.array(pend_s, dtype=np.intp))
                chunks_d.append(np.array(pend_d, dtype=np.intp))
                chunks_w.append(np.array(pend_w))
                for j, obj in enumerate(pend_obj):
                    positions.append((obj, offset + j))
                offset += len(pend_s)
                pend_s.clear()
                pend_d.clear()
                pend_w.clear()
                pend_obj.clear()

        for seg in self._net_stream:
            if isinstance(seg, Transfer):
                pend_s.append(index[seg.src])
                pend_d.append(index[seg.dst])
                pend_w.append(seg.wanted_bytes)
                pend_obj.append(seg)
            else:
                flush()
                _, src_idx, dst_idx, wanted = seg
                chunks_s.append(src_idx)
                chunks_d.append(dst_idx)
                chunks_w.append(wanted)
                offset += len(src_idx)
        flush()
        if not chunks_s:
            return None, None, None, positions
        return (
            np.concatenate(chunks_s),
            np.concatenate(chunks_d),
            np.concatenate(chunks_w),
            positions,
        )

    def arbitrate(self) -> None:
        fleet = self.fleet
        n = fleet.n
        dt = self.dt

        # CPU: proportional share of each node's core capacity.
        idx, wanted, positions = self._flatten_cpu()
        if idx is not None:
            cleaned = np.maximum(0.0, wanted)
            totals = np.bincount(idx, weights=cleaned, minlength=n)
            capacity = fleet.cpu_cores * dt
            over = (totals > capacity) & (totals > 0.0)
            factor = np.ones(n)
            np.divide(capacity, totals, out=factor, where=over)
            grants = cleaned * factor[idx]
            for demand, pos in positions:
                demand.granted = float(grants[pos])

        # Disk: same joint-saturation rule as the scalar path; volumes
        # are low (only attempts and hogs touch disk), so the object
        # loop is kept -- it books through the array-backed nodes.
        disk_by_node: Dict[str, List] = {}
        for demand in self._disk:
            disk_by_node.setdefault(demand.node, []).append(demand)
        for node_name, demands in disk_by_node.items():
            spec = self.nodes[node_name].spec
            busy = sum(
                d.read_wanted / spec.disk_read_bytes_s
                + d.write_wanted / spec.disk_write_bytes_s
                for d in demands
            )
            factor = 1.0 if busy <= dt or busy <= 0 else dt / busy
            for demand in demands:
                demand.read_granted = demand.read_wanted * factor
                demand.write_granted = demand.write_wanted * factor
                self.nodes[node_name].account_disk(
                    demand.pid, demand.read_granted, demand.write_granted
                )

        # Network: min of endpoint shares, degraded by packet loss --
        # the vector mirror of NetworkModel.arbitrate plus the booking
        # loop at the end of TickContext.arbitrate.
        src, dst, wanted, net_positions = self._flatten_net()
        if src is None:
            return
        local = src == dst
        nonlocal_mask = ~local
        w_nonneg = np.maximum(0.0, wanted)
        src_nl = src[nonlocal_mask]
        dst_nl = dst[nonlocal_mask]
        w_nl = w_nonneg[nonlocal_mask]
        tx_total = np.bincount(src_nl, weights=w_nl, minlength=n)
        rx_total = np.bincount(dst_nl, weights=w_nl, minlength=n)
        nic_capacity = fleet.nic_bps * dt
        tx_share = np.ones(n)
        tx_over = (tx_total > nic_capacity) & (tx_total > 0.0)
        np.divide(nic_capacity, tx_total, out=tx_share, where=tx_over)
        rx_share = np.ones(n)
        rx_over = (rx_total > nic_capacity) & (rx_total > 0.0)
        np.divide(nic_capacity, rx_total, out=rx_share, where=rx_over)

        loss = np.zeros(n)
        for name, rate in self.network.loss_rates().items():
            i = fleet.index.get(name)
            if i is not None:
                loss[i] = rate

        factor = np.minimum(tx_share[src], rx_share[dst])
        combined_loss = 1.0 - (1.0 - loss[src]) * (1.0 - loss[dst])
        p = np.minimum(1.0, np.maximum(0.0, combined_loss))
        goodput = (1.0 - p) ** 2 / (1.0 + 10.0 * p)
        wire = w_nonneg * factor
        granted = np.where(local, w_nonneg, wire * goodput)
        dropped = np.where(local, 0.0, wire * goodput * combined_loss)

        for transfer, pos in net_positions:
            transfer.granted_bytes = float(granted[pos])
            transfer.dropped_bytes = float(dropped[pos])

        g_nl = np.maximum(0.0, granted[nonlocal_mask])
        d_nl = np.maximum(0.0, dropped[nonlocal_mask])
        fleet.acc_net_tx += np.bincount(src_nl, weights=g_nl, minlength=n)
        fleet.acc_net_tx_drop += np.bincount(src_nl, weights=d_nl, minlength=n)
        fleet.acc_net_rx += np.bincount(dst_nl, weights=g_nl, minlength=n)
        fleet.acc_net_rx_drop += np.bincount(dst_nl, weights=d_nl, minlength=n)
        streams = (granted[nonlocal_mask] > 0.0).astype(float)
        fleet.acc_streams += np.bincount(src_nl, weights=streams, minlength=n)
        fleet.acc_streams += np.bincount(dst_nl, weights=streams, minlength=n)


__all__ = [
    "FleetState",
    "VecProcFS",
    "VecSimNode",
    "VecTickContext",
]
