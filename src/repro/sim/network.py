"""Network model: per-node NIC arbitration with injectable packet loss.

Transfers (shuffle copies, HDFS block reads/writes, heartbeats) are
declared each tick; the model grants each transfer the minimum of its
sender's transmit share and its receiver's receive share, further scaled
by :func:`repro.sim.resources.tcp_goodput_factor` when either endpoint
suffers packet loss.  Loss also shows up in NIC error/drop counters so
that black-box analysis sees it.

Intra-node "transfers" (reading a local HDFS block) bypass the network
entirely, matching Hadoop's short-circuit local reads through the
loopback path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .resources import tcp_goodput_factor

#: Approximate wire MTU payload per packet, bytes.
PACKET_BYTES = 1448.0


@dataclass
class Transfer:
    """One tick's demand to move bytes between two nodes."""

    src: str
    dst: str
    wanted_bytes: float
    tag: str = ""
    granted_bytes: float = 0.0
    #: Bytes lost to drops (retransmitted wire traffic, not goodput).
    dropped_bytes: float = 0.0


class NetworkModel:
    """Arbitrates all inter-node transfers of one simulation tick."""

    def __init__(self, nic_bytes_s: Dict[str, float]) -> None:
        self._nic_bytes_s = dict(nic_bytes_s)
        self._loss: Dict[str, float] = {}

    def set_loss_rate(self, node: str, loss_rate: float) -> None:
        """Inject packet loss on ``node`` (the PacketLoss fault hook)."""
        self._loss[node] = min(1.0, max(0.0, loss_rate))

    def clear_loss_rate(self, node: str) -> None:
        self._loss.pop(node, None)

    def loss_rate(self, node: str) -> float:
        return self._loss.get(node, 0.0)

    def loss_rates(self) -> Dict[str, float]:
        """All nodes with injected loss (for vectorized arbitration)."""
        return dict(self._loss)

    def nic_capacity(self, node: str) -> float:
        return self._nic_bytes_s.get(node, 125e6)

    def path_goodput_factor(self, src: str, dst: str) -> float:
        """Combined goodput multiplier for the src->dst path."""
        combined_loss = 1.0 - (1.0 - self.loss_rate(src)) * (
            1.0 - self.loss_rate(dst)
        )
        return tcp_goodput_factor(combined_loss)

    def arbitrate(self, transfers: List[Transfer], dt: float) -> None:
        """Fill in ``granted_bytes``/``dropped_bytes`` on each transfer.

        Two-pass proportional share: first compute each node's aggregate
        transmit and receive demand, then grant each transfer
        ``wanted * min(tx_share(src), rx_share(dst)) * goodput``.
        """
        tx_demand: Dict[str, float] = {}
        rx_demand: Dict[str, float] = {}
        for transfer in transfers:
            if transfer.src == transfer.dst:
                continue
            wanted = max(0.0, transfer.wanted_bytes)
            tx_demand[transfer.src] = tx_demand.get(transfer.src, 0.0) + wanted
            rx_demand[transfer.dst] = rx_demand.get(transfer.dst, 0.0) + wanted

        def share(node: str, demand: Dict[str, float]) -> float:
            total = demand.get(node, 0.0)
            capacity = self.nic_capacity(node) * dt
            if total <= capacity or total <= 0.0:
                return 1.0
            return capacity / total

        for transfer in transfers:
            if transfer.src == transfer.dst:
                # Local path: not constrained by (or visible to) the NIC.
                transfer.granted_bytes = max(0.0, transfer.wanted_bytes)
                transfer.dropped_bytes = 0.0
                continue
            factor = min(
                share(transfer.src, tx_demand), share(transfer.dst, rx_demand)
            )
            goodput = self.path_goodput_factor(transfer.src, transfer.dst)
            wire_bytes = max(0.0, transfer.wanted_bytes) * factor
            transfer.granted_bytes = wire_bytes * goodput
            combined_loss = 1.0 - (1.0 - self.loss_rate(transfer.src)) * (
                1.0 - self.loss_rate(transfer.dst)
            )
            transfer.dropped_bytes = wire_bytes * goodput * combined_loss

    @staticmethod
    def packets(byte_count: float) -> float:
        """Packet count corresponding to ``byte_count`` of payload."""
        return byte_count / PACKET_BYTES
