"""Resource specifications and proportional-share arbitration.

The cluster simulator models each node as four contended resources --
CPU cores, one disk, one NIC, and memory.  Every simulation tick,
activities (task phases, daemons, injected resource hogs) declare demands
against their node; the arbiter grants each demand its proportional share
of the capacity.  Contention therefore slows *everything* on an
oversubscribed node, which is exactly the failure manifestation the
paper's resource-contention faults (CPUHog, DiskHog) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a simulated node.

    Defaults approximate the paper's testbed: Amazon EC2 Large instances
    with two dual-core CPUs and 7.5 GB of RAM.
    """

    cpu_cores: float = 4.0
    memory_mb: float = 7680.0
    disk_read_mb_s: float = 90.0
    disk_write_mb_s: float = 70.0
    nic_mbit_s: float = 1000.0

    @property
    def nic_bytes_s(self) -> float:
        return self.nic_mbit_s * 1e6 / 8.0

    @property
    def disk_read_bytes_s(self) -> float:
        return self.disk_read_mb_s * 1024.0 * 1024.0

    @property
    def disk_write_bytes_s(self) -> float:
        return self.disk_write_mb_s * 1024.0 * 1024.0


def share_proportionally(wanted: Sequence[float], capacity: float) -> List[float]:
    """Grant each demand its proportional share of ``capacity``.

    If total demand fits within capacity every demand is granted in full;
    otherwise all demands are scaled by the same factor.  Zero and
    negative demands receive zero.
    """
    cleaned = [max(0.0, w) for w in wanted]
    total = sum(cleaned)
    if total <= capacity or total <= 0.0:
        return cleaned
    factor = capacity / total
    return [w * factor for w in cleaned]


def tcp_goodput_factor(loss_rate: float) -> float:
    """Multiplier on achievable TCP throughput under packet loss.

    TCP throughput collapses super-linearly with loss (the Mathis model
    scales as ``1/sqrt(p)`` for small ``p`` and far worse once retransmit
    timeouts dominate).  We use a simple rational approximation that is
    exact at the endpoints (1.0 at no loss, ~0 at total loss) and yields
    roughly a 20x slowdown at the paper's injected 50% loss -- enough to
    reproduce the "long block transfer times" of HADOOP-2956.
    """
    p = min(1.0, max(0.0, loss_rate))
    return (1.0 - p) ** 2 / (1.0 + 10.0 * p)
