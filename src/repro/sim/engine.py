"""Per-tick demand collection and arbitration.

Every simulation tick proceeds in two passes: activities (task attempts,
daemons, injected resource hogs) *declare* demands against their node's
CPU and disk and against the network, then the engine *arbitrates* --
proportional share per node resource, min-of-endpoint-shares for
transfers -- and fills the granted fields in place.  Activities then read
their grants back and advance their state machines.

This two-pass structure is what makes contention faults work: a CPUHog
declaring 2.8 cores on a 4-core node shrinks every map task's grant on
that node, slowing them down exactly as the paper's injected fault does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .network import NetworkModel, Transfer
from .node import SimNode
from .resources import share_proportionally


@dataclass
class CpuDemand:
    """One activity's CPU demand on a node for this tick (core-seconds).

    The engine fills ``granted``; the *activity* decides how much of the
    grant it actually consumed (an I/O-stalled task consumes less) and
    books it through :meth:`book`, with the unconsumed remainder showing
    up as iowait rather than CPU burn.
    """

    node: str
    pid: int
    wanted: float
    granted: float = 0.0
    #: Fraction of consumed CPU booked as system (kernel) time.
    sys_fraction: float = 0.15
    _sim_node: "SimNode" = None

    def book(self, used: float, iowait: float = 0.0) -> None:
        """Record actually consumed CPU time (and I/O stall) on the node."""
        used = min(max(0.0, used), self.granted)
        sys_time = used * self.sys_fraction
        self._sim_node.account_cpu(self.pid, used - sys_time, sys_time)
        if iowait > 0:
            self._sim_node.account_iowait(iowait)

    def book_all(self) -> None:
        """Record the full grant as consumed (pure CPU burners)."""
        self.book(self.granted)


@dataclass
class DiskDemand:
    """One activity's disk demand on a node for this tick (bytes)."""

    node: str
    pid: int
    read_wanted: float
    write_wanted: float
    read_granted: float = 0.0
    write_granted: float = 0.0


class TickContext:
    """Collects all demands of one tick, then arbitrates them."""

    def __init__(self, nodes: Dict[str, SimNode], network: NetworkModel, dt: float) -> None:
        self.nodes = nodes
        self.network = network
        self.dt = dt
        self._cpu: List[CpuDemand] = []
        self._disk: List[DiskDemand] = []
        self._transfers: List[Transfer] = []

    # -- declaration (first pass) ----------------------------------------------

    def demand_cpu(
        self, node: str, pid: int, cores: float, sys_fraction: float = 0.15
    ) -> CpuDemand:
        demand = CpuDemand(
            node=node,
            pid=pid,
            wanted=max(0.0, cores) * self.dt,
            sys_fraction=sys_fraction,
            _sim_node=self.nodes[node],
        )
        self._cpu.append(demand)
        self.nodes[node].note_cpu_demand(max(0.0, cores))
        return demand

    def demand_disk(
        self, node: str, pid: int, read_bytes: float = 0.0, write_bytes: float = 0.0
    ) -> DiskDemand:
        demand = DiskDemand(
            node=node,
            pid=pid,
            read_wanted=max(0.0, read_bytes),
            write_wanted=max(0.0, write_bytes),
        )
        self._disk.append(demand)
        return demand

    def demand_transfer(
        self, src: str, dst: str, wanted_bytes: float, tag: str = ""
    ) -> Transfer:
        transfer = Transfer(src=src, dst=dst, wanted_bytes=max(0.0, wanted_bytes), tag=tag)
        self._transfers.append(transfer)
        return transfer

    # -- arbitration (second pass) -----------------------------------------------

    def arbitrate(self) -> None:
        """Resolve all declared demands into grants, and book node counters."""
        # CPU: proportional share of each node's core capacity.
        by_node: Dict[str, List[CpuDemand]] = {}
        for demand in self._cpu:
            by_node.setdefault(demand.node, []).append(demand)
        for node_name, demands in by_node.items():
            capacity = self.nodes[node_name].spec.cpu_cores * self.dt
            grants = share_proportionally([d.wanted for d in demands], capacity)
            for demand, granted in zip(demands, grants):
                demand.granted = granted

        # Disk: reads and writes jointly saturate the device.  The busy
        # fraction they'd require is computed against each bandwidth, and
        # all demands are scaled by the same factor when oversubscribed.
        disk_by_node: Dict[str, List[DiskDemand]] = {}
        for demand in self._disk:
            disk_by_node.setdefault(demand.node, []).append(demand)
        for node_name, demands in disk_by_node.items():
            spec = self.nodes[node_name].spec
            busy = sum(
                d.read_wanted / spec.disk_read_bytes_s
                + d.write_wanted / spec.disk_write_bytes_s
                for d in demands
            )
            factor = 1.0 if busy <= self.dt or busy <= 0 else self.dt / busy
            for demand in demands:
                demand.read_granted = demand.read_wanted * factor
                demand.write_granted = demand.write_wanted * factor
                self.nodes[node_name].account_disk(
                    demand.pid, demand.read_granted, demand.write_granted
                )

        # Network: min of endpoint shares, degraded by packet loss.
        self.network.arbitrate(self._transfers, self.dt)
        for transfer in self._transfers:
            if transfer.src == transfer.dst:
                continue
            src_node = self.nodes.get(transfer.src)
            dst_node = self.nodes.get(transfer.dst)
            if src_node is not None:
                src_node.account_net(
                    tx_bytes=transfer.granted_bytes,
                    tx_dropped=transfer.dropped_bytes,
                )
            if dst_node is not None:
                dst_node.account_net(
                    rx_bytes=transfer.granted_bytes,
                    rx_dropped=transfer.dropped_bytes,
                )
