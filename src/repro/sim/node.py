"""A simulated cluster node: resource accounting into ``/proc`` counters.

Each tick the cluster layer reports what happened on the node -- CPU time
consumed per process, disk bytes moved, network traffic, forks -- through
the ``account_*`` methods.  :meth:`SimNode.end_tick` folds those
accumulators, plus a small amount of seeded background-OS noise, into the
node's :class:`repro.sysstat.SimProcFS`, keeping every derived metric
(context switches, interrupts, page cache, load averages, TCP segments)
consistent with the primary activity.  The black-box ``sadc`` collector
then sees a coherent, realistically correlated ``/proc``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..sysstat.procfs import SimProcFS
from .network import PACKET_BYTES
from .noise import (
    GAMMA_SYS,
    GAMMA_USER,
    NORMAL_CTXT,
    NORMAL_INTR,
    NORMAL_PGFAULT,
    POISSON_FORKS,
    POISSON_MCAST,
    POISSON_PGMAJ,
    TickNoise,
)
from .resources import NodeSpec

#: Typical bytes per disk I/O request (used to derive tps from bytes).
DISK_IO_BYTES = 128.0 * 1024.0

#: Load-average exponential decay constants, seconds.
_LOAD_TAU = (60.0, 300.0, 900.0)


class SimNode:
    """One node's resources, process table and ``/proc`` counters."""

    def __init__(self, name: str, spec: NodeSpec, seed: int) -> None:
        self.name = name
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self.noise = TickNoise(self.rng)
        self.procfs = SimProcFS(num_cpus=int(round(spec.cpu_cores)))
        self.procfs.mem.total_kb = spec.memory_mb * 1024.0
        self.procfs.mem.free_kb = spec.memory_mb * 1024.0
        self.procfs.nic("eth0").speed_mbps = spec.nic_mbit_s
        self._loads = [0.0, 0.0, 0.0]
        self._base_mem_kb = 300.0 * 1024.0  # kernel + system daemons
        self._active_streams = 0
        self._reset_tick()

    def _reset_tick(self) -> None:
        self._cpu_user = 0.0
        self._cpu_sys = 0.0
        self._cpu_iowait = 0.0
        self._cpu_demand = 0.0
        self._disk_read = 0.0
        self._disk_write = 0.0
        self._net_tx = 0.0
        self._net_rx = 0.0
        self._net_tx_drop = 0.0
        self._net_rx_drop = 0.0
        self._forks = 0.0
        self._iowait_procs = 0.0
        self._per_proc: Dict[int, Tuple[float, float, float, float]] = {}
        self._active_streams = 0

    # -- per-tick accounting (called by the cluster layer) ---------------------

    def begin_tick(self) -> None:
        self._reset_tick()

    def account_cpu(self, pid: int, user_s: float, sys_s: float = 0.0) -> None:
        """Record granted CPU time (core-seconds) for process ``pid``."""
        self._cpu_user += max(0.0, user_s)
        self._cpu_sys += max(0.0, sys_s)
        u, s, r, w = self._per_proc.get(pid, (0.0, 0.0, 0.0, 0.0))
        self._per_proc[pid] = (u + max(0.0, user_s), s + max(0.0, sys_s), r, w)

    def note_cpu_demand(self, cores: float) -> None:
        """Record *demanded* CPU (pre-arbitration), for run-queue/load."""
        self._cpu_demand += max(0.0, cores)

    def account_disk(self, pid: int, read_bytes: float, write_bytes: float) -> None:
        self._disk_read += max(0.0, read_bytes)
        self._disk_write += max(0.0, write_bytes)
        u, s, r, w = self._per_proc.get(pid, (0.0, 0.0, 0.0, 0.0))
        self._per_proc[pid] = (
            u, s, r + max(0.0, read_bytes), w + max(0.0, write_bytes)
        )

    def account_iowait(self, seconds: float) -> None:
        """Record time a process spent blocked on storage this tick."""
        self._cpu_iowait += max(0.0, seconds)
        self._iowait_procs += 1.0

    def account_net(
        self,
        tx_bytes: float = 0.0,
        rx_bytes: float = 0.0,
        tx_dropped: float = 0.0,
        rx_dropped: float = 0.0,
    ) -> None:
        self._net_tx += max(0.0, tx_bytes)
        self._net_rx += max(0.0, rx_bytes)
        self._net_tx_drop += max(0.0, tx_dropped)
        self._net_rx_drop += max(0.0, rx_dropped)
        if tx_bytes > 0 or rx_bytes > 0:
            self._active_streams += 1

    def account_forks(self, count: float) -> None:
        self._forks += max(0.0, count)

    # -- process table ---------------------------------------------------------

    def ensure_process(
        self,
        pid: int,
        name: str,
        rss_kb: float,
        vsz_kb: Optional[float] = None,
        threads: float = 1.0,
        fds: float = 16.0,
    ) -> None:
        proc = self.procfs.process(pid, name)
        proc.name = name
        proc.rss_kb = rss_kb
        proc.vsz_kb = vsz_kb if vsz_kb is not None else rss_kb * 1.6
        proc.threads = threads
        proc.fds = fds

    def remove_process(self, pid: int) -> None:
        self.procfs.processes.pop(pid, None)

    # -- folding the tick into /proc -------------------------------------------

    def end_tick(self, dt: float) -> None:
        """Fold accumulated activity plus OS noise into the counters."""
        fs = self.procfs
        noise = self.noise.draw(dt)
        capacity = self.spec.cpu_cores * dt

        # Background OS activity keeps fault-free metrics non-degenerate.
        noise_user = noise[GAMMA_USER] * dt
        noise_sys = noise[GAMMA_SYS] * dt

        user = self._cpu_user + noise_user
        system = self._cpu_sys + noise_sys
        # Interrupt/nice overhead comes off the top of the budget; the
        # partition below always sums to exactly `capacity` per tick.
        irq = min(0.01 * dt + 1e-9 * (self._net_rx + self._net_tx), capacity * 0.05)
        softirq = irq * 0.6
        nice = min(0.0005 * dt, capacity * 0.01)
        available = capacity - irq - softirq - nice
        busy = user + system
        if busy > available:
            scale = available / busy
            user *= scale
            system *= scale
            busy = available
        iowait = min(self._cpu_iowait, available - busy)
        idle = max(0.0, available - busy - iowait)

        fs.cpu.user += user
        fs.cpu.system += system
        fs.cpu.iowait += iowait
        fs.cpu.idle += idle
        fs.cpu.irq += irq
        fs.cpu.softirq += softirq
        fs.cpu.nice += nice

        # Disk: derive request counts and busy time from bytes moved.
        reads = self._disk_read / DISK_IO_BYTES
        writes = self._disk_write / DISK_IO_BYTES
        fs.disk.reads_completed += reads
        fs.disk.writes_completed += writes
        fs.disk.sectors_read += self._disk_read / 512.0
        fs.disk.sectors_written += self._disk_write / 512.0
        read_busy = self._disk_read / self.spec.disk_read_bytes_s
        write_busy = self._disk_write / self.spec.disk_write_bytes_s
        busy_frac = min(1.0, read_busy + write_busy)
        fs.disk.io_time_ms += busy_frac * dt * 1000.0
        queue_depth = 1.0 + 3.0 * busy_frac + self._iowait_procs
        fs.disk.weighted_io_time_ms += busy_frac * dt * 1000.0 * queue_depth

        # Network counters, aggregated onto eth0.
        nic = fs.nic("eth0")
        tx_pkts = (self._net_tx + self._net_tx_drop) / PACKET_BYTES
        rx_pkts = (self._net_rx + self._net_rx_drop) / PACKET_BYTES
        nic.tx_bytes += self._net_tx
        nic.rx_bytes += self._net_rx
        nic.tx_packets += tx_pkts
        nic.rx_packets += rx_pkts
        nic.tx_drop += self._net_tx_drop / PACKET_BYTES
        nic.rx_drop += self._net_rx_drop / PACKET_BYTES
        nic.tx_errs += self._net_tx_drop / PACKET_BYTES * 0.1
        nic.rx_errs += self._net_rx_drop / PACKET_BYTES * 0.1
        nic.multicast += noise[POISSON_MCAST]

        # Kernel counters derived from activity levels.
        ios = reads + writes
        fs.stat.ctxt += (
            800.0 * dt + 300.0 * busy + 0.5 * (tx_pkts + rx_pkts) + 2.0 * ios
            + noise[NORMAL_CTXT]
        )
        fs.stat.intr += (
            250.0 * dt + tx_pkts + rx_pkts + ios + noise[NORMAL_INTR]
        )
        fs.stat.processes += self._forks + noise[POISSON_FORKS]
        fs.tcp.in_segs += rx_pkts
        fs.tcp.out_segs += tx_pkts
        fs.tcp.active_opens += 0.2 * dt + 0.02 * self._active_streams
        fs.tcp.passive_opens += 0.2 * dt + 0.02 * self._active_streams

        # Paging follows CPU work (heap churn) and disk traffic.
        fs.vm.pgpgin_kb += self._disk_read / 1024.0
        fs.vm.pgpgout_kb += self._disk_write / 1024.0
        fs.vm.pgfault += 50.0 * dt + 400.0 * busy + noise[NORMAL_PGFAULT]
        fs.vm.pgmajfault += noise[POISSON_PGMAJ]
        fs.vm.pgfree += 60.0 * dt + 0.3 * (self._disk_read + self._disk_write) / 4096.0

        # Memory gauges: resident sets plus a page cache fed by I/O.
        rss_total = sum(p.rss_kb for p in fs.processes.values())
        fs.mem.cached_kb = min(
            fs.mem.total_kb * 0.5,
            fs.mem.cached_kb * 0.999 + (self._disk_read + self._disk_write) / 1024.0,
        )
        fs.mem.buffers_kb = min(200e3, fs.mem.buffers_kb * 0.995 + ios * 4.0)
        used = self._base_mem_kb + rss_total + fs.mem.cached_kb + fs.mem.buffers_kb
        fs.mem.free_kb = max(64.0 * 1024.0, fs.mem.total_kb - used)
        fs.mem.committed_kb = self._base_mem_kb + sum(
            p.vsz_kb for p in fs.processes.values()
        )
        fs.mem.active_kb = rss_total + fs.mem.cached_kb * 0.4

        # Scheduler gauges: run queue is unmet demand, load is its EMA.
        runq = max(0.0, self._cpu_demand - self.spec.cpu_cores) + (
            1.0 if self._cpu_demand > 0 else 0.0
        )
        fs.loadavg.runq_sz = runq
        occupancy = min(self._cpu_demand, self.spec.cpu_cores) + runq
        for i, tau in enumerate(_LOAD_TAU):
            alpha = 1.0 - np.exp(-dt / tau)
            self._loads[i] += alpha * (occupancy - self._loads[i])
        fs.loadavg.one = self._loads[0]
        fs.loadavg.five = self._loads[1]
        fs.loadavg.fifteen = self._loads[2]
        fs.loadavg.plist_sz = 80.0 + len(fs.processes)

        # Socket gauges track live streams.
        fs.sockstat.tcpsck = 12.0 + 2.0 * self._active_streams
        fs.sockstat.totsck = 40.0 + 2.0 * self._active_streams
        fs.sockstat.tcp_tw = max(0.0, fs.sockstat.tcp_tw * 0.9) + (
            0.5 * self._active_streams
        )

        # Per-process counters.
        for pid, (u, s, r, w) in self._per_proc.items():
            if pid not in fs.processes:
                continue
            proc = fs.processes[pid]
            proc.utime += u
            proc.stime += s
            proc.read_kb += r / 1024.0
            proc.write_kb += w / 1024.0
            proc.minflt += 200.0 * (u + s)
            proc.cswch += 50.0 * (u + s) + (r + w) / DISK_IO_BYTES
            proc.nvcswch += 10.0 * (u + s)
            proc.iodelay_ticks += 100.0 * min(
                dt, (r / self.spec.disk_read_bytes_s)
                + (w / self.spec.disk_write_bytes_s),
            )

        self._reset_tick()
