"""Offline threshold sweeps over captured analysis statistics (Figure 6).

The paper tuned detection thresholds by replaying problem-free traces at
different thresholds and measuring false-positive rates.  Re-running the
cluster once per threshold would be wasteful; instead a fault-free run's
raw per-round statistics (the analysis modules' ``stats`` outputs) are
replayed here against any threshold, including the consecutive-window
confidence logic, producing the Figure 6(a)/(b) curves.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.peer import whitebox_anomalies


def _fp_rate_from_flags(flag_rounds: List[Dict[str, bool]], consecutive: int) -> float:
    """Alarmed fraction of node-rounds after the confidence filter.

    All rounds are assumed problem-free, so every alarmed node-window is
    a false positive.
    """
    if not flag_rounds:
        return 0.0
    streaks: Dict[str, int] = {}
    alarmed = 0
    total = 0
    for flags in flag_rounds:
        for node, is_anomalous in flags.items():
            total += 1
            if is_anomalous:
                streaks[node] = streaks.get(node, 0) + 1
                if streaks[node] >= consecutive:
                    alarmed += 1
            else:
                streaks[node] = 0
    return alarmed / total if total else 0.0


def blackbox_fp_sweep(
    stats_rounds: Sequence[dict],
    thresholds: Sequence[float],
    consecutive: int = 3,
) -> List[Tuple[float, float]]:
    """False-positive rate (%) vs threshold for the black-box detector.

    ``stats_rounds`` are the ``analysis_bb`` stats dicts of a fault-free
    run: each has ``nodes`` and per-node L1 ``deviations``.
    """
    result = []
    for threshold in thresholds:
        flag_rounds = [
            {
                node: deviation > threshold
                for node, deviation in zip(stats["nodes"], stats["deviations"])
            }
            for stats in stats_rounds
        ]
        result.append(
            (float(threshold), 100.0 * _fp_rate_from_flags(flag_rounds, consecutive))
        )
    return result


def whitebox_fp_sweep(
    stats_rounds: Sequence[dict],
    ks: Sequence[float],
    consecutive: int = 2,
) -> List[Tuple[float, float]]:
    """False-positive rate (%) vs k for the white-box detector.

    ``stats_rounds`` are the ``analysis_wb`` stats dicts of a fault-free
    run: each has ``nodes`` plus per-node window ``means`` and ``stds``.
    """
    result = []
    for k in ks:
        flag_rounds = []
        for stats in stats_rounds:
            verdict = whitebox_anomalies(
                np.asarray(stats["means"]), np.asarray(stats["stds"]), float(k)
            )
            flag_rounds.append(
                {
                    node: bool(flag)
                    for node, flag in zip(stats["nodes"], verdict.anomalous_nodes)
                }
            )
        result.append(
            (float(k), 100.0 * _fp_rate_from_flags(flag_rounds, consecutive))
        )
    return result


def pick_knee(curve: Sequence[Tuple[float, float]], tolerance: float = 1.0) -> float:
    """Smallest parameter whose FP rate is within ``tolerance`` (pp) of
    the best achieved -- the "little further improvement" point the
    paper used to fix the operating threshold."""
    if not curve:
        raise ValueError("empty sweep curve")
    best = min(rate for _, rate in curve)
    for parameter, rate in curve:
        if rate <= best + tolerance:
            return parameter
    return curve[-1][0]
