"""Drivers regenerating every table and figure of the paper's evaluation.

Each function runs the experiments for one artifact and returns a small
result object whose ``render()`` produces the same rows/series the paper
reports.  The benchmark harness under ``benchmarks/`` calls these.

* :func:`table2` -- the fault catalog (Table 2).
* Table 3 / Table 4 -- see :mod:`repro.experiments.overhead`.
* :func:`figure6` -- false-positive rate vs threshold, black-box (6a)
  and white-box (6b), from fault-free runs.
* :func:`figure7` -- balanced accuracy (7a) and fingerpointing latency
  (7b) per injected fault for the black-box, white-box, and combined
  fingerpointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..faults import FAULT_CATALOG, FAULT_NAMES, make_fault
from ..telemetry import Telemetry
from .model import BlackBoxModel, train_blackbox_model
from .runner import EngineReport, ExperimentTask, run_tasks
from .scenario import ScenarioConfig
from .sweep import blackbox_fp_sweep, whitebox_fp_sweep
from ..hadoop.cluster import ClusterConfig


def shared_model(config: ScenarioConfig, training_duration_s: float = 300.0,
                 ) -> BlackBoxModel:
    """Train the black-box model once for a batch of runs."""
    return train_blackbox_model(
        cluster_config=ClusterConfig(
            num_slaves=config.num_slaves, seed=config.seed + 1000
        ),
        duration_s=training_duration_s,
        num_states=config.num_states,
        seed=config.seed,
    )


# --------------------------------------------------------------------------
# Table 2
# --------------------------------------------------------------------------


@dataclass
class Table2Row:
    fault_name: str
    reported_failure: str
    injected: str


def table2() -> List[Table2Row]:
    """The fault catalog, straight from the implemented faults."""
    injected_text = {
        "CPUHog": "External task consuming ~70% CPU utilization",
        "DiskHog": "Sequential disk workload writing 20 GB",
        "PacketLoss": "50% packet loss induced on the node's NIC",
        "HADOOP-1036": "Map attempts spin forever (unhandled exception)",
        "HADOOP-1152": "Reduce attempts fail at the end of the copy phase",
        "HADOOP-2080": "Reduce attempts hang on a miscomputed checksum",
    }
    rows = []
    for name in FAULT_NAMES:
        fault = make_fault(name)
        rows.append(
            Table2Row(
                fault_name=name,
                reported_failure=fault.reported_failure,
                injected=injected_text[name],
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 6
# --------------------------------------------------------------------------


@dataclass
class Figure6Result:
    """Both panels: FP-rate curves over the detection parameter."""

    blackbox: List[Tuple[float, float]]   # (threshold, FP %)
    whitebox: List[Tuple[float, float]]   # (k, FP %)
    #: Execution accounting of the underlying scenario run(s), for the
    #: benchmark harness's ``BENCH_*`` trajectory files.
    engine: Optional[EngineReport] = field(default=None, repr=False)

    def render(self) -> str:
        lines = ["Figure 6(a): black-box false-positive rate vs threshold"]
        lines += [f"  threshold={t:6.1f}  FP={fp:6.2f}%" for t, fp in self.blackbox]
        lines.append("Figure 6(b): white-box false-positive rate vs k")
        lines += [f"  k={k:4.1f}           FP={fp:6.2f}%" for k, fp in self.whitebox]
        return "\n".join(lines)


#: Default threshold sweep for figure6 (0..70 in steps of 5).
_FIGURE6_THRESHOLDS = tuple(range(0, 75, 5))


def figure6(
    config: Optional[ScenarioConfig] = None,
    thresholds: Sequence[float] = _FIGURE6_THRESHOLDS,
    ks: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    model: Optional[BlackBoxModel] = None,
    jobs: int = 1,
    telemetry: Optional[Telemetry] = None,
) -> Figure6Result:
    """Threshold sweeps on a problem-free run (paper section 4.9).

    Both sweeps re-score the *same* captured fault-free statistics, so
    there is exactly one scenario to run; it goes through the experiment
    runner (``jobs`` workers) so the benchmark harness gets uniform
    per-task timing accounting.
    """
    if config is None:
        config = ScenarioConfig()
    config = ScenarioConfig(**{**config.__dict__, "fault_name": None})
    if model is None:
        model = shared_model(config)
    report = run_tasks(
        [ExperimentTask("fault-free", config)],
        jobs=jobs,
        model=model,
        telemetry=telemetry,
    )
    result = report.results[0].load()
    return Figure6Result(
        blackbox=blackbox_fp_sweep(
            result.stats_bb, thresholds, consecutive=config.bb_consecutive
        ),
        whitebox=whitebox_fp_sweep(
            result.stats_wb, ks, consecutive=config.wb_consecutive
        ),
        engine=report,
    )


# --------------------------------------------------------------------------
# Figure 7
# --------------------------------------------------------------------------


@dataclass
class Figure7Row:
    """One fault's outcome across the three fingerpointers."""

    fault_name: str
    ba_blackbox: float
    ba_whitebox: float
    ba_combined: float
    latency_blackbox: Optional[float]
    latency_whitebox: Optional[float]
    latency_combined: Optional[float]
    runs: int = 1

    @staticmethod
    def _latency_text(value: Optional[float]) -> str:
        return f"{value:7.0f}" if value is not None else "      -"

    def render(self) -> str:
        return (
            f"{self.fault_name:<12} "
            f"{100 * self.ba_blackbox:6.1f} {100 * self.ba_whitebox:6.1f} "
            f"{100 * self.ba_combined:6.1f}   "
            f"{self._latency_text(self.latency_blackbox)} "
            f"{self._latency_text(self.latency_whitebox)} "
            f"{self._latency_text(self.latency_combined)}"
        )


@dataclass
class Figure7Result:
    rows: List[Figure7Row] = field(default_factory=list)
    #: Execution accounting of the fault x seed matrix, for ``BENCH_*``.
    engine: Optional[EngineReport] = field(default=None, repr=False)

    def mean_ba(self) -> Tuple[float, float, float]:
        n = max(1, len(self.rows))
        return (
            sum(r.ba_blackbox for r in self.rows) / n,
            sum(r.ba_whitebox for r in self.rows) / n,
            sum(r.ba_combined for r in self.rows) / n,
        )

    def render(self) -> str:
        header = (
            f"{'Fault':<12} {'BA-bb%':>6} {'BA-wb%':>6} {'BA-all%':>6}   "
            f"{'lat-bb':>7} {'lat-wb':>7} {'lat-all':>7}"
        )
        lines = ["Figure 7(a)+(b): balanced accuracy and latency per fault", header]
        lines += [row.render() for row in self.rows]
        bb, wb, combined = self.mean_ba()
        lines.append(
            f"{'MEAN':<12} {100 * bb:6.1f} {100 * wb:6.1f} {100 * combined:6.1f}"
            "   (paper: 71 / 78 / 80)"
        )
        return "\n".join(lines)


def _mean_optional(values: List[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def figure7(
    config: Optional[ScenarioConfig] = None,
    fault_names: Sequence[str] = FAULT_NAMES,
    seeds: Sequence[int] = (7,),
    model: Optional[BlackBoxModel] = None,
    jobs: int = 1,
    telemetry: Optional[Telemetry] = None,
) -> Figure7Result:
    """Run every fault scenario and aggregate BA + latency per fault.

    Multiple ``seeds`` average over independent runs (the paper ran
    three iterations per configuration).  The fault x seed matrix fans
    out across ``jobs`` worker processes via the experiment runner; the
    per-fault aggregation is identical either way because workers return
    the exact result documents a serial run produces.
    """
    if config is None:
        config = ScenarioConfig()
    if model is None:
        model = shared_model(config)
    tasks = []
    for fault_name in fault_names:
        if fault_name not in FAULT_CATALOG:
            raise KeyError(f"unknown fault {fault_name!r}")
        for seed in seeds:
            run_config = ScenarioConfig(
                **{**config.__dict__, "fault_name": fault_name, "seed": seed}
            )
            tasks.append(ExperimentTask(f"{fault_name}/seed{seed}", run_config))
    report = run_tasks(tasks, jobs=jobs, model=model, telemetry=telemetry)
    by_fault: dict = {}
    for task_result in report.results:
        by_fault.setdefault(task_result.task.config.fault_name, []).append(
            task_result.load()
        )
    rows = []
    for fault_name in fault_names:
        results = by_fault[fault_name]
        rows.append(
            Figure7Row(
                fault_name=fault_name,
                ba_blackbox=sum(r.counts_bb.balanced_accuracy for r in results)
                / len(results),
                ba_whitebox=sum(r.counts_wb.balanced_accuracy for r in results)
                / len(results),
                ba_combined=sum(r.counts_all.balanced_accuracy for r in results)
                / len(results),
                latency_blackbox=_mean_optional([r.latency_bb for r in results]),
                latency_whitebox=_mean_optional([r.latency_wb for r in results]),
                latency_combined=_mean_optional([r.latency_all for r in results]),
                runs=len(results),
            )
        )
    return Figure7Result(rows=rows, engine=report)
