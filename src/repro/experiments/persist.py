"""Persist scenario results for offline post-processing.

The paper's offline-analysis goal (section 2.1) extends to the
evaluation harness: one expensive monitored run can be saved to a JSON
file and replayed later -- e.g. re-sweeping thresholds over the captured
analysis statistics without re-simulating the cluster.

Only plain data is stored (alarms, per-window decisions, raw per-round
statistics, ground truth, the scenario configuration); reloading yields
the same sweep inputs the live run produced.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..analysis.metrics import (
    Alarm,
    ConfusionCounts,
    GroundTruth,
    WindowDecision,
    fingerpointing_latency,
    score_decisions,
)
from .scenario import ScenarioConfig


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _load_alarm(obj: Dict[str, Any]) -> Alarm:
    # JSON has no tuples: the provenance chain round-trips as a list.
    data = dict(obj)
    data["via"] = tuple(data.get("via", ()))
    return Alarm(**data)


def result_payload(result) -> Dict[str, Any]:
    """A :class:`ScenarioResult` as a plain-data JSON document.

    This is both the on-disk format of :func:`save_result` and the wire
    format the parallel experiment runner's workers return, so one
    scenario run serializes identically whether it is being archived or
    shipped back from a process pool.
    """
    return {
        "format": "asdf-scenario-result/1",
        "config": asdict(result.config),
        "truth": asdict(result.truth),
        "jobs_completed": result.jobs_completed,
        "alarms": {
            name: [asdict(a) for a in alarms]
            for name, alarms in (
                ("blackbox", result.alarms_bb),
                ("whitebox", result.alarms_wb),
                ("combined", result.alarms_all),
            )
        },
        "decisions": {
            name: [asdict(d) for d in decisions]
            for name, decisions in (
                ("blackbox", result.decisions_bb),
                ("whitebox", result.decisions_wb),
                ("combined", result.decisions_all),
            )
        },
        "stats": {
            "blackbox": _jsonable(result.stats_bb),
            "whitebox": _jsonable(result.stats_wb),
        },
    }


def save_result(result, path: Union[str, Path]) -> Path:
    """Write a :class:`ScenarioResult`'s data to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(result_payload(result)))
    return path


class LoadedResult:
    """A reloaded scenario result: the sweep-relevant subset.

    Exposes the same attribute names the live :class:`ScenarioResult`
    uses -- including the derived scores (``counts_*``, ``latency_*``),
    computed lazily from the reloaded decisions and ground truth -- so
    sweep, scoring, aggregation and report code accepts either.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        if payload.get("format") != "asdf-scenario-result/1":
            raise ValueError(
                f"not a saved scenario result (format={payload.get('format')!r})"
            )
        self.config = ScenarioConfig(**payload["config"])
        self.truth = GroundTruth(**payload["truth"])
        self.jobs_completed = int(payload["jobs_completed"])
        self.alarms_bb = [_load_alarm(a) for a in payload["alarms"]["blackbox"]]
        self.alarms_wb = [_load_alarm(a) for a in payload["alarms"]["whitebox"]]
        self.alarms_all = [_load_alarm(a) for a in payload["alarms"]["combined"]]
        self.decisions_bb = [
            WindowDecision(**d) for d in payload["decisions"]["blackbox"]
        ]
        self.decisions_wb = [
            WindowDecision(**d) for d in payload["decisions"]["whitebox"]
        ]
        self.decisions_all = [
            WindowDecision(**d) for d in payload["decisions"]["combined"]
        ]
        self.stats_bb: List[dict] = payload["stats"]["blackbox"]
        self.stats_wb: List[dict] = payload["stats"]["whitebox"]
        self._scores: Dict[str, Any] = {}

    def _score(self, key: str, compute) -> Any:
        if key not in self._scores:
            self._scores[key] = compute()
        return self._scores[key]

    @property
    def counts_bb(self) -> ConfusionCounts:
        return self._score(
            "counts_bb", lambda: score_decisions(self.decisions_bb, self.truth)
        )

    @property
    def counts_wb(self) -> ConfusionCounts:
        return self._score(
            "counts_wb", lambda: score_decisions(self.decisions_wb, self.truth)
        )

    @property
    def counts_all(self) -> ConfusionCounts:
        return self._score(
            "counts_all", lambda: score_decisions(self.decisions_all, self.truth)
        )

    @property
    def latency_bb(self) -> Optional[float]:
        return self._score(
            "latency_bb", lambda: fingerpointing_latency(self.alarms_bb, self.truth)
        )

    @property
    def latency_wb(self) -> Optional[float]:
        return self._score(
            "latency_wb", lambda: fingerpointing_latency(self.alarms_wb, self.truth)
        )

    @property
    def latency_all(self) -> Optional[float]:
        return self._score(
            "latency_all", lambda: fingerpointing_latency(self.alarms_all, self.truth)
        )


def load_result(path: Union[str, Path]) -> LoadedResult:
    """Reload a result saved by :func:`save_result`."""
    return LoadedResult(json.loads(Path(path).read_text()))
