"""The 50->1000-node scaling benchmark: scalar vs vectorized data plane.

Three measurements, each per (fleet size, engine):

* **tick throughput** -- how fast the simulator core advances an idle
  (daemons + external load, no jobs) cluster, in ticks/second.  This
  isolates the struct-of-arrays refactor (:mod:`repro.sim.vec`) from
  job-bookkeeping Python that is identical in both engines.
* **pipeline samples/second** -- an end-to-end data-plane loop: step the
  cluster one second, collect every node's black-box vector through the
  real :class:`repro.sysstat.sadc.Sadc` sampler, classify the fleet
  against a centroid model, and fold the states into window histograms
  with L1 peer deviations.  The ``scalar`` engine uses the per-node
  classify/histogram loops; ``vec`` uses the fleet-batched passes
  (:func:`repro.analysis.kmeans.nearest_k_batch`,
  :func:`repro.analysis.fleet.state_histogram_batch`).
* **parity** -- the two engines are only comparable because their
  outputs are bit-identical: :func:`tick_parity_mismatches` steps both
  engines through jobs + faults + packet loss and compares every node's
  full procfs snapshot every tick; :func:`scenario_parity_mismatches`
  runs the whole ASDF scenario (vec additionally switches on the
  fleet-batched ``knnfleet``/analysis paths) and compares alarms,
  window decisions, scoreboard counts and the analysis channels' bytes.

:func:`run_scale_benchmark` drives all of it and produces the
``BENCH_scale.json`` payload; :func:`check_scale_gate` is the CI
regression gate over a committed baseline.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.fleet import state_histogram_batch
from ..analysis.kmeans import nearest_k, nearest_k_batch
from ..analysis.peer import state_histogram, state_vector_l1_deviation
from ..faults import FaultSpec, make_fault
from ..hadoop import MB, ClusterConfig, HadoopCluster, JobSpec
from ..sysstat.metrics import NODE_METRICS
from ..sysstat.sadc import Sadc

#: Engines compared by every measurement.
SCALE_ENGINES = ("scalar", "vec")

#: Default fleet sizes of the committed trajectory (ISSUE: 50 -> 1000).
DEFAULT_SIZES = (50, 200, 500, 1000)

#: Fleet sizes whose parity is asserted by default.
DEFAULT_PARITY_SIZES = (50, 200)

#: States in the synthetic pipeline-benchmark centroid model.
_PIPELINE_STATES = 7


def _cluster(num_slaves: int, engine: str, seed: int) -> HadoopCluster:
    return HadoopCluster(
        ClusterConfig(num_slaves=num_slaves, seed=seed, engine=engine)
    )


def measure_tick_rate(
    num_slaves: int,
    engine: str,
    ticks: int = 200,
    warmup: int = 10,
    seed: int = 11,
) -> Dict[str, Any]:
    """Time ``ticks`` one-second steps of an idle cluster."""
    cluster = _cluster(num_slaves, engine, seed)
    for _ in range(warmup):
        cluster.step(1.0)
    started = time.perf_counter()
    for _ in range(ticks):
        cluster.step(1.0)
    wall_s = time.perf_counter() - started
    return {
        "num_slaves": num_slaves,
        "engine": engine,
        "ticks": ticks,
        "tick_wall_s": wall_s,
        "tick_ms": 1000.0 * wall_s / ticks,
        "ticks_per_s": ticks / wall_s if wall_s > 0 else float("inf"),
    }


def _pipeline_model(seed: int = 97) -> Tuple[np.ndarray, np.ndarray]:
    """A deterministic synthetic centroid model over the node catalog."""
    rng = np.random.default_rng(seed)
    centroids = rng.gamma(2.0, 1.0, (_PIPELINE_STATES, len(NODE_METRICS)))
    sigma = np.ones(len(NODE_METRICS))
    return centroids, sigma


def measure_pipeline_rate(
    num_slaves: int,
    engine: str,
    seconds: int = 60,
    window: int = 30,
    seed: int = 11,
) -> Dict[str, Any]:
    """Time the end-to-end data plane: sim -> sadc -> classify -> window.

    ``engine`` selects both the simulator core and the analysis style:
    ``scalar`` classifies and histograms node by node (the per-node
    ``knn``-module path), ``vec`` runs one fleet-batched pass per second
    and per window round.  The math is bit-identical either way (pinned
    by the parity tests); this measures only the throughput difference.
    """
    cluster = _cluster(num_slaves, engine, seed)
    nodes = list(cluster.slave_names)
    samplers = [Sadc(cluster.procfs(node)) for node in nodes]
    centroids, sigma = _pipeline_model()
    batched = engine == "vec"
    states: List[np.ndarray] = []
    samples = 0
    rounds = 0
    started = time.perf_counter()
    for second in range(seconds + 1):
        cluster.step(1.0)
        now = cluster.time
        raw = [sampler.collect(now) for sampler in samplers]
        if any(sample is None for sample in raw):
            continue  # priming second
        vectors = np.array([sample.node_vector() for sample in raw])
        if batched:
            scaled = np.log1p(np.maximum(vectors, 0.0)) / sigma
            column = nearest_k_batch(scaled, centroids, 1)[:, 0]
        else:
            column = np.array(
                [
                    nearest_k(
                        np.log1p(np.maximum(row, 0.0)) / sigma, centroids, 1
                    )[0]
                    for row in vectors
                ]
            )
        states.append(column)
        samples += len(nodes)
        if len(states) >= window:
            assignments = np.stack(states, axis=1).astype(int)
            if batched:
                histograms = state_histogram_batch(
                    assignments, _PIPELINE_STATES
                )
            else:
                histograms = np.array(
                    [
                        state_histogram(row, _PIPELINE_STATES)
                        for row in assignments
                    ]
                )
            state_vector_l1_deviation(histograms)
            states.clear()
            rounds += 1
    wall_s = time.perf_counter() - started
    return {
        "num_slaves": num_slaves,
        "engine": engine,
        "pipeline_seconds": seconds,
        "pipeline_rounds": rounds,
        "pipeline_wall_s": wall_s,
        "samples_per_s": samples / wall_s if wall_s > 0 else float("inf"),
    }


# --------------------------------------------------------------------------
# Parity
# --------------------------------------------------------------------------


def _exercise(cluster: HadoopCluster) -> None:
    """Submit jobs and arm faults so parity covers the busy paths."""
    slaves = list(cluster.slave_names)
    for i in range(2):
        cluster.submit_job(
            JobSpec(
                job_id=f"200807070001_{i:04d}",
                name="parity",
                input_bytes=192.0 * MB,
                num_reduces=2,
            )
        )
    make_fault("CPUHog").arm(
        cluster, FaultSpec(node=slaves[1], inject_time=20.0)
    )
    make_fault("DiskHog").arm(
        cluster, FaultSpec(node=slaves[2], inject_time=25.0)
    )
    cluster.network.set_loss_rate(slaves[3], 0.3)


def tick_parity_mismatches(
    num_slaves: int, ticks: int = 90, seed: int = 11
) -> List[str]:
    """(tick, node) labels whose procfs snapshots differ between engines.

    Both engines step the same busy cluster (jobs, CPU/disk hogs, packet
    loss) tick by tick; every node's full snapshot -- all counter
    groups, process table, NICs -- must compare exactly (float equality,
    i.e. bit-for-bit for finite values) on every tick.
    """
    scalar = _cluster(num_slaves, "scalar", seed)
    vec = _cluster(num_slaves, "vec", seed)
    _exercise(scalar)
    _exercise(vec)
    mismatches: List[str] = []
    nodes = list(scalar.nodes)
    for tick in range(ticks):
        scalar.step(1.0)
        vec.step(1.0)
        for node in nodes:
            a = dataclasses.asdict(scalar.procfs(node).snapshot())
            b = dataclasses.asdict(vec.procfs(node).snapshot())
            if a != b:
                mismatches.append(f"tick {tick} node {node}")
    return mismatches


def _scenario_key(result) -> List[Tuple[str, Any]]:
    """The comparable essence of a scenario run, channel bytes included."""
    key: List[Tuple[str, Any]] = [
        (
            "alarms",
            [(a.time, a.node, a.source, a.detail) for a in result.alarms_all],
        ),
        (
            "decisions_bb",
            [
                (d.node, d.window_start, d.window_end, d.alarmed)
                for d in result.decisions_bb
            ],
        ),
        (
            "decisions_wb",
            [
                (d.node, d.window_start, d.window_end, d.alarmed)
                for d in result.decisions_wb
            ],
        ),
        ("counts_bb", result.counts_bb),
        ("counts_wb", result.counts_wb),
        ("counts_all", result.counts_all),
        ("jobs_completed", result.jobs_completed),
        (
            "stats_bb",
            [
                (
                    tuple(s["nodes"]),
                    tuple(s["deviations"]),
                    np.asarray(s["histograms"]).tobytes(),
                )
                for s in result.stats_bb
            ],
        ),
        (
            "stats_wb",
            [
                (
                    tuple(s["nodes"]),
                    np.asarray(s["means"]).tobytes(),
                    np.asarray(s["stds"]).tobytes(),
                )
                for s in result.stats_wb
            ],
        ),
    ]
    return key


def scenario_parity_mismatches(
    num_slaves: int,
    duration_s: float = 300.0,
    seed: int = 31,
    fault_name: Optional[str] = "CPUHog",
    model=None,
) -> List[str]:
    """Field names that differ between a scalar and a vectorized run.

    The vectorized run also switches on ``fleet_knn`` so the batched
    classification/analysis paths are the ones being compared.  One
    shared model keeps training out of the comparison.
    """
    from .scenario import ScenarioConfig, run_scenario

    base = dict(
        num_slaves=num_slaves,
        duration_s=duration_s,
        seed=seed,
        fault_name=fault_name,
        inject_time=duration_s / 3.0,
    )
    if model is None:
        from .figures import shared_model

        model = shared_model(
            ScenarioConfig(**base), training_duration_s=120.0
        )
    scalar = run_scenario(ScenarioConfig(**base, engine="scalar"), model=model)
    vec = run_scenario(
        ScenarioConfig(**base, engine="vec", fleet_knn=True), model=model
    )
    return [
        name
        for (name, a), (_, b) in zip(
            _scenario_key(scalar), _scenario_key(vec)
        )
        if a != b
    ]


# --------------------------------------------------------------------------
# The benchmark driver and its gate
# --------------------------------------------------------------------------


def run_scale_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    ticks: int = 200,
    pipeline_seconds: int = 60,
    parity_sizes: Sequence[int] = DEFAULT_PARITY_SIZES,
    parity_ticks: int = 90,
    seed: int = 11,
    check_parity: bool = True,
    progress=None,
) -> Dict[str, Any]:
    """Measure the full scaling curve; returns the BENCH_scale payload."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    rows: List[Dict[str, Any]] = []
    for num_slaves in sizes:
        for engine in SCALE_ENGINES:
            note(f"tick throughput: N={num_slaves} engine={engine}")
            row = measure_tick_rate(num_slaves, engine, ticks=ticks, seed=seed)
            note(f"pipeline: N={num_slaves} engine={engine}")
            row.update(
                measure_pipeline_rate(
                    num_slaves, engine, seconds=pipeline_seconds, seed=seed
                )
            )
            rows.append(row)

    def _row(num_slaves: int, engine: str) -> Dict[str, Any]:
        return next(
            r
            for r in rows
            if r["num_slaves"] == num_slaves and r["engine"] == engine
        )

    tick_speedup = {
        str(n): _row(n, "vec")["ticks_per_s"] / _row(n, "scalar")["ticks_per_s"]
        for n in sizes
    }
    pipeline_speedup = {
        str(n): _row(n, "vec")["samples_per_s"]
        / _row(n, "scalar")["samples_per_s"]
        for n in sizes
    }

    parity: Dict[str, Any] = {
        "sizes": list(parity_sizes),
        "ticks": parity_ticks,
        "checked": bool(check_parity),
        "mismatches": None,
    }
    if check_parity:
        labels: List[str] = []
        for num_slaves in parity_sizes:
            note(f"parity: N={num_slaves} ({parity_ticks} ticks)")
            labels.extend(
                f"N={num_slaves}: {label}"
                for label in tick_parity_mismatches(
                    num_slaves, ticks=parity_ticks, seed=seed
                )
            )
        parity["mismatches"] = len(labels)
        parity["mismatch_labels"] = labels[:20]

    return {
        "name": "scale",
        "sizes": list(sizes),
        "ticks": ticks,
        "pipeline_seconds": pipeline_seconds,
        "rows": rows,
        "tick_speedup": tick_speedup,
        "pipeline_speedup": pipeline_speedup,
        "parity": parity,
    }


def write_scale_json(
    payload: Dict[str, Any], directory: Optional[Union[str, Path]] = None
) -> Path:
    """Write ``BENCH_scale.json`` next to the other trajectory files."""
    from .runner import bench_output_dir

    directory = Path(directory) if directory is not None else bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_scale.json"
    path.write_text(json.dumps(payload, indent=2))
    return path


def check_scale_gate(
    payload: Dict[str, Any],
    baseline_path: Optional[Union[str, Path]] = None,
    min_speedup: float = 1.0,
    slack: float = 0.7,
) -> Tuple[bool, str]:
    """CI gate over a scale payload.

    Asserts, at the largest measured size: vectorized tick throughput is
    at least ``min_speedup`` times scalar; parity, when checked, found
    zero mismatches; and -- when a committed baseline is given -- the
    vectorized speedup has not regressed below ``slack`` times the
    baseline's at the largest size both share (slack absorbs shared
    runner noise).
    """
    problems: List[str] = []
    sizes = payload.get("sizes") or []
    speedups = payload.get("tick_speedup") or {}
    if not sizes or not speedups:
        return False, "scale gate: payload has no measurements"
    top = str(max(sizes))
    measured = float(speedups[top])
    if measured < min_speedup:
        problems.append(
            f"vec/scalar tick speedup {measured:.2f}x at N={top} is below "
            f"the {min_speedup:.2f}x floor"
        )
    parity = payload.get("parity") or {}
    if parity.get("checked") and parity.get("mismatches"):
        problems.append(
            f"{parity['mismatches']} parity mismatch(es): "
            f"{parity.get('mismatch_labels')}"
        )
    if baseline_path is not None:
        try:
            baseline = json.loads(Path(baseline_path).read_text())
        except (OSError, ValueError) as error:
            problems.append(f"cannot read baseline {baseline_path}: {error}")
            baseline = None
        if baseline is not None:
            base_speedups = baseline.get("tick_speedup") or {}
            shared = [
                s for s in map(str, sizes) if s in base_speedups
            ]
            if shared:
                at = max(shared, key=int)
                floor = float(base_speedups[at]) * slack
                if float(speedups[at]) < floor:
                    problems.append(
                        f"tick speedup {float(speedups[at]):.2f}x at N={at} "
                        f"regressed below {floor:.2f}x "
                        f"(baseline {float(base_speedups[at]):.2f}x "
                        f"* slack {slack:.2f})"
                    )
    if problems:
        return False, "scale gate: FAIL -- " + "; ".join(problems)
    return True, (
        f"scale gate: PASS -- vec/scalar {measured:.2f}x at N={top}, "
        f"parity mismatches: {parity.get('mismatches')}"
    )


__all__ = [
    "DEFAULT_PARITY_SIZES",
    "DEFAULT_SIZES",
    "SCALE_ENGINES",
    "check_scale_gate",
    "measure_pipeline_rate",
    "measure_tick_rate",
    "run_scale_benchmark",
    "scenario_parity_mismatches",
    "tick_parity_mismatches",
    "write_scale_json",
]
