"""Experiment harness: scenarios, calibration sweeps, and the drivers
that regenerate every table and figure of the paper's evaluation."""

from .figures import (
    Figure6Result,
    Figure7Result,
    Figure7Row,
    Table2Row,
    figure6,
    figure7,
    shared_model,
    table2,
)
from .model import (
    DEFAULT_NUM_STATES,
    BlackBoxModel,
    collect_training_matrix,
    load_model,
    save_model,
    train_blackbox_model,
)
from .persist import LoadedResult, load_result, save_result
from .report import render_summary, render_timeline
from .overhead import (
    BandwidthRow,
    OverheadReport,
    OverheadRow,
    compute_overhead_report,
    deep_sizeof,
    measure_overheads,
)
from .scenario import (
    AsdfHandles,
    ScenarioConfig,
    ScenarioResult,
    build_asdf_config_text,
    deploy_asdf,
    merge_decisions,
    run_scenario,
)
from .sweep import blackbox_fp_sweep, pick_knee, whitebox_fp_sweep

__all__ = [
    "AsdfHandles",
    "BandwidthRow",
    "BlackBoxModel",
    "DEFAULT_NUM_STATES",
    "Figure6Result",
    "Figure7Result",
    "Figure7Row",
    "LoadedResult",
    "OverheadReport",
    "OverheadRow",
    "ScenarioConfig",
    "ScenarioResult",
    "Table2Row",
    "blackbox_fp_sweep",
    "build_asdf_config_text",
    "collect_training_matrix",
    "compute_overhead_report",
    "deep_sizeof",
    "deploy_asdf",
    "figure6",
    "figure7",
    "measure_overheads",
    "merge_decisions",
    "load_model",
    "load_result",
    "pick_knee",
    "save_model",
    "render_summary",
    "render_timeline",
    "run_scenario",
    "save_result",
    "shared_model",
    "table2",
    "train_blackbox_model",
    "whitebox_fp_sweep",
]
