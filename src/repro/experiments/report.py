"""Plain-text visualization of a scenario's outcome.

The paper's framework family "typically support[s] visualization of the
monitored data to allow administrators to spot anomalous trends" (section
1).  This module renders a :class:`ScenarioResult` as an ASCII timeline:
one row per node, one column per analysis window, showing which detector
flagged the node-window and where the fault was injected.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .scenario import ScenarioResult

#: Cell glyphs: quiet, black-box alarm, white-box alarm, both.
_GLYPHS = {(False, False): ".", (True, False): "B", (False, True): "W", (True, True): "*"}


def _window_grid(result: ScenarioResult) -> Tuple[List[str], List[Tuple[float, float]]]:
    nodes = sorted({d.node for d in result.decisions_wb})
    windows = sorted(
        {(d.window_start, d.window_end) for d in result.decisions_wb}
    )
    return nodes, windows


def render_timeline(result: ScenarioResult) -> str:
    """Render the per-node, per-window alarm timeline.

    Columns follow the white-box window grid (black-box decisions are
    mapped onto it by overlap); the ``^`` footer marks the injection
    window; the culprit row is tagged ``<- injected``.
    """
    nodes, windows = _window_grid(result)
    if not nodes or not windows:
        return "(no analysis windows completed)"

    bb_flags: Dict[Tuple[str, int], bool] = {}
    for decision in result.decisions_bb:
        if not decision.alarmed:
            continue
        for index, (start, end) in enumerate(windows):
            if decision.window_start < end and decision.window_end > start:
                bb_flags[(decision.node, index)] = True
    wb_flags = {
        (d.node, windows.index((d.window_start, d.window_end))): d.alarmed
        for d in result.decisions_wb
    }

    width = max(len(node) for node in nodes)
    lines = [
        f"{'':>{width}}  one column per {int(windows[0][1] - windows[0][0])}s window"
        "  (B=black-box, W=white-box, *=both)"
    ]
    for node in nodes:
        cells = []
        for index in range(len(windows)):
            bb = bb_flags.get((node, index), False)
            wb = wb_flags.get((node, index), False)
            cells.append(_GLYPHS[(bb, wb)])
        tag = "  <- injected" if node == result.truth.faulty_node else ""
        lines.append(f"{node:>{width}}  {''.join(cells)}{tag}")

    if result.truth.faulty_node is not None:
        marks = []
        for start, end in windows:
            marks.append("^" if start <= result.truth.inject_time < end else " ")
        lines.append(f"{'':>{width}}  {''.join(marks)} (fault injected)")
    return "\n".join(lines)


def render_summary(result: ScenarioResult) -> str:
    """A compact scorecard for one run."""

    def latency(value) -> str:
        return f"{value:.0f}s" if value is not None else "-"

    lines = [
        f"fault: {result.config.fault_name or 'none'}"
        + (
            f" on {result.truth.faulty_node} at t={result.truth.inject_time:.0f}s"
            if result.truth.faulty_node
            else ""
        ),
        f"jobs completed: {result.jobs_completed}",
        f"{'detector':<10} {'BA':>6} {'FP rate':>8} {'latency':>8} {'alarms':>7}",
    ]
    for name, counts, lat, alarms in (
        ("black-box", result.counts_bb, result.latency_bb, result.alarms_bb),
        ("white-box", result.counts_wb, result.latency_wb, result.alarms_wb),
        ("combined", result.counts_all, result.latency_all, result.alarms_all),
    ):
        lines.append(
            f"{name:<10} {counts.balanced_accuracy:6.2f} "
            f"{counts.false_positive_rate:8.3f} {latency(lat):>8} {len(alarms):>7}"
        )
    return "\n".join(lines)
