"""Parallel experiment engine: fan ``run_scenario`` tasks across workers.

The paper's evaluation (Tables 2-4, Figures 6-7) is hundreds of
*independent* scenario runs -- 6 faults x several trials x threshold
sweeps.  Each run is deterministic given its :class:`ScenarioConfig`, so
the matrix parallelizes perfectly; what used to serialize everything was
the harness, not the workload.  This module is the harness fix:

* :func:`scenario_matrix` / :func:`table2_matrix` expand a base
  configuration into a task list (fault x trial x sweep point), deriving
  per-task seeds deterministically from the base seed with
  :func:`derive_seed` -- the same matrix always produces the same seeds,
  regardless of worker count or completion order.
* :class:`ModelCache` trains the black-box model **once in the parent**
  per unique training signature (a hash of the training configuration)
  and ships the plain-JSON payload (:func:`.model.model_to_payload`) to
  the workers, so no worker ever retrains.
* :func:`run_tasks` executes the matrix on a ``ProcessPoolExecutor``
  (``jobs`` workers), falling back gracefully to in-process serial
  execution when ``jobs=1`` or multiprocessing is unavailable.  Workers
  return the :func:`.persist.result_payload` plain-data document, so a
  parallel run is byte-comparable -- and byte-identical -- to a serial
  one.
* **Warm-worker mode** (``warm=True`` or ``$ASDF_WARM_WORKERS=1``)
  keeps one process pool alive across :func:`run_tasks` calls: workers
  are spawned once, eagerly pre-import the whole scenario stack in the
  initializer, and cache each shipped model document by digest so the
  matrix proper streams task chunks into already-hot interpreters.
  Worker spawn + import cost (the fixed overhead that kept jobs=2
  speedup below 1.0 on short matrices) is paid before the measured
  window instead of inside it.
* :class:`EngineReport` carries per-task wall/CPU timings (also surfaced
  through :meth:`.telemetry.Telemetry.record_task`) and serializes to
  the ``BENCH_<name>.json`` trajectory files via
  :func:`write_bench_json`.
"""

from __future__ import annotations

import atexit
import gc
import hashlib
import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..faults import FAULT_NAMES
from ..hadoop.cluster import ClusterConfig
from ..telemetry import Telemetry
from .model import (
    BlackBoxModel,
    model_from_payload,
    model_to_payload,
    train_blackbox_model,
)
from .persist import LoadedResult, result_payload
from .scenario import ScenarioConfig, run_scenario

__all__ = [
    "EngineReport",
    "ExperimentTask",
    "ModelCache",
    "TaskResult",
    "bench_output_dir",
    "check_speedup_gate",
    "derive_seed",
    "parity_mismatches",
    "run_tasks",
    "scenario_matrix",
    "shutdown_warm_pool",
    "table2_matrix",
    "training_signature",
    "warm_workers_enabled",
    "write_bench_json",
]

#: Environment override for where ``BENCH_<name>.json`` files land.
BENCH_DIR_ENV = "ASDF_BENCH_DIR"
#: Format tag of the emitted benchmark trajectory files.
BENCH_FORMAT = "asdf-bench/1"
#: Environment gate for the persistent warm-worker pool.
WARM_WORKERS_ENV = "ASDF_WARM_WORKERS"


# --------------------------------------------------------------------------
# Deterministic per-task seeds
# --------------------------------------------------------------------------


def derive_seed(base_seed: int, *parts: Any) -> int:
    """A stable 31-bit seed derived from ``base_seed`` and task coordinates.

    SHA-256 over the canonical string of every coordinate, so the
    mapping is independent of Python's per-process hash randomization,
    of the platform, and of task submission order -- the property the
    serial-vs-parallel parity guarantee rests on.
    """
    text = "\x1f".join([str(int(base_seed))] + [repr(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# --------------------------------------------------------------------------
# Task matrices
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentTask:
    """One independent evaluation run: an id plus its full configuration."""

    task_id: str
    config: ScenarioConfig


def scenario_matrix(
    base: ScenarioConfig,
    faults: Sequence[Optional[str]] = (None,),
    trials: int = 1,
    sweep: Optional[Tuple[str, Sequence[Any]]] = None,
) -> List[ExperimentTask]:
    """Expand ``base`` into a fault x trial x sweep-point task list.

    ``sweep``, when given, is ``(config_field, values)`` -- e.g.
    ``("bb_threshold", [40, 50, 60])`` -- and multiplies the matrix by
    one task per value.  Every task's seed is derived from the base seed
    and its coordinates, so trials are independent runs and the whole
    matrix is reproducible from ``base.seed`` alone.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    sweep_field, sweep_values = sweep if sweep is not None else (None, [None])
    tasks: List[ExperimentTask] = []
    for fault in faults:
        for trial in range(trials):
            for value in sweep_values:
                overrides: Dict[str, Any] = {
                    "fault_name": fault,
                    "seed": derive_seed(
                        base.seed, fault or "", trial, sweep_field or "", value
                    ),
                }
                task_id = f"{fault or 'fault-free'}/t{trial}"
                if sweep_field is not None:
                    overrides[sweep_field] = value
                    task_id += f"/{sweep_field}={value}"
                tasks.append(
                    ExperimentTask(task_id, replace(base, **overrides))
                )
    return tasks


def table2_matrix(
    base: ScenarioConfig,
    faults: Sequence[str] = FAULT_NAMES,
    trials: int = 1,
) -> List[ExperimentTask]:
    """The Table 2 evaluation matrix: every injected fault x ``trials``."""
    return scenario_matrix(base, faults=list(faults), trials=trials)


# --------------------------------------------------------------------------
# Parent-side model cache
# --------------------------------------------------------------------------


def training_signature(
    config: ScenarioConfig, training_duration_s: Optional[float] = None
) -> str:
    """Hash of everything that determines the trained black-box model.

    Mirrors the default-training path of :func:`.scenario.run_scenario`:
    cluster size, the shifted training seed, training duration, k-means
    state count and k-means seed.  Two configurations with the same
    signature train byte-identical models, so the cache may serve both.
    """
    duration = (
        training_duration_s
        if training_duration_s is not None
        else min(300.0, config.duration_s)
    )
    key = {
        "num_slaves": config.num_slaves,
        "cluster_seed": config.seed + 1000,
        "duration_s": float(duration),
        "num_states": config.num_states,
        "kmeans_seed": config.seed,
    }
    return hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]


class ModelCache:
    """Train-once storage of black-box models, keyed by training signature."""

    def __init__(self) -> None:
        self._models: Dict[str, BlackBoxModel] = {}
        self.trainings = 0

    def put(self, key: str, model: BlackBoxModel) -> None:
        self._models[key] = model

    def get(
        self,
        config: ScenarioConfig,
        training_duration_s: Optional[float] = None,
    ) -> Tuple[str, BlackBoxModel]:
        """The (signature, model) for ``config``, training on first miss."""
        key = training_signature(config, training_duration_s)
        model = self._models.get(key)
        if model is None:
            duration = (
                training_duration_s
                if training_duration_s is not None
                else min(300.0, config.duration_s)
            )
            model = train_blackbox_model(
                cluster_config=ClusterConfig(
                    num_slaves=config.num_slaves, seed=config.seed + 1000
                ),
                duration_s=duration,
                num_states=config.num_states,
                seed=config.seed,
            )
            self._models[key] = model
            self.trainings += 1
        return key, model

    def payloads(self) -> Dict[str, dict]:
        return {key: model_to_payload(m) for key, m in self._models.items()}


# --------------------------------------------------------------------------
# Worker protocol
# --------------------------------------------------------------------------

#: Per-worker state installed by :func:`_install_models`: raw JSON
#: payloads, the models materialized from them (lazily, per key), and
#: the digest of the installed document (so a warm worker re-receiving
#: the same models with every chunk skips the re-parse).
_worker_payloads: Dict[str, dict] = {}
_worker_models: Dict[str, BlackBoxModel] = {}
_worker_models_digest: Optional[str] = None


def _install_models(models_json: str) -> None:
    """(Worker side) parse and cache the parent's trained models.

    Idempotent per document: warm-pool chunks each carry the models
    JSON, so the digest check makes every chunk after the first a
    no-op -- the "pre-load the model payload once" half of warm mode.
    """
    global _worker_payloads, _worker_models, _worker_models_digest
    digest = hashlib.sha256(models_json.encode("utf-8")).hexdigest()
    if digest == _worker_models_digest:
        return
    _worker_payloads = json.loads(models_json)
    _worker_models = {}
    _worker_models_digest = digest


def _worker_init(models_json: str) -> None:
    """Pool initializer: receive the parent's trained models as JSON."""
    _install_models(models_json)
    # Freeze everything imported/parsed so far out of the cyclic GC's
    # generations: workers churn through millions of short-lived sim
    # objects, and rescanning the permanent interpreter/model state on
    # every collection is pure overhead (it also keeps forked pages
    # copy-on-write-clean on POSIX).
    gc.freeze()


def _warm_init() -> None:
    """Warm-pool initializer: pre-import the scenario stack eagerly.

    A cold worker pays the whole ``run_scenario`` import graph (NumPy,
    the vectorized simulator, the model code) inside the first task's
    measured wall time; a warm worker pays it here, once, before any
    matrix is dispatched.
    """
    from ..hadoop import cluster as _cluster  # noqa: F401
    from ..sim import vec as _vec  # noqa: F401
    from . import model as _model  # noqa: F401
    from . import persist as _persist  # noqa: F401
    from . import scenario as _scenario  # noqa: F401

    gc.freeze()


def _worker_model(key: str) -> BlackBoxModel:
    model = _worker_models.get(key)
    if model is None:
        model = model_from_payload(_worker_payloads[key])
        _worker_models[key] = model
    return model


def _execute_task(
    item: Tuple[str, Dict[str, Any], Optional[str]],
) -> Tuple[str, Dict[str, Any], float, float, str]:
    """Run one task and return its plain-data result document + timings.

    This is the single execution path: the serial fallback calls it
    in-process and the pool pickles it to workers, so ``jobs=1`` and
    ``jobs=N`` runs are the same code against the same shipped model.
    """
    task_id, config_dict, model_key = item
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    config = ScenarioConfig(**config_dict)
    model = _worker_model(model_key) if model_key is not None else None
    result = run_scenario(config, model=model)
    payload = result_payload(result)
    return (
        task_id,
        payload,
        time.perf_counter() - wall_started,
        time.process_time() - cpu_started,
        f"pid:{os.getpid()}",
    )


# --------------------------------------------------------------------------
# Results and reports
# --------------------------------------------------------------------------


@dataclass
class TaskResult:
    """One finished task: its result document plus execution accounting."""

    task: ExperimentTask
    payload: Dict[str, Any]
    wall_s: float
    cpu_s: float
    worker: str
    _loaded: Optional[LoadedResult] = field(default=None, repr=False)

    def load(self) -> LoadedResult:
        """The result document as a scoreable :class:`LoadedResult`."""
        if self._loaded is None:
            self._loaded = LoadedResult(self.payload)
        return self._loaded

    def canonical_json(self) -> str:
        """Canonical serialization used for byte-level parity checks."""
        return json.dumps(self.payload, sort_keys=True)


@dataclass
class EngineReport:
    """Everything one engine invocation did, ready for ``BENCH_*`` export."""

    jobs: int
    mode: str  # "process-pool", "warm-pool", "serial", or "serial-fallback"
    wall_s: float
    results: List[TaskResult]
    model_keys: Tuple[str, ...] = ()
    trainings: int = 0
    #: Wall seconds of a reference serial execution of the same matrix,
    #: when the caller measured one (``BENCH_*`` speedup trajectory).
    serial_wall_s: Optional[float] = None

    @property
    def cpu_s(self) -> float:
        return sum(r.cpu_s for r in self.results)

    @property
    def task_wall_s(self) -> float:
        """Sum of per-task wall seconds (serial-equivalent work)."""
        return sum(r.wall_s for r in self.results)

    @property
    def speedup_vs_serial(self) -> Optional[float]:
        if self.serial_wall_s is None or self.wall_s <= 0:
            return None
        return self.serial_wall_s / self.wall_s

    def result(self, task_id: str) -> TaskResult:
        for item in self.results:
            if item.task.task_id == task_id:
                return item
        raise KeyError(f"no task {task_id!r} in report")

    def loaded_results(self) -> List[LoadedResult]:
        return [r.load() for r in self.results]

    def bench_payload(
        self, name: str, extra: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "format": BENCH_FORMAT,
            "name": name,
            "created_unix": int(time.time()),  # fpt: noqa[FPT201] -- metadata stamp, not scenario state
            "jobs": self.jobs,
            "mode": self.mode,
            "wall_s": round(self.wall_s, 4),
            "cpu_s": round(self.cpu_s, 4),
            "task_wall_s": round(self.task_wall_s, 4),
            "tasks": [
                {
                    "task_id": r.task.task_id,
                    "wall_s": round(r.wall_s, 4),
                    "cpu_s": round(r.cpu_s, 4),
                    "worker": r.worker,
                }
                for r in self.results
            ],
            "model_trainings": self.trainings,
        }
        if self.serial_wall_s is not None:
            payload["serial_wall_s"] = round(self.serial_wall_s, 4)
            payload["speedup_vs_serial"] = round(self.speedup_vs_serial, 3)
        if extra:
            payload["extra"] = extra
        return payload


def parity_mismatches(a: EngineReport, b: EngineReport) -> List[str]:
    """Task ids whose result documents differ between two reports.

    Byte-level comparison of canonical JSON: the acceptance bar for the
    parallel engine is *identical* results, not statistically similar
    ones.
    """
    results_b = {r.task.task_id: r for r in b.results}
    mismatched = []
    for result_a in a.results:
        other = results_b.get(result_a.task.task_id)
        if other is None or result_a.canonical_json() != other.canonical_json():
            mismatched.append(result_a.task.task_id)
    mismatched.extend(
        task_id
        for task_id in results_b
        if all(r.task.task_id != task_id for r in a.results)
    )
    return mismatched


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


#: Target chunks per worker when batching pool submissions.  More than
#: one chunk per worker keeps the pool load-balanced when task costs are
#: uneven; batching several tasks per submit amortizes the per-future
#: pickling, IPC and bookkeeping that dominates short matrices.
CHUNKS_PER_WORKER = 2


def _chunk_items(
    items: List[Tuple[str, Dict[str, Any], Optional[str]]], jobs: int
) -> List[List[Tuple[str, Dict[str, Any], Optional[str]]]]:
    """Split the matrix into at most ``jobs * CHUNKS_PER_WORKER`` chunks.

    Contiguous, near-equal splits preserve submission order, so results
    flattened chunk by chunk come back in the same order the per-task
    dispatch produced -- byte-identical reports either way.
    """
    chunk_count = max(1, min(len(items), jobs * CHUNKS_PER_WORKER))
    base, extra = divmod(len(items), chunk_count)
    chunks = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _execute_chunk(
    chunk: List[Tuple[str, Dict[str, Any], Optional[str]]],
) -> List[Tuple[str, Dict[str, Any], float, float, str]]:
    """Run one submitted chunk of tasks, in order, in this worker."""
    return [_execute_task(item) for item in chunk]


def _execute_chunk_warm(
    models_json: str,
    chunk: List[Tuple[str, Dict[str, Any], Optional[str]]],
) -> List[Tuple[str, Dict[str, Any], float, float, str]]:
    """Warm-pool chunk: carry the models (digest-cached worker side).

    The persistent pool outlives any single :func:`run_tasks` call, so
    its initializer cannot receive run-specific models; each chunk
    ships them instead and :func:`_install_models` deduplicates.
    """
    _install_models(models_json)
    return [_execute_task(item) for item in chunk]


# --------------------------------------------------------------------------
# Persistent warm-worker pool
# --------------------------------------------------------------------------

_warm_pool: Optional[Any] = None
_warm_pool_jobs = 0
_warm_atexit_registered = False


def warm_workers_enabled() -> bool:
    """Whether ``$ASDF_WARM_WORKERS`` asks for the persistent pool."""
    return os.environ.get(WARM_WORKERS_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def shutdown_warm_pool() -> None:
    """Tear down the persistent pool (also runs at interpreter exit)."""
    global _warm_pool, _warm_pool_jobs
    pool = _warm_pool
    _warm_pool = None
    _warm_pool_jobs = 0
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _warm_spin(delay_s: float) -> str:
    """(Worker side) trivial task used to force worker spawn-up."""
    time.sleep(delay_s)
    return f"pid:{os.getpid()}"


def _warm_pool_for(jobs: int):
    """The persistent pool at ``jobs`` workers, spawning + priming it on
    first use (or when the worker count changed).

    Priming submits one short busy task per worker so every process is
    forked/spawned and has finished :func:`_warm_init` *before* the
    caller starts its measured window -- that is the entire point of
    warm mode.
    """
    global _warm_pool, _warm_pool_jobs, _warm_atexit_registered
    if _warm_pool is not None and _warm_pool_jobs != jobs:
        shutdown_warm_pool()
    if _warm_pool is None:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=jobs, initializer=_warm_init)
        # Each spin sleeps long enough that one worker cannot drain the
        # whole batch, so the executor actually spawns all ``jobs``
        # processes now rather than lazily mid-matrix.
        for future in [pool.submit(_warm_spin, 0.05) for _ in range(jobs)]:
            future.result()
        _warm_pool = pool
        _warm_pool_jobs = jobs
        if not _warm_atexit_registered:
            atexit.register(shutdown_warm_pool)
            _warm_atexit_registered = True
    return _warm_pool


def _warm_pool_results(
    items: List[Tuple[str, Dict[str, Any], Optional[str]]],
    jobs: int,
    models_json: str,
):
    """Dispatch chunks on the persistent pool, yielding in order."""
    pool = _warm_pool_for(jobs)
    futures = [
        pool.submit(_execute_chunk_warm, models_json, chunk)
        for chunk in _chunk_items(items, jobs)
    ]
    for future in futures:
        yield from future.result()


def _pool_results(
    items: List[Tuple[str, Dict[str, Any], Optional[str]]],
    jobs: int,
    models_json: str,
):
    """Dispatch chunks on a process pool, yielding in submission order."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_worker_init, initargs=(models_json,)
    ) as pool:
        futures = [
            pool.submit(_execute_chunk, chunk)
            for chunk in _chunk_items(items, jobs)
        ]
        for future in futures:
            yield from future.result()


def run_tasks(
    tasks: Sequence[ExperimentTask],
    jobs: int = 1,
    model: Optional[BlackBoxModel] = None,
    model_cache: Optional[ModelCache] = None,
    training_duration_s: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    warm: Optional[bool] = None,
) -> EngineReport:
    """Execute an experiment matrix, parallel across processes.

    ``model`` shares one pre-trained model across every task (the usual
    benchmark setup); otherwise each task's training signature is
    resolved against ``model_cache`` (or a fresh cache) and trained *in
    the parent*, once per unique signature.  Workers receive all models
    as one JSON document and never retrain.

    ``jobs <= 0`` means "one worker per CPU".  ``jobs == 1`` -- or any
    environment where a process pool cannot be created -- executes the
    identical task path serially in-process; results are byte-identical
    either way.

    ``warm`` (default: ``$ASDF_WARM_WORKERS``) runs on the persistent
    warm pool: workers are spawned + primed before the measured wall
    window starts and survive for the next call.  Results are the same
    bytes as cold-pool and serial runs; only where the fixed startup
    cost lands changes.
    """
    jobs = int(jobs) if jobs > 0 else (os.cpu_count() or 1)
    if warm is None:
        warm = warm_workers_enabled()
    cache = model_cache if model_cache is not None else ModelCache()

    items: List[Tuple[str, Dict[str, Any], Optional[str]]] = []
    if model is not None:
        shared_key = "shared"
        payloads = {shared_key: model_to_payload(model)}
        for task in tasks:
            items.append((task.task_id, asdict(task.config), shared_key))
    else:
        for task in tasks:
            key, _ = cache.get(task.config, training_duration_s)
            items.append((task.task_id, asdict(task.config), key))
        payloads = cache.payloads()
    models_json = json.dumps(payloads, sort_keys=True)

    mode = "serial" if jobs == 1 else ("warm-pool" if warm else "process-pool")
    if mode == "warm-pool":
        # Spawn + prime the persistent workers before the measured
        # window opens; a pool that cannot start downgrades to cold.
        try:
            _warm_pool_for(jobs)
        except (ImportError, OSError, PermissionError, NotImplementedError):
            mode = "process-pool"
    wall_started = time.perf_counter()
    raw: List[Tuple[str, Dict[str, Any], float, float, str]] = []
    if jobs > 1:
        try:
            dispatch = (
                _warm_pool_results if mode == "warm-pool" else _pool_results
            )
            raw = list(dispatch(items, jobs, models_json))
        except (ImportError, OSError, PermissionError, NotImplementedError) as exc:
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            mode = "serial-fallback"
            raw = []
    if not raw and items:
        if mode == "process-pool":
            mode = "serial"
        _worker_init(models_json)
        raw = [_execute_task(item) for item in items]
    wall_s = time.perf_counter() - wall_started

    by_id = {task.task_id: task for task in tasks}
    results = [
        TaskResult(by_id[task_id], payload, task_wall, task_cpu, worker)
        for task_id, payload, task_wall, task_cpu, worker in raw
    ]
    if telemetry is not None and telemetry.enabled:
        for item in results:
            telemetry.record_task(
                item.task.task_id, item.wall_s, item.cpu_s, worker=item.worker
            )
    return EngineReport(
        jobs=jobs,
        mode=mode,
        wall_s=wall_s,
        results=results,
        model_keys=tuple(sorted(payloads)),
        trainings=cache.trainings,
    )


# --------------------------------------------------------------------------
# BENCH_*.json trajectory files
# --------------------------------------------------------------------------


def bench_output_dir() -> Path:
    """Where ``BENCH_<name>.json`` files go (override: ``$ASDF_BENCH_DIR``)."""
    return Path(os.environ.get(BENCH_DIR_ENV, "."))


def write_bench_json(
    report: EngineReport,
    name: str,
    directory: Optional[Union[str, Path]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` so future PRs can track the trajectory."""
    directory = Path(directory) if directory is not None else bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(report.bench_payload(name, extra=extra), indent=2))
    return path


def check_speedup_gate(
    report: EngineReport,
    baseline_path: Union[str, Path],
    slack: float = 0.85,
    multicore_floor: float = 1.0,
) -> Tuple[bool, str]:
    """Regression-gate ``speedup_vs_serial`` against a committed baseline.

    Reads the ``speedup_vs_serial`` field of the baseline BENCH file
    (e.g. the repository's committed ``BENCH_table2.json``) and passes
    iff the report's speedup is at least ``slack`` times it -- the slack
    absorbs shared-runner noise while still catching a parallel engine
    that quietly stopped scaling.  Returns ``(ok, message)``; a report
    without a serial reference, or a baseline without a recorded
    speedup, passes with an explanatory message (the gate needs both
    numbers to mean anything).

    On a host with >= 2 CPUs the gate additionally requires the
    measured speedup to reach ``multicore_floor`` (default 1.0x): a
    parallel run that is *slower than serial* on real cores is a
    regression no baseline slack should excuse.  Single-core hosts are
    exempt -- there, ``jobs=2`` legitimately measures below 1.0x (see
    EXPERIMENTS.md) and only the relative baseline applies.
    """
    try:
        baseline = json.loads(Path(baseline_path).read_text())
    except (OSError, ValueError) as error:
        return False, f"speedup gate: cannot read baseline {baseline_path}: {error}"
    reference = baseline.get("speedup_vs_serial")
    if reference is None:
        return True, (
            f"speedup gate: baseline {baseline_path} records no "
            "speedup_vs_serial; nothing to gate against"
        )
    measured = report.speedup_vs_serial
    if measured is None:
        return True, (
            "speedup gate: report has no serial reference "
            "(run with --check-parity or jobs=1 first); nothing to gate"
        )
    cores = os.cpu_count() or 1
    jobs = getattr(report, "jobs", 0)
    if (
        jobs > 1
        and cores >= 2
        and multicore_floor is not None
        and measured < multicore_floor
    ):
        return False, (
            f"speedup gate: measured {measured:.3f}x at jobs={jobs} "
            f"on a {cores}-core host -- parallel execution must reach "
            f"{multicore_floor:.2f}x there "
            f"({getattr(report, 'mode', 'unknown')} mode) -- FAIL"
        )
    floor = float(reference) * slack
    verdict = measured >= floor
    message = (
        f"speedup gate: measured {measured:.3f}x vs baseline "
        f"{float(reference):.3f}x (floor {floor:.3f}x at slack {slack:.2f}) "
        f"-- {'PASS' if verdict else 'FAIL'}"
    )
    return verdict, message
