"""End-to-end experiment scenarios: cluster + workload + fault + ASDF.

:func:`run_scenario` reproduces one run of the paper's evaluation: a
simulated Hadoop cluster executes a GridMix-like workload; one fault
from Table 2 is injected on one slave; ASDF monitors every slave online
(black-box sadc -> knn -> analysis_bb, white-box hadoop_log ->
analysis_wb, combined via alarm union) and the run's alarms and
per-window decisions are scored against the ground truth.

The ASDF deployment is generated as a real fpt-core *configuration file*
(the same text format a production deployment would use -- see the
paper's Figure 3), then instantiated with in-process RPC channels to the
per-node daemons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.metrics import (
    Alarm,
    ConfusionCounts,
    GroundTruth,
    WindowDecision,
    fingerpointing_latency,
    score_decisions,
)
from ..core import FptCore, SimClock
from ..telemetry import Telemetry
from ..faults import FaultSpec, make_fault
from ..hadoop.cluster import ClusterConfig, HadoopCluster
from ..modules import (
    HADOOP_LOG_CHANNEL_SERVICE,
    SADC_CHANNEL_SERVICE,
    standard_registry,
)
from ..rpc.daemons import HadoopLogDaemon, SadcDaemon
from ..rpc.inproc import InprocChannel
from ..workloads.gridmix import GridMixConfig, generate_workload
from .model import DEFAULT_NUM_STATES, BlackBoxModel, train_blackbox_model


@dataclass
class ScenarioConfig:
    """One evaluation run's parameters (paper section 4.7 defaults)."""

    num_slaves: int = 10
    duration_s: float = 1200.0
    seed: int = 42

    # Fault injection (None -> fault-free run).
    fault_name: Optional[str] = None
    inject_time: float = 300.0
    clear_time: Optional[float] = None
    faulty_node: Optional[str] = None  # default: the middle slave

    # Analysis parameters.  The paper used windowSize 60 and picked the
    # thresholds from the Figure 6 fault-free sweeps (bb threshold 60,
    # wb k = 3 on their traces); the same sweep procedure on this
    # simulator's traces lands at bb threshold 65 and wb k = 2.
    window: int = 60
    slide: int = 60
    bb_threshold: float = 65.0
    bb_consecutive: int = 3
    num_states: int = DEFAULT_NUM_STATES
    wb_k: float = 2.0
    wb_consecutive: int = 2
    ibuffer_size: int = 5

    # Workload.
    mean_interarrival_s: float = 30.0
    workload_change_time_s: float = -1.0
    workload_change_factor: float = 1.0

    # Simulator core: "scalar" or "vec" (struct-of-arrays); outputs are
    # bit-identical, so this only changes wall-clock cost.
    engine: str = "scalar"

    # Classify with one fleet-wide ``knnfleet`` instance instead of N
    # per-node ``knn`` instances.  Per-sample values are bit-identical
    # (row-independent math); only the channel names differ, so the
    # default keeps the rendered config byte-identical.
    fleet_knn: bool = False

    def workload_config(self) -> GridMixConfig:
        return GridMixConfig(
            duration_s=self.duration_s,
            mean_interarrival_s=self.mean_interarrival_s,
            seed=self.seed + 17,
            change_time_s=self.workload_change_time_s,
            change_rate_factor=self.workload_change_factor,
        )

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            num_slaves=self.num_slaves, seed=self.seed, engine=self.engine
        )

    def default_faulty_node(self, slave_names: List[str]) -> str:
        return slave_names[len(slave_names) // 2]


@dataclass
class AsdfHandles:
    """Access points into a deployed ASDF instance."""

    core: FptCore
    sadc_daemons: Dict[str, SadcDaemon]
    sadc_channels: Dict[str, InprocChannel]
    hl_tt_daemons: Dict[str, HadoopLogDaemon]
    hl_dn_daemons: Dict[str, HadoopLogDaemon]
    hl_tt_channels: Dict[str, InprocChannel]
    hl_dn_channels: Dict[str, InprocChannel]


def build_asdf_config_text(
    nodes: List[str], config: ScenarioConfig, scoreboard: bool = False
) -> str:
    """Render the full fpt-core configuration for a deployment.

    This is the analogue of the paper's Figure 3 file: sadc -> knn ->
    ibuffer -> analysis_bb on the black-box side, hadoop_log ->
    analysis_wb on the white-box side, alarm sinks, and the union module
    implementing the combined fingerpointer.

    ``scoreboard=True`` additionally wires the online ground-truth
    scoring sink (:mod:`repro.modules.scoreboard`) to the combined alarm
    stream and both detectors' decision streams; the default keeps the
    generated text byte-identical to pre-observatory deployments, which
    the archive-replay and parity guarantees rest on.
    """
    lines: List[str] = []
    if config.fleet_knn:
        # One knnfleet instance classifies every node in a single batched
        # numpy pass per round; ibuffers read the per-node channels it
        # exposes.  Sample values match the per-node knn path bit for
        # bit -- only channel names change.
        for node in nodes:
            lines += [
                "[sadc]",
                f"id = sadc_{node}",
                f"node = {node}",
                "interval = 1.0",
                "",
            ]
        lines += ["[knnfleet]", "id = onenn", "model = bb_model", "k = 1"]
        lines += [
            f"input[v{i}] = sadc_{node}.vector" for i, node in enumerate(nodes)
        ]
        lines += [""]
        for node in nodes:
            lines += [
                "[ibuffer]",
                f"id = buf_{node}",
                f"input[input] = onenn.{node}",
                f"size = {config.ibuffer_size}",
                "",
            ]
    else:
        for node in nodes:
            lines += [
                "[sadc]",
                f"id = sadc_{node}",
                f"node = {node}",
                "interval = 1.0",
                "",
                "[knn]",
                f"id = onenn_{node}",
                f"input[input] = sadc_{node}.vector",
                "model = bb_model",
                "k = 1",
                "",
                "[ibuffer]",
                f"id = buf_{node}",
                f"input[input] = onenn_{node}.output0",
                f"size = {config.ibuffer_size}",
                "",
            ]
    lines += ["[analysis_bb]", "id = analysis_bb"]
    lines += [
        f"threshold = {config.bb_threshold}",
        f"window = {config.window}",
        f"slide = {config.slide}",
        f"consecutive = {config.bb_consecutive}",
        f"num_states = {config.num_states}",
    ]
    lines += [f"input[l{i}] = @buf_{node}" for i, node in enumerate(nodes)]
    lines += [
        "",
        "[hadoop_log]",
        "id = hl",
        f"nodes = {','.join(nodes)}",
        "interval = 1.0",
        "",
        "[analysis_wb]",
        "id = analysis_wb",
        f"k = {config.wb_k}",
        f"window = {config.window}",
        f"slide = {config.slide}",
        f"consecutive = {config.wb_consecutive}",
    ]
    lines += [f"input[n{i}] = hl.{node}" for i, node in enumerate(nodes)]
    lines += [
        "",
        "[alarm_union]",
        "id = combined",
        "input[a] = analysis_bb.alarms",
        "input[b] = analysis_wb.alarms",
        "",
        "[print]",
        "id = BlackBoxAlarm",
        "input[a] = analysis_bb.alarms",
        "input[d] = analysis_bb.decisions",
        "input[s] = analysis_bb.stats",
        "",
        "[print]",
        "id = WhiteBoxAlarm",
        "input[a] = analysis_wb.alarms",
        "input[d] = analysis_wb.decisions",
        "input[s] = analysis_wb.stats",
        "",
        "[print]",
        "id = CombinedAlarm",
        "input[a] = combined.alarms",
    ]
    if scoreboard:
        lines += [
            "",
            "[scoreboard]",
            "id = scoreboard",
            "input[a] = combined.alarms",
            "input[db] = analysis_bb.decisions",
            "input[dw] = analysis_wb.decisions",
        ]
    return "\n".join(lines) + "\n"


def deploy_asdf(
    cluster: HadoopCluster,
    model: BlackBoxModel,
    config: ScenarioConfig,
    telemetry: Optional[Telemetry] = None,
    recorder=None,
    observatory=None,
) -> AsdfHandles:
    """Stand up daemons, channels and the fpt-core for a cluster.

    ``telemetry``, if given, instruments the whole deployment: the core's
    scheduler, every data channel and every RPC channel record into it.
    ``recorder``, a :class:`repro.flightrec.FlightRecorder`, taps every
    output of the deployed core and (when archiving) stamps the rendered
    configuration text into the archive manifest so the recorded run can
    be replayed without the original scenario code.
    ``observatory``, a :class:`repro.obsv.Observatory`, adds the online
    ground-truth scoring sink to the generated configuration, registers
    itself as the ``observatory`` service and taps every output for
    sample->alarm latency tracing.  When the observatory brings its own
    telemetry and none was passed explicitly, that telemetry instruments
    the core so ``/metrics`` has run stats to serve.
    """
    if observatory is not None and telemetry is None:
        telemetry = observatory.telemetry
    nodes = cluster.slave_names
    sadc_daemons = {
        node: SadcDaemon(node, cluster.procfs(node)) for node in nodes
    }
    sadc_channels = {
        node: InprocChannel(
            sadc_daemons[node], f"sadc_rpcd@{node}", telemetry=telemetry
        )
        for node in nodes
    }
    hl_tt_daemons = {
        node: HadoopLogDaemon(node, cluster.tt_logs[node]) for node in nodes
    }
    hl_dn_daemons = {
        node: HadoopLogDaemon(node, cluster.dn_logs[node]) for node in nodes
    }
    hl_tt_channels = {
        node: InprocChannel(
            hl_tt_daemons[node], f"hl_tt_rpcd@{node}", telemetry=telemetry
        )
        for node in nodes
    }
    hl_dn_channels = {
        node: InprocChannel(
            hl_dn_daemons[node], f"hl_dn_rpcd@{node}", telemetry=telemetry
        )
        for node in nodes
    }
    services = {
        SADC_CHANNEL_SERVICE: sadc_channels,
        HADOOP_LOG_CHANNEL_SERVICE: {
            node: [hl_tt_channels[node], hl_dn_channels[node]] for node in nodes
        },
        "bb_model": model,
    }
    if observatory is not None:
        services["observatory"] = observatory
    config_text = build_asdf_config_text(
        nodes, config, scoreboard=observatory is not None
    )
    core = FptCore.from_config(
        config_text,
        standard_registry(),
        SimClock(),
        services=services,
        telemetry=telemetry,
    )
    if recorder is not None:
        core.set_flight_recorder(recorder)
        recorder.note_manifest(config_text=config_text, nodes=nodes)
    if observatory is not None:
        observatory.attach(core)
    return AsdfHandles(
        core=core,
        sadc_daemons=sadc_daemons,
        sadc_channels=sadc_channels,
        hl_tt_daemons=hl_tt_daemons,
        hl_dn_daemons=hl_dn_daemons,
        hl_tt_channels=hl_tt_channels,
        hl_dn_channels=hl_dn_channels,
    )


@dataclass
class ScenarioResult:
    """Everything one evaluation run produced."""

    config: ScenarioConfig
    truth: GroundTruth
    alarms_bb: List[Alarm]
    alarms_wb: List[Alarm]
    alarms_all: List[Alarm]
    decisions_bb: List[WindowDecision]
    decisions_wb: List[WindowDecision]
    decisions_all: List[WindowDecision]
    stats_bb: List[dict]
    stats_wb: List[dict]
    counts_bb: ConfusionCounts
    counts_wb: ConfusionCounts
    counts_all: ConfusionCounts
    latency_bb: Optional[float]
    latency_wb: Optional[float]
    latency_all: Optional[float]
    jobs_completed: int
    handles: Optional[AsdfHandles] = field(default=None, repr=False)


def merge_decisions(
    primary: List[WindowDecision], secondary: List[WindowDecision]
) -> List[WindowDecision]:
    """OR two detectors' decisions onto the primary's window grid.

    A primary node-window is alarmed in the combined view if it was
    alarmed itself or any overlapping secondary window for the same node
    was alarmed.
    """
    by_node: Dict[str, List[WindowDecision]] = {}
    for decision in secondary:
        by_node.setdefault(decision.node, []).append(decision)
    merged = []
    for decision in primary:
        alarmed = decision.alarmed
        if not alarmed:
            for other in by_node.get(decision.node, []):
                if (
                    other.alarmed
                    and other.window_start < decision.window_end
                    and other.window_end > decision.window_start
                ):
                    alarmed = True
                    break
        merged.append(
            WindowDecision(
                node=decision.node,
                window_start=decision.window_start,
                window_end=decision.window_end,
                alarmed=alarmed,
            )
        )
    return merged


def run_scenario(
    config: ScenarioConfig,
    model: Optional[BlackBoxModel] = None,
    keep_handles: bool = False,
    telemetry: Optional[Telemetry] = None,
    recorder=None,
    observatory=None,
    tick_callback=None,
) -> ScenarioResult:
    """Execute one full evaluation run and score it.

    ``observatory`` (a :class:`repro.obsv.Observatory`) turns on the
    diagnosis-observatory surfaces: the injected fault registers its
    ground-truth window with the online scoreboard before the run
    starts, and the deployment gains the ``scoreboard`` scoring sink.
    ``tick_callback(cluster_time_s)``, if given, is invoked after every
    lock-step second -- the hook ``repro top`` repaints from.
    """
    if model is None:
        model = train_blackbox_model(
            cluster_config=ClusterConfig(
                num_slaves=config.num_slaves,
                seed=config.seed + 1000,
                engine=config.engine,
            ),
            duration_s=min(300.0, config.duration_s),
            num_states=config.num_states,
            seed=config.seed,
        )

    cluster = HadoopCluster(config.cluster_config())
    for spec in generate_workload(config.workload_config()).jobs:
        cluster.schedule_job(spec)

    if config.fault_name is not None:
        faulty_node = config.faulty_node or config.default_faulty_node(
            cluster.slave_names
        )
        fault = make_fault(config.fault_name)
        fault_spec = FaultSpec(
            node=faulty_node,
            inject_time=config.inject_time,
            clear_time=config.clear_time,
        )
        fault.arm(cluster, fault_spec)
        truth = fault.ground_truth(fault_spec)
        if observatory is not None:
            fault.register_ground_truth(observatory, fault_spec)
    else:
        truth = GroundTruth(faulty_node=None)
        if observatory is not None:
            # Register the fault-free context: every alarm is false.
            observatory.register_ground_truth(None, truth)

    handles = deploy_asdf(
        cluster, model, config, telemetry=telemetry, recorder=recorder,
        observatory=observatory,
    )
    core = handles.core

    # Lock-step online operation: the cluster advances one second, then
    # the fpt-core catches up to the same simulated instant.
    while cluster.time < config.duration_s - 1e-9:
        cluster.step(1.0)
        core.run_until(cluster.time)
        if tick_callback is not None:
            tick_callback(cluster.time)

    def sink(name: str):
        return core.instance(name)

    bb_sink = sink("BlackBoxAlarm")
    wb_sink = sink("WhiteBoxAlarm")
    all_sink = sink("CombinedAlarm")

    def collect(sink_module, type_check):
        return [s.value for s in sink_module.received if type_check(s.value)]

    alarms_bb = bb_sink.alarms
    alarms_wb = wb_sink.alarms
    alarms_all = all_sink.alarms
    decisions_bb = [
        d
        for s in bb_sink.received
        if isinstance(s.value, list)
        for d in s.value
        if isinstance(d, WindowDecision)
    ]
    decisions_wb = [
        d
        for s in wb_sink.received
        if isinstance(s.value, list)
        for d in s.value
        if isinstance(d, WindowDecision)
    ]
    stats_bb = [s.value for s in bb_sink.received if isinstance(s.value, dict)]
    stats_wb = [s.value for s in wb_sink.received if isinstance(s.value, dict)]
    decisions_all = merge_decisions(decisions_wb, decisions_bb)

    result = ScenarioResult(
        config=config,
        truth=truth,
        alarms_bb=alarms_bb,
        alarms_wb=alarms_wb,
        alarms_all=alarms_all,
        decisions_bb=decisions_bb,
        decisions_wb=decisions_wb,
        decisions_all=decisions_all,
        stats_bb=stats_bb,
        stats_wb=stats_wb,
        counts_bb=score_decisions(decisions_bb, truth),
        counts_wb=score_decisions(decisions_wb, truth),
        counts_all=score_decisions(decisions_all, truth),
        latency_bb=fingerpointing_latency(alarms_bb, truth),
        latency_wb=fingerpointing_latency(alarms_wb, truth),
        latency_all=fingerpointing_latency(alarms_all, truth),
        jobs_completed=cluster.jobs_completed(),
        handles=handles if keep_handles else None,
    )
    if not keep_handles:
        core.close()
    return result
