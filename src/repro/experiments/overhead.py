"""Monitoring-overhead measurements: the paper's Tables 3 and 4.

Table 3 reports the CPU and memory cost of the two per-node collection
daemons and of the fpt-core (collection + analysis) on the control node.
Our daemons meter their own CPU consumption (``time.process_time`` around
each RPC handler); because collection runs once per second, CPU-seconds
per iteration *is* the fraction of one core the daemon would occupy in
production.  Memory is the recursively measured size of each component's
live object graph.

Table 4 reports RPC bandwidth per type (sadc, hadoop_log-datanode,
hadoop_log-tasktracker): static connection overhead and per-iteration
bytes, both read straight off the channels' byte counters.

The fpt-core CPU number comes from the :mod:`repro.telemetry` layer: the
scheduler's per-instance run-latency histograms sum to the seconds spent
inside module ``run()`` calls, so Table 3 is a *consumer* of the same
instrumentation an operator would use online, not a bespoke stopwatch.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .model import train_blackbox_model
from .scenario import AsdfHandles, ScenarioConfig, deploy_asdf
from ..hadoop.cluster import ClusterConfig, HadoopCluster
from ..telemetry import Telemetry
from ..workloads.gridmix import generate_workload


def deep_sizeof(obj, _seen: Optional[set] = None) -> int:
    """Recursive ``sys.getsizeof`` over an object graph (approximate RSS).

    Follows containers, ``__dict__`` and ``__slots__``; each object is
    counted once.  numpy arrays report their buffer via ``getsizeof``.
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)
    size = sys.getsizeof(obj, 0)
    if isinstance(obj, dict):
        size += sum(
            deep_sizeof(k, _seen) + deep_sizeof(v, _seen) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, _seen) for item in obj)
    if hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), _seen)
    if hasattr(obj, "__slots__"):
        size += sum(
            deep_sizeof(getattr(obj, slot), _seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size


@dataclass
class OverheadRow:
    """One row of Table 3."""

    process: str
    cpu_pct: float       # % of one core
    memory_mb: float     # resident-equivalent of live structures

    def render(self) -> str:
        return f"{self.process:<18} {self.cpu_pct:8.4f} {self.memory_mb:12.2f}"


@dataclass
class BandwidthRow:
    """One row of Table 4."""

    rpc_type: str
    static_overhead_kb: float   # per-node connection setup cost
    per_iteration_kb_s: float   # steady-state bandwidth per node

    def render(self) -> str:
        return (
            f"{self.rpc_type:<12} {self.static_overhead_kb:10.2f} "
            f"{self.per_iteration_kb_s:14.2f}"
        )


@dataclass
class OverheadReport:
    """Everything one monitored run measured (Tables 3 + 4)."""

    duration_s: float
    num_nodes: int
    table3: List[OverheadRow]
    table4: List[BandwidthRow]
    #: The instrumentation the run was measured with; carries the
    #: per-instance run-latency histograms behind the fpt-core row.
    telemetry: Optional[Telemetry] = field(default=None, repr=False)

    def table3_text(self) -> str:
        lines = [f"{'Process':<18} {'% CPU':>8} {'Memory (MB)':>12}"]
        lines += [row.render() for row in self.table3]
        return "\n".join(lines)

    def table4_text(self) -> str:
        lines = [
            f"{'RPC Type':<12} {'Static Ovh. (kB)':>10} {'Per-iter BW (kB/s)':>14}"
        ]
        lines += [row.render() for row in self.table4]
        return "\n".join(lines)


def measure_overheads(
    num_slaves: int = 10,
    duration_s: float = 300.0,
    seed: int = 21,
    training_duration_s: float = 120.0,
    telemetry: Optional[Telemetry] = None,
) -> OverheadReport:
    """Run a monitored fault-free cluster and measure ASDF's costs.

    The run is instrumented with ``telemetry`` (a metrics-only
    :class:`~repro.telemetry.Telemetry` is created when none is given);
    the fpt-core CPU figure is the sum of the per-instance run-latency
    histograms that instrumentation recorded.
    """
    if telemetry is None:
        # Metrics only: tracing a 300s run would record ~100k events
        # whose bookkeeping we would then, absurdly, measure.
        telemetry = Telemetry(trace=False)
    config = ScenarioConfig(
        num_slaves=num_slaves, duration_s=duration_s, seed=seed
    )
    model = train_blackbox_model(
        cluster_config=ClusterConfig(num_slaves=num_slaves, seed=seed + 1000),
        duration_s=training_duration_s,
        num_states=config.num_states,
        seed=seed,
    )
    cluster = HadoopCluster(config.cluster_config())
    for spec in generate_workload(config.workload_config()).jobs:
        cluster.schedule_job(spec)
    handles = deploy_asdf(cluster, model, config, telemetry=telemetry)

    while cluster.time < duration_s - 1e-9:
        cluster.step(1.0)
        handles.core.run_until(cluster.time)

    core_cpu = telemetry.total_run_seconds()
    report = compute_overhead_report(handles, duration_s, num_slaves, core_cpu)
    report.telemetry = telemetry
    handles.core.close()
    return report


def compute_overhead_report(
    handles: AsdfHandles,
    duration_s: float,
    num_nodes: int,
    core_cpu_seconds: float,
) -> OverheadReport:
    """Derive Table 3 and Table 4 rows from a finished monitored run."""

    def mean(values: Iterable[float]) -> float:
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    # Table 3.  Daemon CPU%: handler CPU-seconds / wall duration (one
    # collection iteration per second).  hadoop_log covers both daemons
    # on a node, matching the paper's single hadoop_log_rpcd process.
    sadc_cpu_pct = 100.0 * mean(
        d.meter.cpu_seconds / duration_s for d in handles.sadc_daemons.values()
    )
    hl_cpu_pct = 100.0 * mean(
        (handles.hl_tt_daemons[n].meter.cpu_seconds
         + handles.hl_dn_daemons[n].meter.cpu_seconds) / duration_s
        for n in handles.hl_tt_daemons
    )
    sadc_mem_mb = mean(
        deep_sizeof(d) for d in handles.sadc_daemons.values()
    ) / 1e6
    hl_mem_mb = mean(
        deep_sizeof(handles.hl_tt_daemons[n]) + deep_sizeof(handles.hl_dn_daemons[n])
        for n in handles.hl_tt_daemons
    ) / 1e6
    # fpt-core CPU excludes time spent inside the daemons' handlers
    # (that work happens on the monitored nodes in production).
    daemon_cpu_total = sum(
        d.meter.cpu_seconds for d in handles.sadc_daemons.values()
    ) + sum(
        d.meter.cpu_seconds for d in handles.hl_tt_daemons.values()
    ) + sum(
        d.meter.cpu_seconds for d in handles.hl_dn_daemons.values()
    )
    core_pct = 100.0 * max(0.0, core_cpu_seconds - daemon_cpu_total) / duration_s
    core_mem_mb = deep_sizeof(handles.core.dag) / 1e6

    table3 = [
        OverheadRow("hadoop_log_rpcd", hl_cpu_pct, hl_mem_mb),
        OverheadRow("sadc_rpcd", sadc_cpu_pct, sadc_mem_mb),
        OverheadRow("fpt-core", core_pct, core_mem_mb),
    ]

    # Table 4: per-node averages off the channel byte counters.
    def bandwidth_row(name: str, channels) -> BandwidthRow:
        static_kb = mean(c.counter.static_wire for c in channels) / 1024.0
        dynamic_kb_s = mean(
            c.counter.dynamic_wire / duration_s for c in channels
        ) / 1024.0
        return BandwidthRow(name, static_kb, dynamic_kb_s)

    sadc_row = bandwidth_row("sadc-tcp", handles.sadc_channels.values())
    dn_row = bandwidth_row("hl-dn-tcp", handles.hl_dn_channels.values())
    tt_row = bandwidth_row("hl-tt-tcp", handles.hl_tt_channels.values())
    total_row = BandwidthRow(
        "TCP Sum",
        sadc_row.static_overhead_kb
        + dn_row.static_overhead_kb
        + tt_row.static_overhead_kb,
        sadc_row.per_iteration_kb_s
        + dn_row.per_iteration_kb_s
        + tt_row.per_iteration_kb_s,
    )
    table4 = [sadc_row, dn_row, tt_row, total_row]

    return OverheadReport(
        duration_s=duration_s,
        num_nodes=num_nodes,
        table3=table3,
        table4=table4,
    )
