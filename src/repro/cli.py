"""Command-line interface: ``python -m repro <command>``.

Everything the evaluation does, runnable from a terminal:

* ``demo``      -- one monitored run with an injected fault, with an
                   ASCII alarm timeline;
* ``calibrate`` -- the Figure 6 fault-free threshold sweeps;
* ``figure7``   -- the full per-fault accuracy/latency sweep;
* ``overhead``  -- Tables 3 and 4;
* ``table2``    -- the fault catalog;
* ``bench``     -- the parallel experiment runner over a fault x trial
                   matrix, emitting a ``BENCH_<name>.json`` timing file
                   (optionally asserting parallel/serial parity);
* ``config``    -- print the generated fpt-core configuration file
                   (the paper's Figure 3 at cluster scale);
* ``lint``      -- static analysis: check configuration files (or the
                   generated one) against the module contracts, verify
                   module implementations match their declarations, and
                   scan scenario code paths for determinism hazards;
* ``telemetry`` -- run a monitored scenario with self-instrumentation on
                   and print the summary (per-instance run latencies,
                   queue stats, RPC bytes, the alarm audit trail,
                   filterable with ``--tail``/``--since``);
* ``top``       -- live ANSI dashboard over a running scenario: node
                   health, sample-to-alarm latencies, hottest modules;
* ``incident``  -- inspect the incident bundles a recorded run froze;
* ``replay``    -- feed a recorded flight archive back through a DAG
                   config, faster than real time, and check the replayed
                   alarms against the recording;
* ``cluster``   -- the live multi-daemon deployment: ``cluster up``
                   spawns one collection daemon per node as a real OS
                   process plus the central analysis daemon (federated
                   ``/metrics``, ``/status``, ``/cluster`` on the
                   central's ops port), ``cluster drive`` runs the
                   measured fault+kill scenario and writes
                   ``BENCH_cluster.json``, and ``cluster top`` renders a
                   terminal dashboard over the federated stats
                   (``cluster node`` / ``cluster central`` are the
                   daemon entrypoints the launcher spawns).

``demo`` and ``telemetry`` accept ``--trace FILE`` (Chrome
``chrome://tracing`` trace of every module run) and ``--metrics FILE``
(Prometheus text exposition of the core's self-metrics).  ``demo
--record DIR`` attaches a flight recorder: every channel is archived to
``DIR`` together with the trained model, the generated configuration and
one incident bundle per alarm, ready for ``incident`` and ``replay``.

``demo --serve PORT`` attaches the diagnosis observatory and serves the
live ops surface (``/health``, ``/metrics``, ``/status``, ``/alarms``,
``/scoreboard``) over HTTP while the run executes; ``--linger S`` keeps
the endpoint up after the run so external scrapers can collect, and
``--scoreboard DIR`` writes the online ground-truth scoreboard as
``BENCH_scoreboard.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .core.errors import ConfigError
from .experiments import (
    ExperimentTask,
    ScenarioConfig,
    build_asdf_config_text,
    figure6,
    figure7,
    load_model,
    measure_overheads,
    parity_mismatches,
    pick_knee,
    run_scenario,
    run_tasks,
    save_model,
    shared_model,
    table2,
    table2_matrix,
    write_bench_json,
)
from .experiments.report import render_summary, render_timeline
from .faults import FAULT_NAMES
from .flightrec import (
    FlightRecorder,
    ReplayArchive,
    load_bundles,
    render_bundle_text,
    run_replay,
)
from .telemetry import Telemetry

#: File name of the trained model saved alongside a flight archive.
ARCHIVE_MODEL_FILE = "model.json"


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--slaves", type=int, default=10, help="slave node count")
    parser.add_argument("--duration", type=float, default=900.0, help="run seconds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--inject", type=float, default=300.0, help="fault time")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for scenario execution (0 = one per CPU; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--fleet-knn", action="store_true",
        help="deploy one fleet-batched knnfleet instance instead of a "
        "per-node knn per slave",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace-event file (load in chrome://tracing)",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the core's self-metrics in Prometheus text format",
    )
    parser.add_argument(
        "--audit", metavar="FILE", default=None,
        help="write the alarm audit trail as JSONL",
    )


def _add_observatory_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve", metavar="PORT", type=int, nargs="?", const=0, default=None,
        help="serve the live ops surface (/health /metrics /status "
        "/alarms /scoreboard) on this port while the run executes "
        "(0 or no value = ephemeral port)",
    )
    parser.add_argument(
        "--linger", type=float, default=0.0, metavar="S",
        help="keep the ops surface up S wall seconds after the run "
        "(GET /shutdown ends the wait early)",
    )


def _make_telemetry(args) -> Optional[Telemetry]:
    """An enabled Telemetry when any telemetry flag was given, else None."""
    if args.trace or args.metrics or args.audit:
        return Telemetry(trace=bool(args.trace))
    return None


def _dump_telemetry(telemetry: Optional[Telemetry], args) -> None:
    if telemetry is None:
        return
    if args.trace:
        telemetry.tracer.write_chrome_trace(args.trace)
        print(f"wrote {len(telemetry.tracer.events)} trace events to {args.trace}")
    if args.metrics:
        os.makedirs(os.path.dirname(args.metrics) or ".", exist_ok=True)
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(telemetry.metrics.render_prometheus())
        print(f"wrote metrics exposition to {args.metrics}")
    if args.audit:
        telemetry.audit.write_jsonl(args.audit)
        print(f"wrote {len(telemetry.audit)} audit records to {args.audit}")


def _linger(server, linger_s: float) -> None:
    """Keep the ops surface up after the run until timeout or /shutdown."""
    if linger_s <= 0:
        return
    import time

    print(
        f"lingering {linger_s:.0f}s on {server.url} "
        "(GET /shutdown to stop early)...",
        flush=True,
    )
    deadline = time.monotonic() + linger_s
    while time.monotonic() < deadline:
        if server.shutdown_requested.wait(timeout=0.2):
            print("shutdown requested; stopping ops surface.", flush=True)
            return


def _scenario_config(args, fault: Optional[str]) -> ScenarioConfig:
    return ScenarioConfig(
        num_slaves=args.slaves,
        duration_s=args.duration,
        seed=args.seed,
        fault_name=fault,
        inject_time=args.inject,
        fleet_knn=getattr(args, "fleet_knn", False),
    )


def cmd_demo(args) -> int:
    config = _scenario_config(args, args.fault)
    telemetry = _make_telemetry(args)
    observatory = None
    server = None
    if args.serve is not None or args.scoreboard is not None:
        from .obsv import Observatory, OpsServer

        observatory = Observatory(telemetry=telemetry)
        telemetry = observatory.telemetry
        if args.serve is not None:
            server = OpsServer(observatory, port=args.serve).start()
            print(f"ops surface listening on {server.url}", flush=True)
    print(f"training black-box model ({args.slaves} slaves)...", flush=True)
    model = shared_model(config, training_duration_s=min(300.0, args.duration))
    recorder = None
    if args.record:
        recorder = FlightRecorder(archive_dir=args.record)
        save_model(model, os.path.join(args.record, ARCHIVE_MODEL_FILE))
        recorder.note_manifest(
            scenario={
                "fault": args.fault,
                "slaves": args.slaves,
                "duration_s": args.duration,
                "seed": args.seed,
                "inject_time": args.inject,
            }
        )
    print(
        f"running {args.duration:.0f}s with "
        f"{args.fault or 'no fault'}...",
        flush=True,
    )
    in_process = (
        telemetry is not None or recorder is not None or observatory is not None
    )
    if args.jobs != 1 and not in_process:
        # Telemetry, flight recording and the observatory need the run
        # in-process; plain demos may go through the experiment runner
        # (same results).
        report = run_tasks(
            [ExperimentTask("demo", config)], jobs=args.jobs, model=model
        )
        result = report.results[0].load()
    else:
        result = run_scenario(
            config,
            model=model,
            telemetry=telemetry,
            recorder=recorder,
            observatory=observatory,
        )
    print()
    print(render_summary(result))
    print()
    print(render_timeline(result))
    _dump_telemetry(telemetry, args)
    if observatory is not None:
        path = observatory.write_scoreboard(directory=args.scoreboard)
        print(f"\nwrote scoreboard to {path}")
    if server is not None:
        _linger(server, args.linger)
        server.stop()
    if recorder is not None:
        recorder.close()
        stats = recorder.stats()
        print(
            f"\nflight archive: {args.record} "
            f"({stats['archived_records']} records on "
            f"{stats['channels']} channels, "
            f"{stats['incidents']} incident bundle(s), "
            f"{stats['incidents_suppressed']} suppressed)"
        )
    if result.truth.faulty_node is not None:
        culprits = {alarm.node for alarm in result.alarms_all}
        if result.truth.faulty_node in culprits:
            print("\nculprit fingerpointed correctly.")
            return 0
        print("\nculprit NOT fingerpointed in this run.")
        return 1
    return 0


def cmd_calibrate(args) -> int:
    config = _scenario_config(args, None)
    model = shared_model(config, training_duration_s=min(300.0, args.duration))
    result = figure6(config, model=model, jobs=args.jobs)
    print(result.render())
    print(
        "\nsuggested operating points: bb threshold "
        f"{pick_knee(result.blackbox):.0f}, wb k {pick_knee(result.whitebox):.1f}"
    )
    return 0


def cmd_figure7(args) -> int:
    seeds = tuple(int(s) for s in args.seeds.split(","))
    config = _scenario_config(args, None)
    model = shared_model(config, training_duration_s=min(300.0, args.duration))
    result = figure7(config, seeds=seeds, model=model, jobs=args.jobs)
    print(result.render())
    return 0


def cmd_overhead(args) -> int:
    report = measure_overheads(num_slaves=args.slaves, duration_s=args.duration)
    print("Table 3: process overheads")
    print(report.table3_text())
    print("\nTable 4: RPC bandwidth per monitored node")
    print(report.table4_text())
    return 0


def cmd_bench_scale(args) -> int:
    """The 50->1000-node scaling benchmark (scalar vs vectorized)."""
    from .experiments import check_scale_gate, run_scale_benchmark
    from .experiments.scale import write_scale_json

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    parity_sizes = [
        int(s) for s in args.parity_sizes.split(",") if s.strip()
    ]
    payload = run_scale_benchmark(
        sizes=sizes,
        ticks=args.ticks,
        pipeline_seconds=args.pipeline_seconds,
        parity_sizes=parity_sizes,
        parity_ticks=args.parity_ticks,
        seed=args.seed,
        check_parity=args.check_parity,
        progress=lambda message: print(f"  {message}", flush=True),
    )
    for row in payload["rows"]:
        print(
            f"N={row['num_slaves']:<5} {row['engine']:<7} "
            f"tick {row['tick_ms']:.2f} ms ({row['ticks_per_s']:.0f}/s)  "
            f"pipeline {row['samples_per_s']:.0f} samples/s"
        )
    for size in payload["sizes"]:
        print(
            f"N={size}: vec/scalar tick speedup "
            f"{payload['tick_speedup'][str(size)]:.2f}x, pipeline "
            f"{payload['pipeline_speedup'][str(size)]:.2f}x"
        )
    if payload["parity"]["checked"]:
        print(f"parity mismatches: {payload['parity']['mismatches']}")
    path = write_scale_json(payload, directory=args.out)
    print(f"wrote {path}")
    ok, message = check_scale_gate(
        payload,
        baseline_path=args.gate,
        min_speedup=args.min_speedup,
        slack=args.gate_slack,
    )
    print(message, file=sys.stdout if ok else sys.stderr)
    return 0 if ok else 1


def cmd_bench(args) -> int:
    """Benchmark the experiment runner on a fault x trial matrix."""
    if args.mode == "scale":
        return cmd_bench_scale(args)
    faults = [f.strip() for f in args.faults.split(",") if f.strip()]
    unknown = [f for f in faults if f not in FAULT_NAMES]
    if unknown:
        print(f"error: unknown fault(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    base = _scenario_config(args, None)
    tasks = table2_matrix(base, faults=faults, trials=args.trials)
    print(
        f"bench matrix: {len(tasks)} tasks "
        f"({len(faults)} fault(s) x {args.trials} trial(s))"
    )
    print(f"training shared black-box model ({args.slaves} slaves)...", flush=True)
    model = shared_model(base, training_duration_s=min(300.0, args.duration))

    serial = None
    if args.check_parity or args.jobs == 1:
        print("running serial reference (jobs=1)...", flush=True)
        serial = run_tasks(tasks, jobs=1, model=model)
        print(f"  serial wall: {serial.wall_s:.2f}s")

    report = serial
    if args.jobs != 1:
        print(f"running with jobs={args.jobs}...", flush=True)
        report = run_tasks(tasks, jobs=args.jobs, model=model, warm=args.warm)
        print(f"  {report.mode} wall: {report.wall_s:.2f}s ({report.jobs} workers)")
        if serial is not None:
            report.serial_wall_s = serial.wall_s
            print(f"  speedup vs serial: {report.speedup_vs_serial:.2f}x")

    parity_ok = True
    if serial is not None and report is not serial:
        mismatches = parity_mismatches(serial, report)
        parity_ok = not mismatches
        print(
            "parity vs serial: "
            + ("IDENTICAL" if parity_ok else f"MISMATCH in {mismatches}")
        )
        if not parity_ok:
            from .lint import concurrency_hints, determinism_hints

            _findings, hint_text = determinism_hints(mismatches)
            print(hint_text, file=sys.stderr)
            _races, race_text = concurrency_hints(mismatches)
            print(race_text, file=sys.stderr)
    path = write_bench_json(report, args.name, directory=args.out)
    print(f"wrote {path}")
    gate_ok = True
    if args.gate:
        from .experiments import check_speedup_gate

        gate_ok, message = check_speedup_gate(
            report, args.gate, slack=args.gate_slack
        )
        print(message, file=sys.stderr if not gate_ok else sys.stdout)
    return 0 if parity_ok and gate_ok else 1


def cmd_table2(args) -> int:
    for row in table2():
        print(f"{row.fault_name:<12} {row.reported_failure}")
        print(f"{'':<12} injected: {row.injected}")
    return 0


def cmd_config(args) -> int:
    nodes = [f"slave{i + 1:02d}" for i in range(args.slaves)]
    print(build_asdf_config_text(nodes, _scenario_config(args, None)))
    return 0


def cmd_lint(args) -> int:
    """Static analysis: configs, module contracts, determinism.

    Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 when
    any error-severity diagnostic fires, 2 on usage or I/O problems.
    """
    from .lint import (
        analyze_config,
        check_registry,
        estimate_config,
        has_errors,
        lint_concurrency,
        lint_determinism,
        render_json,
        render_text,
        scan_hot_modules,
        sort_diagnostics,
    )
    from .lint.diagnostics import Severity

    diagnostics = []
    cost_reports = []
    # Nothing selected: lint everything (the generated config, every
    # registered module implementation, the scenario code paths, the
    # static cost estimate, and the deployment threading).
    lint_all = not args.configs and not (
        args.generated or args.impl or args.determinism
        or args.cost or args.concurrency
    )

    # (text, file) pairs the config-level layers (FPT0xx, cost) run on.
    config_texts = []
    for path in args.configs:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        config_texts.append((text, path))

    # --cost with no explicit config estimates the generated deployment.
    if args.generated or lint_all or (args.cost and not args.configs):
        nodes = [f"slave{i + 1:02d}" for i in range(args.slaves)]
        text = build_asdf_config_text(nodes, _scenario_config(args, None))
        config_texts.append((text, "<generated>"))

    for text, file in config_texts:
        diagnostics.extend(analyze_config(text, file=file))

    if args.impl or lint_all:
        diagnostics.extend(check_registry())

    if args.determinism or lint_all:
        diagnostics.extend(lint_determinism())

    if args.cost or lint_all:
        for text, file in config_texts:
            report = estimate_config(text, file=file, budget_ms=args.budget_ms)
            cost_reports.append(report)
            diagnostics.extend(report.diagnostics)
        diagnostics.extend(scan_hot_modules())

    if args.concurrency or lint_all:
        diagnostics.extend(lint_concurrency())

    if args.json:
        if cost_reports:
            payload = {
                "diagnostics": [
                    d.to_json() for d in sort_diagnostics(diagnostics)
                ],
                "cost_reports": [report.to_json() for report in cost_reports],
            }
            print(json.dumps(payload, indent=2))
        else:
            print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
        for report in cost_reports:
            print()
            print(report.render())

    if has_errors(diagnostics):
        return 1
    if args.strict and any(
        d.severity is Severity.WARNING for d in diagnostics
    ):
        return 1
    return 0


def cmd_telemetry(args) -> int:
    """Run a monitored scenario with self-instrumentation and summarize."""
    config = _scenario_config(args, args.fault)
    telemetry = Telemetry(trace=args.trace is not None or not args.no_spans)
    print(f"training black-box model ({args.slaves} slaves)...", flush=True)
    model = shared_model(config, training_duration_s=min(300.0, args.duration))
    print(
        f"running instrumented {args.duration:.0f}s with "
        f"{args.fault or 'no fault'}...\n",
        flush=True,
    )
    result = run_scenario(
        config, model=model, keep_handles=True, telemetry=telemetry
    )
    print(telemetry.summary_text())
    if len(telemetry.audit):
        print("\nalarm audit trail:")
        print(
            telemetry.audit.render_text(
                limit=None if (args.tail or args.since is not None) else 20,
                tail=args.tail,
                since=args.since,
            )
        )
    if args.dot:
        os.makedirs(os.path.dirname(args.dot) or ".", exist_ok=True)
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(result.handles.core.to_dot(annotate=True))
        print(f"\nwrote annotated DAG to {args.dot}")
    _dump_telemetry(telemetry, args)
    result.handles.core.close()
    return 0


def cmd_top(args) -> int:
    """Live ANSI dashboard over a monitored scenario as it runs."""
    from .obsv import CLEAR_SCREEN, Observatory, OpsServer, render_top

    config = _scenario_config(args, args.fault)
    observatory = Observatory()
    server = None
    if args.serve is not None:
        server = OpsServer(observatory, port=args.serve).start()
    # Non-TTY stdout (CI logs, pipes): no ANSI escapes, and repainting a
    # log file is noise -- degrade to a single final snapshot.
    tty = sys.stdout.isatty()
    color = not args.no_color and tty
    once = args.once or not tty
    print(f"training black-box model ({args.slaves} slaves)...", flush=True)
    model = shared_model(config, training_duration_s=min(300.0, args.duration))

    last_frame = [float("-inf")]

    def repaint(sim_now: float) -> None:
        if sim_now - last_frame[0] < args.refresh:
            return
        last_frame[0] = sim_now
        frame = render_top(observatory, color=color)
        sys.stdout.write((CLEAR_SCREEN if color else "\n") + frame + "\n")
        sys.stdout.flush()

    run_scenario(
        config,
        model=model,
        observatory=observatory,
        tick_callback=None if once else repaint,
    )
    final = render_top(observatory, color=color)
    if color and not once:
        sys.stdout.write(CLEAR_SCREEN)
    print(final)
    if server is not None:
        print(f"\nops surface on {server.url}")
        _linger(server, args.linger)
        server.stop()
    return 0


def cmd_incident(args) -> int:
    """Inspect the incident bundles in a flight-archive directory."""
    bundles = load_bundles(args.directory)
    if not bundles:
        print(f"no incident bundles in {args.directory}")
        return 1
    shown = bundles[: args.limit] if args.limit else bundles
    if args.json:
        print(json.dumps([bundle for _, bundle in shown], indent=2))
    else:
        for i, (path, bundle) in enumerate(shown):
            if i:
                print()
            print(f"{os.path.basename(path)}:")
            print(render_bundle_text(bundle))
        if len(shown) < len(bundles):
            print(f"\n... and {len(bundles) - len(shown)} more bundles")
    return 0


def cmd_replay(args) -> int:
    """Replay a flight archive through a DAG config and score fidelity."""
    archive = ReplayArchive.load(args.directory)
    if args.config:
        with open(args.config, encoding="utf-8") as fh:
            config_text = fh.read()
    else:
        config_text = archive.manifest.get("config_text")
        if not config_text:
            print(
                "error: archive manifest has no config_text; "
                "pass --config FILE",
                file=sys.stderr,
            )
            return 2
    services = {}
    model_path = os.path.join(args.directory, ARCHIVE_MODEL_FILE)
    if os.path.exists(model_path):
        services["bb_model"] = load_model(model_path)
    print(
        f"replaying {len(archive.records)} records "
        f"({archive.end_time():.0f}s of recording) from {args.directory}...",
        flush=True,
    )
    result = run_replay(archive, config_text, services=services)
    for sink in sorted(result.expected):
        replayed = result.alarms.get(sink, [])
        expected = result.expected[sink]
        verdict = "MATCH" if result.matches[sink] else "MISMATCH"
        print(
            f"  {sink}: {len(replayed)} alarms replayed, "
            f"{len(expected)} recorded -- {verdict}"
        )
        for alarm in replayed:
            print(f"    {alarm.describe()}")
    result.core.close()
    if result.all_match:
        print("replay verdict: alarms identical to the recorded run.")
        return 0
    print("replay verdict: alarms DIFFER from the recorded run.")
    return 1


def cmd_cluster_up(args) -> int:
    """Spawn the multi-daemon cluster and supervise it until stopped."""
    from .cluster import ClusterLauncher, list_runtimes

    launcher = ClusterLauncher(
        args.dir,
        nodes=args.nodes,
        interval_s=args.interval,
        seed=args.seed,
        max_frame_bytes=args.max_frame_bytes,
        per_host=args.per_host,
        codec=args.codec,
        engine=args.engine,
        sample_interval_s=args.sample_interval,
    )
    launcher.up()
    hosts = len(launcher.host_groups())
    print(
        f"starting {args.nodes} collection daemons ({hosts} host "
        f"process(es), {args.per_host}/host, codec {args.codec}) + central "
        f"in {launcher.state_dir} ...",
        flush=True,
    )
    if not launcher.wait_ready():
        print("error: cluster did not become ready", file=sys.stderr)
        launcher.shutdown()
        return 1
    central = list_runtimes(launcher.state_dir, role="central").get("central")
    if central is not None:
        print(f"central ops surface: {central.ops_url}")
    for name, runtime in sorted(list_runtimes(launcher.state_dir,
                                              role="node").items()):
        print(
            f"  {name}: pid {runtime.pid}, rpc :{runtime.rpc_port}, "
            f"ops {runtime.ops_url}"
        )
    print("cluster ready; supervising (ctrl-C or the stop marker to exit)")
    return launcher.supervise()


def cmd_cluster_node(args) -> int:
    """Entrypoint for one node host process (spawned by ``cluster up``)."""
    from .cluster import run_node_host
    from .rpc import set_max_frame_bytes

    if args.max_frame_bytes is not None:
        set_max_frame_bytes(args.max_frame_bytes)
    if args.names:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
    elif args.name:
        names = [args.name]
    else:
        print("error: cluster node needs --names or --name", file=sys.stderr)
        return 2
    return run_node_host(
        names, args.dir, seed=args.seed, engine=args.engine,
        sample_interval_s=args.sample_interval,
    )


def cmd_cluster_central(args) -> int:
    """Entrypoint for the central analysis daemon."""
    from .cluster import run_central
    from .rpc import set_max_frame_bytes

    if args.max_frame_bytes is not None:
        set_max_frame_bytes(args.max_frame_bytes)
    return run_central(args.dir, interval_s=args.interval,
                       ops_port=args.serve or 0, codec=args.codec)


def _cmd_cluster_scale_drive(args) -> int:
    """The ``--nodes 3,10,25`` sweep: boot, measure, tear down per count."""
    from .cluster.driver import (
        DriveError,
        check_cluster_scale_gate,
        run_scale_drive,
    )

    try:
        counts = [int(c) for c in args.nodes.split(",") if c.strip()]
    except ValueError:
        print(f"error: bad --nodes list {args.nodes!r}", file=sys.stderr)
        return 2
    try:
        bench = run_scale_drive(
            args.out,
            node_counts=counts,
            codec=args.codec,
            per_host=args.per_host,
            interval_s=args.interval,
            sustain_s=args.sustain,
            seed=args.seed,
            compare_codecs=not args.no_codec_compare,
        )
    except DriveError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for entry in bench["sweep"]:
        mean_round = entry.get("mean_round_s")
        bytes_node = entry.get("bytes_per_node_round")
        detection = entry.get("detection_s")
        print(
            f"nodes={entry['nodes']:<4} ({entry['processes']} procs, "
            f"codec {'/'.join(entry['negotiated'])}): "
            f"{entry.get('samples_per_sec') or 0:.1f} samples/s  "
            f"round mean "
            f"{(f'{mean_round * 1000:.1f}ms' if mean_round else '-')}  "
            f"{(f'{bytes_node:.0f}' if bytes_node else '-')} B/node/round"
            + (f"  detection {detection:.2f}s" if detection else "")
        )
    codec_bytes = bench.get("codec_bytes")
    if codec_bytes and codec_bytes.get("ratio_v2_over_v1"):
        print(
            f"codec bytes at {codec_bytes['nodes']} nodes: "
            f"v1 {codec_bytes['v1_bytes_per_node_round']:.0f} vs "
            f"v2 {codec_bytes['v2_bytes_per_node_round']:.0f} B/node/round "
            f"({codec_bytes['ratio_v2_over_v1']:.2f}x)"
        )
    scaling = bench["round_scaling"]
    if scaling.get("ratio") is not None:
        print(
            f"round scaling {scaling['smallest_nodes']} -> "
            f"{scaling['largest_nodes']} nodes: {scaling['ratio']:.2f}x "
            f"mean round growth"
        )
    out_path = os.path.join(args.out, "BENCH_cluster.json")
    print(f"wrote {out_path}")
    ok, message = (bench["ok"], "")
    if args.gate:
        ok, message = check_cluster_scale_gate(
            bench, baseline_path=args.gate, slack=args.gate_slack
        )
        print(message, file=sys.stdout if ok else sys.stderr)
    elif not bench["ok"]:
        for failure in bench["failures"]:
            print(f"bench FAILURE: {failure}", file=sys.stderr)
    return 0 if ok and bench["ok"] else 1


def cmd_cluster_drive(args) -> int:
    """Run the measured scenario against a live cluster."""
    from .cluster.driver import DriveError, run_drive

    if args.nodes:
        return _cmd_cluster_scale_drive(args)
    try:
        bench = run_drive(
            args.dir,
            args.out,
            sustain_s=args.sustain,
            inject_node=args.inject_node,
            kill_node=args.kill_node,
            fault_kind=args.fault_kind,
            shutdown=args.shutdown,
        )
    except DriveError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    samples = bench["samples"]
    latency = bench.get("alarm_latency_wall_s") or {}
    reconnect = bench["reconnect"]
    print(f"sustained throughput: {samples['per_sec']:.1f} samples/s "
          f"({samples['measured']} samples over {bench['sustain_s']:.1f}s)")
    if latency.get("count"):
        print(f"alarm wall latency:   p50 {latency['p50']:.3f}s  "
              f"p90 {latency['p90']:.3f}s  p99 {latency['p99']:.3f}s "
              f"({latency['count']} observations)")
    fault = bench["fault"]
    if fault.get("detection_s") is not None:
        print(f"fault detection:      {fault['kind']} on {fault['node']} "
              f"flagged after {fault['detection_s']:.2f}s")
    if reconnect.get("reconnected"):
        print(f"kill + respawn:       {reconnect['killed_node']} back in "
              f"{reconnect['downtime_s']:.2f}s "
              f"(pid {reconnect['killed_pid']} -> "
              f"{reconnect['respawned_pid']})")
    trace = bench["trace"]
    print(f"stitched trace:       {trace['multi_pid_traces']} multi-pid "
          f"trace ids across {len(trace['distinct_pids'])} pids "
          f"({trace['file']})")
    out_path = os.path.join(args.out, "BENCH_cluster.json")
    if bench["ok"]:
        print(f"bench OK -> {out_path}")
        return 0
    for failure in bench["failures"]:
        print(f"bench FAILURE: {failure}", file=sys.stderr)
    print(f"bench NOT ok -> {out_path}", file=sys.stderr)
    return 1


def _render_cluster_top(stats: dict, cluster: dict) -> str:
    """One text frame of the federated cluster dashboard."""
    lines = []
    backpressure = stats.get("backpressure", {})
    latency = stats.get("alarm_wall_latency_s", {})
    lines.append(
        f"cluster: rounds {stats.get('rounds', 0)}  "
        f"samples {stats.get('samples_total', 0)} "
        f"({stats.get('samples_per_sec', 0.0):.1f}/s)  "
        f"alarms {stats.get('alarms_total', 0)}  "
        f"rounds_late {backpressure.get('rounds_late', 0)}"
    )
    if latency.get("count"):
        lines.append(
            f"alarm wall latency: p50 {latency['p50']:.3f}s  "
            f"p90 {latency['p90']:.3f}s  p99 {latency['p99']:.3f}s"
        )
    lines.append("")
    lines.append(f"{'DAEMON':<10} {'PID':>7} {'ALIVE':>5} {'CONN':>4} "
                 f"{'BUSY%':>6} {'STREAK':>6} {'SAMPLES':>8} "
                 f"{'LAG_S':>6} {'RECON':>5}")
    nodes = stats.get("nodes", {})
    daemons = sorted(cluster.get("daemons", []),
                     key=lambda d: d.get("name", ""))
    for daemon in daemons:
        if daemon.get("role") != "node":
            continue
        name = daemon.get("name", "?")
        node = nodes.get(name, {})
        busy = node.get("busy_pct")
        lag = node.get("watermark_lag_s")
        lines.append(
            f"{name:<10} {daemon.get('pid', 0):>7} "
            f"{'yes' if daemon.get('alive') else 'NO':>5} "
            f"{'yes' if node.get('connected') else 'no':>4} "
            f"{(f'{busy:.1f}' if busy is not None else '-'):>6} "
            f"{node.get('streak', 0):>6} {node.get('samples', 0):>8} "
            f"{(f'{lag:.2f}' if lag is not None else '-'):>6} "
            f"{node.get('reconnects', 0):>5}"
        )
    for alarm in stats.get("alarms", [])[-5:]:
        lines.append("")
        lines.append(
            f"ALARM {alarm.get('node')}: {alarm.get('detail', '')} "
            f"(wall latency "
            f"{alarm.get('wall_latency_s', 0.0):.3f}s)"
        )
    return "\n".join(lines)


def cmd_cluster_top(args) -> int:
    """Live terminal dashboard over the federated cluster stats."""
    import time as _time

    from .cluster import list_runtimes, pid_alive
    from .cluster.federation import http_get_json
    from .obsv import CLEAR_SCREEN

    runtime = list_runtimes(args.dir, role="central").get("central")
    if runtime is None or not pid_alive(runtime.pid):
        print(f"error: no live central daemon published in {args.dir}",
              file=sys.stderr)
        return 2
    base = runtime.ops_url
    tty = sys.stdout.isatty()
    once = args.once or not tty
    while True:
        try:
            stats = http_get_json(f"{base}/control/stats", timeout=5.0)
            cluster = http_get_json(f"{base}/cluster", timeout=5.0)
        except OSError as exc:
            print(f"error: central daemon unreachable: {exc}",
                  file=sys.stderr)
            return 1
        frame = _render_cluster_top(stats, cluster)
        if once:
            print(frame)
            return 0
        sys.stdout.write(CLEAR_SCREEN + frame + "\n")
        sys.stdout.flush()
        _time.sleep(args.refresh)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ASDF (DSN 2009) reproduction: online fingerpointing "
        "of performance problems in a simulated Hadoop cluster.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="one monitored fault-injection run")
    _add_scenario_args(demo)
    _add_telemetry_args(demo)
    demo.add_argument(
        "--fault",
        choices=list(FAULT_NAMES),
        default="CPUHog",
        help="fault to inject (Table 2 name)",
    )
    demo.add_argument(
        "--record", metavar="DIR", default=None,
        help="attach a flight recorder and archive the run (channels, "
        "model, config, incident bundles) into DIR",
    )
    _add_observatory_args(demo)
    demo.add_argument(
        "--scoreboard", metavar="DIR", nargs="?", const=".", default=None,
        help="attach the observatory and write BENCH_scoreboard.json "
        "into DIR (default: the working directory)",
    )
    demo.set_defaults(handler=cmd_demo)

    top = commands.add_parser(
        "top",
        help="live ANSI dashboard over a monitored fault-injection run",
    )
    _add_scenario_args(top)
    top.add_argument(
        "--fault",
        choices=list(FAULT_NAMES),
        default="CPUHog",
        help="fault to inject (Table 2 name)",
    )
    top.add_argument(
        "--refresh", type=float, default=15.0,
        help="simulated seconds between dashboard repaints",
    )
    top.add_argument(
        "--once", action="store_true",
        help="skip live repaints; print one final frame after the run",
    )
    top.add_argument(
        "--no-color", action="store_true",
        help="plain text frames (also implied when stdout is not a tty)",
    )
    _add_observatory_args(top)
    top.set_defaults(handler=cmd_top)

    telemetry = commands.add_parser(
        "telemetry",
        help="instrumented run: self-metrics summary, trace, alarm audit",
    )
    _add_scenario_args(telemetry)
    _add_telemetry_args(telemetry)
    telemetry.add_argument(
        "--fault",
        choices=list(FAULT_NAMES),
        default="CPUHog",
        help="fault to inject (Table 2 name); alarms feed the audit trail",
    )
    telemetry.add_argument(
        "--no-spans", action="store_true",
        help="skip span recording (metrics and audit only)",
    )
    telemetry.add_argument(
        "--dot", metavar="FILE", default=None,
        help="write the DAG annotated with run counts and mean latencies",
    )
    telemetry.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="show only the last N alarm audit records",
    )
    telemetry.add_argument(
        "--since", type=float, default=None, metavar="TS",
        help="show only audit records at simulated time >= TS",
    )
    telemetry.set_defaults(handler=cmd_telemetry)

    calibrate = commands.add_parser(
        "calibrate", help="Figure 6 fault-free threshold sweeps"
    )
    _add_scenario_args(calibrate)
    calibrate.set_defaults(handler=cmd_calibrate)

    fig7 = commands.add_parser("figure7", help="per-fault accuracy and latency")
    _add_scenario_args(fig7)
    fig7.add_argument("--seeds", default="7,19", help="comma-separated seeds")
    fig7.set_defaults(handler=cmd_figure7)

    overhead = commands.add_parser("overhead", help="Tables 3 and 4")
    _add_scenario_args(overhead)
    overhead.set_defaults(handler=cmd_overhead)

    catalog = commands.add_parser("table2", help="the fault catalog")
    catalog.set_defaults(handler=cmd_table2)

    bench = commands.add_parser(
        "bench",
        help="run a fault x trial matrix through the parallel experiment "
        "runner (default), or 'bench scale' for the 50->1000-node "
        "scalar-vs-vectorized scaling benchmark; writes BENCH_<name>.json",
    )
    _add_scenario_args(bench)
    bench.add_argument(
        "mode", nargs="?", choices=("matrix", "scale"), default="matrix",
        help="'matrix' (default): fault x trial matrix; 'scale': the "
        "scaling benchmark (BENCH_scale.json)",
    )
    bench.add_argument(
        "--sizes", default="50,200,500,1000",
        help="[scale] comma-separated fleet sizes",
    )
    bench.add_argument(
        "--ticks", type=int, default=200,
        help="[scale] timed simulator ticks per (size, engine)",
    )
    bench.add_argument(
        "--pipeline-seconds", type=int, default=60,
        help="[scale] simulated seconds of the end-to-end pipeline loop",
    )
    bench.add_argument(
        "--parity-sizes", default="50,200",
        help="[scale] fleet sizes whose scalar/vec parity is asserted",
    )
    bench.add_argument(
        "--parity-ticks", type=int, default=90,
        help="[scale] ticks compared snapshot-by-snapshot per parity size",
    )
    bench.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="[scale] gate floor for vec/scalar tick speedup at the "
        "largest size",
    )
    bench.add_argument(
        "--faults", default=",".join(FAULT_NAMES),
        help="comma-separated Table 2 fault names",
    )
    bench.add_argument(
        "--trials", type=int, default=1,
        help="independent trials per fault (seeds derived from --seed)",
    )
    bench.add_argument(
        "--check-parity", action="store_true",
        help="also run serially and assert the parallel results are "
        "byte-identical (exit 1 on mismatch)",
    )
    bench.add_argument(
        "--warm", action="store_true", default=None,
        help="persistent warm-worker pool: spawn + pre-import workers "
        "before the measured window (default: $ASDF_WARM_WORKERS)",
    )
    bench.add_argument(
        "--name", default="table2", help="benchmark name (BENCH_<name>.json)"
    )
    bench.add_argument(
        "--out", default=None,
        help="output directory for the BENCH file "
        "(default: $ASDF_BENCH_DIR or the working directory)",
    )
    bench.add_argument(
        "--gate", metavar="BASELINE.json", default=None,
        help="regression gate: exit 1 if this run's speedup_vs_serial "
        "falls below the baseline BENCH file's (times --gate-slack)",
    )
    bench.add_argument(
        "--gate-slack", type=float, default=0.85, metavar="FRAC",
        help="fraction of the baseline speedup that still passes the "
        "gate (absorbs runner noise)",
    )
    bench.set_defaults(handler=cmd_bench)

    config = commands.add_parser(
        "config", help="print the generated fpt-core configuration file"
    )
    _add_scenario_args(config)
    config.set_defaults(handler=cmd_config)

    lint = commands.add_parser(
        "lint",
        help="static analysis: configs vs module contracts, contract vs "
        "implementation, determinism hazards",
    )
    _add_scenario_args(lint)
    lint.add_argument(
        "configs", nargs="*", metavar="CONFIG",
        help="fpt-core configuration file(s) to check; with no file and "
        "no selection flag, everything is linted",
    )
    lint.add_argument(
        "--generated", action="store_true",
        help="lint the generated deployment config (respects --slaves)",
    )
    lint.add_argument(
        "--impl", action="store_true",
        help="check registered module implementations against contracts",
    )
    lint.add_argument(
        "--determinism", action="store_true",
        help="scan scenario code paths for wall-clock/unseeded-random use",
    )
    lint.add_argument(
        "--cost", action="store_true",
        help="fold the config DAG through the contracts' cost facts into "
        "a per-tick CPU estimate (FPT30x) and scan hot modules for "
        "vectorization hazards (FPT31x); with no CONFIG, estimates the "
        "generated deployment",
    )
    lint.add_argument(
        "--budget-ms", type=float, default=None, metavar="MS",
        help="per-tick CPU budget for --cost (overrides the config's "
        "[scale] tick_budget_ms; default 1000ms = keeping up with "
        "real time)",
    )
    lint.add_argument(
        "--concurrency", action="store_true",
        help="scan the deployment packages for cross-thread shared-state "
        "races (FPT4xx)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit diagnostics as JSON (with --cost, an object carrying "
        "'diagnostics' and 'cost_reports')",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not only errors",
    )
    lint.set_defaults(handler=cmd_lint)

    incident = commands.add_parser(
        "incident", help="inspect a recorded run's incident bundles"
    )
    incident.add_argument("directory", help="flight-archive directory")
    incident.add_argument(
        "--json", action="store_true", help="dump raw bundle JSON"
    )
    incident.add_argument(
        "--limit", type=int, default=0, help="show at most N bundles"
    )
    incident.set_defaults(handler=cmd_incident)

    replay = commands.add_parser(
        "replay",
        help="replay a flight archive through a DAG config and compare "
        "alarms against the recording",
    )
    replay.add_argument("directory", help="flight-archive directory")
    replay.add_argument(
        "--config", metavar="FILE", default=None,
        help="fpt-core configuration file (default: the config_text "
        "stored in the archive manifest)",
    )
    replay.set_defaults(handler=cmd_replay)

    cluster = commands.add_parser(
        "cluster",
        help="live multi-daemon deployment: real processes, real sockets",
    )
    cluster_cmds = cluster.add_subparsers(dest="cluster_command",
                                          required=True)

    def _cluster_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir", default="out/cluster",
            help="shared state directory (runtime files, logs, stop marker)",
        )
        sub.add_argument(
            "--max-frame-bytes", type=int, default=None,
            help="override the RPC frame-size limit for every daemon "
            "(also settable via ASDF_MAX_FRAME_BYTES)",
        )

    up = cluster_cmds.add_parser(
        "up", help="spawn central + N collection daemons, then supervise",
    )
    _cluster_common(up)
    up.add_argument("--nodes", type=int, default=3,
                    help="number of logical collection daemons")
    up.add_argument("--interval", type=float, default=0.5,
                    help="central poll interval, wall seconds")
    up.add_argument("--seed", type=int, default=1,
                    help="base RNG seed for the node loads")
    up.add_argument("--per-host", type=int, default=8,
                    help="logical node daemons packed per host process")
    up.add_argument("--codec", default="v2", choices=["v1", "v2"],
                    help="poll codec: v2 negotiates binary framing, "
                    "v1 pins JSON")
    up.add_argument("--engine", default="fleet",
                    choices=["fleet", "synthetic"],
                    help="node telemetry source: the vectorized Hadoop "
                    "fleet or the v1 synthetic generator")
    up.add_argument("--sample-interval", type=float, default=None,
                    help="node-host sampling cadence, wall seconds "
                    "(default: max(0.25, --interval))")
    up.set_defaults(handler=cmd_cluster_up)

    node = cluster_cmds.add_parser(
        "node", help="one node host process (spawned by 'cluster up')",
    )
    _cluster_common(node)
    node.add_argument("--name", default=None, help="single daemon name")
    node.add_argument("--names", default=None,
                      help="comma-separated logical node names this host "
                      "process serves")
    node.add_argument("--seed", type=int, default=0,
                      help="RNG seed for this host's load")
    node.add_argument("--engine", default="fleet",
                      choices=["fleet", "synthetic"],
                      help="telemetry source for this host's nodes")
    node.add_argument("--sample-interval", type=float, default=0.5,
                      help="sampler-thread cadence, wall seconds")
    node.set_defaults(handler=cmd_cluster_node)

    central = cluster_cmds.add_parser(
        "central", help="the central analysis daemon",
    )
    _cluster_common(central)
    central.add_argument("--interval", type=float, default=0.5,
                         help="poll interval, wall seconds")
    central.add_argument("--serve", type=int, default=None, metavar="PORT",
                         help="ops HTTP port (default: ephemeral)")
    central.add_argument("--codec", default="v2", choices=["v1", "v2"],
                         help="poll codec: v2 negotiates binary framing, "
                         "v1 pins JSON")
    central.set_defaults(handler=cmd_cluster_central)

    drive = cluster_cmds.add_parser(
        "drive",
        help="measured scenario: sustain, inject, kill + respawn, "
        "write BENCH_cluster.json",
    )
    _cluster_common(drive)
    drive.add_argument("--out", default=".",
                       help="directory for BENCH_cluster.json and the "
                       "stitched trace")
    drive.add_argument("--sustain", type=float, default=5.0,
                       help="wall seconds of steady-state traffic to measure")
    drive.add_argument("--inject-node", default=None,
                       help="node to perturb (default: first)")
    drive.add_argument("--kill-node", default=None,
                       help="node to SIGKILL (default: last)")
    drive.add_argument("--fault-kind", default="cpuhog",
                       choices=["cpuhog", "diskhog"],
                       help="synthetic load perturbation to inject")
    drive.add_argument("--shutdown", action="store_true",
                       help="leave the stop marker when done so 'cluster "
                       "up' exits")
    drive.add_argument("--nodes", default=None, metavar="N,N,...",
                       help="scale sweep: boot+measure+tear down a fresh "
                       "self-contained cluster per node count (e.g. "
                       "3,10,25) instead of driving a running one")
    drive.add_argument("--codec", default="v2", choices=["v1", "v2"],
                       help="poll codec for the scale sweep")
    drive.add_argument("--per-host", type=int, default=8,
                       help="logical nodes per host process in the sweep")
    drive.add_argument("--interval", type=float, default=0.25,
                       help="central poll interval for the sweep, wall "
                       "seconds")
    drive.add_argument("--seed", type=int, default=1,
                       help="base RNG seed for the sweep's node loads")
    drive.add_argument("--no-codec-compare", action="store_true",
                       help="skip the v1-vs-v2 bytes comparison run at "
                       "the smallest count")
    drive.add_argument("--gate", default=None, metavar="BASELINE.json",
                       help="regression-gate the sweep against a committed "
                       "asdf-cluster-scale trajectory")
    drive.add_argument("--gate-slack", type=float, default=0.4,
                       help="fraction of baseline samples/sec the sweep "
                       "must retain")
    drive.set_defaults(handler=cmd_cluster_drive)

    cluster_top = cluster_cmds.add_parser(
        "top", help="terminal dashboard over the federated cluster stats",
    )
    _cluster_common(cluster_top)
    cluster_top.add_argument("--refresh", type=float, default=1.0,
                             help="wall seconds between repaints")
    cluster_top.add_argument("--once", action="store_true",
                             help="print a single snapshot and exit "
                             "(implied when stdout is not a TTY)")
    cluster_top.set_defaults(handler=cmd_cluster_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        # Bad configuration input, not a crash: show the offending line
        # (ConfigError.describe carries the line number and text) and
        # point at the static analyzer for the full report.
        print(f"configuration error: {error.describe()}", file=sys.stderr)
        print(
            "hint: run 'python -m repro lint <config>' for the full "
            "diagnostic report",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
