"""Flight recorder, incident bundles and archive replay for the fpt-core.

The observability layer the paper's operators would need in production
(and that DCDB Wintermute pairs with its live analysis): record what
flowed through every channel, freeze the evidence when an alarm fires,
and replay captured traces through any configuration.

* :class:`FlightRecorder` -- taps every output's ``on_write`` chain into
  bounded per-channel ring buffers, optionally archiving to JSONL.
* :func:`build_incident_bundle` / :func:`load_bundles` /
  :func:`render_bundle_text` -- the frozen evidence behind one alarm.
* :class:`ReplayArchive`, :class:`ReplaySourceModule`,
  :func:`run_replay` -- deterministic faster-than-real-time replay of a
  recorded archive through a DAG config.
"""

from .bundle import (
    build_incident_bundle,
    load_bundles,
    render_bundle_text,
    upstream_instances,
)
from .codec import decode_value, encode_value
from .recorder import ArchiveWriter, ChannelRing, FlightRecorder
from .replay import (
    ReplayArchive,
    ReplayRecord,
    ReplayResult,
    ReplaySourceModule,
    archived_stats_rounds,
    make_replay_registry,
    replay_core,
    run_replay,
)

__all__ = [
    "ArchiveWriter",
    "ChannelRing",
    "FlightRecorder",
    "ReplayArchive",
    "ReplayRecord",
    "ReplayResult",
    "ReplaySourceModule",
    "archived_stats_rounds",
    "build_incident_bundle",
    "decode_value",
    "encode_value",
    "load_bundles",
    "make_replay_registry",
    "render_bundle_text",
    "replay_core",
    "run_replay",
    "upstream_instances",
]
