"""JSON value codec for recorded channel samples.

Samples flowing through fpt-core channels carry heterogeneous payloads:
numpy vectors (sadc/hadoop_log), plain ints (knn state indices),
:class:`~repro.analysis.metrics.Alarm` objects, lists of
:class:`~repro.analysis.metrics.WindowDecision`, and stats dicts mixing
all of the above.  The flight recorder archives every one of them as
JSONL, and archive replay must reconstruct values faithfully enough that
re-running the same DAG reproduces the same alarms -- so the codec is a
bijection for every type the standard module library emits.

Tagged encodings use a ``"__kind__"`` discriminator; everything already
JSON-native passes through untouched.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.metrics import Alarm, WindowDecision

__all__ = ["encode_value", "decode_value"]

_KIND = "__kind__"


def encode_value(value: Any) -> Any:
    """Convert ``value`` into a JSON-serializable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return {_KIND: "ndarray", "dtype": str(value.dtype),
                "data": value.tolist()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, Alarm):
        return {
            _KIND: "alarm",
            "time": value.time,
            "node": value.node,
            "source": value.source,
            "detail": value.detail,
            "via": list(value.via),
        }
    if isinstance(value, WindowDecision):
        return {
            _KIND: "decision",
            "node": value.node,
            "window_start": value.window_start,
            "window_end": value.window_end,
            "alarmed": value.alarmed,
        }
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {_KIND: "dict",
                "items": [[str(k), encode_value(v)] for k, v in value.items()]}
    # Last resort for exotic module payloads: keep the repr so the
    # archive stays readable even if the value cannot be replayed.
    return {_KIND: "repr", "repr": repr(value)}


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, list):
        return [decode_value(v) for v in obj]
    if not isinstance(obj, dict):
        return obj
    kind = obj.get(_KIND)
    if kind == "ndarray":
        return np.asarray(obj["data"], dtype=np.dtype(obj["dtype"]))
    if kind == "alarm":
        return Alarm(
            time=obj["time"], node=obj["node"], source=obj["source"],
            detail=obj["detail"], via=tuple(obj.get("via", ())),
        )
    if kind == "decision":
        return WindowDecision(
            node=obj["node"], window_start=obj["window_start"],
            window_end=obj["window_end"], alarmed=obj["alarmed"],
        )
    if kind == "tuple":
        return tuple(decode_value(v) for v in obj["items"])
    if kind == "dict":
        return {k: decode_value(v) for k, v in obj["items"]}
    if kind == "repr":
        return obj["repr"]
    # A plain dict written by an older archive (no tag): decode values.
    return {k: decode_value(v) for k, v in obj.items()}
