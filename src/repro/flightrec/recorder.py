"""The channel-level flight recorder.

Production fingerpointing needs more than an alarm log: when the
``print`` sink indicts a node, the operator wants the *evidence* -- the
metric windows, peer comparisons and DAG path that produced the verdict.
The :class:`FlightRecorder` taps every :class:`~repro.core.Output` of a
running core through the existing ``on_write`` hook chain and keeps the
recent past of every channel in a bounded ring buffer (bounded both by
sample count and by wall-window, sadc-archive style).  Optionally every
sample is also streamed to an on-disk JSONL archive that
:mod:`repro.flightrec.replay` can feed back through any DAG config.

When an :class:`~repro.analysis.metrics.Alarm` reaches a sink, the sink
calls :meth:`FlightRecorder.record_incident`, which freezes an *incident
bundle* (see :mod:`repro.flightrec.bundle`): the alarm, the last N
seconds of every channel on the DAG path upstream of the sink, the peer
comparison vectors, and the analysis configuration in force.

With no recorder attached the core's hot path is untouched -- writing to
an output still costs only the existing ``on_write`` null check.
"""

from __future__ import annotations

import json
import os
import sys
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.channel import Origin, Output, Sample
from .codec import encode_value

__all__ = ["ChannelRing", "ArchiveWriter", "FlightRecorder"]

#: Default per-channel ring capacity (samples).
DEFAULT_RING_SAMPLES = 512
#: Default ring wall-window (seconds of history kept per channel).
DEFAULT_RING_WINDOW_S = 300.0

ARCHIVE_SAMPLES_FILE = "samples.jsonl"
ARCHIVE_OUTPUTS_FILE = "outputs.json"
ARCHIVE_MANIFEST_FILE = "manifest.json"
ARCHIVE_FORMAT = "asdf-flight-archive/1"
INCIDENT_FORMAT = "asdf-incident-bundle/1"


def _estimate_bytes(value: Any) -> int:
    """Cheap in-memory size estimate for ring-buffer pressure gauges."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 112
    if isinstance(value, (list, tuple)):
        return 56 + 32 * len(value)
    if isinstance(value, dict):
        return 64 + 72 * len(value)
    try:
        return sys.getsizeof(value)
    except TypeError:  # pragma: no cover - exotic objects
        return 64


def _origin_obj(origin: Optional[Origin]) -> Optional[dict]:
    if origin is None:
        return None
    return {"node": origin.node, "source": origin.source,
            "metric": origin.metric}


class ChannelRing:
    """Recent history of one output channel, bounded two ways.

    At most ``max_samples`` samples are retained, and samples older than
    ``window_s`` before the newest timestamp are evicted on every push --
    whichever bound bites first.
    """

    __slots__ = ("name", "origin", "max_samples", "window_s", "_entries",
                 "bytes", "evictions", "total_recorded")

    def __init__(self, name: str, origin: Optional[Origin],
                 max_samples: int, window_s: float) -> None:
        self.name = name
        self.origin = origin
        self.max_samples = max(1, int(max_samples))
        self.window_s = float(window_s)
        #: (sample, estimated_bytes) pairs, oldest first.
        self._entries: Deque[Tuple[Sample, int]] = deque()
        self.bytes = 0
        self.evictions = 0
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, sample: Sample, est_bytes: int) -> None:
        self._entries.append((sample, est_bytes))
        self.bytes += est_bytes
        self.total_recorded += 1
        horizon = sample.timestamp - self.window_s
        entries = self._entries
        while len(entries) > self.max_samples or (
            entries and entries[0][0].timestamp < horizon
        ):
            _, evicted_bytes = entries.popleft()
            self.bytes -= evicted_bytes
            self.evictions += 1

    def window(self, start: Optional[float] = None,
               end: Optional[float] = None) -> List[Sample]:
        """Buffered samples with ``start <= timestamp <= end``, oldest first."""
        lo = float("-inf") if start is None else start
        hi = float("inf") if end is None else end
        return [s for s, _ in self._entries if lo <= s.timestamp <= hi]


class ArchiveWriter:
    """Streams every recorded sample to a JSONL archive directory.

    Layout: ``samples.jsonl`` (one record per write: sample timestamp
    ``t``, emission clock time ``at``, output full name ``o``, encoded
    value ``v``), ``outputs.json`` (per-output metadata: owner, name,
    origin -- what replay needs to recreate the channels), and
    ``manifest.json`` (format tag, counters, plus whatever the embedding
    application notes, e.g. the configuration text).
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._fh = open(
            os.path.join(directory, ARCHIVE_SAMPLES_FILE), "w",
            encoding="utf-8",
        )
        self._outputs: Dict[str, dict] = {}
        self.records_written = 0

    def note_output(self, output: Output) -> None:
        if output.full_name not in self._outputs:
            self._outputs[output.full_name] = {
                "owner": output.owner_id,
                "name": output.name,
                "origin": _origin_obj(output.origin),
            }

    def write_sample(self, output: Output, sample: Sample,
                     emitted_at: float) -> None:
        record = {
            "t": sample.timestamp,
            "at": emitted_at,
            "o": output.full_name,
            "v": encode_value(sample.value),
        }
        self._fh.write(json.dumps(record) + "\n")
        self.records_written += 1

    def write_incident(self, bundle: dict, index: int) -> str:
        path = os.path.join(self.directory, f"incident-{index:04d}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True)
        return path

    def close(self, manifest: Optional[dict] = None) -> None:
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None
        with open(
            os.path.join(self.directory, ARCHIVE_OUTPUTS_FILE), "w",
            encoding="utf-8",
        ) as fh:
            json.dump(self._outputs, fh, indent=2, sort_keys=True)
        payload = {"format": ARCHIVE_FORMAT,
                   "records": self.records_written}
        if manifest:
            payload.update(manifest)
        with open(
            os.path.join(self.directory, ARCHIVE_MANIFEST_FILE), "w",
            encoding="utf-8",
        ) as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)


class FlightRecorder:
    """Per-output ring buffers + optional archive + incident bundles."""

    def __init__(
        self,
        max_samples: int = DEFAULT_RING_SAMPLES,
        window_s: float = DEFAULT_RING_WINDOW_S,
        archive_dir: Optional[str] = None,
        bundle_window_s: float = 90.0,
        max_incidents: int = 64,
        incident_cooldown_s: float = 60.0,
    ) -> None:
        self.max_samples = max_samples
        self.window_s = window_s
        self.bundle_window_s = bundle_window_s
        self.max_incidents = max_incidents
        self.incident_cooldown_s = incident_cooldown_s
        self.rings: Dict[str, ChannelRing] = {}
        self.archive = ArchiveWriter(archive_dir) if archive_dir else None
        self.incidents: List[dict] = []
        self.incidents_suppressed = 0
        self._last_incident: Dict[Tuple[str, str], float] = {}
        self._manifest_notes: dict = {}
        self._core = None
        self._gauges = None
        self._closed = False

    # -- attachment ----------------------------------------------------------

    def attach(self, core) -> None:
        """Tap every output of ``core`` and register as its recorder.

        Must be called after the core is constructed (so the scheduler's
        write hooks are already installed and can be chained).  Newly
        attached instances (``core.attach``) are tapped by the core
        itself through ``core.flight_recorder``.
        """
        self._core = core
        core.flight_recorder = self
        if core.telemetry.enabled:
            self._register_gauges(core.telemetry.metrics)
        for ctx in core.dag.contexts.values():
            self.attach_context(ctx)

    def attach_context(self, ctx) -> None:
        """Tap one module context: its outputs plus the sink service."""
        ctx.services.setdefault("flight_recorder", self)
        for output in ctx.outputs.values():
            self.attach_output(output)

    def attach_output(self, output: Output) -> None:
        ring = self._ring(output)
        existing = output.on_write
        record = self._record

        def tap(out: Output, sample: Sample, _ring=ring) -> None:
            if existing is not None:
                existing(out, sample)
            record(_ring, out, sample)

        if existing is not None:
            # Preserve the scheduler's already-attached marker so a
            # repeated Scheduler.attach_output stays a no-op.
            tap._includes_scheduler_hook = getattr(  # type: ignore[attr-defined]
                existing, "_includes_scheduler_hook", True
            )
        output.on_write = tap
        if self.archive is not None:
            self.archive.note_output(output)

    def _ring(self, output: Output) -> ChannelRing:
        ring = self.rings.get(output.full_name)
        if ring is None:
            ring = ChannelRing(
                output.full_name, output.origin,
                self.max_samples, self.window_s,
            )
            self.rings[output.full_name] = ring
        return ring

    # -- recording -----------------------------------------------------------

    def _record(self, ring: ChannelRing, output: Output,
                sample: Sample) -> None:
        ring.push(sample, _estimate_bytes(sample.value))
        if self.archive is not None:
            emitted_at = (
                self._core.clock.now() if self._core is not None
                else sample.timestamp
            )
            self.archive.write_sample(output, sample, emitted_at)
        if self._gauges is not None:
            self._update_gauges()

    def _register_gauges(self, metrics) -> None:
        self._gauges = (
            metrics.gauge(
                "fpt_flightrec_buffered_samples",
                "Samples currently held across all flight-recorder rings.",
            ),
            metrics.gauge(
                "fpt_flightrec_buffered_bytes",
                "Estimated bytes currently held in flight-recorder rings.",
            ),
            metrics.gauge(
                "fpt_flightrec_evictions_total",
                "Samples evicted from flight-recorder rings (capacity or "
                "wall-window pressure).",
            ),
            metrics.gauge(
                "fpt_flightrec_records_total",
                "Samples ever recorded by the flight recorder.",
            ),
            metrics.gauge(
                "fpt_flightrec_incidents_total",
                "Incident bundles frozen by the flight recorder.",
            ),
        )
        self._update_gauges()

    def _update_gauges(self) -> None:
        buffered, buffered_bytes, evictions, records, incidents = self._gauges
        rings = self.rings.values()
        buffered.set(sum(len(r) for r in rings))
        buffered_bytes.set(sum(r.bytes for r in rings))
        evictions.set(sum(r.evictions for r in rings))
        records.set(sum(r.total_recorded for r in rings))
        incidents.set(len(self.incidents))

    # -- incidents -----------------------------------------------------------

    def record_incident(self, alarm, sink: str,
                        inputs: Tuple[str, ...] = ()) -> Optional[dict]:
        """Freeze an incident bundle for ``alarm`` as seen by ``sink``.

        Returns the bundle, or ``None`` when suppressed (per-culprit
        cooldown or the ``max_incidents`` cap).  ``inputs`` is the
        provenance chain of outputs that delivered the alarm, newest
        last (the sink's own delivering connection).
        """
        if self._core is None or len(self.incidents) >= self.max_incidents:
            self.incidents_suppressed += 1
            return None
        key = (alarm.node, alarm.source)
        last = self._last_incident.get(key)
        if last is not None and alarm.time - last < self.incident_cooldown_s:
            self.incidents_suppressed += 1
            return None
        self._last_incident[key] = alarm.time
        from .bundle import build_incident_bundle

        bundle = build_incident_bundle(
            self, self._core.dag, alarm, sink=sink, inputs=inputs,
            window_s=self.bundle_window_s,
        )
        self.incidents.append(bundle)
        if self.archive is not None:
            self.archive.write_incident(bundle, len(self.incidents))
        if self._gauges is not None:
            self._update_gauges()
        return bundle

    # -- views / lifecycle ---------------------------------------------------

    def window(self, full_name: str, start: Optional[float] = None,
               end: Optional[float] = None) -> List[Sample]:
        ring = self.rings.get(full_name)
        return ring.window(start, end) if ring is not None else []

    def stats(self) -> dict:
        """Recorder-level accounting snapshot."""
        rings = self.rings.values()
        return {
            "channels": len(self.rings),
            "buffered_samples": sum(len(r) for r in rings),
            "buffered_bytes": sum(r.bytes for r in rings),
            "evictions": sum(r.evictions for r in rings),
            "recorded": sum(r.total_recorded for r in rings),
            "incidents": len(self.incidents),
            "incidents_suppressed": self.incidents_suppressed,
            "archived_records": (
                self.archive.records_written if self.archive else 0
            ),
        }

    def note_manifest(self, **entries) -> None:
        """Add entries to the archive manifest written at close."""
        self._manifest_notes.update(entries)

    def close(self) -> None:
        """Flush and close the on-disk archive; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.archive is not None:
            manifest = dict(self._manifest_notes)
            manifest["stats"] = self.stats()
            self.archive.close(manifest)
