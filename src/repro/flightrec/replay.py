"""Archive replay: feed a recorded run back through any DAG config.

BiDAl-style replayable traces for the fpt-core: a run recorded by the
:class:`~repro.flightrec.recorder.FlightRecorder` (with an archive
directory) can be re-run through the *same or a different* configuration
at simulated speed -- no cluster simulator, no model training, just the
DAG math.  That turns threshold re-tuning (``experiments/sweep.py``) and
regression tests into archive replays instead of fresh simulations.

How it works: the config's source instances (those with no inputs --
``sadc``, ``hadoop_log``) are substituted with :class:`ReplaySourceModule`
instances.  Each replay source recreates its original instance's outputs
(same names, same :class:`~repro.core.Origin`) from the archive's output
metadata and re-emits the recorded samples at their recorded emission
times on the simulated clock.  Because the downstream DAG, the write
order and the clock grid are identical to the recording, the analysis
modules raise byte-identical alarms.

Determinism contract: archives must come from a simulated-clock run (the
default everywhere in this repo); wall-clock recordings replay too, but
emission jitter then lands on the replay tick grid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from ..analysis.metrics import Alarm
from ..core import (
    DEFAULT_QUEUE_CAPACITY,
    FptCore,
    InstanceSpec,
    Module,
    ModuleRegistry,
    Origin,
    RunReason,
    SimClock,
    parse_config,
)
from ..core.errors import ConfigError
from .codec import decode_value
from .recorder import (
    ARCHIVE_MANIFEST_FILE,
    ARCHIVE_OUTPUTS_FILE,
    ARCHIVE_SAMPLES_FILE,
)

__all__ = [
    "ReplayArchive",
    "ReplayRecord",
    "ReplaySourceModule",
    "ReplayResult",
    "archived_stats_rounds",
    "make_replay_registry",
    "replay_core",
    "run_replay",
]


@dataclass(frozen=True)
class ReplayRecord:
    """One archived write: when it was emitted, on which output, what."""

    at: float          # clock time of the original emission
    timestamp: float   # the sample's own timestamp
    output: str        # output full name ("instance.output")
    value: object      # decoded payload


class ReplayArchive:
    """A loaded flight-recorder archive directory."""

    def __init__(self, directory: str, records: List[ReplayRecord],
                 outputs: Dict[str, dict], manifest: dict) -> None:
        self.directory = directory
        self.records = records          # file order == emission order
        self.outputs = outputs          # full_name -> {owner, name, origin}
        self.manifest = manifest

    @classmethod
    def load(cls, directory: str) -> "ReplayArchive":
        samples_path = os.path.join(directory, ARCHIVE_SAMPLES_FILE)
        if not os.path.exists(samples_path):
            raise FileNotFoundError(
                f"no flight archive at {directory!r} (missing "
                f"{ARCHIVE_SAMPLES_FILE})"
            )
        records: List[ReplayRecord] = []
        with open(samples_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                records.append(
                    ReplayRecord(
                        at=float(obj["at"]),
                        timestamp=float(obj["t"]),
                        output=obj["o"],
                        value=decode_value(obj["v"]),
                    )
                )
        outputs: Dict[str, dict] = {}
        outputs_path = os.path.join(directory, ARCHIVE_OUTPUTS_FILE)
        if os.path.exists(outputs_path):
            with open(outputs_path, encoding="utf-8") as fh:
                outputs = json.load(fh)
        manifest: dict = {}
        manifest_path = os.path.join(directory, ARCHIVE_MANIFEST_FILE)
        if os.path.exists(manifest_path):
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        return cls(directory, records, outputs, manifest)

    def instances(self) -> Set[str]:
        """Instance ids that own at least one archived output."""
        owners = {meta["owner"] for meta in self.outputs.values()}
        owners.update(record.output.partition(".")[0] for record in self.records)
        return owners

    def outputs_of(self, instance_id: str) -> Dict[str, dict]:
        """Output name -> metadata for one instance's archived outputs."""
        return {
            meta["name"]: meta
            for full_name, meta in self.outputs.items()
            if meta["owner"] == instance_id
        }

    def records_for_instance(self, instance_id: str) -> List[ReplayRecord]:
        prefix = instance_id + "."
        return [r for r in self.records if r.output.startswith(prefix)]

    def samples_for_output(self, full_name: str) -> List[ReplayRecord]:
        return [r for r in self.records if r.output == full_name]

    def end_time(self) -> float:
        return max((r.at for r in self.records), default=0.0)


def _infer_tick(records: Sequence[ReplayRecord]) -> float:
    """Smallest positive gap between distinct emission times (default 1.0)."""
    times = sorted({r.at for r in records})
    gaps = [b - a for a, b in zip(times, times[1:]) if b - a > 1e-9]
    return min(gaps) if gaps else 1.0


class ReplaySourceModule(Module):
    """Re-emits one recorded instance's outputs from a flight archive.

    Configuration::

        [replay_source]
        id = sadc_slave01          ; assumes the original instance id
        instance = sadc_slave01    ; optional override
        tick = 1.0                 ; optional; inferred from the archive

    The archive is resolved through the ``replay_archive`` service.
    """

    type_name = "replay_source"

    def init(self) -> None:
        ctx = self.ctx
        ctx.require_no_inputs()
        archive: ReplayArchive = ctx.service("replay_archive")
        self.source_id = ctx.param_str("instance", ctx.instance_id)
        metas = archive.outputs_of(self.source_id)
        if not metas:
            raise ConfigError(
                f"replay_source '{ctx.instance_id}': archive has no outputs "
                f"for instance '{self.source_id}'"
            )
        self.outputs = {}
        for name in sorted(metas):
            meta = metas[name]
            origin_obj = meta.get("origin")
            origin = (
                Origin(**origin_obj) if isinstance(origin_obj, dict) else None
            )
            self.outputs[name] = ctx.create_output(name, origin)
        self._records = archive.records_for_instance(self.source_id)
        self._pos = 0
        self.samples_replayed = 0
        tick = ctx.param_float("tick", 0.0)
        if tick <= 0.0:
            tick = _infer_tick(self._records)
        ctx.schedule_every(tick, ctx.param_float("phase", 0.0))

    def run(self, reason: RunReason) -> None:
        now = self.ctx.clock.now() + 1e-9
        records = self._records
        pos = self._pos
        while pos < len(records) and records[pos].at <= now:
            record = records[pos]
            name = record.output.partition(".")[2]
            self.outputs[name].write(record.value, record.timestamp)
            self.samples_replayed += 1
            pos += 1
        self._pos = pos


def make_replay_registry(base: Optional[ModuleRegistry] = None) -> ModuleRegistry:
    """The standard registry plus ``replay_source``."""
    if base is None:
        from ..modules import standard_registry

        base = standard_registry()
    base.register(ReplaySourceModule)
    return base


def _substitute_sources(
    specs: Sequence[InstanceSpec],
    archive: ReplayArchive,
    replace: Optional[Sequence[str]] = None,
) -> List[InstanceSpec]:
    """Swap source instances for replay sources feeding from ``archive``."""
    recorded = archive.instances()
    if replace is None:
        replaced = {
            spec.instance_id
            for spec in specs
            if not spec.inputs and spec.instance_id in recorded
        }
    else:
        replaced = set(replace)
        missing = sorted(replaced - recorded)
        if missing:
            raise ConfigError(
                f"cannot replay: archive has no data for instances {missing}"
            )
    if not replaced:
        raise ConfigError(
            "cannot replay: no config instance matches the archive "
            f"(archived instances: {sorted(recorded)[:8]}...)"
        )
    out: List[InstanceSpec] = []
    for spec in specs:
        if spec.instance_id in replaced:
            out.append(
                InstanceSpec(
                    module_type="replay_source",
                    instance_id=spec.instance_id,
                    params={},
                    inputs=[],
                )
            )
        else:
            out.append(spec)
    return out


def replay_core(
    archive: ReplayArchive,
    config: Union[str, Sequence[InstanceSpec]],
    registry: Optional[ModuleRegistry] = None,
    services: Optional[dict] = None,
    replace: Optional[Sequence[str]] = None,
    telemetry=None,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
) -> FptCore:
    """Build a runnable core whose sources replay from ``archive``."""
    specs = parse_config(config) if isinstance(config, str) else list(config)
    specs = _substitute_sources(specs, archive, replace)
    if registry is None:
        registry = make_replay_registry()
    elif "replay_source" not in registry:
        registry.register(ReplaySourceModule)
    merged_services = {"replay_archive": archive}
    if services:
        merged_services.update(services)
    return FptCore(
        specs, registry, SimClock(), queue_capacity,
        services=merged_services, telemetry=telemetry,
    )


@dataclass
class ReplayResult:
    """Outcome of one archive replay, scored against the recording."""

    core: FptCore = field(repr=False)
    end_time: float = 0.0
    #: sink instance id -> alarms the replayed sink received.
    alarms: Dict[str, List[Alarm]] = field(default_factory=dict)
    #: sink instance id -> alarms the *recorded* run delivered to the
    #: same sink (reconstructed from the archived upstream channels).
    expected: Dict[str, List[Alarm]] = field(default_factory=dict)

    @property
    def matches(self) -> Dict[str, bool]:
        return {
            sink: self.alarms.get(sink, []) == self.expected.get(sink, [])
            for sink in self.expected
        }

    @property
    def all_match(self) -> bool:
        return all(self.matches.values()) if self.expected else True


def run_replay(
    archive: ReplayArchive,
    config: Union[str, Sequence[InstanceSpec]],
    duration: Optional[float] = None,
    services: Optional[dict] = None,
    replace: Optional[Sequence[str]] = None,
    telemetry=None,
) -> ReplayResult:
    """Replay ``archive`` through ``config`` and score alarm fidelity.

    Runs the replayed core to the archive's end (or ``duration``), then
    compares each ``print`` sink's alarms against the alarms the
    recorded run delivered on the same upstream channels.
    """
    from ..modules.alarms import PrintModule

    core = replay_core(
        archive, config, services=services, replace=replace,
        telemetry=telemetry,
    )
    end = duration if duration is not None else archive.end_time() + 1.0
    core.run_until(end)

    result = ReplayResult(core=core, end_time=end)
    for instance_id in core.instances:
        module = core.instance(instance_id)
        if not isinstance(module, PrintModule):
            continue
        result.alarms[instance_id] = module.alarms
        feeding = {
            f"{edge.src_instance}.{edge.output_name}"
            for edge in core.edges
            if edge.dst_instance == instance_id
        }
        result.expected[instance_id] = [
            r.value
            for r in archive.records
            if r.output in feeding and isinstance(r.value, Alarm)
        ]
    return result


def archived_stats_rounds(
    archive: ReplayArchive, instance_id: str = "analysis_bb",
    output: str = "stats",
) -> List[dict]:
    """Decoded per-round analysis ``stats`` dicts from an archive.

    Drop-in input for :func:`repro.experiments.sweep.blackbox_fp_sweep`
    / ``whitebox_fp_sweep`` -- threshold re-tuning over a captured trace
    without re-running the cluster.
    """
    return [
        r.value
        for r in archive.samples_for_output(f"{instance_id}.{output}")
        if isinstance(r.value, dict)
    ]
