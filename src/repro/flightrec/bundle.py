"""Incident bundles: the frozen evidence behind one fingerpointing verdict.

The paper's Figures 3/4 operator sees ``DataNodeAlarm`` fire and asks
*why*.  An incident bundle answers with everything the flight recorder
knows at that moment:

* the alarm itself (time, culprit node, raising analysis, detail) and
  the provenance chain of outputs that delivered it to the sink;
* the DAG path -- every instance upstream of the witnessing sink,
  computed by walking :class:`~repro.core.dag.Dag` edges backwards from
  the sink to the collectors, plus the edges among them;
* the last ``window_s`` seconds of every recorded channel on that path
  (the culprit's anomalous metric samples live here);
* the peer-comparison vectors: the newest ``stats`` round of each
  analysis instance on the path (per-node deviations against the
  median);
* the analysis configuration in force (each path instance's type and
  parameters -- thresholds, windows, consecutive counts).

Bundles are plain JSON documents so they can be shipped, diffed and
replayed long after the run.
"""

from __future__ import annotations

import glob
import json
import os
from collections import deque
from typing import Dict, List, Set, Tuple

from .codec import encode_value
from .recorder import INCIDENT_FORMAT, _origin_obj

__all__ = [
    "upstream_instances",
    "build_incident_bundle",
    "load_bundles",
    "render_bundle_text",
]


def upstream_instances(dag, instance_id: str) -> List[str]:
    """Every instance on a path into ``instance_id``, itself included.

    Walks the DAG's edges backwards (consumer to producer) until the
    collectors; the result is sorted for stable bundle output.
    """
    producers: Dict[str, Set[str]] = {}
    for edge in dag.edges:
        producers.setdefault(edge.dst_instance, set()).add(edge.src_instance)
    seen: Set[str] = {instance_id}
    queue = deque([instance_id])
    while queue:
        current = queue.popleft()
        for producer in producers.get(current, ()):
            if producer not in seen:
                seen.add(producer)
                queue.append(producer)
    return sorted(seen)


def build_incident_bundle(recorder, dag, alarm, sink: str,
                          inputs: Tuple[str, ...] = (),
                          window_s: float = 90.0) -> dict:
    """Freeze one alarm's evidence into a JSON-serializable bundle."""
    path = upstream_instances(dag, sink)
    on_path = set(path)
    edges = [
        {
            "src": edge.src_instance,
            "output": edge.output_name,
            "dst": edge.dst_instance,
            "input": edge.input_name,
        }
        for edge in dag.edges
        if edge.src_instance in on_path and edge.dst_instance in on_path
    ]

    since = alarm.time - window_s
    channels = {}
    peer_comparison = {}
    for full_name, ring in sorted(recorder.rings.items()):
        owner, _, output_name = full_name.partition(".")
        if owner not in on_path:
            continue
        samples = ring.window(since, alarm.time)
        channels[full_name] = {
            "origin": _origin_obj(ring.origin),
            "evictions": ring.evictions,
            "samples": [
                {"t": s.timestamp, "v": encode_value(s.value)}
                for s in samples
            ],
        }
        if output_name == "stats" and samples:
            # The newest completed analysis round: per-node deviation
            # vectors against the peer median -- Figure 4's evidence.
            peer_comparison[owner] = encode_value(samples[-1].value)

    config = {}
    for instance_id in path:
        ctx = dag.contexts.get(instance_id)
        module = dag.instances.get(instance_id)
        if ctx is None:
            continue
        config[instance_id] = {
            "type": module.type_name if module is not None else "",
            "params": dict(ctx.params),
        }

    raised_by = alarm.via[0] if alarm.via else (inputs[0] if inputs else None)
    return {
        "format": INCIDENT_FORMAT,
        "alarm": {
            "time": alarm.time,
            "node": alarm.node,
            "source": alarm.source,
            "detail": alarm.detail,
            "via": list(alarm.via),
        },
        "sink": sink,
        "delivered_via": list(inputs),
        "raised_by": raised_by,
        "window_s": window_s,
        "path": path,
        "edges": edges,
        "channels": channels,
        "peer_comparison": peer_comparison,
        "config": config,
    }


def load_bundles(directory: str) -> List[Tuple[str, dict]]:
    """Read every ``incident-*.json`` in ``directory``, oldest first."""
    bundles = []
    for path in sorted(glob.glob(os.path.join(directory, "incident-*.json"))):
        with open(path, encoding="utf-8") as fh:
            bundles.append((path, json.load(fh)))
    return bundles


def render_bundle_text(bundle: dict, channel_limit: int = 10) -> str:
    """Human-readable digest of one incident bundle."""
    alarm = bundle["alarm"]
    lines = [
        f"incident: t={alarm['time']:.0f}s culprit={alarm['node']} "
        f"[{alarm['source']}] {alarm['detail']}",
        f"  sink: {bundle['sink']}  raised by: {bundle.get('raised_by')}",
        f"  delivered via: {' -> '.join(bundle.get('delivered_via', ())) or '-'}",
        f"  dag path: {len(bundle['path'])} instances, "
        f"{len(bundle['edges'])} edges, {bundle['window_s']:.0f}s of evidence",
    ]
    channels = bundle.get("channels", {})
    shown = 0
    for name in sorted(channels):
        if shown >= channel_limit:
            lines.append(f"  ... and {len(channels) - shown} more channels")
            break
        entry = channels[name]
        count = len(entry["samples"])
        if not count:
            continue
        t0 = entry["samples"][0]["t"]
        t1 = entry["samples"][-1]["t"]
        lines.append(f"  channel {name}: {count} samples [{t0:.0f}s..{t1:.0f}s]")
        shown += 1
    for instance, stats in sorted(bundle.get("peer_comparison", {}).items()):
        if isinstance(stats, dict) and "items" in stats:
            decoded = {k: v for k, v in stats["items"]}
            nodes = decoded.get("nodes")
            deviations = decoded.get("deviations")
            if nodes and deviations:
                pairs = ", ".join(
                    f"{n}={d:.1f}" for n, d in zip(nodes, deviations)
                )
                lines.append(f"  peer comparison [{instance}]: {pairs}")
    thresholds = []
    for instance, entry in sorted(bundle.get("config", {}).items()):
        params = entry.get("params", {})
        interesting = {
            k: v for k, v in params.items()
            if k in ("threshold", "k", "bound", "consecutive", "window")
        }
        if interesting:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            thresholds.append(f"  config [{instance}]: {rendered}")
    lines.extend(thresholds)
    return "\n".join(lines)
