"""The ``analysis_bb`` black-box peer-comparison module (paper section 4.5).

Consumes per-second 1-NN state indices for every monitored node (one
input connection per node, usually via ``ibuffer`` batches).  Over each
window of ``window`` samples it builds a per-node **StateVector** -- the
histogram of state occupancies -- computes the component-wise median
vector across nodes, and flags node ``j`` anomalous when the L1 distance
``|StateVector_j - medianStateVector|`` exceeds the threshold.  A node is
fingerpointed after ``consecutive`` anomalous windows in a row ("it took
at least 3 consecutive windows to gain confidence in our detection").

Configuration::

    [analysis_bb]
    id = analysis
    threshold = 60
    window = 60
    slide = 60
    consecutive = 3
    num_states = 7
    input[l0] = @buf0
    input[l1] = @buf1
    ...

Outputs:

* ``alarms`` -- an :class:`repro.analysis.Alarm` per fingerpointing;
* ``decisions`` -- a list of :class:`repro.analysis.WindowDecision` per
  completed window round (consumed by the evaluation harness).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis.fleet import state_histogram_batch
from ..analysis.metrics import Alarm, WindowDecision
from ..analysis.peer import state_histogram, state_vector_l1_deviation
from ..core import Module, RunReason
from ..core.errors import ConfigError
from ._window_sync import ConsecutiveCounter, TimedWindow, WindowAligner


class BlackBoxAnalysisModule(Module):
    type_name = "analysis_bb"

    def init(self) -> None:
        ctx = self.ctx
        self.threshold = ctx.param_float("threshold")
        window = ctx.param_int("window", 60)
        slide = ctx.param_int("slide", window)
        self.consecutive = ctx.param_int("consecutive", 3)
        self.num_states = ctx.param_int("num_states")

        self.connections: Dict[str, object] = {}
        for group in ctx.inputs.values():
            for connection in group:
                origin = connection.origin
                node = origin.node if origin is not None else ""
                if not node:
                    raise ConfigError(
                        f"analysis_bb '{ctx.instance_id}': input connection "
                        "without node origin (wire it from sadc/knn outputs)"
                    )
                if node in self.connections:
                    raise ConfigError(
                        f"analysis_bb '{ctx.instance_id}': two inputs for "
                        f"node '{node}'"
                    )
                self.connections[node] = connection
        if len(self.connections) < 3:
            raise ConfigError(
                f"analysis_bb '{ctx.instance_id}': peer comparison needs at "
                f"least 3 nodes, got {len(self.connections)}"
            )
        self.nodes = sorted(self.connections)
        self._windows = {node: TimedWindow(window, slide) for node in self.nodes}
        self._aligner = WindowAligner(self.nodes)
        self._counter = ConsecutiveCounter(self.nodes, self.consecutive)
        self.alarms_out = ctx.create_output("alarms")
        self.decisions_out = ctx.create_output("decisions")
        # Raw per-round statistics, for offline threshold sweeps: a dict
        # with the node list, each node's L1 deviation and window bounds.
        self.stats_out = ctx.create_output("stats")
        self.rounds_processed = 0
        ctx.trigger_after_updates(len(self.connections))

    def run(self, reason: RunReason) -> None:
        rounds = []
        for node in self.nodes:  # fpt: noqa[FPT310] -- drains per-node queues; the math below is batched
            completed = []
            for sample in self.connections[node].pop_all():
                values = sample.value if isinstance(sample.value, list) else [sample.value]
                # A batched sample (from ibuffer) carries the timestamp of
                # its *last* element; earlier elements are one collection
                # interval apart.
                base = sample.timestamp - (len(values) - 1)
                for offset, value in enumerate(values):
                    completed.extend(
                        self._windows[node].push(base + offset, float(value))
                    )
            rounds.extend(self._aligner.push(node, completed))
        for window_round in rounds:
            self._process_round(window_round)

    def _process_round(self, window_round) -> None:
        matrices = [window_round[node][2] for node in self.nodes]  # fpt: noqa[FPT312] -- gathers one matrix per node to stack for the vectorized path
        if len({m.shape for m in matrices}) == 1:
            # Aligned rounds have one window shape fleet-wide: count all
            # nodes' state occupancies in a single offset-bincount pass
            # (bit-identical to the per-node loop -- integer counting).
            assignments = np.clip(
                np.stack(matrices).reshape(len(self.nodes), -1).astype(int),
                0,
                self.num_states - 1,
            )
            histograms = state_histogram_batch(assignments, self.num_states)
        else:
            # Ragged round (mismatched window shapes): per-node fallback.
            histograms = np.array(
                [
                    state_histogram(
                        np.clip(
                            matrix.ravel().astype(int),
                            0,
                            self.num_states - 1,
                        ),
                        self.num_states,
                    )
                    for matrix in matrices
                ]
            )
        deviations = state_vector_l1_deviation(histograms)
        anomalous = {
            node: bool(dev > self.threshold)
            for node, dev in zip(self.nodes, deviations)
        }
        fired = set(self._counter.update(anomalous))
        now = self.ctx.clock.now()
        decisions: List[WindowDecision] = []
        for node, deviation in zip(self.nodes, deviations):  # fpt: noqa[FPT310] -- one decision object per node per window round, not per sample
            start, end, _ = window_round[node]
            decisions.append(
                WindowDecision(
                    node=node,
                    window_start=start,
                    window_end=end + 1.0,
                    alarmed=node in fired,
                )
            )
            if node in fired:
                self.alarms_out.write(
                    Alarm(
                        time=now,
                        node=node,
                        source="blackbox",
                        detail=f"L1 deviation {deviation:.1f} > {self.threshold:.1f}",
                    ),
                    now,
                )
        self.decisions_out.write(decisions, now)
        self.stats_out.write(
            {
                "nodes": list(self.nodes),
                "deviations": [float(d) for d in deviations],
                "histograms": histograms,
                "windows": {
                    node: (window_round[node][0], window_round[node][1] + 1.0)
                    for node in self.nodes
                },
            },
            now,
        )
        self.rounds_processed += 1
