"""Active mitigation module (paper section 5).

"We also plan to equip ASDF with the ability to actively mitigate the
consequences of a performance problem once it is detected."

The ``mitigate`` module closes the loop: every alarm that reaches it is
turned into an action against the monitored system, through a
*mitigation controller* service.  The bundled controller for the Hadoop
substrate blacklists the fingerpointed slave at the JobTracker, so new
tasks route around the sick node while it keeps serving HDFS blocks --
Hadoop's own operational remedy for a misbehaving TaskTracker.

A ``min_alarms`` knob avoids acting on a single spurious alarm, and each
node is acted on at most once.

Configuration::

    [mitigate]
    id = responder
    input[a] = combined.alarms
    controller = mitigation_controller
    min_alarms = 2
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.metrics import Alarm
from ..core import Module, RunReason


class MitigationModule(Module):
    type_name = "mitigate"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(f"mitigate '{ctx.instance_id}': no inputs wired")
        self.controller = ctx.service(
            ctx.param_str("controller", "mitigation_controller")
        )
        self.min_alarms = ctx.param_int("min_alarms", 2)
        self._alarm_counts: Dict[str, int] = {}
        #: (time, node) pairs of actions actually taken.
        self.actions: List[tuple] = []
        self.actions_out = ctx.create_output("actions")
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        for group in self.ctx.inputs.values():
            for connection in group:
                for sample in connection.pop_all():
                    if isinstance(sample.value, Alarm):
                        self._handle(sample.value)

    def _handle(self, alarm: Alarm) -> None:
        node = alarm.node
        count = self._alarm_counts.get(node, 0) + 1
        self._alarm_counts[node] = count
        if count != self.min_alarms:
            return  # below the action bar, or already acted on
        now = self.ctx.clock.now()
        self.controller.mitigate(node, now)
        self.actions.append((now, node))
        self.actions_out.write({"time": now, "node": node}, now)
