"""Alarm sinks and combinators.

* ``print`` -- the terminal sink from the paper's Figures 3/4
  (``DataNodeAlarm``/``BlackBoxAlarm``): records, and optionally prints,
  everything that reaches it.
* ``alarm_union`` -- merges several alarm streams into one, implementing
  the paper's *combined* black-box + white-box fingerpointer ("combining
  the outputs of the white-box and black-box analysis yielded a modest
  improvement").  Forwarded alarms keep their provenance: the union
  appends the delivering upstream output to the alarm's ``via`` chain,
  so sinks, the audit trail and incident bundles name the analysis that
  actually raised the alarm, not the union.

When the owning core has telemetry enabled, every alarm that reaches a
``print`` sink is also written to the core's append-only
:class:`~repro.telemetry.AlarmAuditTrail` -- timestamp, culprit node,
raising analysis, the threshold evidence in the alarm's detail, the sink
that witnessed it and the full chain of outputs that delivered it.  When
a :class:`~repro.flightrec.FlightRecorder` is attached to the core, each
alarm additionally freezes an *incident bundle* (the recorded channel
windows, peer comparisons and config on the alarm's DAG path).

Non-quiet alarm echo goes through the ``repro.alarms`` logger (stdout by
default), so recorded runs can capture or redirect alarm text with
standard :mod:`logging` handlers.
"""

from __future__ import annotations

import logging
import sys
from dataclasses import replace
from typing import List

from ..analysis.metrics import Alarm
from ..core import Module, RunReason, Sample

#: Logger carrying non-quiet ``print``-sink echo lines.
ALARM_LOGGER_NAME = "repro.alarms"


class _StdoutHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stdout`` at emit time.

    Looking the stream up lazily keeps the historical stdout behaviour
    under test harnesses that swap ``sys.stdout`` (pytest's capsys).
    """

    def emit(self, record: logging.LogRecord) -> None:
        self.stream = sys.stdout
        super().emit(record)


def alarm_logger() -> logging.Logger:
    """The ``repro.alarms`` logger, defaulting to bare lines on stdout.

    The default handler is only installed when no handler was configured
    first, so applications (and tests) can redirect alarm text by adding
    their own handler before the first alarm fires.
    """
    logger = logging.getLogger(ALARM_LOGGER_NAME)
    if not logger.handlers:
        handler = _StdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    if logger.level == logging.NOTSET:
        logger.setLevel(logging.INFO)
    return logger


class PrintModule(Module):
    """Terminal sink: collect (and optionally echo) incoming samples."""

    type_name = "print"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(f"print '{ctx.instance_id}': no inputs wired")
        self.quiet = ctx.param_bool("quiet", True)
        self.prefix = ctx.param_str("prefix", ctx.instance_id)
        self.received: List[Sample] = []
        ctx.trigger_after_updates(1)

    @property
    def alarms(self) -> List[Alarm]:
        """The Alarm-typed subset of everything received."""
        return [s.value for s in self.received if isinstance(s.value, Alarm)]

    def run(self, reason: RunReason) -> None:
        telemetry = self.ctx.telemetry
        # Installed by FlightRecorder.attach after core construction;
        # absent on unrecorded cores, so this is one dict lookup per run.
        recorder = self.ctx.services.get("flight_recorder")
        logger = None if self.quiet else alarm_logger()
        for group in self.ctx.inputs.values():
            for connection in group:
                for sample in connection.pop_all():
                    self.received.append(sample)
                    value = sample.value
                    if isinstance(value, Alarm):
                        delivered = value.via + (connection.output.full_name,)
                        if telemetry.enabled:
                            telemetry.audit.record(
                                time=value.time,
                                node=value.node,
                                source=value.source,
                                detail=value.detail,
                                sink=self.instance_id,
                                inputs=delivered,
                            )
                        if recorder is not None:
                            recorder.record_incident(
                                value, sink=self.instance_id, inputs=delivered,
                            )
                    if logger is not None:
                        text = (
                            value.describe()
                            if isinstance(value, Alarm)
                            else repr(value)
                        )
                        logger.info("[%s] %s", self.prefix, text)


class AlarmUnionModule(Module):
    """Forward alarms from any input onto one combined output."""

    type_name = "alarm_union"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(f"alarm_union '{ctx.instance_id}': no inputs wired")
        self.out = ctx.create_output("alarms")
        self.forwarded = 0
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        for group in self.ctx.inputs.values():
            for connection in group:
                upstream = connection.output.full_name
                for sample in connection.pop_all():
                    if isinstance(sample.value, Alarm):
                        alarm = sample.value
                        forwarded = replace(
                            alarm, via=alarm.via + (upstream,)
                        )
                        self.out.write(forwarded, sample.timestamp)
                        self.forwarded += 1
