"""Alarm sinks and combinators.

* ``print`` -- the terminal sink from the paper's Figures 3/4
  (``DataNodeAlarm``/``BlackBoxAlarm``): records, and optionally prints,
  everything that reaches it.
* ``alarm_union`` -- merges several alarm streams into one, implementing
  the paper's *combined* black-box + white-box fingerpointer ("combining
  the outputs of the white-box and black-box analysis yielded a modest
  improvement").

When the owning core has telemetry enabled, every alarm that reaches a
``print`` sink is also written to the core's append-only
:class:`~repro.telemetry.AlarmAuditTrail` -- timestamp, culprit node,
raising analysis, the threshold evidence in the alarm's detail, the sink
that witnessed it and the upstream output that delivered it -- so each
fingerpointing verdict stays explainable after the run.
"""

from __future__ import annotations

from typing import List

from ..analysis.metrics import Alarm
from ..core import Module, RunReason, Sample


class PrintModule(Module):
    """Terminal sink: collect (and optionally echo) incoming samples."""

    type_name = "print"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(f"print '{ctx.instance_id}': no inputs wired")
        self.quiet = ctx.param_bool("quiet", True)
        self.prefix = ctx.param_str("prefix", ctx.instance_id)
        self.received: List[Sample] = []
        ctx.trigger_after_updates(1)

    @property
    def alarms(self) -> List[Alarm]:
        """The Alarm-typed subset of everything received."""
        return [s.value for s in self.received if isinstance(s.value, Alarm)]

    def run(self, reason: RunReason) -> None:
        telemetry = self.ctx.telemetry
        for group in self.ctx.inputs.values():
            for connection in group:
                for sample in connection.pop_all():
                    self.received.append(sample)
                    value = sample.value
                    if telemetry.enabled and isinstance(value, Alarm):
                        telemetry.audit.record(
                            time=value.time,
                            node=value.node,
                            source=value.source,
                            detail=value.detail,
                            sink=self.instance_id,
                            inputs=(connection.output.full_name,),
                        )
                    if not self.quiet:
                        text = (
                            value.describe()
                            if isinstance(value, Alarm)
                            else repr(value)
                        )
                        print(f"[{self.prefix}] {text}")


class AlarmUnionModule(Module):
    """Forward alarms from any input onto one combined output."""

    type_name = "alarm_union"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(f"alarm_union '{ctx.instance_id}': no inputs wired")
        self.out = ctx.create_output("alarms")
        self.forwarded = 0
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        for group in self.ctx.inputs.values():
            for connection in group:
                for sample in connection.pop_all():
                    if isinstance(sample.value, Alarm):
                        self.out.write(sample.value, sample.timestamp)
                        self.forwarded += 1
