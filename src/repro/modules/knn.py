"""The ``knn`` analysis module (paper section 3.6).

"The knn (k-nearest neighbors) module is used to match sample points
with centroids corresponding to known system states.  It takes as
configuration parameters k, a list of centroids, and a standard
deviation vector ... For each input sample s, a vector s' is computed as
``s'_i = log(1 + s_i) / sigma_i`` and the Euclidean distance between s'
and each centroid is computed.  The indices of the k nearest centroids
to s' in the configuration are output."

The centroids and sigma vector come from offline k-means training on
fault-free data; they are resolved through a service named by the
``model`` parameter, which must provide ``centroids`` (k x d array) and
``sigma`` (length-d array).  With the default ``k = 1`` the output is
the single nearest state index (the 1-NN workload classification of the
black-box fingerpointer).

Configuration::

    [knn]
    id = onenn0
    input[input] = sadc_slave01.vector
    model = bb_model
    k = 1
"""

from __future__ import annotations

import numpy as np

from ..core import Module, RunReason
from ..core.errors import ConfigError
from ..analysis.kmeans import nearest_k, nearest_k_batch


class KnnModule(Module):
    type_name = "knn"

    def init(self) -> None:
        ctx = self.ctx
        self.connection = ctx.input("input").single()
        self.k = ctx.param_int("k", 1)
        model = ctx.service(ctx.param_str("model", "bb_model"))
        self.centroids = np.asarray(model.centroids, dtype=float)
        self.sigma = np.asarray(model.sigma, dtype=float)
        if self.centroids.ndim != 2:
            raise ConfigError(
                f"knn '{ctx.instance_id}': centroids must be 2-D, got shape "
                f"{self.centroids.shape}"
            )
        if self.sigma.shape != (self.centroids.shape[1],):
            raise ConfigError(
                f"knn '{ctx.instance_id}': sigma shape {self.sigma.shape} does "
                f"not match centroid dimension {self.centroids.shape[1]}"
            )
        if not 1 <= self.k <= self.centroids.shape[0]:
            raise ConfigError(
                f"knn '{ctx.instance_id}': k={self.k} out of range "
                f"[1, {self.centroids.shape[0]}]"
            )
        self.out = ctx.create_output("output0", self.connection.origin)
        self.samples_classified = 0
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        samples = self.connection.pop_all()
        if not samples:
            return
        # Batch the math over the whole backlog: one scale + one distance
        # matrix instead of a Python loop of per-sample numpy calls.  The
        # outputs are still written sample by sample so downstream
        # trigger counting is unchanged.  Ragged input (a malformed
        # producer mixing vector lengths) falls back to the per-sample
        # path, which classifies what it can and fails where it did
        # before.
        try:
            raw = np.array([s.value for s in samples], dtype=float)
        except ValueError:
            raw = None
        if raw is not None and raw.ndim == 2 and raw.shape[1] == self.sigma.shape[0]:
            scaled = np.log1p(np.maximum(raw, 0.0)) / self.sigma
            order = nearest_k_batch(scaled, self.centroids, self.k)
            k = self.k
            out_write = self.out.write
            for sample, indices in zip(samples, order):
                value = int(indices[0]) if k == 1 else [int(i) for i in indices]
                out_write(value, sample.timestamp)
            self.samples_classified += len(samples)
            return
        for sample in samples:
            raw_one = np.asarray(sample.value, dtype=float)  # fpt: noqa[FPT311] -- ragged fallback path; the aligned path is the fleet module
            scaled = np.log1p(np.maximum(raw_one, 0.0)) / self.sigma
            indices = nearest_k(scaled, self.centroids, self.k)
            value = int(indices[0]) if self.k == 1 else [int(i) for i in indices]
            self.out.write(value, sample.timestamp)
            self.samples_classified += 1
