"""The ``knnfleet`` module: fleet-batched 1-NN state classification.

A *single* instance classifies the black-box metric vectors of every
monitored node, replacing N per-node ``knn`` instances with one module
that stacks all nodes' backlogs into one matrix and runs one scale +
distance pass (:func:`repro.analysis.kmeans.nearest_k_batch`) for the
whole fleet.  Every step of that math is row-independent, so the per
sample outputs are bit-identical to what per-node ``knn`` instances
produce -- only the channel names change (``onenn.slave01`` instead of
``onenn_slave01.output0``).

Inputs are one connection per node (resolved by origin, like
``analysis_bb``); outputs are one channel per node, named after the
node, each carrying the classified state index at the sample timestamp.

Configuration::

    [knnfleet]
    id = onenn
    model = bb_model
    k = 1
    input[v0] = sadc_slave01.vector
    input[v1] = sadc_slave02.vector
    ...
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.kmeans import nearest_k, nearest_k_batch
from ..core import Module, RunReason
from ..core.errors import ConfigError


class KnnFleetModule(Module):
    type_name = "knnfleet"

    def init(self) -> None:
        ctx = self.ctx
        self.k = ctx.param_int("k", 1)
        model = ctx.service(ctx.param_str("model", "bb_model"))
        self.centroids = np.asarray(model.centroids, dtype=float)
        self.sigma = np.asarray(model.sigma, dtype=float)
        if self.centroids.ndim != 2:
            raise ConfigError(
                f"knnfleet '{ctx.instance_id}': centroids must be 2-D, got "
                f"shape {self.centroids.shape}"
            )
        if self.sigma.shape != (self.centroids.shape[1],):
            raise ConfigError(
                f"knnfleet '{ctx.instance_id}': sigma shape {self.sigma.shape}"
                f" does not match centroid dimension {self.centroids.shape[1]}"
            )
        if not 1 <= self.k <= self.centroids.shape[0]:
            raise ConfigError(
                f"knnfleet '{ctx.instance_id}': k={self.k} out of range "
                f"[1, {self.centroids.shape[0]}]"
            )

        self.connections: Dict[str, object] = {}
        for group in ctx.inputs.values():
            for connection in group:
                origin = connection.origin
                node = origin.node if origin is not None else ""
                if not node:
                    raise ConfigError(
                        f"knnfleet '{ctx.instance_id}': input connection "
                        "without node origin (wire it from sadc outputs)"
                    )
                if node in self.connections:
                    raise ConfigError(
                        f"knnfleet '{ctx.instance_id}': two inputs for node "
                        f"'{node}'"
                    )
                self.connections[node] = connection
        if not self.connections:
            raise ConfigError(
                f"knnfleet '{ctx.instance_id}': needs at least one input"
            )
        self.nodes = sorted(self.connections)
        self.outputs = {
            node: ctx.create_output(node, self.connections[node].origin)
            for node in self.nodes
        }
        self.samples_classified = 0
        ctx.trigger_after_updates(len(self.connections))

    def run(self, reason: RunReason) -> None:
        backlogs = [  # fpt: noqa[FPT312] -- gather step feeding one batched classify pass
            (node, self.connections[node].pop_all()) for node in self.nodes
        ]
        backlogs = [(node, samples) for node, samples in backlogs if samples]  # fpt: noqa[FPT312] -- gather step feeding one batched classify pass
        if not backlogs:
            return
        # One scale + one distance matrix for the entire fleet's backlog.
        # Scaling is elementwise and nearest_k_batch is row-independent,
        # so each row's result is bit-identical to classifying it alone.
        try:
            raw = np.array(
                [s.value for _, samples in backlogs for s in samples],  # fpt: noqa[FPT312] -- builds the single fleet-wide batch the whole point is to classify at once
                dtype=float,
            )
        except ValueError:
            raw = None
        if raw is not None and raw.ndim == 2 and raw.shape[1] == self.sigma.shape[0]:
            scaled = np.log1p(np.maximum(raw, 0.0)) / self.sigma
            order = nearest_k_batch(scaled, self.centroids, self.k)
            k = self.k
            position = 0
            for node, samples in backlogs:  # fpt: noqa[FPT310] -- scatter step routing batched results back to per-node outputs
                out_write = self.outputs[node].write
                for sample in samples:
                    indices = order[position]
                    position += 1
                    value = (
                        int(indices[0]) if k == 1 else [int(i) for i in indices]
                    )
                    out_write(value, sample.timestamp)
                self.samples_classified += len(samples)
            return
        # Ragged backlog (a malformed producer mixing vector lengths):
        # classify per sample, failing exactly where per-node knn would.
        for node, samples in backlogs:  # fpt: noqa[FPT310] -- ragged fallback path, hit only by malformed producers
            for sample in samples:
                raw_one = np.asarray(sample.value, dtype=float)  # fpt: noqa[FPT311] -- ragged fallback path, hit only by malformed producers
                scaled = np.log1p(np.maximum(raw_one, 0.0)) / self.sigma
                indices = nearest_k(scaled, self.centroids, self.k)
                value = (
                    int(indices[0])
                    if self.k == 1
                    else [int(i) for i in indices]
                )
                self.outputs[node].write(value, sample.timestamp)
                self.samples_classified += 1
