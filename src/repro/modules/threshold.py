"""The ``threshold_alarm`` rule-based analysis module.

The frameworks ASDF positions itself against (Table 1: Ganglia, Nagios,
Tivoli) are mostly *rule-based*: alert when a metric crosses a bound.
That style of check is a one-module plug-in here, useful both on its own
(oversubscribed-resource alerts) and as a baseline next to the peer
comparison analyses.

Configuration::

    [threshold_alarm]
    id = cpu_rule
    input[m] = sadc_slave01.cpu_user_pct
    bound = 90.0
    direction = above       ; or "below"
    consecutive = 3         ; samples in a row before alarming

The input's origin attributes the alarm to a node.  Vector-valued
samples are reduced with ``reduce = max|min|mean`` first.
"""

from __future__ import annotations

import numpy as np

from ..analysis.metrics import Alarm
from ..core import Module, RunReason
from ..core.errors import ConfigError

_REDUCERS = {"max": np.max, "min": np.min, "mean": np.mean}


class ThresholdAlarmModule(Module):
    type_name = "threshold_alarm"

    def init(self) -> None:
        ctx = self.ctx
        self.connection = ctx.input("m").single()
        origin = self.connection.origin
        self.node = origin.node if origin is not None else ""
        self.metric = origin.describe() if origin is not None else "<input>"
        self.bound = ctx.param_float("bound")
        direction = ctx.param_str("direction", "above")
        if direction not in ("above", "below"):
            raise ConfigError(
                f"threshold_alarm '{ctx.instance_id}': direction must be "
                f"'above' or 'below', got {direction!r}"
            )
        self.direction = direction
        self.consecutive = ctx.param_int("consecutive", 1)
        if self.consecutive < 1:
            raise ConfigError(
                f"threshold_alarm '{ctx.instance_id}': consecutive must be >= 1"
            )
        reducer_name = ctx.param_str("reduce", "max")
        try:
            self._reduce = _REDUCERS[reducer_name]
        except KeyError:
            raise ConfigError(
                f"threshold_alarm '{ctx.instance_id}': unknown reduce "
                f"{reducer_name!r} (choose from {sorted(_REDUCERS)})"
            ) from None
        self._streak = 0
        self.alarms_out = ctx.create_output("alarms")
        self.samples_checked = 0
        ctx.trigger_after_updates(1)

    def _violates(self, value: float) -> bool:
        if self.direction == "above":
            return value > self.bound
        return value < self.bound

    def run(self, reason: RunReason) -> None:
        for sample in self.connection.pop_all():
            value = float(self._reduce(np.atleast_1d(np.asarray(sample.value, dtype=float))))
            self.samples_checked += 1
            if self._violates(value):
                self._streak += 1
                if self._streak >= self.consecutive:
                    self.alarms_out.write(
                        Alarm(
                            time=sample.timestamp,
                            node=self.node,
                            source="rule",
                            detail=(
                                f"{self.metric} {value:.2f} "
                                f"{self.direction} {self.bound:.2f} "
                                f"for {self._streak} samples"
                            ),
                        ),
                        sample.timestamp,
                    )
            else:
                self._streak = 0
