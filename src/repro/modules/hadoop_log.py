"""The ``hadoop_log`` data-collection module (paper sections 3.7, 4.4).

A *single* instance manages every monitored node, because the white-box
pipeline needs cross-node data synchronization that fpt-core's DAG does
not provide -- exactly the design the paper describes: "cross-instance
synchronization is needed within the hadoop_log module to ensure that
data outputs for each node is updated with Hadoop log data from the same
time point".

Each poll, the module collects newly stable per-second state vectors
from every node's ``hadoop_log_rpcd``.  A second is emitted -- one write
per node, all carrying the same timestamp -- only once *all* nodes have
produced it; seconds that remain incomplete past ``max_skew`` seconds
are dropped for every node ("if one or more nodes does not contain data
for a particular timestamp, this data is dropped").

Configuration::

    [hadoop_log]
    id = hl
    nodes = slave01,slave02,slave03
    interval = 1.0
    max_skew = 15

Outputs: one per node, named after the node, each carrying an
8-component white-box state vector per emitted second.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import Module, Origin, RunReason
from ..core.errors import ConfigError

#: Name of the service carrying node -> RPC channel mappings.
HADOOP_LOG_CHANNEL_SERVICE = "hadoop_log_channels"


class HadoopLogModule(Module):
    type_name = "hadoop_log"

    def init(self) -> None:
        ctx = self.ctx
        ctx.require_no_inputs()
        self.nodes: List[str] = ctx.param_list("nodes")
        if not self.nodes:
            raise ConfigError(
                f"hadoop_log instance '{ctx.instance_id}': 'nodes' is empty"
            )
        channels: Dict[str, object] = ctx.service(HADOOP_LOG_CHANNEL_SERVICE)
        missing = [node for node in self.nodes if node not in channels]
        if missing:
            raise ConfigError(
                f"hadoop_log instance '{ctx.instance_id}': no channel for "
                f"nodes {missing}"
            )
        # Each node may expose several daemons (hl-tt and hl-dn in the
        # paper's Table 4); their state vectors are summed per second.
        self.channels: Dict[str, List[object]] = {}
        for node in self.nodes:
            entry = channels[node]
            self.channels[node] = (
                list(entry) if isinstance(entry, (list, tuple)) else [entry]
            )
        self.outputs = {
            node: ctx.create_output(
                node, Origin(node=node, source="hadoop_log", metric="state_vector")
            )
            for node in self.nodes
        }
        self.max_skew = ctx.param_float("max_skew", 15.0)
        #: node -> {second -> (channels_reporting, summed_vector)}; a
        #: second is node-complete once every channel has reported it.
        self._pending: Dict[str, Dict[int, "tuple[int, np.ndarray]"]] = {
            node: {} for node in self.nodes
        }
        self._emitted_through = -1
        self.seconds_emitted = 0
        self.seconds_dropped = 0
        ctx.schedule_every(
            ctx.param_float("interval", 1.0), ctx.param_float("phase", 0.0)
        )

    def run(self, reason: RunReason) -> None:
        now = self.ctx.clock.now()
        for node in self.nodes:
            pending = self._pending[node]
            for channel in self.channels[node]:
                result = channel.call("collect", now=now)
                for second, vector in zip(result["seconds"], result["vectors"]):
                    second = int(second)
                    if second <= self._emitted_through:
                        continue
                    vector = np.asarray(vector, dtype=float)
                    if second in pending:
                        count, total = pending[second]
                        pending[second] = (count + 1, total + vector)
                    else:
                        pending[second] = (1, vector)
        self._emit_synchronized(now)
        self._drop_stale(now)

    def _node_complete(self, node: str, second: int) -> bool:
        entry = self._pending[node].get(second)
        return entry is not None and entry[0] >= len(self.channels[node])

    def _emit_synchronized(self, now: float) -> None:
        """Emit every second available on all nodes, in time order."""
        while True:
            candidate = self._emitted_through + 1
            if all(self._node_complete(node, candidate) for node in self.nodes):
                for node in self.nodes:
                    _, vector = self._pending[node].pop(candidate)
                    self.outputs[node].write(vector, float(candidate))
                self._emitted_through = candidate
                self.seconds_emitted += 1
                continue
            # The next second is incomplete; nothing newer may overtake it
            # (emission is strictly in time order), so stop here.
            return

    def _drop_stale(self, now: float) -> None:
        """Give up on seconds that stayed incomplete past the skew bound."""
        stale_cutoff = int(now - self.max_skew)
        candidate = self._emitted_through + 1
        while candidate < stale_cutoff:
            if all(self._node_complete(node, candidate) for node in self.nodes):
                break  # actually complete; the emit loop will take it
            for node in self.nodes:
                self._pending[node].pop(candidate, None)
            self._emitted_through = candidate
            self.seconds_dropped += 1
            candidate += 1

    def close(self) -> None:
        for channels in self.channels.values():
            for channel in channels:
                close = getattr(channel, "close", None)
                if callable(close):
                    close()
