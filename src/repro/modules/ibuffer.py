"""The ``ibuffer`` rate-matching module (paper section 3.7).

"Data collection may potentially be faster than data analysis ... a
buffer module (ibuffer) has been written to collect individual data
points from a data collection module output, and present the data as an
array of data points to an analysis module, which can then process a
larger data set more slowly."

Configuration::

    [ibuffer]
    id = buf1
    input[input] = onenn0.output0
    size = 10          ; samples per emitted batch
    slide = 10         ; optional; < size gives overlapping batches

Output ``output0`` carries a list of the buffered sample values each
time ``size`` samples have accumulated.
"""

from __future__ import annotations

from typing import Any, List

from ..core import Module, RunReason


class IBufferModule(Module):
    type_name = "ibuffer"

    def init(self) -> None:
        ctx = self.ctx
        self.connection = ctx.input("input").single()
        self.size = ctx.param_int("size", 10)
        self.slide = ctx.param_int("slide", self.size)
        if self.size <= 0:
            from ..core.errors import ConfigError

            raise ConfigError(
                f"ibuffer '{ctx.instance_id}': size must be positive"
            )
        if self.slide <= 0 or self.slide > self.size:
            from ..core.errors import ConfigError

            raise ConfigError(
                f"ibuffer '{ctx.instance_id}': slide must be in [1, size]"
            )
        self.out = ctx.create_output("output0", self.connection.origin)
        self._buffer: List[Any] = []
        self.batches_emitted = 0
        # Run on every single upstream write.
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        for sample in self.connection.pop_all():
            self._buffer.append(sample.value)
            while len(self._buffer) >= self.size:
                batch = list(self._buffer[: self.size])  # fpt: noqa[FPT311] -- the emitted batch itself; one list per window, not per sample
                self.out.write(batch, self.ctx.clock.now())
                del self._buffer[: self.slide]
                self.batches_emitted += 1
