"""The ``scoreboard`` sink: routes alarms and decisions into an Observatory.

An ordinary fpt-core sink, wired like ``print`` but feeding the
diagnosis observatory (:mod:`repro.obsv`) instead of a terminal: every
delivered :class:`~repro.analysis.metrics.Alarm` is scored online
against the registered ground-truth windows and walked through the
latency tracer; every delivered
:class:`~repro.analysis.metrics.WindowDecision` batch updates the
rolling per-(fault, detector) confusion counts.

The observatory is looked up lazily from the ``observatory`` service
(name configurable via the ``service`` parameter) on every run, exactly
like ``print`` resolves the flight recorder -- so the module tolerates
an observatory attached after construction, and costs one dict lookup
per run when none is registered at all.
"""

from __future__ import annotations

from typing import List

from ..analysis.metrics import Alarm, WindowDecision
from ..core import Module, RunReason

#: Default service name the sink resolves its observatory from.
DEFAULT_OBSERVATORY_SERVICE = "observatory"


class ScoreboardModule(Module):
    """Online scoring sink: alarms and decisions -> the observatory."""

    type_name = "scoreboard"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(
                f"scoreboard '{ctx.instance_id}': no inputs wired"
            )
        self.service_name = ctx.param_str(
            "service", DEFAULT_OBSERVATORY_SERVICE
        )
        self.alarms_routed = 0
        self.decision_batches_routed = 0
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        observatory = self.ctx.services.get(self.service_name)
        now = self.ctx.clock.now()
        for group in self.ctx.inputs.values():
            for connection in group:
                upstream = connection.output.full_name
                for sample in connection.pop_all():
                    value = sample.value
                    if isinstance(value, Alarm):
                        self.alarms_routed += 1
                        if observatory is not None:
                            delivered = value.via + (upstream,)
                            observatory.observe_alarm(
                                value, delivered, sim_now=now
                            )
                    elif isinstance(value, list) and _is_decisions(value):
                        self.decision_batches_routed += 1
                        if observatory is not None:
                            observatory.observe_decisions(upstream, value)


def _is_decisions(value: List) -> bool:
    return all(isinstance(item, WindowDecision) for item in value)
