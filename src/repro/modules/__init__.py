"""The standard ASDF module library.

Data collection: ``sadc`` (black-box /proc metrics), ``hadoop_log``
(white-box state vectors with cross-node synchronization).
Analysis: ``mavgvec``, ``knn``, ``knnfleet`` (one instance classifying
the whole fleet in batched numpy passes), ``analysis_bb``,
``analysis_wb``.
Plumbing/sinks: ``ibuffer``, ``print``, ``alarm_union``, ``csv_writer``,
``scoreboard`` (online ground-truth scoring into the observatory).

:func:`standard_registry` returns a registry with all of them, ready to
be extended with user modules (the paper's pluggability requirement).
"""

from ..core.registry import ModuleRegistry
from .alarms import AlarmUnionModule, PrintModule
from .analysis_bb import BlackBoxAnalysisModule
from .analysis_wb import WhiteBoxAnalysisModule
from .csvio import CsvWriterModule
from .hadoop_log import HADOOP_LOG_CHANNEL_SERVICE, HadoopLogModule
from .ibuffer import IBufferModule
from .knn import KnnModule
from .knnfleet import KnnFleetModule
from .mavgvec import MavgVecModule
from .mitigate import MitigationModule
from .sadc import SADC_CHANNEL_SERVICE, SadcModule
from .scoreboard import ScoreboardModule
from .threshold import ThresholdAlarmModule
from .strace import (
    STRACE_CHANNEL_SERVICE,
    StraceModule,
    SyscallAnomalyModule,
    js_divergence,
)

STANDARD_MODULES = (
    AlarmUnionModule,
    BlackBoxAnalysisModule,
    CsvWriterModule,
    HadoopLogModule,
    IBufferModule,
    KnnFleetModule,
    KnnModule,
    MavgVecModule,
    MitigationModule,
    PrintModule,
    SadcModule,
    ScoreboardModule,
    StraceModule,
    SyscallAnomalyModule,
    ThresholdAlarmModule,
    WhiteBoxAnalysisModule,
)


def standard_registry() -> ModuleRegistry:
    """A fresh registry containing every standard module."""
    registry = ModuleRegistry()
    for module_class in STANDARD_MODULES:
        registry.register(module_class)
    return registry


__all__ = [
    "AlarmUnionModule",
    "BlackBoxAnalysisModule",
    "CsvWriterModule",
    "HADOOP_LOG_CHANNEL_SERVICE",
    "HadoopLogModule",
    "IBufferModule",
    "KnnFleetModule",
    "KnnModule",
    "MavgVecModule",
    "MitigationModule",
    "PrintModule",
    "SADC_CHANNEL_SERVICE",
    "STANDARD_MODULES",
    "STRACE_CHANNEL_SERVICE",
    "SadcModule",
    "ScoreboardModule",
    "StraceModule",
    "SyscallAnomalyModule",
    "ThresholdAlarmModule",
    "WhiteBoxAnalysisModule",
    "js_divergence",
    "standard_registry",
]
