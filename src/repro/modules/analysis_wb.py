"""The ``analysis_wb`` white-box peer-comparison module (paper section 4.4).

Consumes per-second white-box state vectors (from ``hadoop_log``) for
every monitored node.  Over each window it computes each node's
per-metric mean, takes the median of the means across nodes, and flags
node ``i`` anomalous when ``|mean_metric_i - median_mean_metric|``
exceeds the adaptive threshold ``max(1, k * sigma_median)`` for one or
more metrics.  Fingerpointing requires ``consecutive`` anomalous windows
in a row.

Configuration::

    [analysis_wb]
    id = analysis
    k = 3
    window = 60
    slide = 60
    consecutive = 2
    input[n0] = hl.slave01
    input[n1] = hl.slave02
    ...

Outputs mirror ``analysis_bb``: ``alarms`` and ``decisions``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis.fleet import window_moments_batch
from ..analysis.metrics import Alarm, WindowDecision
from ..analysis.peer import whitebox_anomalies
from ..core import Module, RunReason
from ..core.errors import ConfigError
from ._window_sync import ConsecutiveCounter, TimedWindow, WindowAligner


class WhiteBoxAnalysisModule(Module):
    type_name = "analysis_wb"

    def init(self) -> None:
        ctx = self.ctx
        self.k = ctx.param_float("k", 3.0)
        window = ctx.param_int("window", 60)
        slide = ctx.param_int("slide", window)
        self.consecutive = ctx.param_int("consecutive", 2)

        self.connections: Dict[str, object] = {}
        for group in ctx.inputs.values():
            for connection in group:
                origin = connection.origin
                node = origin.node if origin is not None else ""
                if not node:
                    raise ConfigError(
                        f"analysis_wb '{ctx.instance_id}': input connection "
                        "without node origin (wire it from hadoop_log outputs)"
                    )
                if node in self.connections:
                    raise ConfigError(
                        f"analysis_wb '{ctx.instance_id}': two inputs for "
                        f"node '{node}'"
                    )
                self.connections[node] = connection
        if len(self.connections) < 3:
            raise ConfigError(
                f"analysis_wb '{ctx.instance_id}': peer comparison needs at "
                f"least 3 nodes, got {len(self.connections)}"
            )
        self.nodes = sorted(self.connections)
        self._windows = {node: TimedWindow(window, slide) for node in self.nodes}
        self._aligner = WindowAligner(self.nodes)
        self._counter = ConsecutiveCounter(self.nodes, self.consecutive)
        self.alarms_out = ctx.create_output("alarms")
        self.decisions_out = ctx.create_output("decisions")
        # Raw per-round statistics, for offline k sweeps: the node list
        # plus each node's window means and stds per metric.
        self.stats_out = ctx.create_output("stats")
        self.rounds_processed = 0
        ctx.trigger_after_updates(len(self.connections))

    def run(self, reason: RunReason) -> None:
        rounds = []
        for node in self.nodes:  # fpt: noqa[FPT310] -- drains per-node queues; the math below is batched
            completed = []
            for sample in self.connections[node].pop_all():
                completed.extend(
                    self._windows[node].push(sample.timestamp, sample.value)
                )
            rounds.extend(self._aligner.push(node, completed))
        for window_round in rounds:
            self._process_round(window_round)

    def _process_round(self, window_round) -> None:
        matrices = [window_round[node][2] for node in self.nodes]  # fpt: noqa[FPT312] -- gathers one matrix per node to stack for the vectorized path
        if len({m.shape for m in matrices}) == 1 and matrices[0].ndim == 2:
            # Aligned rounds have one window shape fleet-wide: reduce the
            # whole (n_nodes, window, metrics) tensor in one call.  Numpy
            # applies the same pairwise reduction per row as per matrix,
            # so this is bit-identical to the per-node loop (pinned by
            # the parity tests).
            means, stds = window_moments_batch(np.stack(matrices))
        else:
            # Ragged round (mismatched window shapes): per-node fallback.
            means = np.array([m.mean(axis=0) for m in matrices])
            stds = np.array([m.std(axis=0) for m in matrices])
        verdict = whitebox_anomalies(means, stds, self.k)
        anomalous = {
            node: bool(flag)
            for node, flag in zip(self.nodes, verdict.anomalous_nodes)
        }
        fired = set(self._counter.update(anomalous))
        now = self.ctx.clock.now()
        decisions: List[WindowDecision] = []
        for index, node in enumerate(self.nodes):  # fpt: noqa[FPT310] -- one decision object per node per window round, not per sample
            start, end, _ = window_round[node]
            decisions.append(
                WindowDecision(
                    node=node,
                    window_start=start,
                    window_end=end + 1.0,
                    alarmed=node in fired,
                )
            )
            if node in fired:
                metric_indices = verdict.anomalous_metrics[index]
                self.alarms_out.write(
                    Alarm(
                        time=now,
                        node=node,
                        source="whitebox",
                        detail=f"metrics over threshold: {metric_indices}",
                    ),
                    now,
                )
        self.decisions_out.write(decisions, now)
        self.stats_out.write(
            {
                "nodes": list(self.nodes),
                "means": means,
                "stds": stds,
                "windows": {
                    node: (window_round[node][0], window_round[node][1] + 1.0)
                    for node in self.nodes
                },
            },
            now,
        )
        self.rounds_processed += 1
