"""Shared plumbing for the analysis modules: timed windows, cross-node
window alignment, and consecutive-anomaly counting.

The two peer-comparison analyses (black-box and white-box) share the
same skeleton: per-node per-second samples are windowed, one window per
node is compared against the peers' windows, and a node is fingerpointed
only after several consecutive anomalous windows (the paper needed "at
least 3 consecutive windows to gain confidence in our detection").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


class TimedWindow:
    """A streaming window that remembers sample timestamps.

    Emits ``(start_time, end_time, matrix)`` for every completed window,
    where ``matrix`` has shape (size, n_metrics).
    """

    def __init__(self, size: int, slide: int) -> None:
        if size <= 0 or slide <= 0 or slide > size:
            raise ValueError(f"bad window geometry: size={size}, slide={slide}")
        self.size = size
        self.slide = slide
        self._times: List[float] = []
        self._values: List[np.ndarray] = []

    def push(self, timestamp: float, value) -> List[Tuple[float, float, np.ndarray]]:
        self._times.append(float(timestamp))
        self._values.append(np.atleast_1d(np.asarray(value, dtype=float)))
        completed = []
        while len(self._values) >= self.size:
            matrix = np.array(self._values[: self.size])
            completed.append((self._times[0], self._times[self.size - 1], matrix))
            del self._times[: self.slide]
            del self._values[: self.slide]
        return completed


class WindowAligner:
    """Aligns completed windows across nodes by window index.

    Each node's window stream is pushed in independently; a *round* --
    one window from every node, all with the same index -- is released
    as soon as it is complete.  Peer comparison is only meaningful on
    complete rounds.
    """

    def __init__(self, nodes: Sequence[str]) -> None:
        self.nodes = list(nodes)
        self._queues: Dict[str, List[Tuple[float, float, np.ndarray]]] = {
            node: [] for node in self.nodes
        }

    def push(
        self, node: str, windows: List[Tuple[float, float, np.ndarray]]
    ) -> List[Dict[str, Tuple[float, float, np.ndarray]]]:
        self._queues[node].extend(windows)
        rounds = []
        while all(self._queues[n] for n in self.nodes):
            rounds.append({n: self._queues[n].pop(0) for n in self.nodes})
        return rounds


class ConsecutiveCounter:
    """Fires once a node has been anomalous N windows in a row.

    ``update`` returns the set of nodes that *cross* the confidence
    threshold this round (an already-firing node keeps firing each round
    while it stays anomalous; callers decide whether to re-alert).
    """

    def __init__(self, nodes: Sequence[str], required: int) -> None:
        if required < 1:
            raise ValueError(f"required consecutive count must be >= 1: {required}")
        self.required = required
        self._streaks: Dict[str, int] = {node: 0 for node in nodes}

    def update(self, anomalous: Dict[str, bool]) -> List[str]:
        fired = []
        for node, is_anomalous in anomalous.items():
            if is_anomalous:
                self._streaks[node] = self._streaks.get(node, 0) + 1
                if self._streaks[node] >= self.required:
                    fired.append(node)
            else:
                self._streaks[node] = 0
        return fired

    def streak(self, node: str) -> int:
        return self._streaks.get(node, 0)
