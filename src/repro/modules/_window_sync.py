"""Shared plumbing for the analysis modules: timed windows, cross-node
window alignment, and consecutive-anomaly counting.

The two peer-comparison analyses (black-box and white-box) share the
same skeleton: per-node per-second samples are windowed, one window per
node is compared against the peers' windows, and a node is fingerpointed
only after several consecutive anomalous windows (the paper needed "at
least 3 consecutive windows to gain confidence in our detection").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class TimedWindow:
    """A streaming window that remembers sample timestamps.

    Emits ``(start_time, end_time, matrix)`` for every completed window,
    where ``matrix`` has shape (size, n_metrics).

    Samples are stored in one contiguous ``(capacity, n_metrics)`` array
    (sized on the first push, when the metric width is known) instead of
    a Python list of per-sample vectors: appending is a row assignment,
    sliding is pointer arithmetic, and a completed window is a single
    contiguous slice copy.  The old list-based implementation rebuilt a
    fresh matrix with ``np.array(values[:size])`` for every emission,
    which dominated the analysis modules' per-sample cost.
    """

    def __init__(self, size: int, slide: int) -> None:
        if size <= 0 or slide <= 0 or slide > size:
            raise ValueError(f"bad window geometry: size={size}, slide={slide}")
        self.size = size
        self.slide = slide
        self._times: Optional[np.ndarray] = None   # (capacity,)
        self._buffer: Optional[np.ndarray] = None  # (capacity, n_metrics)
        self._start = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, timestamp: float, value) -> List[Tuple[float, float, np.ndarray]]:
        row = np.atleast_1d(np.asarray(value, dtype=float))
        buffer = self._buffer
        if buffer is None:
            # First sample fixes the metric width; capacity 2x the window
            # keeps the compaction memmove rare (at most every `size`
            # pushes) without unbounded growth.
            capacity = 2 * self.size
            buffer = self._buffer = np.empty((capacity, row.shape[0]), dtype=float)
            self._times = np.empty(capacity, dtype=float)
        times = self._times
        end = self._start + self._count
        if end == buffer.shape[0]:
            # Compact the live region back to the front.
            buffer[: self._count] = buffer[self._start : end]
            times[: self._count] = times[self._start : end]
            self._start = 0
            end = self._count
        buffer[end] = row
        times[end] = float(timestamp)
        self._count += 1
        completed = []
        while self._count >= self.size:
            start = self._start
            matrix = buffer[start : start + self.size].copy()
            completed.append(
                (float(times[start]), float(times[start + self.size - 1]), matrix)
            )
            self._start += self.slide
            self._count -= self.slide
        return completed


class WindowAligner:
    """Aligns completed windows across nodes by window index.

    Each node's window stream is pushed in independently; a *round* --
    one window from every node, all with the same index -- is released
    as soon as it is complete.  Peer comparison is only meaningful on
    complete rounds.
    """

    def __init__(self, nodes: Sequence[str]) -> None:
        self.nodes = list(nodes)
        self._queues: Dict[str, List[Tuple[float, float, np.ndarray]]] = {
            node: [] for node in self.nodes
        }

    def push(
        self, node: str, windows: List[Tuple[float, float, np.ndarray]]
    ) -> List[Dict[str, Tuple[float, float, np.ndarray]]]:
        self._queues[node].extend(windows)
        rounds = []
        while all(self._queues[n] for n in self.nodes):
            rounds.append({n: self._queues[n].pop(0) for n in self.nodes})
        return rounds


class ConsecutiveCounter:
    """Fires once a node has been anomalous N windows in a row.

    ``update`` returns the set of nodes that *cross* the confidence
    threshold this round (an already-firing node keeps firing each round
    while it stays anomalous; callers decide whether to re-alert).
    """

    def __init__(self, nodes: Sequence[str], required: int) -> None:
        if required < 1:
            raise ValueError(f"required consecutive count must be >= 1: {required}")
        self.required = required
        self._streaks: Dict[str, int] = {node: 0 for node in nodes}

    def update(self, anomalous: Dict[str, bool]) -> List[str]:
        fired = []
        for node, is_anomalous in anomalous.items():
            if is_anomalous:
                self._streaks[node] = self._streaks.get(node, 0) + 1
                if self._streaks[node] >= self.required:
                    fired.append(node)
            else:
                self._streaks[node] = 0
        return fired

    def streak(self, node: str) -> int:
        return self._streaks.get(node, 0)
