"""The ``mavgvec`` analysis module (paper section 3.6).

"The mavgvec module calculates arithmetic mean and variance of a moving
window of sample vectors.  The sample vector size and window width are
configurable, as is the number of samples to slide the window before
generating new outputs."

Each run consumes the newest sample from every wired input connection,
stacking them into one sample vector (a single vector-valued input works
too).  When a window completes, the ``mean`` and ``var`` outputs carry
the element-wise statistics over the window.

Configuration::

    [mavgvec]
    id = mavgvec_dn_node1
    input[input] = hl.slave01
    window = 60
    slide = 60
"""

from __future__ import annotations

import numpy as np

from ..core import Module, RunReason
from ._window_sync import TimedWindow


class MavgVecModule(Module):
    type_name = "mavgvec"

    def init(self) -> None:
        ctx = self.ctx
        self.group = ctx.input("input")
        window = ctx.param_int("window", 60)
        slide = ctx.param_int("slide", window)
        self._window = TimedWindow(window, slide)
        origin = self.group[0].origin
        self.mean_out = ctx.create_output("mean", origin)
        self.var_out = ctx.create_output("var", origin)
        self.windows_emitted = 0
        # Run once per full set of input updates (the default trigger).

    def run(self, reason: RunReason) -> None:
        samples = self.group.pop_latest_vector()
        if any(sample is None for sample in samples):
            return
        if len(samples) == 1:
            # Single wired connection (the common deployment): skip the
            # stack-and-concatenate round trip.
            vector = np.atleast_1d(np.asarray(samples[0].value, dtype=float))
            timestamp = samples[0].timestamp
        else:
            parts = [np.atleast_1d(np.asarray(s.value, dtype=float)) for s in samples]
            vector = np.concatenate(parts)
            timestamp = max(sample.timestamp for sample in samples)
        for _, end_time, matrix in self._window.push(timestamp, vector):
            self.mean_out.write(matrix.mean(axis=0), end_time)
            self.var_out.write(matrix.var(axis=0), end_time)
            self.windows_emitted += 1
