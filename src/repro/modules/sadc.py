"""The ``sadc`` data-collection module (paper section 3.5).

Polls one node's ``sadc_rpcd`` daemon once per sampling interval and
exposes the black-box metrics as fpt-core outputs: a ``vector`` output
carrying the full 64-metric node-level vector, plus (optionally) one
scalar output per metric named in the ``metrics`` parameter.

Configuration::

    [sadc]
    id = sadc_slave01
    node = slave01          ; which daemon to poll
    interval = 1.0          ; seconds between samples
    metrics = cpu_user_pct,net_rxkb_per_s   ; optional scalar outputs

The connection to the remote daemon is resolved through the
``sadc_channels`` service: a mapping from node name to an RPC channel
(:class:`repro.rpc.RpcClient` or :class:`repro.rpc.InprocChannel`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import Module, Origin, RunReason
from ..core.errors import ConfigError
from ..sysstat.metrics import NODE_METRICS

#: Name of the service carrying node -> RPC channel mappings.
SADC_CHANNEL_SERVICE = "sadc_channels"


class SadcModule(Module):
    type_name = "sadc"

    def init(self) -> None:
        ctx = self.ctx
        ctx.require_no_inputs()
        self.node = ctx.param_str("node")
        channels: Dict[str, object] = ctx.service(SADC_CHANNEL_SERVICE)
        if self.node not in channels:
            raise ConfigError(
                f"sadc instance '{ctx.instance_id}': no channel registered "
                f"for node '{self.node}'"
            )
        self.channel = channels[self.node]

        self.vector_out = ctx.create_output(
            "vector", Origin(node=self.node, source="sadc", metric="node_vector")
        )
        self.metric_outputs = {}
        for name in ctx.param_list("metrics", default=[]):
            if name not in NODE_METRICS:
                raise ConfigError(
                    f"sadc instance '{ctx.instance_id}': unknown metric "
                    f"'{name}'"
                )
            self.metric_outputs[name] = ctx.create_output(
                name, Origin(node=self.node, source="sadc", metric=name)
            )
        self.samples_collected = 0
        self.priming_skips = 0
        ctx.schedule_every(
            ctx.param_float("interval", 1.0), ctx.param_float("phase", 0.0)
        )

    def run(self, reason: RunReason) -> None:
        now = self.ctx.clock.now()
        result = self.channel.call("sample", now=now)
        if result is None:
            self.priming_skips += 1
            return
        node_metrics = result["node"]
        vector = np.array([node_metrics[name] for name in NODE_METRICS])
        self.vector_out.write(vector, now)
        for name, output in self.metric_outputs.items():
            output.write(float(node_metrics[name]), now)
        self.samples_collected += 1

    def close(self) -> None:
        close = getattr(self.channel, "close", None)
        if callable(close):
            close()
