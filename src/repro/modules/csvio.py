"""CSV logging module: ASDF as a pure data-collection engine.

The paper's "offline and online analyses" goal (section 2.1): when users
want to post-process gathered data themselves, ASDF turns into a
data-collection and data-logging engine.  Wire any outputs into a
``csv_writer`` and every sample lands in a CSV file with its timestamp
and origin.

Configuration::

    [csv_writer]
    id = logger
    path = /tmp/asdf-metrics.csv
    input[a] = @sadc_slave01
"""

from __future__ import annotations

import csv

import numpy as np

from ..core import Module, RunReason


def _flatten(value) -> list:
    """Render a sample value as a flat list of CSV cells."""
    if isinstance(value, (list, tuple, np.ndarray)):
        return [float(x) for x in np.asarray(value).ravel()]
    if isinstance(value, (int, float, np.floating, np.integer)):
        return [float(value)]
    return [str(value)]


class CsvWriterModule(Module):
    type_name = "csv_writer"

    def init(self) -> None:
        ctx = self.ctx
        if not ctx.inputs:
            from ..core.errors import ConfigError

            raise ConfigError(f"csv_writer '{ctx.instance_id}': no inputs wired")
        self.path = ctx.param_str("path")
        self._file = open(self.path, "w", newline="")
        self._writer = csv.writer(self._file)
        self._writer.writerow(["timestamp", "origin", "values..."])
        self.rows_written = 0
        ctx.trigger_after_updates(1)

    def run(self, reason: RunReason) -> None:
        for group in self.ctx.inputs.values():
            for connection in group:
                origin = connection.origin
                origin_text = origin.describe() if origin is not None else ""
                for sample in connection.pop_all():
                    self._writer.writerow(
                        [f"{sample.timestamp:.3f}", origin_text]
                        + _flatten(sample.value)
                    )
                    self.rows_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
