"""The ``strace`` data-collection module and its anomaly detector.

Implements the extension the paper sketches in section 5: "a strace
module that tracks all of the system calls made by a given process ...
to detect and diagnose anomalies by building a probabilistic model of
the order and timing of system calls and checking for patterns that
correspond to problems."

Two modules:

* ``strace`` -- polls a node's ``strace_rpcd`` once per interval and
  emits the per-second syscall category-count vector.
* ``syscall_anomaly`` -- the probabilistic pattern check: over each
  window it normalizes the counts into a category *distribution*,
  learns a baseline from the first ``baseline_windows`` windows, and
  alarms when the Jensen-Shannon divergence from the baseline exceeds
  ``threshold``.  A process that stops doing I/O (an infinite loop) or
  floods one category (a runaway writer) shifts the distribution and
  trips the detector.

Configuration::

    [strace]
    id = strace_slave01
    node = slave01
    interval = 1.0

    [syscall_anomaly]
    id = sys_anom
    input[s] = strace_slave01.counts
    window = 60
    baseline_windows = 3
    threshold = 0.15
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import Alarm
from ..core import Module, Origin, RunReason
from ..core.errors import ConfigError
from ._window_sync import TimedWindow

#: Name of the service carrying node -> strace channel mappings.
STRACE_CHANNEL_SERVICE = "strace_channels"

_EPSILON = 1e-12


def _distribution(counts: np.ndarray) -> np.ndarray:
    """Normalize summed category counts into a probability vector."""
    counts = np.maximum(np.asarray(counts, dtype=float), 0.0)
    total = counts.sum()
    if total <= 0:
        return np.full(counts.shape, 1.0 / counts.size)
    return counts / total


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence between two category distributions.

    Symmetric, bounded in [0, ln 2]; 0 means identical behaviour.
    """
    p = np.maximum(np.asarray(p, dtype=float), _EPSILON)
    q = np.maximum(np.asarray(q, dtype=float), _EPSILON)
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)
    kl_pm = float(np.sum(p * np.log(p / m)))
    kl_qm = float(np.sum(q * np.log(q / m)))
    return 0.5 * (kl_pm + kl_qm)


class StraceModule(Module):
    """Poll ``strace_rpcd`` and emit per-second syscall count vectors."""

    type_name = "strace"

    def init(self) -> None:
        ctx = self.ctx
        ctx.require_no_inputs()
        self.node = ctx.param_str("node")
        channels: Dict[str, object] = ctx.service(STRACE_CHANNEL_SERVICE)
        if self.node not in channels:
            raise ConfigError(
                f"strace instance '{ctx.instance_id}': no channel registered "
                f"for node '{self.node}'"
            )
        self.channel = channels[self.node]
        self.out = ctx.create_output(
            "counts", Origin(node=self.node, source="strace", metric="syscalls")
        )
        self.samples_collected = 0
        self.priming_skips = 0
        ctx.schedule_every(
            ctx.param_float("interval", 1.0), ctx.param_float("phase", 0.0)
        )

    def run(self, reason: RunReason) -> None:
        now = self.ctx.clock.now()
        result = self.channel.call("trace", now=now)
        if result is None:
            self.priming_skips += 1
            return
        self.out.write(np.asarray(result, dtype=float), now)
        self.samples_collected += 1

    def close(self) -> None:
        close = getattr(self.channel, "close", None)
        if callable(close):
            close()


class SyscallAnomalyModule(Module):
    """Probabilistic syscall-pattern anomaly detection."""

    type_name = "syscall_anomaly"

    def init(self) -> None:
        ctx = self.ctx
        self.connection = ctx.input("s").single()
        origin = self.connection.origin
        self.node = origin.node if origin is not None else ""
        window = ctx.param_int("window", 60)
        slide = ctx.param_int("slide", window)
        self.baseline_windows = ctx.param_int("baseline_windows", 3)
        self.threshold = ctx.param_float("threshold", 0.15)
        self._window = TimedWindow(window, slide)
        self._baseline_sum: np.ndarray = None
        self._baseline_count = 0
        self.alarms_out = ctx.create_output("alarms")
        self.divergence_out = ctx.create_output("divergence", origin)
        self.windows_scored = 0
        ctx.trigger_after_updates(1)

    def _baseline(self) -> np.ndarray:
        return _distribution(self._baseline_sum)

    def run(self, reason: RunReason) -> None:
        for sample in self.connection.pop_all():
            for start, end, matrix in self._window.push(
                sample.timestamp, sample.value
            ):
                self._score_window(start, end, matrix)

    def _score_window(self, start: float, end: float, matrix: np.ndarray) -> None:
        window_counts = matrix.sum(axis=0)
        if self._baseline_count < self.baseline_windows:
            # Learning phase: accumulate the behavioural baseline.
            if self._baseline_sum is None:
                self._baseline_sum = window_counts.copy()
            else:
                self._baseline_sum += window_counts
            self._baseline_count += 1
            return
        divergence = js_divergence(
            _distribution(window_counts), self._baseline()
        )
        now = self.ctx.clock.now()
        self.divergence_out.write(divergence, now)
        self.windows_scored += 1
        if divergence > self.threshold:
            self.alarms_out.write(
                Alarm(
                    time=now,
                    node=self.node,
                    source="strace",
                    detail=f"syscall JS divergence {divergence:.3f} > "
                    f"{self.threshold:.3f}",
                ),
                now,
            )
