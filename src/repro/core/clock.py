"""Clock abstraction separating online (wall-clock) and simulated time.

The paper's fpt-core runs online against wall-clock time, polling data
sources once per second.  For reproducible experiments we drive the same
scheduler from a virtual clock advanced by the cluster simulator.  Both
clocks expose the same two operations so the scheduler is agnostic:

* :meth:`Clock.now` -- current time in seconds.
* :meth:`Clock.sleep_until` -- block until the given time (a no-op that
  merely advances the clock in the simulated case).
"""

from __future__ import annotations

import abc
import time

from .errors import SchedulerError


class Clock(abc.ABC):
    """Source of time for the fpt-core scheduler."""

    @abc.abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    @abc.abstractmethod
    def sleep_until(self, deadline: float) -> None:
        """Block (or advance) until ``deadline``; past deadlines return at once."""


class WallClock(Clock):
    """Real time, for online production deployments.

    Times are reported relative to the clock's creation so that module
    schedules are phase-aligned with the start of monitoring rather than
    the Unix epoch.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def sleep_until(self, deadline: float) -> None:
        delay = deadline - self.now()
        if delay > 0:
            time.sleep(delay)


class SimClock(Clock):
    """Virtual time, advanced explicitly by the experiment driver.

    ``sleep_until`` simply jumps the clock forward, which is what makes the
    scheduler deterministic: events happen exactly at their scheduled
    virtual timestamps with no jitter.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep_until(self, deadline: float) -> None:
        if deadline > self._now:
            self._now = float(deadline)

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`SchedulerError` if this would move time backwards;
        simulated time is monotonic by construction.
        """
        if timestamp < self._now:
            raise SchedulerError(
                f"cannot move simulated time backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise SchedulerError(f"cannot advance by a negative delta: {delta}")
        self._now += float(delta)
