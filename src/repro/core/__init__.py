"""fpt-core: the pluggable online fingerpointing framework (paper §3).

The core multiplexes data-collection modules into analysis modules along
a DAG described by a configuration file.  Public surface:

* :class:`FptCore` -- build and run a diagnosis DAG.
* :class:`Module`, :class:`ModuleContext`, :class:`RunReason` -- the
  plug-in API for writing new modules.
* :class:`ModuleRegistry` -- name -> module-class resolution.
* :func:`parse_config`, :func:`render_config` -- the configuration format.
* :class:`WallClock` / :class:`SimClock` -- online vs. simulated time.
* :class:`Origin`, :class:`Sample`, :class:`Output`, :class:`InputGroup`,
  :class:`Connection` -- the data-channel model.
"""

from .channel import (
    DEFAULT_QUEUE_CAPACITY,
    Connection,
    InputGroup,
    Origin,
    Output,
    Sample,
)
from .clock import Clock, SimClock, WallClock
from .config import InputSpec, InstanceSpec, parse_config, render_config
from .dag import Dag, Edge, build_dag
from .errors import ConfigError, FptError, ModuleError, SchedulerError
from .fptcore import FptCore
from .module import Module, ModuleContext, RunReason
from .registry import ModuleRegistry
from .scheduler import Scheduler, WriteHookChain

__all__ = [
    "DEFAULT_QUEUE_CAPACITY",
    "Clock",
    "ConfigError",
    "Connection",
    "Dag",
    "Edge",
    "FptCore",
    "FptError",
    "InputGroup",
    "InputSpec",
    "InstanceSpec",
    "Module",
    "ModuleContext",
    "ModuleError",
    "ModuleRegistry",
    "Origin",
    "Output",
    "RunReason",
    "Sample",
    "Scheduler",
    "SchedulerError",
    "SimClock",
    "WallClock",
    "WriteHookChain",
    "build_dag",
    "parse_config",
    "render_config",
]
