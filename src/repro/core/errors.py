"""Exception hierarchy for the fpt-core framework.

All framework errors derive from :class:`FptError` so callers can catch a
single base class.  Configuration problems (bad syntax, unsatisfiable
wiring) are reported as :class:`ConfigError`; mistakes made by module
implementations (writing to an undeclared output, re-declaring an output)
are reported as :class:`ModuleError`.
"""

from __future__ import annotations


class FptError(Exception):
    """Base class for all fpt-core errors."""


class ConfigError(FptError):
    """The configuration file is syntactically or semantically invalid.

    Mirrors the paper's behaviour (section 3.3): if the DAG cannot be
    fully constructed -- an input references a missing instance or output,
    or the wiring contains a cycle -- fpt-core terminates.
    """


class ModuleError(FptError):
    """A module implementation violated the plug-in API contract."""


class SchedulerError(FptError):
    """The scheduler was driven incorrectly (e.g. time moved backwards)."""
