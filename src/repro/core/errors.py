"""Exception hierarchy for the fpt-core framework.

All framework errors derive from :class:`FptError` so callers can catch a
single base class.  Configuration problems (bad syntax, unsatisfiable
wiring) are reported as :class:`ConfigError`; mistakes made by module
implementations (writing to an undeclared output, re-declaring an output)
are reported as :class:`ModuleError`.
"""

from __future__ import annotations

from typing import Optional


class FptError(Exception):
    """Base class for all fpt-core errors."""


class ConfigError(FptError):
    """The configuration file is syntactically or semantically invalid.

    Mirrors the paper's behaviour (section 3.3): if the DAG cannot be
    fully constructed -- an input references a missing instance or output,
    or the wiring contains a cycle -- fpt-core terminates.

    ``line_no`` and ``line_text`` locate the offending configuration line
    when the error originated from (or can be traced back to) a parsed
    configuration file; both are ``None`` for errors with no file
    position (e.g. programmatically built specs).
    """

    def __init__(
        self,
        message: str,
        *,
        line_no: Optional[int] = None,
        line_text: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.line_no = line_no
        self.line_text = line_text

    def describe(self) -> str:
        """The message plus the offending config line, when known."""
        text = str(self)
        if self.line_no is not None and "line " not in text.split(":")[0]:
            text = f"line {self.line_no}: {text}"
        if self.line_text:
            text += f"\n    {self.line_text.strip()}"
        return text


class ModuleError(FptError):
    """A module implementation violated the plug-in API contract."""


class SchedulerError(FptError):
    """The scheduler was driven incorrectly (e.g. time moved backwards)."""
