"""The fpt-core facade: configuration in, running diagnosis DAG out.

:class:`FptCore` ties the pieces together -- it parses a configuration
(or accepts pre-parsed specs), builds the module DAG against a registry,
installs scheduling hooks, and exposes the run loop.  A specific
configuration of the fpt-core *is* a specific online fingerpointing tool
(paper section 3.1): the same core can be wired as a black-box
fingerpointer, a white-box one, a hybrid, or a pure data logger.

Typical use::

    from repro.core import FptCore, SimClock
    from repro.modules import standard_registry

    core = FptCore.from_config(config_text, standard_registry(), SimClock())
    core.run_for(600.0)          # simulated seconds
    core.close()
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..telemetry import NULL_TELEMETRY, Telemetry
from .channel import DEFAULT_QUEUE_CAPACITY
from .clock import Clock, SimClock
from .config import InstanceSpec, parse_config
from .dag import Dag, Edge, build_dag, detach_instance, extend_dag
from .module import Module, ModuleContext
from .errors import ConfigError
from .registry import ModuleRegistry
from .scheduler import Scheduler


def _lint_or_raise(config, registry: ModuleRegistry) -> None:
    """Opt-in fail-fast: static analysis before any module exists.

    Accepts configuration text or pre-parsed specs.  Raises
    :class:`ConfigError` carrying the rendered report when any
    error-severity diagnostic fires; warnings never block construction.
    """
    # Imported lazily: repro.lint depends on repro.core, not vice versa.
    from ..lint import analyze_config, analyze_specs, render_text
    from ..lint.diagnostics import Severity

    if isinstance(config, str):
        diagnostics = analyze_config(config, registry=registry)
    else:
        diagnostics = analyze_specs(list(config), registry=registry)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        first = errors[0]
        raise ConfigError(
            f"lint failed with {len(errors)} error(s):\n"
            + render_text(diagnostics),
            line_no=first.line or None,
        )


class FptCore:
    """A constructed, runnable fingerpointing DAG."""

    def __init__(
        self,
        specs: Sequence[InstanceSpec],
        registry: ModuleRegistry,
        clock: Optional[Clock] = None,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        services=None,
        telemetry: Optional[Telemetry] = None,
        lint: bool = False,
    ) -> None:
        if lint:
            _lint_or_raise(specs, registry)
        self.clock = clock if clock is not None else SimClock()
        #: Self-instrumentation facade shared by the scheduler, every
        #: module context and (through services) the RPC channels.  The
        #: disabled NULL_TELEMETRY default keeps the hot path at a
        #: single attribute check.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.scheduler = Scheduler(self.clock, telemetry=self.telemetry)
        self._registry = registry
        self._queue_capacity = queue_capacity
        self._services = services

        def install_hooks(ctx: ModuleContext) -> None:
            ctx._schedule_periodic = self.scheduler.schedule_periodic
            ctx._set_trigger = self.scheduler.set_trigger
            ctx.telemetry = self.telemetry

        self._install_hooks = install_hooks

        #: Optional :class:`repro.flightrec.FlightRecorder` tapping every
        #: output; set by :meth:`set_flight_recorder` (or by the
        #: recorder's own ``attach``).  ``None`` keeps the write hot path
        #: at the existing ``on_write`` null check.
        self.flight_recorder = None

        self.dag: Dag = build_dag(
            specs,
            registry,
            self.clock,
            install_hooks=install_hooks,
            queue_capacity=queue_capacity,
            services=services,
        )
        for instance_id in self.dag.topological_order():
            self.scheduler.add_instance(self.dag.instances[instance_id])
        for ctx in self.dag.contexts.values():
            for output in ctx.outputs.values():
                self.scheduler.attach_output(output)
        self._closed = False

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        text: str,
        registry: ModuleRegistry,
        clock: Optional[Clock] = None,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        services=None,
        telemetry: Optional[Telemetry] = None,
        lint: bool = False,
    ) -> "FptCore":
        """Build a core from configuration-file text (paper section 3.4).

        ``lint=True`` statically analyzes the text first (with config
        line numbers and ``# fpt: noqa`` support) and raises
        :class:`ConfigError` before any module is instantiated if any
        error-severity diagnostic fires.
        """
        if lint:
            _lint_or_raise(text, registry)
        return cls(
            parse_config(text), registry, clock, queue_capacity, services,
            telemetry,
        )

    # -- introspection --------------------------------------------------------

    def instance(self, instance_id: str) -> Module:
        return self.dag.instance(instance_id)

    @property
    def instances(self) -> List[str]:
        return sorted(self.dag.instances)

    @property
    def edges(self) -> List[Edge]:
        return list(self.dag.edges)

    def unconsumed_param_diagnostics(self) -> list:
        """Runtime complement to the static FPT007 check.

        After ``init()`` every parameter a module actually read is
        known, including reads through computed names that the static
        analyzer must treat as opaque.  Returns one FPT007
        :class:`~repro.lint.diagnostics.Diagnostic` per parameter no
        module consumed.
        """
        from ..lint.diagnostics import Diagnostic

        diagnostics = []
        for instance_id in sorted(self.dag.contexts):
            ctx = self.dag.contexts[instance_id]
            for name in ctx.unconsumed_params():
                diagnostics.append(
                    Diagnostic(
                        "FPT007",
                        f"parameter '{name}' was never read during init",
                        instance=instance_id,
                    )
                )
        return diagnostics

    def to_dot(self, annotate: bool = False) -> str:
        """Dot rendering; ``annotate=True`` adds telemetry run stats.

        Falls back to the scheduler's always-on run counters when
        telemetry is disabled (mean latency shows as 0 in that case).
        """
        if not annotate:
            return self.dag.to_dot()
        if self.telemetry.enabled:
            return self.dag.to_dot(run_stats=self.telemetry.run_stats())
        from ..telemetry import RunStats

        stats = {
            instance_id: RunStats(runs, 0.0, 0)
            for instance_id, runs in self.scheduler.runs_by_instance.items()
        }
        return self.dag.to_dot(run_stats=stats)

    # -- execution ------------------------------------------------------------

    def run_until(self, end_time: float) -> int:
        return self.scheduler.run_until(end_time)

    def run_for(self, duration: float) -> int:
        return self.scheduler.run_for(duration)

    def run_instance(self, instance_id: str) -> None:
        self.scheduler.run_manual(instance_id)

    # -- runtime reconfiguration (paper section 2.1) ---------------------------

    def attach(self, text_or_specs) -> List[str]:
        """Attach new module instances while the core is running.

        Accepts configuration-file text or pre-parsed specs.  New
        instances may consume outputs of existing instances; existing
        wiring is untouched.  Returns the ids of the attached instances.
        """
        specs = (
            parse_config(text_or_specs)
            if isinstance(text_or_specs, str)
            else list(text_or_specs)
        )
        added = extend_dag(
            self.dag,
            specs,
            self._registry,
            self.clock,
            install_hooks=self._install_hooks,
            queue_capacity=self._queue_capacity,
            services=self._services,
        )
        for instance_id in added:
            self.scheduler.add_instance(self.dag.instances[instance_id])
            for output in self.dag.contexts[instance_id].outputs.values():
                self.scheduler.attach_output(output)
            if self.flight_recorder is not None:
                self.flight_recorder.attach_context(
                    self.dag.contexts[instance_id]
                )
        return added

    def set_flight_recorder(self, recorder) -> None:
        """Tap every current and future output with ``recorder``.

        Call after construction: the recorder chains itself onto the
        scheduler's ``on_write`` hooks and registers itself as the
        ``flight_recorder`` service so alarm sinks can freeze incident
        bundles.  Instances attached later are tapped automatically.
        """
        recorder.attach(self)

    def detach(self, instance_id: str) -> None:
        """Detach a terminal instance (no downstream consumers) and
        close it.  Its upstream subscriptions are removed, so producers
        stop paying for data nobody reads."""
        module = detach_instance(self.dag, instance_id)
        self.scheduler.remove_instance(instance_id)
        module.close()

    def stop(self) -> None:
        self.scheduler.stop()

    def close(self) -> None:
        """Release module resources; idempotent."""
        if self._closed:
            return
        self._closed = True
        for module in self.dag.instances.values():
            module.close()

    def __enter__(self) -> "FptCore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
