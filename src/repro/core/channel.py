"""Data channels connecting module outputs to module inputs.

The fpt-core DAG's edges are *connections*: a module declares named
:class:`Output` ports at init time; the configuration wires each output to
one or more named inputs of downstream modules.  Because a single input
name may be bound to *all* outputs of another instance (the ``@instance``
configuration syntax), inputs are modelled as :class:`InputGroup` -- an
ordered list of :class:`Connection` objects sharing one input name.

Every value written to an output is timestamped, producing a
:class:`Sample`.  Connections buffer samples in a bounded deque so a slow
analysis module drops the oldest data instead of growing without bound --
the rate-mismatch behaviour the paper describes in section 3.7 (the
``ibuffer`` module exists to widen this buffering when an analysis module
wants to consume batches).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Iterator, List, Optional

from .errors import ModuleError

#: Default per-connection buffer capacity (samples).
DEFAULT_QUEUE_CAPACITY = 256


@dataclass(frozen=True)
class Origin:
    """Provenance metadata attached to an output.

    Analysis modules use origin information to attribute anomalies to a
    node (``node``) and to know what they are looking at (``source`` is
    the collector type, e.g. ``"sadc"``; ``metric`` names the quantity).
    """

    node: str = ""
    source: str = ""
    metric: str = ""

    def describe(self) -> str:
        """Human-readable one-line description used in alarms."""
        parts = [p for p in (self.node, self.source, self.metric) if p]
        return "/".join(parts) if parts else "<unknown>"


@dataclass(frozen=True)
class Sample:
    """A single timestamped value flowing along a connection."""

    timestamp: float
    value: Any


class Connection:
    """One edge of the DAG: a buffered subscription of an input to an output."""

    def __init__(self, output: "Output", capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        self.output = output
        self._queue: Deque[Sample] = deque(maxlen=capacity)
        self.total_received = 0
        self.total_dropped = 0
        #: Buffered-but-unread samples discarded by ``latest()`` when a
        #: consumer only wants the newest value.  Distinct from
        #: ``total_dropped`` (capacity overflow): skipping is the consumer
        #: choosing to ignore backlog, dropping is the buffer losing data.
        self.total_skipped = 0
        #: Instance id of the module that owns this connection; set by the
        #: DAG builder so the scheduler can attribute writes to consumers.
        self.owner_instance: Optional[str] = None

    @property
    def origin(self) -> Optional[Origin]:
        return self.output.origin

    def _push(self, sample: Sample) -> None:
        if len(self._queue) == self._queue.maxlen:
            self.total_dropped += 1
        self._queue.append(sample)
        self.total_received += 1

    def __len__(self) -> int:
        return len(self._queue)

    def pop_all(self) -> List[Sample]:
        """Drain and return every buffered sample, oldest first."""
        samples = list(self._queue)
        self._queue.clear()
        return samples

    def pop(self) -> Optional[Sample]:
        """Remove and return the oldest buffered sample, or ``None``."""
        if self._queue:
            return self._queue.popleft()
        return None

    def latest(self) -> Optional[Sample]:
        """Drain the buffer and return only the newest sample, or ``None``.

        Older buffered samples are discarded and accounted for in
        ``total_skipped`` so rate-mismatch loss stays visible in
        :meth:`Output.stats` and telemetry.
        """
        if not self._queue:
            return None
        sample = self._queue[-1]
        self.total_skipped += len(self._queue) - 1
        self._queue.clear()
        return sample

    def peek(self) -> Optional[Sample]:
        """Return the oldest buffered sample without consuming it."""
        if self._queue:
            return self._queue[0]
        return None

    @property
    def depth(self) -> int:
        """Samples currently buffered (telemetry-friendly alias of len)."""
        return len(self._queue)

    @property
    def capacity(self) -> int:
        return self._queue.maxlen or 0


class InputGroup:
    """All connections bound to one named input of a module instance."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.connections: List[Connection] = []

    def __len__(self) -> int:
        return len(self.connections)

    def __iter__(self) -> Iterator[Connection]:
        return iter(self.connections)

    def __getitem__(self, index: int) -> Connection:
        return self.connections[index]

    def single(self) -> Connection:
        """Return the group's only connection.

        Modules that require exactly one upstream output on an input call
        this in ``init()`` to fail fast on miswiring.
        """
        if len(self.connections) != 1:
            raise ModuleError(
                f"input '{self.name}' expects exactly one connection, "
                f"has {len(self.connections)}"
            )
        return self.connections[0]

    def pop_latest_vector(self) -> List[Optional[Sample]]:
        """Consume the newest sample of each connection, preserving order."""
        return [conn.latest() for conn in self.connections]


@dataclass
class Output:
    """A named output port of a module instance.

    Outputs are created by modules during ``init()`` via
    :meth:`repro.core.module.ModuleContext.create_output`.  Writing to an
    output timestamps the value (using the core's clock) and fans it out
    to every subscribed connection; the core is notified through
    ``on_write`` so that input-triggered modules can be scheduled.
    """

    owner_id: str
    name: str
    origin: Optional[Origin] = None
    subscribers: List[Connection] = field(default_factory=list)
    #: Hook installed by the core: called as ``on_write(output, sample)``.
    on_write: Optional[Callable[["Output", Sample], None]] = None
    total_written: int = 0

    @property
    def full_name(self) -> str:
        return f"{self.owner_id}.{self.name}"

    def subscribe(self, capacity: int = DEFAULT_QUEUE_CAPACITY) -> Connection:
        """Create and register a new connection fed by this output."""
        connection = Connection(self, capacity=capacity)
        self.subscribers.append(connection)
        return connection

    def write(self, value: Any, timestamp: float) -> None:
        """Publish ``value`` at ``timestamp`` to all subscribers.

        This is the hottest call in the core (every collected metric
        vector, classification and window statistic passes through it),
        so the per-subscriber push is inlined rather than dispatched
        through :meth:`Connection._push`, and hook-free writes return
        without touching ``on_write`` at all.
        """
        sample = Sample(timestamp=timestamp, value=value)
        self.total_written += 1
        for connection in self.subscribers:
            queue = connection._queue
            if len(queue) == queue.maxlen:
                connection.total_dropped += 1
            queue.append(sample)
            connection.total_received += 1
        hook = self.on_write
        if hook is None:
            return  # fast path: nothing to notify
        hook(self, sample)

    def subscriber_depths(self) -> List[int]:
        """Current buffered-sample count of each subscriber queue."""
        return [len(connection) for connection in self.subscribers]

    def stats(self) -> dict:
        """Write/queue accounting for this output (telemetry snapshot)."""
        return {
            "output": self.full_name,
            "written": self.total_written,
            "subscribers": len(self.subscribers),
            "queue_depths": self.subscriber_depths(),
            "dropped": sum(c.total_dropped for c in self.subscribers),
            "skipped": sum(c.total_skipped for c in self.subscribers),
            "received": sum(c.total_received for c in self.subscribers),
        }
