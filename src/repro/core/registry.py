"""Registry mapping configuration section names to module classes.

The configuration file instantiates modules by type name (the text in
square brackets); the registry resolves those names to :class:`Module`
subclasses.  ASDF ships a standard registry
(:func:`repro.modules.standard_registry`) and users extend it with their
own modules -- the paper's flexibility requirement.
"""

from __future__ import annotations

from typing import Dict, Iterator, Type

from .errors import ConfigError
from .module import Module


class ModuleRegistry:
    """A name -> module-class mapping with fail-fast registration."""

    def __init__(self) -> None:
        self._types: Dict[str, Type[Module]] = {}

    def register(self, module_class: Type[Module]) -> Type[Module]:
        """Register ``module_class`` under its ``type_name``.

        Usable as a decorator.  Re-registering a name with a *different*
        class is an error; re-registering the same class is idempotent.
        """
        name = module_class.type_name
        if not name:
            raise ConfigError(
                f"module class {module_class.__name__} has no type_name"
            )
        existing = self._types.get(name)
        if existing is not None and existing is not module_class:
            raise ConfigError(
                f"module type '{name}' is already registered "
                f"(by {existing.__name__})"
            )
        self._types[name] = module_class
        return module_class

    def resolve(self, type_name: str) -> Type[Module]:
        try:
            return self._types[type_name]
        except KeyError:
            raise ConfigError(
                f"unknown module type '{type_name}' "
                f"(registered: {sorted(self._types)})"
            ) from None

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._types

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._types))

    def __len__(self) -> int:
        return len(self._types)

    def copy(self) -> "ModuleRegistry":
        """Return an independent copy (for extending without mutation)."""
        clone = ModuleRegistry()
        clone._types = dict(self._types)
        return clone
