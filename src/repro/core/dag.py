"""DAG construction from parsed configuration.

Implements the four-step initialization the paper gives in section 3.3:

1. every module instance in the configuration becomes a vertex;
2. each instance is annotated with its number of unsatisfied inputs, and
   instances with no inputs enter the initialization queue;
3. dequeued instances are initialized -- their ``init()`` creates their
   outputs, and every newly created output may satisfy other instances'
   inputs, enqueueing them in turn;
4. the process repeats until all instances are initialized.  Anything
   left over means a wiring cycle or a reference to a missing instance or
   output, and DAG construction fails with :class:`ConfigError`.

The only deliberate departure from the paper is that we do not spawn one
thread per module: instances run on the deterministic scheduler in
:mod:`repro.core.scheduler` (see DESIGN.md, "Design choices").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Type

from .channel import DEFAULT_QUEUE_CAPACITY, InputGroup
from .clock import Clock
from .config import InstanceSpec
from .errors import ConfigError
from .module import Module, ModuleContext
from .registry import ModuleRegistry


def _dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted dot id or label."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


@dataclass(frozen=True)
class Edge:
    """One resolved data-flow edge of the constructed DAG."""

    src_instance: str
    output_name: str
    dst_instance: str
    input_name: str


class Dag:
    """The constructed graph: initialized module instances plus edges."""

    def __init__(self) -> None:
        self.instances: Dict[str, Module] = {}
        self.contexts: Dict[str, ModuleContext] = {}
        self.edges: List[Edge] = []

    def instance(self, instance_id: str) -> Module:
        try:
            return self.instances[instance_id]
        except KeyError:
            raise ConfigError(f"no such instance '{instance_id}'") from None

    def topological_order(self) -> List[str]:
        """Instance ids in a topological order of the data flow."""
        indegree = {instance_id: 0 for instance_id in self.instances}
        adjacency: Dict[str, List[str]] = {i: [] for i in self.instances}
        for edge in self.edges:
            indegree[edge.dst_instance] += 1
            adjacency[edge.src_instance].append(edge.dst_instance)
        queue = deque(sorted(i for i, d in indegree.items() if d == 0))
        order: List[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for successor in adjacency[node]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    queue.append(successor)
        return order

    def to_dot(self, run_stats: Optional[Mapping[str, object]] = None) -> str:
        """Render the DAG in Graphviz dot format (for visualization).

        ``run_stats``, if given, maps instance ids to objects exposing
        ``runs`` and ``mean_latency_s`` (e.g.
        :class:`repro.telemetry.RunStats`); matching vertices are
        annotated with their run count and mean run latency.
        """
        lines = ["digraph fpt_core {"]
        for instance_id, module in sorted(self.instances.items()):
            node = _dot_escape(instance_id)
            label = f"{node}\\n({_dot_escape(module.type_name)})"
            stats = run_stats.get(instance_id) if run_stats else None
            if stats is not None:
                label += (
                    f"\\n{stats.runs} runs, "
                    f"{stats.mean_latency_s * 1e3:.3f} ms mean"
                )
            lines.append(f'  "{node}" [label="{label}"];')
        for edge in self.edges:
            lines.append(
                f'  "{_dot_escape(edge.src_instance)}" -> '
                f'"{_dot_escape(edge.dst_instance)}" '
                f'[label="{_dot_escape(edge.output_name)} -> '
                f'{_dot_escape(edge.input_name)}"];'
            )
        lines.append("}")
        return "\n".join(lines)


def build_dag(
    specs: Sequence[InstanceSpec],
    registry: ModuleRegistry,
    clock: Clock,
    install_hooks=None,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    services=None,
) -> Dag:
    """Construct and initialize the module DAG from parsed ``specs``.

    ``install_hooks``, if given, is called as ``install_hooks(ctx)`` right
    before each instance's ``init()`` so the core can attach scheduling
    callbacks to the context.
    """
    dag = Dag()
    spec_by_id: Dict[str, InstanceSpec] = {}
    for spec in specs:
        if spec.instance_id in spec_by_id:
            raise ConfigError(f"duplicate instance id '{spec.instance_id}'")
        spec_by_id[spec.instance_id] = spec

    # Validate upstream references before doing any work.
    for spec in specs:
        for input_spec in spec.inputs:
            if input_spec.instance_id not in spec_by_id:
                raise ConfigError(
                    f"instance '{spec.instance_id}' input "
                    f"'{input_spec.input_name}' references unknown instance "
                    f"'{input_spec.instance_id}'",
                    line_no=input_spec.line or None,
                    line_text=input_spec.render(),
                )
            if input_spec.instance_id == spec.instance_id:
                raise ConfigError(
                    f"instance '{spec.instance_id}' cannot consume its own "
                    f"outputs (input '{input_spec.input_name}')",
                    line_no=input_spec.line or None,
                    line_text=input_spec.render(),
                )

    # Step 1: a vertex (context + module object) per instance.
    modules: Dict[str, Module] = {}
    for spec in specs:
        module_class: Type[Module] = registry.resolve(spec.module_type)
        ctx = ModuleContext(spec.instance_id, spec.params, clock, services)
        modules[spec.instance_id] = module_class(ctx)
        dag.contexts[spec.instance_id] = ctx

    # Step 2: count unsatisfied upstream instances; queue the sources.
    waiting: Dict[str, set] = {
        spec.instance_id: {inp.instance_id for inp in spec.inputs}
        for spec in specs
    }
    ready = deque(
        spec.instance_id for spec in specs if not waiting[spec.instance_id]
    )
    initialized: set = set()

    def wire_inputs(spec: InstanceSpec) -> None:
        ctx = dag.contexts[spec.instance_id]
        for input_spec in spec.inputs:
            upstream_ctx = dag.contexts[input_spec.instance_id]
            group = ctx.inputs.setdefault(
                input_spec.input_name, InputGroup(input_spec.input_name)
            )
            if input_spec.output_name is None:
                outputs = list(upstream_ctx.outputs.values())
                if not outputs:
                    raise ConfigError(
                        f"instance '{spec.instance_id}' wires "
                        f"'@{input_spec.instance_id}' but that instance "
                        "declared no outputs",
                        line_no=input_spec.line or None,
                        line_text=input_spec.render(),
                    )
            else:
                if input_spec.output_name not in upstream_ctx.outputs:
                    raise ConfigError(
                        f"instance '{spec.instance_id}' wires "
                        f"'{input_spec.instance_id}.{input_spec.output_name}' "
                        "but that output does not exist (available: "
                        f"{sorted(upstream_ctx.outputs)})",
                        line_no=input_spec.line or None,
                        line_text=input_spec.render(),
                    )
                outputs = [upstream_ctx.outputs[input_spec.output_name]]
            for output in outputs:
                connection = output.subscribe(capacity=queue_capacity)
                connection.owner_instance = spec.instance_id
                group.connections.append(connection)
                dag.edges.append(
                    Edge(
                        src_instance=input_spec.instance_id,
                        output_name=output.name,
                        dst_instance=spec.instance_id,
                        input_name=input_spec.input_name,
                    )
                )

    # Steps 3-4: initialize in waves, satisfying inputs as outputs appear.
    while ready:
        instance_id = ready.popleft()
        spec = spec_by_id[instance_id]
        ctx = dag.contexts[instance_id]
        wire_inputs(spec)
        if install_hooks is not None:
            install_hooks(ctx)
        module = modules[instance_id]
        module.init()
        initialized.add(instance_id)
        dag.instances[instance_id] = module
        for other_id, pending in waiting.items():
            if other_id in initialized or other_id in ready:
                continue
            pending.discard(instance_id)
            if not pending:
                ready.append(other_id)

    leftover = sorted(set(spec_by_id) - initialized)
    if leftover:
        first = spec_by_id[leftover[0]]
        raise ConfigError(
            "DAG construction failed; the following instances could not be "
            f"initialized (cycle or missing upstream): {leftover}",
            line_no=first.header_line or None,
            line_text=f"[{first.module_type}]",
        )
    return dag


def extend_dag(
    dag: Dag,
    specs: Sequence[InstanceSpec],
    registry: ModuleRegistry,
    clock: Clock,
    install_hooks=None,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    services=None,
) -> List[str]:
    """Attach new instances to an already-initialized DAG at runtime.

    The paper requires "the flexibility to attach or detach any data
    source ... or analysis module" (section 2.1).  New instances may
    wire their inputs to outputs of existing instances (or of each
    other); existing instances are never rewired.  Returns the ids of
    the instances added, in initialization order.
    """
    spec_by_id: Dict[str, InstanceSpec] = {}
    for spec in specs:
        if spec.instance_id in dag.instances or spec.instance_id in spec_by_id:
            raise ConfigError(
                f"instance id '{spec.instance_id}' already exists"
            )
        spec_by_id[spec.instance_id] = spec

    for spec in specs:
        for input_spec in spec.inputs:
            known = (
                input_spec.instance_id in spec_by_id
                or input_spec.instance_id in dag.contexts
            )
            if not known:
                raise ConfigError(
                    f"instance '{spec.instance_id}' input "
                    f"'{input_spec.input_name}' references unknown instance "
                    f"'{input_spec.instance_id}'",
                    line_no=input_spec.line or None,
                    line_text=input_spec.render(),
                )
            if input_spec.instance_id == spec.instance_id:
                raise ConfigError(
                    f"instance '{spec.instance_id}' cannot consume its own "
                    f"outputs (input '{input_spec.input_name}')",
                    line_no=input_spec.line or None,
                    line_text=input_spec.render(),
                )

    modules: Dict[str, Module] = {}
    for spec in specs:
        module_class: Type[Module] = registry.resolve(spec.module_type)
        ctx = ModuleContext(spec.instance_id, spec.params, clock, services)
        modules[spec.instance_id] = module_class(ctx)
        dag.contexts[spec.instance_id] = ctx

    waiting: Dict[str, set] = {
        spec.instance_id: {
            inp.instance_id
            for inp in spec.inputs
            if inp.instance_id in spec_by_id  # existing ones are satisfied
        }
        for spec in specs
    }
    ready = deque(
        spec.instance_id for spec in specs if not waiting[spec.instance_id]
    )
    initialized: set = set()
    added: List[str] = []

    def wire_inputs(spec: InstanceSpec) -> None:
        ctx = dag.contexts[spec.instance_id]
        for input_spec in spec.inputs:
            upstream_ctx = dag.contexts[input_spec.instance_id]
            group = ctx.inputs.setdefault(
                input_spec.input_name, InputGroup(input_spec.input_name)
            )
            if input_spec.output_name is None:
                outputs = list(upstream_ctx.outputs.values())
                if not outputs:
                    raise ConfigError(
                        f"instance '{spec.instance_id}' wires "
                        f"'@{input_spec.instance_id}' but that instance "
                        "declared no outputs",
                        line_no=input_spec.line or None,
                        line_text=input_spec.render(),
                    )
            else:
                if input_spec.output_name not in upstream_ctx.outputs:
                    raise ConfigError(
                        f"instance '{spec.instance_id}' wires "
                        f"'{input_spec.instance_id}.{input_spec.output_name}' "
                        "but that output does not exist (available: "
                        f"{sorted(upstream_ctx.outputs)})",
                        line_no=input_spec.line or None,
                        line_text=input_spec.render(),
                    )
                outputs = [upstream_ctx.outputs[input_spec.output_name]]
            for output in outputs:
                connection = output.subscribe(capacity=queue_capacity)
                connection.owner_instance = spec.instance_id
                group.connections.append(connection)
                dag.edges.append(
                    Edge(
                        src_instance=input_spec.instance_id,
                        output_name=output.name,
                        dst_instance=spec.instance_id,
                        input_name=input_spec.input_name,
                    )
                )

    while ready:
        instance_id = ready.popleft()
        spec = spec_by_id[instance_id]
        wire_inputs(spec)
        if install_hooks is not None:
            install_hooks(dag.contexts[instance_id])
        modules[instance_id].init()
        initialized.add(instance_id)
        dag.instances[instance_id] = modules[instance_id]
        added.append(instance_id)
        for other_id, pending in waiting.items():
            if other_id in initialized or other_id in ready:
                continue
            pending.discard(instance_id)
            if not pending:
                ready.append(other_id)

    leftover = sorted(set(spec_by_id) - initialized)
    if leftover:
        for instance_id in leftover:
            dag.contexts.pop(instance_id, None)
        first = spec_by_id[leftover[0]]
        raise ConfigError(
            "DAG extension failed; the following instances could not be "
            f"initialized (cycle or missing upstream): {leftover}",
            line_no=first.header_line or None,
            line_text=f"[{first.module_type}]",
        )
    return added


def detach_instance(dag: Dag, instance_id: str) -> Module:
    """Remove a terminal instance from the DAG.

    Only instances with no downstream consumers may be detached (a
    producer mid-graph would leave dangling inputs).  The instance's
    connections are unsubscribed from their upstream outputs and its
    edges removed; the detached module is returned so the caller can
    ``close()`` it.
    """
    if instance_id not in dag.instances:
        raise ConfigError(f"no such instance '{instance_id}'")
    consumers = [e for e in dag.edges if e.src_instance == instance_id]
    if consumers:
        downstream = sorted({e.dst_instance for e in consumers})
        raise ConfigError(
            f"cannot detach '{instance_id}': instances {downstream} "
            "consume its outputs"
        )
    ctx = dag.contexts[instance_id]
    for group in ctx.inputs.values():
        for connection in group:
            subscribers = connection.output.subscribers
            if connection in subscribers:
                subscribers.remove(connection)
    dag.edges = [e for e in dag.edges if e.dst_instance != instance_id]
    module = dag.instances.pop(instance_id)
    dag.contexts.pop(instance_id, None)
    return module
