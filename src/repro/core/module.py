"""The fpt-core plug-in API.

Every data-collection and analysis module implements the same two-method
contract the paper describes in section 3.2:

* ``init()`` is called once when the instance becomes a DAG vertex.  The
  module reads its configuration parameters, verifies its input wiring,
  creates its outputs, and registers scheduling hooks (periodic execution
  for pollers, input-triggered execution for analyses).
* ``run(reason)`` is called by the scheduler, with ``reason`` saying why
  (a periodic tick, fresh input data, or a manual invocation).

Modules interact with the core exclusively through their
:class:`ModuleContext`, which carries the instance id, the parsed
parameters, the wired input groups, and factory/scheduling hooks.
"""

from __future__ import annotations

import abc
import enum
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional

from ..telemetry import NULL_TELEMETRY, Telemetry
from .channel import InputGroup, Origin, Output
from .clock import Clock
from .errors import ConfigError, ModuleError


class RunReason(enum.Enum):
    """Why the scheduler invoked a module's ``run()``."""

    PERIODIC = "periodic"
    INPUTS = "inputs"
    MANUAL = "manual"


#: Sentinel distinguishing "no default supplied" from "default is None".
_REQUIRED = object()


class ModuleContext:
    """Everything a module instance may ask of the core.

    The context is constructed by the DAG builder; the two callables are
    installed by the core before ``init()`` runs:

    * ``_schedule_periodic(instance_id, interval, phase)``
    * ``_set_trigger(instance_id, updates)``
    """

    def __init__(
        self,
        instance_id: str,
        params: Mapping[str, str],
        clock: Clock,
        services: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.instance_id = instance_id
        self.params: Dict[str, str] = dict(params)
        self.clock = clock
        #: The core's self-instrumentation facade; replaced by the real
        #: :class:`~repro.telemetry.Telemetry` when the owning core has
        #: telemetry enabled.  Modules guard with ``telemetry.enabled``.
        self.telemetry: Telemetry = NULL_TELEMETRY
        self.services: Dict[str, Any] = dict(services) if services else {}
        self.inputs: Dict[str, InputGroup] = {}
        self.outputs: Dict[str, Output] = {}
        self._schedule_periodic: Optional[Callable[[str, float, float], None]] = None
        self._set_trigger: Optional[Callable[[str, int], None]] = None
        self._consumed_params = {"id"}

    # -- services ------------------------------------------------------------

    def service(self, name: str) -> Any:
        """Look up a runtime service object registered with the core.

        Services carry non-textual dependencies (a simulator handle, an
        RPC client factory) from the embedding application into modules,
        keeping the configuration file purely declarative.
        """
        try:
            return self.services[name]
        except KeyError:
            raise ConfigError(
                f"instance '{self.instance_id}' requires service '{name}', "
                f"which was not registered (available: {sorted(self.services)})"
            ) from None

    # -- outputs -----------------------------------------------------------

    def create_output(self, name: str, origin: Optional[Origin] = None) -> Output:
        """Declare a new named output for this instance (init-time only)."""
        if name in self.outputs:
            raise ModuleError(
                f"instance '{self.instance_id}' declared output '{name}' twice"
            )
        output = Output(owner_id=self.instance_id, name=name, origin=origin)
        self.outputs[name] = output
        return output

    # -- inputs ------------------------------------------------------------

    def input(self, name: str) -> InputGroup:
        """Return the input group wired under ``name``.

        Raises :class:`ModuleError` if the configuration did not wire the
        input -- modules call this from ``init()`` to verify their wiring.
        """
        try:
            return self.inputs[name]
        except KeyError:
            raise ModuleError(
                f"instance '{self.instance_id}' requires input '{name}', "
                f"which is not wired (wired inputs: {sorted(self.inputs)})"
            ) from None

    def require_no_inputs(self) -> None:
        """Assert that this instance was wired with no inputs at all."""
        if self.inputs:
            raise ModuleError(
                f"instance '{self.instance_id}' accepts no inputs but was "
                f"wired with {sorted(self.inputs)}"
            )

    def connection_count(self) -> int:
        """Total number of upstream connections across all input groups."""
        return sum(len(group) for group in self.inputs.values())

    # -- scheduling --------------------------------------------------------

    def schedule_every(self, interval: float, phase: float = 0.0) -> None:
        """Request periodic execution every ``interval`` seconds."""
        if interval <= 0:
            raise ModuleError(
                f"instance '{self.instance_id}' requested a non-positive "
                f"scheduling interval: {interval}"
            )
        if self._schedule_periodic is None:
            raise ModuleError("scheduling hooks are not installed yet")
        self._schedule_periodic(self.instance_id, float(interval), float(phase))

    def trigger_after_updates(self, updates: int) -> None:
        """Request input-triggered execution after ``updates`` input writes.

        By default the core runs an instance once every one of its
        connections has received a new sample; this overrides that count.
        """
        if updates <= 0:
            raise ModuleError(
                f"instance '{self.instance_id}' requested a non-positive "
                f"trigger count: {updates}"
            )
        if self._set_trigger is None:
            raise ModuleError("scheduling hooks are not installed yet")
        self._set_trigger(self.instance_id, int(updates))

    # -- parameters ---------------------------------------------------------

    def _raw_param(self, name: str, default: Any) -> Any:
        self._consumed_params.add(name)
        if name in self.params:
            return self.params[name]
        if default is _REQUIRED:
            raise ConfigError(
                f"instance '{self.instance_id}' is missing required "
                f"parameter '{name}'"
            )
        return default

    def param_str(self, name: str, default: Any = _REQUIRED) -> str:
        value = self._raw_param(name, default)
        return value if isinstance(value, str) else value

    def param_int(self, name: str, default: Any = _REQUIRED) -> int:
        value = self._raw_param(name, default)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise ConfigError(
                    f"instance '{self.instance_id}': parameter '{name}' must "
                    f"be an integer, got {value!r}"
                ) from None
        return value

    def param_float(self, name: str, default: Any = _REQUIRED) -> float:
        value = self._raw_param(name, default)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise ConfigError(
                    f"instance '{self.instance_id}': parameter '{name}' must "
                    f"be a number, got {value!r}"
                ) from None
        return value

    def param_bool(self, name: str, default: Any = _REQUIRED) -> bool:
        value = self._raw_param(name, default)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ConfigError(
                f"instance '{self.instance_id}': parameter '{name}' must be "
                f"a boolean, got {value!r}"
            )
        return bool(value)

    def param_list(self, name: str, default: Any = _REQUIRED) -> list:
        """Parse a comma-separated parameter into a list of strings."""
        value = self._raw_param(name, default)
        if isinstance(value, str):
            return [item.strip() for item in value.split(",") if item.strip()]
        return list(value)

    def unconsumed_params(self) -> list:
        """Parameters present in the config but never read by the module."""
        return sorted(set(self.params) - self._consumed_params)


class Module(abc.ABC):
    """Base class for all fpt-core modules (data collection and analysis).

    Subclasses set :attr:`type_name` (the name used in configuration-file
    section headers) and implement :meth:`init` and :meth:`run`.
    """

    #: Name used in ``[section]`` headers of the configuration file.
    type_name: ClassVar[str] = ""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    @property
    def instance_id(self) -> str:
        return self.ctx.instance_id

    def init(self) -> None:
        """Per-instance initialization; default is a no-op."""

    @abc.abstractmethod
    def run(self, reason: RunReason) -> None:
        """Perform one unit of work; called by the scheduler."""

    def close(self) -> None:
        """Release external resources (sockets, files); default no-op."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.instance_id!r}>"
