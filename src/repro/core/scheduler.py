"""Deterministic scheduler dispatching module ``run()`` calls.

Two scheduling mechanisms coexist, matching the paper's section 3.3:

* **Periodic** -- data-collection modules request execution at a fixed
  frequency (``ModuleContext.schedule_every``).  The scheduler keeps a
  time-ordered heap of (deadline, instance) entries and fires them in
  deadline order, re-arming each after it runs.
* **Input-triggered** -- analysis modules run whenever a configurable
  number of their inputs have received new samples.  Every
  ``Output.write`` increments the consuming instance's update counter;
  once the counter reaches the instance's trigger threshold the instance
  is queued and run as soon as the current ``run()`` returns.

Input-triggered work is drained to quiescence after every periodic event,
so within one timestamp data propagates through the whole DAG before time
advances -- this is what makes simulated runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..telemetry import NULL_TELEMETRY, Telemetry
from .channel import Output, Sample
from .clock import Clock
from .errors import SchedulerError
from .module import Module, RunReason

#: Safety valve: maximum input-triggered runs drained per quiescence pass.
#: The DAG is acyclic so propagation terminates; this guards against a
#: buggy module writing to its own inputs through out-of-band channels.
MAX_DRAIN_RUNS = 100_000


class WriteHookChain:
    """An explicit ``on_write`` hook chain: foreign hooks, then the core's.

    The scheduler's trigger bookkeeping must fire exactly once per write
    no matter how many probes (telemetry taps, test spies, recorders)
    wrap the same output.  Closure-based chaining cannot be introspected
    -- once a foreign framework replaces ``on_write``, a re-attach has no
    way to tell whether the scheduler hook is still buried inside, so it
    either silently stacks a second one or silently drops bookkeeping.
    Keeping the hooks in a list makes membership checkable and lets
    :meth:`Scheduler.attach_output` *rebuild* the chain instead.
    """

    __slots__ = ("hooks",)

    #: Backwards-compatible marker: older probes (the flight recorder)
    #: propagate this attribute when they wrap an existing hook.
    _includes_scheduler_hook = True

    def __init__(self, hooks) -> None:
        self.hooks = list(hooks)

    def __call__(self, output: Output, sample: Sample) -> None:
        for hook in self.hooks:
            hook(output, sample)


class Scheduler:
    """Drives module execution against a :class:`Clock`."""

    def __init__(self, clock: Clock, telemetry: Optional[Telemetry] = None) -> None:
        self.clock = clock
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._heap: List[Tuple[float, int, str]] = []
        self._sequence = itertools.count()
        self._intervals: Dict[str, float] = {}
        self._instances: Dict[str, Module] = {}
        self._triggers: Dict[str, int] = {}
        self._update_counts: Dict[str, int] = {}
        #: Resolved consumer -> trigger-threshold cache.  ``Output.write``
        #: is the hottest call site in the core; recomputing
        #: ``connection_count()`` (a sum over all input groups) per write
        #: dominated scenario profiles.  Entries are filled lazily by
        #: ``_on_output_write`` and invalidated whenever registration
        #: state changes (``add_instance``, ``remove_instance``,
        #: ``set_trigger``).
        self._threshold_cache: Dict[str, int] = {}
        self._pending: deque = deque()
        self._pending_set: Set[str] = set()
        self._stopped = False
        #: Always-on run accounting, split by why each run happened and
        #: by which instance ran (plain ints: cheap enough to keep even
        #: with telemetry disabled).
        self.runs_by_reason: Dict[RunReason, int] = {r: 0 for r in RunReason}
        self.runs_by_instance: Dict[str, int] = {}
        #: Optional callback invoked as ``on_error(instance_id, exc)``;
        #: returning ``True`` suppresses the exception.
        self.on_error: Optional[Callable[[str, BaseException], bool]] = None

    @property
    def total_runs(self) -> int:
        """All run() dispatches, any reason (kept for backward compatibility)."""
        return sum(self.runs_by_reason.values())

    # -- registration --------------------------------------------------------

    def add_instance(self, module: Module) -> None:
        instance_id = module.instance_id
        if instance_id in self._instances:
            raise SchedulerError(f"instance '{instance_id}' already registered")
        self._instances[instance_id] = module
        self._update_counts[instance_id] = 0
        self._threshold_cache.pop(instance_id, None)

    def remove_instance(self, instance_id: str) -> None:
        """Detach an instance from scheduling (paper section 2.1).

        Pending heap entries for the instance are discarded lazily when
        they surface; queued input-triggered runs are dropped now.  A
        periodic instance may remove itself (or a peer) from inside its
        own ``run()``: dropping the interval here also cancels the
        re-arm that ``run_until`` would otherwise attempt.
        """
        if instance_id not in self._instances:
            raise SchedulerError(f"no such instance '{instance_id}'")
        del self._instances[instance_id]
        self._update_counts.pop(instance_id, None)
        self._triggers.pop(instance_id, None)
        self._intervals.pop(instance_id, None)
        self._threshold_cache.pop(instance_id, None)
        if instance_id in self._pending_set:
            self._pending_set.discard(instance_id)
            self._pending = deque(
                pending for pending in self._pending if pending != instance_id
            )

    def schedule_periodic(self, instance_id: str, interval: float, phase: float) -> None:
        if interval <= 0:
            raise SchedulerError(
                f"non-positive interval {interval} for '{instance_id}'"
            )
        self._intervals[instance_id] = interval
        first = self.clock.now() + phase
        heapq.heappush(self._heap, (first, next(self._sequence), instance_id))

    def set_trigger(self, instance_id: str, updates: int) -> None:
        self._triggers[instance_id] = updates
        self._threshold_cache.pop(instance_id, None)

    def _is_own_hook(self, hook) -> bool:
        """True when ``hook`` is this scheduler's write hook.

        Bound-method objects are created afresh on every attribute
        access, so ``hook is self._on_output_write`` is always False;
        the underlying function and receiver must be compared instead.
        """
        return (
            getattr(hook, "__func__", None) is Scheduler._on_output_write
            and getattr(hook, "__self__", None) is self
        )

    def attach_output(self, output: Output) -> None:
        """Install the write hook that feeds input-trigger bookkeeping.

        If the output already carries a foreign ``on_write`` hook (a
        telemetry probe, a test spy), it is *chained*, not overwritten:
        the existing hooks fire first, then the scheduler's bookkeeping.
        The chain is an explicit :class:`WriteHookChain`, so re-attaching
        is detectable: attaching the same output twice is a no-op, and if
        a foreign framework replaced ``on_write`` wholesale (discarding a
        previous chain), the chain is *rebuilt* around the new hook
        instead of silently stacking a second scheduler hook.
        """
        existing = output.on_write
        if existing is None:
            output.on_write = self._on_output_write
            return
        if self._is_own_hook(existing):
            return
        if isinstance(existing, WriteHookChain):
            if any(self._is_own_hook(hook) for hook in existing.hooks):
                return  # already attached; never double-register
            # A chain built by another scheduler (or one whose scheduler
            # hook was stripped): append ours, keep the foreign hooks.
            existing.hooks.append(self._on_output_write)
            return
        if getattr(existing, "_includes_scheduler_hook", False):
            # A foreign wrapper (e.g. the flight recorder's tap) chained
            # itself around a hook that included our bookkeeping.
            return
        output.on_write = WriteHookChain([existing, self._on_output_write])

    # -- write notification ---------------------------------------------------

    def _trigger_threshold(self, instance_id: str) -> int:
        explicit = self._triggers.get(instance_id)
        if explicit is not None:
            return explicit
        module = self._instances.get(instance_id)
        if module is None:
            return 1
        return max(1, module.ctx.connection_count())

    def _on_output_write(self, output: Output, sample: Sample) -> None:
        if self.telemetry.enabled:
            self.telemetry.record_write(output)
        update_counts = self._update_counts
        thresholds = self._threshold_cache
        instances = self._instances
        for connection in output.subscribers:
            consumer = connection.owner_instance
            if consumer is None or consumer not in instances:
                continue
            count = update_counts[consumer] + 1
            update_counts[consumer] = count
            threshold = thresholds.get(consumer)
            if threshold is None:
                threshold = self._trigger_threshold(consumer)
                thresholds[consumer] = threshold
            if count >= threshold:
                self._enqueue(consumer)

    def _enqueue(self, instance_id: str) -> None:
        if instance_id not in self._pending_set:
            self._pending.append(instance_id)
            self._pending_set.add(instance_id)

    # -- execution ------------------------------------------------------------

    def _run_instance(self, instance_id: str, reason: RunReason) -> None:
        module = self._instances[instance_id]
        self.runs_by_reason[reason] += 1
        self.runs_by_instance[instance_id] = (
            self.runs_by_instance.get(instance_id, 0) + 1
        )
        telemetry = self.telemetry
        if not telemetry.enabled:
            try:
                module.run(reason)
            except Exception as exc:  # noqa: BLE001 - reported via hook
                if self.on_error is None or not self.on_error(instance_id, exc):
                    raise
            return
        started = time.perf_counter()
        error: Optional[str] = None
        try:
            module.run(reason)
        except Exception as exc:  # noqa: BLE001 - reported via hook
            error = f"{type(exc).__name__}: {exc}"
            if self.on_error is None or not self.on_error(instance_id, exc):
                raise
        finally:
            telemetry.record_run(
                instance_id,
                reason.value,
                started,
                time.perf_counter() - started,
                self.clock.now(),
                error=error,
            )

    def _drain_input_triggered(self) -> None:
        if self.telemetry.enabled and self._pending:
            self.telemetry.record_drain_depth(len(self._pending))
        drained = 0
        while self._pending:
            drained += 1
            if drained > MAX_DRAIN_RUNS:
                raise SchedulerError(
                    "input-triggered run queue failed to quiesce; a module "
                    "is probably feeding its own inputs"
                )
            instance_id = self._pending.popleft()
            self._pending_set.discard(instance_id)
            self._update_counts[instance_id] = 0
            self._run_instance(instance_id, RunReason.INPUTS)

    def run_manual(self, instance_id: str) -> None:
        """Run one instance immediately, then propagate through the DAG."""
        if instance_id not in self._instances:
            raise SchedulerError(f"no such instance '{instance_id}'")
        self._run_instance(instance_id, RunReason.MANUAL)
        self._drain_input_triggered()

    def next_deadline(self) -> Optional[float]:
        """Deadline of the earliest pending periodic event, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, end_time: float) -> int:
        """Process every periodic event with deadline <= ``end_time``.

        Advances the clock to each event's deadline (sleeping under a wall
        clock, jumping under a simulated one), fires the event, drains all
        resulting input-triggered runs, and re-arms the event.  Returns the
        number of periodic events processed.  Afterwards the clock rests
        at ``end_time``.
        """
        if end_time < self.clock.now():
            raise SchedulerError(
                f"run_until target {end_time} is in the past "
                f"(now={self.clock.now()})"
            )
        processed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            deadline, _, instance_id = self._heap[0]
            if deadline > end_time:
                break
            heapq.heappop(self._heap)
            if instance_id not in self._instances:
                continue  # detached while a heap entry was pending
            self.clock.sleep_until(deadline)
            if self.telemetry.enabled:
                # Under a simulated clock the lag is 0 by construction;
                # under a wall clock it measures scheduler jitter.
                self.telemetry.record_periodic_lag(self.clock.now() - deadline)
            self._run_instance(instance_id, RunReason.PERIODIC)
            self._drain_input_triggered()
            # The run (or anything it triggered) may have removed this
            # very instance; re-arming then would resurrect it and the
            # old lookup raised KeyError on the dropped interval.
            interval = self._intervals.get(instance_id)
            if interval is not None and instance_id in self._instances:
                heapq.heappush(
                    self._heap,
                    (deadline + interval, next(self._sequence), instance_id),
                )
            processed += 1
        if not self._stopped:
            self.clock.sleep_until(end_time)
        return processed

    def run_for(self, duration: float) -> int:
        """Convenience wrapper: run for ``duration`` seconds from now."""
        return self.run_until(self.clock.now() + duration)

    def stop(self) -> None:
        """Request that the current ``run_until`` loop exit early.

        Intended to be called from a module's ``run()`` (e.g. an alarm
        sink that has seen enough) or from another thread under a wall
        clock.
        """
        self._stopped = True
