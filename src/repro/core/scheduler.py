"""Deterministic scheduler dispatching module ``run()`` calls.

Two scheduling mechanisms coexist, matching the paper's section 3.3:

* **Periodic** -- data-collection modules request execution at a fixed
  frequency (``ModuleContext.schedule_every``).  The scheduler keeps a
  time-ordered heap of (deadline, instance) entries and fires them in
  deadline order, re-arming each after it runs.
* **Input-triggered** -- analysis modules run whenever a configurable
  number of their inputs have received new samples.  Every
  ``Output.write`` increments the consuming instance's update counter;
  once the counter reaches the instance's trigger threshold the instance
  is queued and run as soon as the current ``run()`` returns.

Input-triggered work is drained to quiescence after every periodic event,
so within one timestamp data propagates through the whole DAG before time
advances -- this is what makes simulated runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..telemetry import NULL_TELEMETRY, Telemetry
from .channel import Output, Sample
from .clock import Clock
from .errors import SchedulerError
from .module import Module, RunReason

#: Safety valve: maximum input-triggered runs drained per quiescence pass.
#: The DAG is acyclic so propagation terminates; this guards against a
#: buggy module writing to its own inputs through out-of-band channels.
MAX_DRAIN_RUNS = 100_000


class Scheduler:
    """Drives module execution against a :class:`Clock`."""

    def __init__(self, clock: Clock, telemetry: Optional[Telemetry] = None) -> None:
        self.clock = clock
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._heap: List[Tuple[float, int, str]] = []
        self._sequence = itertools.count()
        self._intervals: Dict[str, float] = {}
        self._instances: Dict[str, Module] = {}
        self._triggers: Dict[str, int] = {}
        self._update_counts: Dict[str, int] = {}
        self._pending: deque = deque()
        self._pending_set: Set[str] = set()
        self._stopped = False
        #: Always-on run accounting, split by why each run happened and
        #: by which instance ran (plain ints: cheap enough to keep even
        #: with telemetry disabled).
        self.runs_by_reason: Dict[RunReason, int] = {r: 0 for r in RunReason}
        self.runs_by_instance: Dict[str, int] = {}
        #: Optional callback invoked as ``on_error(instance_id, exc)``;
        #: returning ``True`` suppresses the exception.
        self.on_error: Optional[Callable[[str, BaseException], bool]] = None

    @property
    def total_runs(self) -> int:
        """All run() dispatches, any reason (kept for backward compatibility)."""
        return sum(self.runs_by_reason.values())

    # -- registration --------------------------------------------------------

    def add_instance(self, module: Module) -> None:
        instance_id = module.instance_id
        if instance_id in self._instances:
            raise SchedulerError(f"instance '{instance_id}' already registered")
        self._instances[instance_id] = module
        self._update_counts[instance_id] = 0

    def remove_instance(self, instance_id: str) -> None:
        """Detach an instance from scheduling (paper section 2.1).

        Pending heap entries for the instance are discarded lazily when
        they surface; queued input-triggered runs are dropped now.
        """
        if instance_id not in self._instances:
            raise SchedulerError(f"no such instance '{instance_id}'")
        del self._instances[instance_id]
        self._update_counts.pop(instance_id, None)
        self._triggers.pop(instance_id, None)
        self._intervals.pop(instance_id, None)
        if instance_id in self._pending_set:
            self._pending_set.discard(instance_id)
            self._pending = deque(
                pending for pending in self._pending if pending != instance_id
            )

    def schedule_periodic(self, instance_id: str, interval: float, phase: float) -> None:
        if interval <= 0:
            raise SchedulerError(
                f"non-positive interval {interval} for '{instance_id}'"
            )
        self._intervals[instance_id] = interval
        first = self.clock.now() + phase
        heapq.heappush(self._heap, (first, next(self._sequence), instance_id))

    def set_trigger(self, instance_id: str, updates: int) -> None:
        self._triggers[instance_id] = updates

    def attach_output(self, output: Output) -> None:
        """Install the write hook that feeds input-trigger bookkeeping.

        If the output already carries a foreign ``on_write`` hook (a
        telemetry probe, a test spy), it is *chained*, not overwritten:
        the existing hook fires first, then the scheduler's bookkeeping.
        Attaching the same output twice is a no-op, so chains never
        accumulate duplicate scheduler hooks.
        """
        existing = output.on_write
        if existing is self._on_output_write or getattr(
            existing, "_includes_scheduler_hook", False
        ):
            return  # already attached; never double-register
        if existing is None:
            output.on_write = self._on_output_write
            return
        scheduler_hook = self._on_output_write

        def chained(out: Output, sample: Sample) -> None:
            existing(out, sample)
            scheduler_hook(out, sample)

        chained._includes_scheduler_hook = True  # type: ignore[attr-defined]
        output.on_write = chained

    # -- write notification ---------------------------------------------------

    def _trigger_threshold(self, instance_id: str) -> int:
        explicit = self._triggers.get(instance_id)
        if explicit is not None:
            return explicit
        module = self._instances.get(instance_id)
        if module is None:
            return 1
        return max(1, module.ctx.connection_count())

    def _on_output_write(self, output: Output, sample: Sample) -> None:
        if self.telemetry.enabled:
            self.telemetry.record_write(output)
        for connection in output.subscribers:
            consumer = connection.owner_instance
            if consumer is None or consumer not in self._instances:
                continue
            self._update_counts[consumer] += 1
            if self._update_counts[consumer] >= self._trigger_threshold(consumer):
                self._enqueue(consumer)

    def _enqueue(self, instance_id: str) -> None:
        if instance_id not in self._pending_set:
            self._pending.append(instance_id)
            self._pending_set.add(instance_id)

    # -- execution ------------------------------------------------------------

    def _run_instance(self, instance_id: str, reason: RunReason) -> None:
        module = self._instances[instance_id]
        self.runs_by_reason[reason] += 1
        self.runs_by_instance[instance_id] = (
            self.runs_by_instance.get(instance_id, 0) + 1
        )
        telemetry = self.telemetry
        if not telemetry.enabled:
            try:
                module.run(reason)
            except Exception as exc:  # noqa: BLE001 - reported via hook
                if self.on_error is None or not self.on_error(instance_id, exc):
                    raise
            return
        started = time.perf_counter()
        error: Optional[str] = None
        try:
            module.run(reason)
        except Exception as exc:  # noqa: BLE001 - reported via hook
            error = f"{type(exc).__name__}: {exc}"
            if self.on_error is None or not self.on_error(instance_id, exc):
                raise
        finally:
            telemetry.record_run(
                instance_id,
                reason.value,
                started,
                time.perf_counter() - started,
                self.clock.now(),
                error=error,
            )

    def _drain_input_triggered(self) -> None:
        if self.telemetry.enabled and self._pending:
            self.telemetry.record_drain_depth(len(self._pending))
        drained = 0
        while self._pending:
            drained += 1
            if drained > MAX_DRAIN_RUNS:
                raise SchedulerError(
                    "input-triggered run queue failed to quiesce; a module "
                    "is probably feeding its own inputs"
                )
            instance_id = self._pending.popleft()
            self._pending_set.discard(instance_id)
            self._update_counts[instance_id] = 0
            self._run_instance(instance_id, RunReason.INPUTS)

    def run_manual(self, instance_id: str) -> None:
        """Run one instance immediately, then propagate through the DAG."""
        if instance_id not in self._instances:
            raise SchedulerError(f"no such instance '{instance_id}'")
        self._run_instance(instance_id, RunReason.MANUAL)
        self._drain_input_triggered()

    def next_deadline(self) -> Optional[float]:
        """Deadline of the earliest pending periodic event, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, end_time: float) -> int:
        """Process every periodic event with deadline <= ``end_time``.

        Advances the clock to each event's deadline (sleeping under a wall
        clock, jumping under a simulated one), fires the event, drains all
        resulting input-triggered runs, and re-arms the event.  Returns the
        number of periodic events processed.  Afterwards the clock rests
        at ``end_time``.
        """
        if end_time < self.clock.now():
            raise SchedulerError(
                f"run_until target {end_time} is in the past "
                f"(now={self.clock.now()})"
            )
        processed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            deadline, _, instance_id = self._heap[0]
            if deadline > end_time:
                break
            heapq.heappop(self._heap)
            if instance_id not in self._instances:
                continue  # detached while a heap entry was pending
            self.clock.sleep_until(deadline)
            if self.telemetry.enabled:
                # Under a simulated clock the lag is 0 by construction;
                # under a wall clock it measures scheduler jitter.
                self.telemetry.record_periodic_lag(self.clock.now() - deadline)
            self._run_instance(instance_id, RunReason.PERIODIC)
            self._drain_input_triggered()
            interval = self._intervals[instance_id]
            heapq.heappush(
                self._heap,
                (deadline + interval, next(self._sequence), instance_id),
            )
            processed += 1
        if not self._stopped:
            self.clock.sleep_until(end_time)
        return processed

    def run_for(self, duration: float) -> int:
        """Convenience wrapper: run for ``duration`` seconds from now."""
        return self.run_until(self.clock.now() + duration)

    def stop(self) -> None:
        """Request that the current ``run_until`` loop exit early.

        Intended to be called from a module's ``run()`` (e.g. an alarm
        sink that has seen enough) or from another thread under a wall
        clock.
        """
        self._stopped = True
