"""Parser for fpt-core configuration files.

The format follows the paper's section 3.4 exactly:

* ``[module-type]`` starts a new module instance of that type.
* ``id = instance-id`` names the instance (optional; an id of the form
  ``<type><n>`` is generated otherwise).
* ``input[name] = instance-id.outputname`` wires a single upstream output
  to the input ``name``.
* ``input[name] = @instance-id`` wires *all* outputs of the upstream
  instance to the input ``name``.
* Every other ``key = value`` assignment is an opaque parameter handed to
  the module instance for its own interpretation.

Comments start with ``#`` or ``;`` and run to end of line.  The parser is
line-oriented; values may contain spaces.

Every parsed element remembers the 1-based line it came from
(``InstanceSpec.header_line``, ``InstanceSpec.param_lines``,
``InputSpec.line``), and every :class:`ConfigError` raised here carries
``line_no`` and ``line_text`` so callers -- the CLI, the ``repro lint``
analyzer -- can point at the offending configuration line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import ConfigError

_SECTION_RE = re.compile(r"^\[([A-Za-z_][A-Za-z0-9_]*)\]$")
_INPUT_KEY_RE = re.compile(r"^input\[([A-Za-z_][A-Za-z0-9_]*)\]$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class InputSpec:
    """One ``input[...]`` assignment.

    ``output_name`` is ``None`` for the ``@instance`` form, meaning "all
    outputs of that instance".  ``line`` is the 1-based config line the
    assignment came from (0 when built programmatically); it does not
    participate in equality so positionless specs still compare equal.
    """

    input_name: str
    instance_id: str
    output_name: Optional[str]
    line: int = field(default=0, compare=False)

    def render(self) -> str:
        if self.output_name is None:
            return f"input[{self.input_name}] = @{self.instance_id}"
        return (
            f"input[{self.input_name}] = "
            f"{self.instance_id}.{self.output_name}"
        )


@dataclass
class InstanceSpec:
    """A fully parsed module-instance declaration (one config section)."""

    module_type: str
    instance_id: str
    params: Dict[str, str] = field(default_factory=dict)
    inputs: List[InputSpec] = field(default_factory=list)
    #: 1-based line of the ``[section]`` header (0 if built in code).
    header_line: int = field(default=0, compare=False)
    #: Parameter name -> 1-based line of its assignment.
    param_lines: Dict[str, int] = field(default_factory=dict, compare=False)

    def param_line(self, name: str) -> int:
        """Line a parameter was assigned on (the header as fallback)."""
        return self.param_lines.get(name, self.header_line)

    def render(self) -> str:
        lines = [f"[{self.module_type}]", f"id = {self.instance_id}"]
        lines.extend(spec.render() for spec in self.inputs)
        lines.extend(f"{key} = {value}" for key, value in self.params.items())
        return "\n".join(lines)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index != -1:
            line = line[:index]
    return line.strip()


def parse_config(
    text: str, *, collect: Optional[List[ConfigError]] = None
) -> List[InstanceSpec]:
    """Parse configuration ``text`` into a list of instance specs.

    Raises :class:`ConfigError` on syntax errors, assignments outside a
    section, duplicate parameters or inputs within a section, and
    duplicate instance ids across sections.

    When ``collect`` is a list, errors are appended to it instead of
    being raised and parsing continues past the offending line -- the
    lenient mode the ``repro lint`` analyzer uses to report every problem
    in one pass rather than stopping at the first.
    """
    specs: List[InstanceSpec] = []
    current: Optional[InstanceSpec] = None
    type_counters: Dict[str, int] = {}
    explicit_id = False

    def fail(message: str, line_no: Optional[int], line_text: Optional[str]) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        error = ConfigError(
            prefix + message, line_no=line_no, line_text=line_text
        )
        if collect is None:
            raise error
        collect.append(error)

    def parse_input_value(
        value: str, line_no: int, raw_line: str
    ) -> "Optional[tuple[str, Optional[str]]]":
        if value.startswith("@"):
            instance_id = value[1:].strip()
            if not _IDENT_RE.match(instance_id):
                fail(f"bad instance id in '@{instance_id}'", line_no, raw_line)
                return None
            return instance_id, None
        if "." not in value:
            fail(
                f"input value must be 'instance.output' or '@instance', "
                f"got {value!r}",
                line_no,
                raw_line,
            )
            return None
        instance_id, output_name = value.split(".", 1)
        instance_id = instance_id.strip()
        output_name = output_name.strip()
        if not _IDENT_RE.match(instance_id) or not output_name:
            fail(f"bad input value {value!r}", line_no, raw_line)
            return None
        return instance_id, output_name

    def finish(spec: Optional[InstanceSpec], had_id: bool) -> None:
        if spec is None:
            return
        if not had_id:
            counter = type_counters.setdefault(spec.module_type, 0)
            spec.instance_id = f"{spec.module_type}{counter}"
            type_counters[spec.module_type] = counter + 1
        specs.append(spec)

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue

        section = _SECTION_RE.match(line)
        if section:
            finish(current, explicit_id)
            current = InstanceSpec(
                module_type=section.group(1),
                instance_id="",
                header_line=line_no,
            )
            explicit_id = False
            continue

        if "=" not in line:
            fail(f"expected 'key = value', got {line!r}", line_no, raw_line)
            continue
        if current is None:
            fail("assignment outside of a [section]", line_no, raw_line)
            continue

        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if not key:
            fail("empty key", line_no, raw_line)
            continue

        input_key = _INPUT_KEY_RE.match(key)
        if input_key:
            input_name = input_key.group(1)
            parsed = parse_input_value(value, line_no, raw_line)
            if parsed is None:
                continue
            instance_id, output_name = parsed
            spec = InputSpec(input_name, instance_id, output_name, line=line_no)
            if spec in current.inputs:
                fail(
                    f"duplicate input wiring {spec.render()!r}",
                    line_no,
                    raw_line,
                )
                continue
            current.inputs.append(spec)
        elif key == "id":
            if explicit_id:
                fail("duplicate 'id' assignment", line_no, raw_line)
                continue
            if not _IDENT_RE.match(value):
                fail(f"bad instance id {value!r}", line_no, raw_line)
                continue
            current.instance_id = value
            explicit_id = True
        else:
            if key in current.params:
                fail(
                    f"duplicate parameter '{key}' in section "
                    f"[{current.module_type}]",
                    line_no,
                    raw_line,
                )
                continue
            current.params[key] = value
            current.param_lines[key] = line_no

    finish(current, explicit_id)

    seen_ids: Dict[str, InstanceSpec] = {}
    deduped: List[InstanceSpec] = []
    for spec in specs:
        if spec.instance_id in seen_ids:
            first = seen_ids[spec.instance_id]
            fail(
                f"duplicate instance id '{spec.instance_id}' "
                f"(sections [{first.module_type}] and "
                f"[{spec.module_type}])",
                spec.header_line or None,
                f"[{spec.module_type}]" if spec.header_line else None,
            )
            continue  # lenient mode: keep the first declaration only
        seen_ids[spec.instance_id] = spec
        deduped.append(spec)
    return deduped


def render_config(specs: List[InstanceSpec]) -> str:
    """Render specs back to configuration-file text (parse round-trips)."""
    return "\n\n".join(spec.render() for spec in specs) + "\n"
