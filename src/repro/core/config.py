"""Parser for fpt-core configuration files.

The format follows the paper's section 3.4 exactly:

* ``[module-type]`` starts a new module instance of that type.
* ``id = instance-id`` names the instance (optional; an id of the form
  ``<type><n>`` is generated otherwise).
* ``input[name] = instance-id.outputname`` wires a single upstream output
  to the input ``name``.
* ``input[name] = @instance-id`` wires *all* outputs of the upstream
  instance to the input ``name``.
* Every other ``key = value`` assignment is an opaque parameter handed to
  the module instance for its own interpretation.

Comments start with ``#`` or ``;`` and run to end of line.  The parser is
line-oriented; values may contain spaces.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import ConfigError

_SECTION_RE = re.compile(r"^\[([A-Za-z_][A-Za-z0-9_]*)\]$")
_INPUT_KEY_RE = re.compile(r"^input\[([A-Za-z_][A-Za-z0-9_]*)\]$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class InputSpec:
    """One ``input[...]`` assignment.

    ``output_name`` is ``None`` for the ``@instance`` form, meaning "all
    outputs of that instance".
    """

    input_name: str
    instance_id: str
    output_name: Optional[str]

    def render(self) -> str:
        if self.output_name is None:
            return f"input[{self.input_name}] = @{self.instance_id}"
        return (
            f"input[{self.input_name}] = "
            f"{self.instance_id}.{self.output_name}"
        )


@dataclass
class InstanceSpec:
    """A fully parsed module-instance declaration (one config section)."""

    module_type: str
    instance_id: str
    params: Dict[str, str] = field(default_factory=dict)
    inputs: List[InputSpec] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"[{self.module_type}]", f"id = {self.instance_id}"]
        lines.extend(spec.render() for spec in self.inputs)
        lines.extend(f"{key} = {value}" for key, value in self.params.items())
        return "\n".join(lines)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index != -1:
            line = line[:index]
    return line.strip()


def _parse_input_value(value: str, line_no: int) -> "tuple[str, Optional[str]]":
    """Parse the right-hand side of an ``input[...]`` assignment."""
    if value.startswith("@"):
        instance_id = value[1:].strip()
        if not _IDENT_RE.match(instance_id):
            raise ConfigError(
                f"line {line_no}: bad instance id in '@{instance_id}'"
            )
        return instance_id, None
    if "." not in value:
        raise ConfigError(
            f"line {line_no}: input value must be 'instance.output' or "
            f"'@instance', got {value!r}"
        )
    instance_id, output_name = value.split(".", 1)
    instance_id = instance_id.strip()
    output_name = output_name.strip()
    if not _IDENT_RE.match(instance_id) or not output_name:
        raise ConfigError(f"line {line_no}: bad input value {value!r}")
    return instance_id, output_name


def parse_config(text: str) -> List[InstanceSpec]:
    """Parse configuration ``text`` into a list of instance specs.

    Raises :class:`ConfigError` on syntax errors, assignments outside a
    section, duplicate parameters or inputs within a section, and
    duplicate instance ids across sections.
    """
    specs: List[InstanceSpec] = []
    current: Optional[InstanceSpec] = None
    type_counters: Dict[str, int] = {}
    explicit_id = False

    def finish(spec: Optional[InstanceSpec], had_id: bool) -> None:
        if spec is None:
            return
        if not had_id:
            counter = type_counters.setdefault(spec.module_type, 0)
            spec.instance_id = f"{spec.module_type}{counter}"
            type_counters[spec.module_type] = counter + 1
        specs.append(spec)

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue

        section = _SECTION_RE.match(line)
        if section:
            finish(current, explicit_id)
            current = InstanceSpec(module_type=section.group(1), instance_id="")
            explicit_id = False
            continue

        if "=" not in line:
            raise ConfigError(f"line {line_no}: expected 'key = value', got {line!r}")
        if current is None:
            raise ConfigError(
                f"line {line_no}: assignment outside of a [section]"
            )

        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if not key:
            raise ConfigError(f"line {line_no}: empty key")

        input_key = _INPUT_KEY_RE.match(key)
        if input_key:
            input_name = input_key.group(1)
            instance_id, output_name = _parse_input_value(value, line_no)
            spec = InputSpec(input_name, instance_id, output_name)
            if spec in current.inputs:
                raise ConfigError(
                    f"line {line_no}: duplicate input wiring {spec.render()!r}"
                )
            current.inputs.append(spec)
        elif key == "id":
            if explicit_id:
                raise ConfigError(f"line {line_no}: duplicate 'id' assignment")
            if not _IDENT_RE.match(value):
                raise ConfigError(f"line {line_no}: bad instance id {value!r}")
            current.instance_id = value
            explicit_id = True
        else:
            if key in current.params:
                raise ConfigError(
                    f"line {line_no}: duplicate parameter '{key}' in section "
                    f"[{current.module_type}]"
                )
            current.params[key] = value

    finish(current, explicit_id)

    seen_ids: Dict[str, str] = {}
    for spec in specs:
        if spec.instance_id in seen_ids:
            raise ConfigError(
                f"duplicate instance id '{spec.instance_id}' "
                f"(sections [{seen_ids[spec.instance_id]}] and "
                f"[{spec.module_type}])"
            )
        seen_ids[spec.instance_id] = spec.module_type
    return specs


def render_config(specs: List[InstanceSpec]) -> str:
    """Render specs back to configuration-file text (parse round-trips)."""
    return "\n\n".join(spec.render() for spec in specs) + "\n"
