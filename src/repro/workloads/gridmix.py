"""GridMix-like workload generation (paper section 4.7).

GridMix is the multi-workload Hadoop benchmark the paper ran: it mixes
five job types -- "ranging from an interactive workload that samples a
large dataset, to a large sort of uncompressed data" -- submitted on a
schedule that mimics observed enterprise data-access patterns.  This
module reproduces the *mixture's shape*: five job classes with distinct
cost models, three size tiers dominated by small jobs, and randomized
Poisson submissions, all derived from a seeded generator so a workload
is a pure function of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..hadoop.job import MB, JobCostModel, JobSpec

#: The five GridMix job classes and their cost models.  Throughputs are
#: tuned so a 64 MB map block takes ~5-30 s of task time: short tasks
#: sprinkled across the cluster keep 60 s windows statistically alike
#: across peers, the regime the paper's scaled-down GridMix ran in.
JOB_CLASSES: Dict[str, JobCostModel] = {
    # Interactive sampling of a large dataset: fast scans, tiny output.
    "webdata_scan": JobCostModel(
        map_mb_per_cpu_s=12.0,
        map_output_ratio=0.10,
        sort_mb_per_cpu_s=6.0,
        reduce_mb_per_cpu_s=4.0,
        reduce_output_ratio=0.5,
    ),
    # Large sort of uncompressed data: identity map, heavy shuffle.
    "webdata_sort": JobCostModel(
        map_mb_per_cpu_s=6.0,
        map_output_ratio=1.0,
        sort_mb_per_cpu_s=10.0,
        reduce_mb_per_cpu_s=2.4,
        reduce_output_ratio=1.0,
    ),
    # Text sort driven through Hadoop streaming: extra CPU per byte.
    "stream_sort": JobCostModel(
        map_mb_per_cpu_s=4.0,
        map_output_ratio=1.0,
        sort_mb_per_cpu_s=5.0,
        reduce_mb_per_cpu_s=1.8,
        reduce_output_ratio=1.0,
    ),
    # API-level sort with a combiner: shuffle shrinks at the map side.
    "combiner": JobCostModel(
        map_mb_per_cpu_s=5.0,
        map_output_ratio=0.30,
        sort_mb_per_cpu_s=7.0,
        reduce_mb_per_cpu_s=2.8,
        reduce_output_ratio=0.8,
    ),
    # Three-stage query pipeline: CPU-intensive maps, small output.
    "monster_query": JobCostModel(
        map_mb_per_cpu_s=2.0,
        map_output_ratio=0.40,
        sort_mb_per_cpu_s=5.5,
        reduce_mb_per_cpu_s=1.2,
        reduce_output_ratio=0.3,
    ),
}

#: (low, high) input sizes in MB and mixture weight for each size tier.
#: The paper scaled GridMix's dataset down (200 MB for 50 nodes) so the
#: cluster runs a steady mixture of small jobs rather than saturating;
#: peer comparison relies on that homogeneous, lightly loaded profile.
SIZE_TIERS: Tuple[Tuple[float, float, float], ...] = (
    (256.0, 512.0, 0.50),    # cluster-spanning scans
    (512.0, 1024.0, 0.35),   # medium sorts
    (1024.0, 2048.0, 0.15),  # large sorts
)


@dataclass
class GridMixConfig:
    """Knobs for one generated workload."""

    duration_s: float = 1800.0
    #: Mean seconds between job submissions after the initial burst.
    mean_interarrival_s: float = 40.0
    #: Jobs submitted at t=0 to fill the cluster immediately.
    initial_jobs: int = 2
    #: Reduce count as a fraction of map count (at least 1).
    reduces_per_map: float = 0.75
    max_reduces: int = 10
    seed: int = 1

    #: Optional mid-run workload change (paper: robustness to workload
    #: changes): after this time, interarrivals shrink by the factor.
    change_time_s: float = -1.0
    change_rate_factor: float = 1.0


@dataclass
class GridMixWorkload:
    """A concrete schedule of job submissions."""

    config: GridMixConfig
    jobs: List[JobSpec] = field(default_factory=list)

    def total_input_bytes(self) -> float:
        return sum(job.input_bytes for job in self.jobs)

    def class_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for job in self.jobs:
            key = job.name.rsplit("-", 1)[0]
            histogram[key] = histogram.get(key, 0) + 1
        return histogram


def _draw_class(rng: np.random.Generator) -> str:
    names = sorted(JOB_CLASSES)
    return names[int(rng.integers(0, len(names)))]


def _draw_size_mb(rng: np.random.Generator) -> float:
    weights = np.array([tier[2] for tier in SIZE_TIERS])
    tier = SIZE_TIERS[int(rng.choice(len(SIZE_TIERS), p=weights / weights.sum()))]
    return float(rng.uniform(tier[0], tier[1]))


def generate_workload(config: GridMixConfig) -> GridMixWorkload:
    """Generate the full submission schedule for one experiment run."""
    rng = np.random.default_rng(config.seed)
    jobs: List[JobSpec] = []
    serial = 0

    def make_job(submit_time: float) -> JobSpec:
        nonlocal serial
        serial += 1
        class_name = _draw_class(rng)
        size_mb = _draw_size_mb(rng)
        spec = JobSpec(
            job_id=f"{200807070000 + config.seed % 1000}_{serial:04d}",
            name=f"{class_name}-{serial:04d}",
            input_bytes=size_mb * MB,
            num_reduces=0,
            cost=JOB_CLASSES[class_name],
            submit_time=submit_time,
        )
        reduces = max(1, int(round(spec.num_maps * config.reduces_per_map)))
        spec.num_reduces = min(config.max_reduces, reduces)
        return spec

    for _ in range(config.initial_jobs):
        jobs.append(make_job(0.0))

    now = 0.0
    while True:
        rate = config.mean_interarrival_s
        if config.change_time_s >= 0 and now >= config.change_time_s:
            rate = config.mean_interarrival_s / max(1e-9, config.change_rate_factor)
        now += float(rng.exponential(rate))
        if now >= config.duration_s:
            break
        jobs.append(make_job(now))

    return GridMixWorkload(config=config, jobs=jobs)
