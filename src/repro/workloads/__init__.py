"""Workload generation: the GridMix-like benchmark mixture."""

from .gridmix import (
    JOB_CLASSES,
    SIZE_TIERS,
    GridMixConfig,
    GridMixWorkload,
    generate_workload,
)

__all__ = [
    "GridMixConfig",
    "GridMixWorkload",
    "JOB_CLASSES",
    "SIZE_TIERS",
    "generate_workload",
]
