"""MapReduce job descriptions.

A :class:`JobSpec` carries everything the JobTracker needs to run a job:
input size (mapped to HDFS blocks, one map task per block), reduce count,
and the per-job-type cost model (how many MB one CPU-second processes in
each phase, how much intermediate/output data each phase emits).  The
GridMix-like workload generator (:mod:`repro.workloads.gridmix`)
instantiates these from its five job classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: HDFS block size (Hadoop 0.18 default), bytes.
BLOCK_SIZE = 64 * 1024 * 1024

MB = 1024.0 * 1024.0


class TaskKind(enum.Enum):
    MAP = "m"
    REDUCE = "r"


@dataclass(frozen=True)
class JobCostModel:
    """Per-job-type resource cost coefficients.

    Throughputs are MB of data one CPU-core-second pushes through that
    phase; ratios size each phase's output relative to its input.
    """

    #: MB of input one core-second of map work consumes.
    map_mb_per_cpu_s: float = 10.0
    #: Map output bytes as a fraction of map input bytes.
    map_output_ratio: float = 1.0
    #: MB of shuffled data one core-second of sort work merges.
    sort_mb_per_cpu_s: float = 25.0
    #: MB of shuffled data one core-second of reduce work consumes.
    reduce_mb_per_cpu_s: float = 12.0
    #: Job output bytes as a fraction of reduce input bytes.
    reduce_output_ratio: float = 1.0
    #: Cores one running task attempt demands.
    task_cpu_cores: float = 1.0
    #: Resident set of one task attempt JVM, kB.
    task_rss_kb: float = 200.0 * 1024.0


@dataclass
class JobSpec:
    """One MapReduce job submission."""

    job_id: str
    name: str
    input_bytes: float
    num_reduces: int
    cost: JobCostModel = field(default_factory=JobCostModel)
    submit_time: float = 0.0

    @property
    def num_maps(self) -> int:
        """One map task per HDFS block of input."""
        return max(1, int((self.input_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE))

    def map_input_bytes(self, map_index: int) -> float:
        """Input size of one map: a full block except possibly the last."""
        full_maps = int(self.input_bytes // BLOCK_SIZE)
        if map_index < full_maps:
            return float(BLOCK_SIZE)
        remainder = self.input_bytes - full_maps * BLOCK_SIZE
        return float(remainder) if remainder > 0 else float(BLOCK_SIZE)


def task_id(job_id: str, kind: TaskKind, index: int, attempt: int) -> str:
    """Render a Hadoop 0.18-style task attempt id."""
    return f"task_{job_id}_{kind.value}_{index:06d}_{attempt}"


def parse_task_id(text: str) -> "tuple[str, TaskKind, int, int]":
    """Parse ``task_<job>_<m|r>_<index>_<attempt>`` back into parts."""
    if not text.startswith("task_"):
        raise ValueError(f"not a task id: {text!r}")
    body = text[len("task_"):]
    parts = body.rsplit("_", 3)
    if len(parts) != 4:
        raise ValueError(f"malformed task id: {text!r}")
    job_id, kind_text, index_text, attempt_text = parts
    return job_id, TaskKind(kind_text), int(index_text), int(attempt_text)
