"""MapReduce engine: JobTracker, TaskTrackers, and task state machines.

Follows Hadoop 0.18's master/slave architecture (paper section 4.1): a
single JobTracker schedules map and reduce tasks onto slave TaskTrackers
(two map slots + two reduce slots each), tracks their progress through
heartbeats, and re-executes failed or timed-out attempts.  TaskTrackers
write the log lines the white-box analysis parses (LaunchTaskAction,
per-phase progress, "Task ... is done").

Task attempts are *activities* in the simulation sense: each tick they
declare CPU/disk/network demands against :class:`repro.sim.TickContext`
and then advance by whatever was granted.  The three application bugs of
the paper's Table 2 hook directly into these state machines:

* HADOOP-1036 -- map attempts on the sick node spin forever (infinite
  loop: full CPU demand, zero progress, no completion line);
* HADOOP-1152 -- reduce attempts on the sick node throw while copying
  map output and fail immediately, crash-looping through re-execution;
* HADOOP-2080 -- reduce attempts on the sick node hang at the end of the
  copy phase (miscomputed checksum), consuming nothing.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from ..sim.engine import TickContext
from ..sim.node import SimNode
from .hdfs import Block, DataNode, NameNode
from .job import MB, JobSpec, TaskKind, task_id
from .logs import TASKTRACKER_CLASS, DaemonLog

#: Hadoop's default task timeout (mapred.task.timeout), seconds.
TASK_TIMEOUT_S = 600.0

#: Maximum attempts per task before it is declared failed (Hadoop default).
MAX_TASK_ATTEMPTS = 4

#: Fraction of a job's maps that must finish before reduces are launched.
#: Launching reduces late keeps the healthy copy phase short (the map
#: output is already there), so a node stuck re-copying stands out.
REDUCE_SLOWSTART_FRACTION = 0.8

#: Maximum concurrent shuffle fetch streams per reduce (parallel copies).
MAX_PARALLEL_FETCHES = 5

#: Per-stream shuffle fetch ceiling, bytes/second.  Keeps one reduce from
#: demanding its whole remaining segment in a single tick, which would
#: distort the proportional-share arbitration for co-located tasks.
SHUFFLE_FETCH_BYTES_PER_S = 8.0 * MB

#: Seconds between progress log lines for a running attempt.
PROGRESS_LOG_INTERVAL_S = 5.0

#: Heartbeat interval from tasktracker to jobtracker, seconds.
HEARTBEAT_INTERVAL_S = 3.0

#: Approximate heartbeat payload, bytes.
HEARTBEAT_BYTES = 1500.0


class BugKind(enum.Enum):
    """The three application bugs from the paper's Table 2."""

    MAP_HANG_1036 = "HADOOP-1036"
    SHUFFLE_FAIL_1152 = "HADOOP-1152"
    REDUCE_HANG_2080 = "HADOOP-2080"


#: Signature: ``bug_for(node_name, now) -> Optional[BugKind]``.
BugLookup = Callable[[str, float], Optional[BugKind]]


class TaskStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class ReducePhase(enum.Enum):
    COPY = "copy"
    SORT = "sort"
    REDUCE = "reduce"


@dataclass
class MapOutput:
    """Where a completed map's intermediate output lives."""

    node: str
    total_bytes: float


@dataclass
class TaskState:
    """JobTracker-side record of one logical task."""

    kind: TaskKind
    index: int
    status: TaskStatus = TaskStatus.PENDING
    attempts_made: int = 0
    block: Optional[Block] = None  # map input block
    finished_on: Optional[str] = None
    finish_time: Optional[float] = None
    #: Nodes where an attempt of this task already failed.  Hadoop's
    #: JobTracker avoids re-dispatching a task to such a node, which is
    #: what lets jobs survive a single sick slave: the re-execution lands
    #: elsewhere and succeeds.
    failed_on: Set[str] = field(default_factory=set)


class JobStatus(enum.Enum):
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class JobState:
    """JobTracker-side record of one submitted job."""

    spec: JobSpec
    maps: List[TaskState] = field(default_factory=list)
    reduces: List[TaskState] = field(default_factory=list)
    map_outputs: Dict[int, MapOutput] = field(default_factory=dict)
    pending_maps: Deque[int] = field(default_factory=deque)
    pending_reduces: Deque[int] = field(default_factory=deque)
    status: JobStatus = JobStatus.RUNNING
    submit_time: float = 0.0
    finish_time: Optional[float] = None
    output_blocks: List[Block] = field(default_factory=list)

    @property
    def maps_done(self) -> int:
        return sum(1 for t in self.maps if t.status is TaskStatus.SUCCEEDED)

    @property
    def reduces_done(self) -> int:
        return sum(1 for t in self.reduces if t.status is TaskStatus.SUCCEEDED)

    def reduces_eligible(self) -> bool:
        threshold = max(1, int(REDUCE_SLOWSTART_FRACTION * len(self.maps)))
        return self.maps_done >= threshold


# ---------------------------------------------------------------------------
# Task attempts
# ---------------------------------------------------------------------------


class TaskAttempt:
    """Base class for a running attempt on a tasktracker."""

    def __init__(
        self,
        tracker: "TaskTracker",
        job: JobState,
        task: TaskState,
        attempt_no: int,
        pid: int,
        now: float,
    ) -> None:
        self.tracker = tracker
        self.job = job
        self.task = task
        self.attempt_no = attempt_no
        self.pid = pid
        self.attempt_id = task_id(job.spec.job_id, task.kind, task.index, attempt_no)
        self.start_time = now
        self.last_progress_time = now
        self.last_log_time = now - PROGRESS_LOG_INTERVAL_S  # log soon after launch
        self.finished = False
        self.failed = False

    @property
    def node(self) -> str:
        return self.tracker.node_name

    @property
    def cost(self):
        return self.job.spec.cost

    def progress(self) -> float:
        raise NotImplementedError

    def demand(self, ctx: TickContext, now: float) -> None:
        raise NotImplementedError

    def advance(self, now: float, dt: float) -> None:
        raise NotImplementedError

    def _note_progress(self, now: float) -> None:
        self.last_progress_time = now

    def _maybe_log_progress(self, now: float, detail: str) -> None:
        if now - self.last_log_time >= PROGRESS_LOG_INTERVAL_S:
            self.last_log_time = now
            # Hadoop logs progress as a 0-1 fraction with a percent sign
            # (see the paper's Figure 5 neighbourhood: "0.31% reduce > copy").
            self.tracker.log.append(
                now,
                "INFO",
                TASKTRACKER_CLASS,
                f"{self.attempt_id} {self.progress() / 100.0:.2f}% {detail}",
            )


class MapAttempt(TaskAttempt):
    """One map attempt: stream the input block through the map function.

    Consumption each tick is the minimum of what the disk/network
    delivered and what the granted CPU could process; the shortfall when
    I/O-bound is booked as iowait on the node.  Output is written to
    local disk as it is produced (the tasktracker-local map output file).
    """

    def __init__(self, *args, src_node: str, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.src_node = src_node
        self.input_bytes = self.job.spec.map_input_bytes(self.task.index)
        self.bytes_done = 0.0
        self.hung = False
        self._cpu = None
        self._io = None
        self._transfer = None
        self._out = None

    def progress(self) -> float:
        return 100.0 * self.bytes_done / max(1.0, self.input_bytes)

    def demand(self, ctx: TickContext, now: float) -> None:
        bug = self.tracker.bug_for(self.node, now)
        if bug is BugKind.MAP_HANG_1036:
            self.hung = True
        if self.hung:
            # Infinite loop: burns a full core, touches no data.
            self._cpu = ctx.demand_cpu(self.node, self.pid, self.cost.task_cpu_cores)
            self._io = None
            self._transfer = None
            self._out = None
            return
        throughput = self.cost.map_mb_per_cpu_s * MB
        want_bytes = min(
            self.input_bytes - self.bytes_done,
            self.cost.task_cpu_cores * ctx.dt * throughput,
        )
        self._cpu = ctx.demand_cpu(self.node, self.pid, self.cost.task_cpu_cores)
        out_bytes = want_bytes * self.cost.map_output_ratio
        if self.src_node == self.node:
            self._io = ctx.demand_disk(
                self.node, self.pid, read_bytes=want_bytes, write_bytes=out_bytes
            )
            self._transfer = None
        else:
            # Remote block read: disk read on the serving datanode, then
            # the bytes cross the network.
            src_pid = self.tracker.datanode_pid(self.src_node)
            ctx.demand_disk(self.src_node, src_pid, read_bytes=want_bytes)
            self._transfer = ctx.demand_transfer(
                self.src_node, self.node, want_bytes, tag=f"hdfs-read:{self.attempt_id}"
            )
            self._io = ctx.demand_disk(self.node, self.pid, write_bytes=out_bytes)

    def advance(self, now: float, dt: float) -> None:
        if self.finished or self.failed:
            return
        if self.hung:
            # Infinite loop: burns CPU but never reports progress or logs.
            if self._cpu is not None:
                self._cpu.book_all()
            return
        throughput = self.cost.map_mb_per_cpu_s * MB
        cpu_capacity_bytes = self._cpu.granted * throughput
        if self._transfer is not None:
            io_bytes = self._transfer.granted_bytes
        else:
            io_bytes = self._io.read_granted
        consumed = min(cpu_capacity_bytes, io_bytes, self.input_bytes - self.bytes_done)
        cpu_used = consumed / throughput
        self._cpu.book(cpu_used, iowait=max(0.0, self._cpu.granted - cpu_used))
        if consumed > 0:
            self.bytes_done += consumed
            self._note_progress(now)
        self._maybe_log_progress(
            now, f"hdfs://master:9000/gridmix/{self.job.spec.name}:"
            f"{self.task.index * 67108864}+67108864"
        )
        if self.bytes_done >= self.input_bytes - 1e-6:
            self.finished = True


class ReduceAttempt(TaskAttempt):
    """One reduce attempt: copy (shuffle), sort, then reduce.

    The copy phase can only fetch output of maps that have completed, so
    a reduce launched early mostly waits -- which is what delays the
    manifestation of the two reduce-phase bugs in the paper's Figure 7.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.phase = ReducePhase.COPY
        self.remaining_by_src: Dict[int, float] = {}  # map index -> bytes left
        self.known_outputs: set = set()
        self.fetched_bytes = 0.0
        self.expected_shuffle_bytes: Optional[float] = None
        self.sort_done_bytes = 0.0
        self.reduce_done_bytes = 0.0
        self.hung = False
        self.output_block: Optional[Block] = None
        self._cpu = None
        self._disk = None
        self._fetch_transfers: List = []
        self._fetch_sources: List[int] = []
        self._replica_transfers: List = []

    # -- progress bookkeeping ---------------------------------------------------

    def _discover_outputs(self) -> None:
        """Learn about newly completed maps (piece = 1/num_reduces each)."""
        num_reduces = max(1, self.job.spec.num_reduces)
        for map_index, output in self.job.map_outputs.items():
            if map_index in self.known_outputs:
                continue
            self.known_outputs.add(map_index)
            self.remaining_by_src[map_index] = output.total_bytes / num_reduces

    def _shuffle_total(self) -> float:
        if self.expected_shuffle_bytes is None:
            num_reduces = max(1, self.job.spec.num_reduces)
            total_map_out = sum(
                self.job.spec.map_input_bytes(i) * self.cost.map_output_ratio
                for i in range(len(self.job.maps))
            )
            self.expected_shuffle_bytes = total_map_out / num_reduces
        return max(1.0, self.expected_shuffle_bytes)

    def progress(self) -> float:
        total = self._shuffle_total()
        copy_frac = min(1.0, self.fetched_bytes / total)
        sort_frac = min(1.0, self.sort_done_bytes / total)
        reduce_frac = min(1.0, self.reduce_done_bytes / total)
        return 100.0 * (copy_frac + sort_frac + reduce_frac) / 3.0

    def _copy_complete(self) -> bool:
        return (
            self.job.maps_done == len(self.job.maps)
            and len(self.known_outputs) == len(self.job.maps)
            and all(v <= 1e-6 for v in self.remaining_by_src.values())
        )

    # -- demand / advance ----------------------------------------------------------

    def demand(self, ctx: TickContext, now: float) -> None:
        self._cpu = None
        self._disk = None
        self._fetch_transfers = []
        self._fetch_sources = []
        self._replica_transfers = []
        if self.hung:
            return  # wedged: no demands at all (paper: decreased activity)

        bug = self.tracker.bug_for(self.node, now)
        if self.phase is ReducePhase.COPY:
            self._discover_outputs()
            sources = [
                (idx, remaining)
                for idx, remaining in self.remaining_by_src.items()
                if remaining > 1e-6
            ]
            sources.sort(key=lambda item: -item[1])
            write_total = 0.0
            fetch_cap = SHUFFLE_FETCH_BYTES_PER_S * ctx.dt
            for idx, remaining in sources[:MAX_PARALLEL_FETCHES]:
                remaining = min(remaining, fetch_cap)
                output = self.job.map_outputs[idx]
                src_pid = self.tracker.tasktracker_pid(output.node)
                ctx.demand_disk(output.node, src_pid, read_bytes=remaining)
                transfer = ctx.demand_transfer(
                    output.node, self.node, remaining, tag=f"shuffle:{self.attempt_id}"
                )
                self._fetch_transfers.append(transfer)
                self._fetch_sources.append(idx)
                write_total += remaining
            if write_total > 0:
                self._disk = ctx.demand_disk(
                    self.node, self.pid, write_bytes=write_total
                )
            # Merging fetched segments costs a little CPU.
            self._cpu = ctx.demand_cpu(self.node, self.pid, 0.2)
        elif self.phase is ReducePhase.SORT:
            total = self._shuffle_total()
            remaining = total - self.sort_done_bytes
            throughput = self.cost.sort_mb_per_cpu_s * MB
            want = min(remaining, self.cost.task_cpu_cores * ctx.dt * throughput)
            self._cpu = ctx.demand_cpu(self.node, self.pid, self.cost.task_cpu_cores)
            self._disk = ctx.demand_disk(
                self.node, self.pid, read_bytes=want, write_bytes=want
            )
        else:  # REDUCE phase
            total = self._shuffle_total()
            remaining = total - self.reduce_done_bytes
            throughput = self.cost.reduce_mb_per_cpu_s * MB
            want = min(remaining, self.cost.task_cpu_cores * ctx.dt * throughput)
            out_bytes = want * self.cost.reduce_output_ratio
            self._cpu = ctx.demand_cpu(self.node, self.pid, self.cost.task_cpu_cores)
            self._disk = ctx.demand_disk(
                self.node, self.pid, read_bytes=want, write_bytes=out_bytes
            )
            # Replication pipeline: local replica writes locally (above);
            # downstream replicas receive over the network and write too.
            if self.output_block is not None:
                chain = [n for n in self.output_block.replicas if n != self.node]
                upstream = self.node
                for replica in chain:
                    transfer = ctx.demand_transfer(
                        upstream, replica, out_bytes, tag=f"pipeline:{self.attempt_id}"
                    )
                    self._replica_transfers.append((replica, transfer))
                    dn_pid = self.tracker.datanode_pid(replica)
                    ctx.demand_disk(replica, dn_pid, write_bytes=out_bytes)
                    upstream = replica

    def advance(self, now: float, dt: float) -> None:
        if self.finished or self.failed or self.hung:
            if self._cpu is not None:
                self._cpu.book(0.0)
            return

        if self.phase is ReducePhase.COPY:
            got = 0.0
            for idx, transfer in zip(self._fetch_sources, self._fetch_transfers):
                fetched = min(transfer.granted_bytes, self.remaining_by_src[idx])
                self.remaining_by_src[idx] -= fetched
                got += fetched
            if got > 0:
                self.fetched_bytes += got
                self._note_progress(now)
            if self._cpu is not None:
                self._cpu.book(min(self._cpu.granted, 0.05 * got / MB))
            total = self._shuffle_total()
            done_maps = len(self.known_outputs) - sum(
                1 for v in self.remaining_by_src.values() if v > 1e-6
            )
            rate = got / MB / dt
            self._maybe_log_progress(
                now,
                f"reduce > copy ({done_maps} of {len(self.job.maps)} at "
                f"{rate:.2f} MB/s) >",
            )
            if self._copy_complete():
                bug = self.tracker.bug_for(self.node, now)
                if bug is BugKind.REDUCE_HANG_2080:
                    # Checksum mismatch wedges the attempt right as the
                    # copy phase hands off to the sort.
                    self.hung = True
                    return
                if bug is BugKind.SHUFFLE_FAIL_1152:
                    # The copy thread throws renaming the *last* map
                    # output segment: the whole copy phase's work is lost
                    # and the re-executed attempt re-copies from scratch.
                    # This is why the paper saw the fault stay "dormant
                    # for several minutes" before manifesting.
                    self.failed = True
                    return
                self.phase = ReducePhase.SORT
                self._note_progress(now)
        elif self.phase is ReducePhase.SORT:
            throughput = self.cost.sort_mb_per_cpu_s * MB
            cpu_bytes = self._cpu.granted * throughput
            io_bytes = min(self._disk.read_granted, self._disk.write_granted)
            total = self._shuffle_total()
            consumed = min(cpu_bytes, io_bytes, total - self.sort_done_bytes)
            cpu_used = consumed / throughput
            self._cpu.book(cpu_used, iowait=max(0.0, self._cpu.granted - cpu_used))
            if consumed > 0:
                self.sort_done_bytes += consumed
                self._note_progress(now)
            self._maybe_log_progress(now, "reduce > sort")
            if self.sort_done_bytes >= total - 1e-6:
                self.phase = ReducePhase.REDUCE
                self.output_block = self.tracker.allocate_output_block(
                    self, total * self.cost.reduce_output_ratio, now
                )
                self._note_progress(now)
        else:  # REDUCE
            throughput = self.cost.reduce_mb_per_cpu_s * MB
            cpu_bytes = self._cpu.granted * throughput
            io_bytes = self._disk.read_granted
            pipeline_bytes = [t.granted_bytes for _, t in self._replica_transfers]
            if pipeline_bytes:
                # The slowest replica in the pipeline throttles the write.
                io_bytes = min(
                    io_bytes,
                    min(pipeline_bytes) / max(1e-9, self.cost.reduce_output_ratio),
                )
            total = self._shuffle_total()
            consumed = min(cpu_bytes, io_bytes, total - self.reduce_done_bytes)
            cpu_used = consumed / throughput
            self._cpu.book(cpu_used, iowait=max(0.0, self._cpu.granted - cpu_used))
            if consumed > 0:
                self.reduce_done_bytes += consumed
                self._note_progress(now)
            self._maybe_log_progress(now, "reduce > reduce")
            if self.reduce_done_bytes >= total - 1e-6:
                self.finished = True


# ---------------------------------------------------------------------------
# TaskTracker
# ---------------------------------------------------------------------------


class TaskTracker:
    """The per-slave daemon: slots, attempt lifecycle, log emission."""

    def __init__(
        self,
        node_name: str,
        sim_node: SimNode,
        log: DaemonLog,
        jobtracker: "JobTracker",
        namenode: NameNode,
        datanodes: Dict[str, DataNode],
        bug_for: BugLookup,
        map_slots: int = 2,
        reduce_slots: int = 2,
        pid_base: int = 1000,
    ) -> None:
        self.node_name = node_name
        self.sim_node = sim_node
        self.log = log
        self.jobtracker = jobtracker
        self.namenode = namenode
        self.datanodes = datanodes
        self.bug_for = bug_for
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.running: List[TaskAttempt] = []
        self._pids = itertools.count(pid_base)
        self._last_heartbeat = -HEARTBEAT_INTERVAL_S
        self.pid = pid_base - 2  # the tasktracker daemon's own pid
        sim_node.ensure_process(
            self.pid, "TaskTracker", rss_kb=180e3, threads=30.0, fds=120.0
        )

    # -- helpers used by attempts ----------------------------------------------

    def datanode_pid(self, node: str) -> int:
        """Pid the DataNode daemon on ``node`` runs under (TT pid + 1)."""
        if node in self.jobtracker.trackers:
            return self.jobtracker.trackers[node].pid + 1
        return 99

    def tasktracker_pid(self, node: str) -> int:
        return self.jobtracker.trackers[node].pid if node in self.jobtracker.trackers else 98

    def allocate_output_block(
        self, attempt: ReduceAttempt, size: float, now: float
    ) -> Block:
        block = self.namenode.allocate(max(1.0, size), preferred=self.node_name)
        attempt.job.output_blocks.append(block)
        upstream_ip = self._ip(self.node_name)
        for replica in block.replicas:
            datanode = self.datanodes[replica]
            datanode.log_receive_start(block, upstream_ip, now)
            upstream_ip = self._ip(replica)
        return block

    @staticmethod
    def _ip(node: str) -> str:
        # Stable fake address derived from the node name's trailing digits.
        digits = "".join(c for c in node if c.isdigit()) or "0"
        return f"10.0.0.{int(digits) % 250 + 1}"

    # -- slot accounting ----------------------------------------------------------

    def _running_of(self, kind: TaskKind) -> int:
        return sum(1 for a in self.running if a.task.kind is kind)

    def free_map_slots(self) -> int:
        return self.map_slots - self._running_of(TaskKind.MAP)

    def free_reduce_slots(self) -> int:
        return self.reduce_slots - self._running_of(TaskKind.REDUCE)

    # -- lifecycle -----------------------------------------------------------------

    def heartbeat(self, ctx: TickContext, now: float) -> None:
        """Exchange a heartbeat with the JobTracker and accept new tasks."""
        if not self.heartbeat_due(now):
            return
        self._last_heartbeat = now
        ctx.demand_transfer(
            self.node_name, self.jobtracker.master_node, HEARTBEAT_BYTES, tag="heartbeat"
        )
        ctx.demand_transfer(
            self.jobtracker.master_node, self.node_name, HEARTBEAT_BYTES, tag="heartbeat"
        )
        self.heartbeat_pull(now)

    def heartbeat_due(self, now: float) -> bool:
        """Whether this tick is a heartbeat tick for this tracker."""
        return now - self._last_heartbeat >= HEARTBEAT_INTERVAL_S

    def heartbeat_pull(self, now: float) -> None:
        """Pull task assignments from the JobTracker (heartbeat payload)."""
        for _ in range(self.free_map_slots()):
            launch = self.jobtracker.assign_map(self.node_name, now)
            if launch is None:
                break
            self._launch(launch[0], launch[1], now)
        for _ in range(self.free_reduce_slots()):
            launch = self.jobtracker.assign_reduce(self.node_name, now)
            if launch is None:
                break
            self._launch(launch[0], launch[1], now)

    def _launch(self, job: JobState, task: TaskState, now: float) -> None:
        attempt_no = task.attempts_made
        task.attempts_made += 1
        task.status = TaskStatus.RUNNING
        pid = next(self._pids)
        if task.kind is TaskKind.MAP:
            block = task.block
            src = self.namenode.choose_read_replica(block, self.node_name)
            attempt: TaskAttempt = MapAttempt(
                self, job, task, attempt_no, pid, now, src_node=src
            )
            serving = self.datanodes[src]
            serving.log_serve(block, self._ip(self.node_name), now)
        else:
            attempt = ReduceAttempt(self, job, task, attempt_no, pid, now)
        self.running.append(attempt)
        self.sim_node.account_forks(1.0)
        self.sim_node.ensure_process(
            pid,
            f"java({attempt.attempt_id})",
            rss_kb=job.spec.cost.task_rss_kb,
            threads=12.0,
            fds=60.0,
        )
        self.log.append(
            now, "INFO", TASKTRACKER_CLASS, f"LaunchTaskAction: {attempt.attempt_id}"
        )

    #: Idle CPU overhead of the TaskTracker daemon, cores.
    DAEMON_CORES = 0.02

    def demand(self, ctx: TickContext, now: float) -> None:
        """First pass: daemon overhead plus every running attempt."""
        daemon_cpu = ctx.demand_cpu(self.node_name, self.pid, self.DAEMON_CORES)
        daemon_cpu.book_all()
        self.demand_tasks(ctx, now)

    def demand_tasks(self, ctx: TickContext, now: float) -> None:
        """Declare demand for the running attempts only (no daemon)."""
        for attempt in self.running:
            attempt.demand(ctx, now)

    def advance(self, now: float, dt: float) -> None:
        """Second pass: consume grants, finish/fail/kill attempts."""
        still_running: List[TaskAttempt] = []
        for attempt in self.running:
            attempt.advance(now, dt)
            if attempt.finished:
                self._complete(attempt, now)
            elif attempt.failed:
                self._fail(attempt, now)
            elif now - attempt.last_progress_time > TASK_TIMEOUT_S:
                self._kill_timed_out(attempt, now)
            else:
                still_running.append(attempt)
        self.running = still_running

    def _complete(self, attempt: TaskAttempt, now: float) -> None:
        attempt.task.status = TaskStatus.SUCCEEDED
        attempt.task.finished_on = self.node_name
        attempt.task.finish_time = now
        self.log.append(
            now, "INFO", TASKTRACKER_CLASS, f"Task {attempt.attempt_id} is done."
        )
        self.sim_node.remove_process(attempt.pid)
        if attempt.task.kind is TaskKind.MAP:
            output_bytes = (
                attempt.job.spec.map_input_bytes(attempt.task.index)
                * attempt.cost.map_output_ratio
            )
            self.jobtracker.report_map_done(
                attempt.job, attempt.task, self.node_name, output_bytes
            )
        else:
            if isinstance(attempt, ReduceAttempt) and attempt.output_block is not None:
                block = attempt.output_block
                upstream_ip = self._ip(self.node_name)
                for replica in block.replicas:
                    self.datanodes[replica].log_receive_end(block, upstream_ip, now)
                    upstream_ip = self._ip(replica)
            self.jobtracker.report_reduce_done(attempt.job, attempt.task, now)

    def _fail(self, attempt: TaskAttempt, now: float) -> None:
        self.log.append(
            now,
            "WARN",
            TASKTRACKER_CLASS,
            f"Error from {attempt.attempt_id}: java.io.IOException: "
            "Failed to rename map output; task failed",
        )
        self.log.append(
            now,
            "INFO",
            TASKTRACKER_CLASS,
            f"Removing task '{attempt.attempt_id}' from running tasks",
        )
        self.sim_node.remove_process(attempt.pid)
        self.jobtracker.report_failure(
            attempt.job, attempt.task, now, node=self.node_name
        )

    def _kill_timed_out(self, attempt: TaskAttempt, now: float) -> None:
        self.log.append(
            now,
            "INFO",
            TASKTRACKER_CLASS,
            f"{attempt.attempt_id}: Task failed to report status for "
            f"{int(TASK_TIMEOUT_S)} seconds. Killing.",
        )
        self.log.append(
            now,
            "INFO",
            TASKTRACKER_CLASS,
            f"Removing task '{attempt.attempt_id}' from running tasks",
        )
        self.sim_node.remove_process(attempt.pid)
        self.jobtracker.report_failure(
            attempt.job, attempt.task, now, node=self.node_name
        )


# ---------------------------------------------------------------------------
# JobTracker
# ---------------------------------------------------------------------------


class JobTracker:
    """The master's scheduler: FIFO jobs, locality-aware map placement."""

    def __init__(self, master_node: str, namenode: NameNode) -> None:
        self.master_node = master_node
        self.namenode = namenode
        self.trackers: Dict[str, TaskTracker] = {}
        self.jobs: Dict[str, JobState] = {}
        self.job_order: List[str] = []
        self.completed_jobs: List[JobState] = []
        #: Trackers excluded from scheduling (operator/mitigation action).
        self.blacklisted: Set[str] = set()

    def blacklist(self, node: str) -> None:
        """Stop assigning tasks to ``node`` (Hadoop's sick-tracker remedy).

        Running attempts are left to finish or time out on their own;
        only *new* assignments route around the node.
        """
        self.blacklisted.add(node)

    def unblacklist(self, node: str) -> None:
        self.blacklisted.discard(node)

    def register_tracker(self, tracker: TaskTracker) -> None:
        self.trackers[tracker.node_name] = tracker

    # -- submission ---------------------------------------------------------------

    def submit(self, spec: JobSpec, now: float) -> JobState:
        sizes = [spec.map_input_bytes(i) for i in range(spec.num_maps)]
        blocks = self.namenode.materialize_input(sizes)
        job = JobState(spec=spec, submit_time=now)
        for index, block in enumerate(blocks):
            job.maps.append(TaskState(kind=TaskKind.MAP, index=index, block=block))
            job.pending_maps.append(index)
        for index in range(spec.num_reduces):
            job.reduces.append(TaskState(kind=TaskKind.REDUCE, index=index))
            job.pending_reduces.append(index)
        self.jobs[spec.job_id] = job
        self.job_order.append(spec.job_id)
        return job

    def _active_jobs(self) -> List[JobState]:
        return [
            self.jobs[job_id]
            for job_id in self.job_order
            if self.jobs[job_id].status is JobStatus.RUNNING
        ]

    # -- assignment ----------------------------------------------------------------

    def assign_map(self, node: str, now: float):
        if node in self.blacklisted:
            return None
        for job in self._active_jobs():
            candidates = [
                index
                for index in job.pending_maps
                if node not in job.maps[index].failed_on
            ]
            if not candidates:
                continue
            # Locality first: a pending map whose block has a local replica.
            chosen: Optional[int] = None
            for index in candidates:
                block = job.maps[index].block
                if block is not None and node in block.replicas:
                    chosen = index
                    break
            if chosen is None:
                chosen = candidates[0]
            job.pending_maps.remove(chosen)
            return job, job.maps[chosen]
        return None

    def assign_reduce(self, node: str, now: float):
        if node in self.blacklisted:
            return None
        for job in self._active_jobs():
            if not job.reduces_eligible():
                continue
            candidates = [
                index
                for index in job.pending_reduces
                if node not in job.reduces[index].failed_on
            ]
            if not candidates:
                continue
            index = candidates[0]
            job.pending_reduces.remove(index)
            return job, job.reduces[index]
        return None

    # -- completion reporting ---------------------------------------------------------

    def report_map_done(
        self, job: JobState, task: TaskState, node: str, output_bytes: float
    ) -> None:
        job.map_outputs[task.index] = MapOutput(node=node, total_bytes=output_bytes)

    def report_reduce_done(self, job: JobState, task: TaskState, now: float) -> None:
        if (
            job.status is JobStatus.RUNNING
            and job.maps_done == len(job.maps)
            and job.reduces_done == len(job.reduces)
        ):
            self._finish_job(job, JobStatus.SUCCEEDED, now)

    def report_failure(
        self, job: JobState, task: TaskState, now: float, node: Optional[str] = None
    ) -> None:
        if node is not None:
            task.failed_on.add(node)
        if task.attempts_made >= MAX_TASK_ATTEMPTS:
            task.status = TaskStatus.FAILED
            if job.status is JobStatus.RUNNING:
                self._finish_job(job, JobStatus.FAILED, now)
            return
        task.status = TaskStatus.PENDING
        if task.kind is TaskKind.MAP:
            job.pending_maps.append(task.index)
        else:
            job.pending_reduces.append(task.index)

    def _finish_job(self, job: JobState, status: JobStatus, now: float) -> None:
        job.status = status
        job.finish_time = now
        self.completed_jobs.append(job)
        # GridMix cleanup: drop the generated input and the job output,
        # producing the DeleteBlock activity the datanode logs record.
        for task in job.maps:
            if task.block is not None:
                self.namenode.delete_block(task.block, now)
        for block in job.output_blocks:
            self.namenode.delete_block(block, now)
