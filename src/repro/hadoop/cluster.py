"""The assembled Hadoop cluster simulator.

:class:`HadoopCluster` wires the substrate together the way the paper's
testbed was wired: a master node running the JobTracker and NameNode,
plus N slave nodes each running a TaskTracker and a DataNode.  Each call
to :meth:`HadoopCluster.step` advances simulated time by one tick:

1. every node's per-tick accumulators are reset;
2. tasktrackers heartbeat (receiving task assignments) and all running
   activities -- task attempts, daemons, injected resource hogs --
   declare resource demands;
3. the engine arbitrates CPU, disk and network proportionally;
4. activities consume their grants, advancing task state machines and
   emitting Hadoop log lines;
5. every node folds the tick into its ``/proc`` counters.

Fault hooks: :meth:`add_external_load` (CPUHog/DiskHog),
:meth:`set_bug` (the three application bugs), and the network model's
``set_loss_rate`` (PacketLoss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import TickContext
from ..sim.network import NetworkModel
from ..sim.node import SimNode
from ..sim.resources import NodeSpec
from .hdfs import DataNode, NameNode
from .job import JobSpec
from .logs import DaemonLog
from .mapreduce import BugKind, JobState, JobTracker, TaskTracker


@dataclass
class ExternalLoad:
    """A non-Hadoop process competing for a node's resources.

    This is the vehicle for the paper's resource-contention faults: a
    CPUHog is an external load with ``cpu_cores`` set; a DiskHog is one
    with ``disk_write_bytes_s`` and a ``total_write_bytes`` budget (the
    paper's 20 GB sequential write).
    """

    node: str
    pid: int
    name: str = "hog"
    cpu_cores: float = 0.0
    disk_read_bytes_s: float = 0.0
    disk_write_bytes_s: float = 0.0
    total_write_bytes: Optional[float] = None
    rss_kb: float = 50e3
    start_time: float = 0.0
    end_time: Optional[float] = None
    written_bytes: float = 0.0
    _cpu = None
    _disk = None

    def active(self, now: float) -> bool:
        if now < self.start_time:
            return False
        if self.end_time is not None and now >= self.end_time:
            return False
        if (
            self.total_write_bytes is not None
            and self.written_bytes >= self.total_write_bytes
        ):
            return False
        return True

    def demand(self, ctx: TickContext, now: float) -> None:
        self._cpu = None
        self._disk = None
        if not self.active(now):
            return
        if self.cpu_cores > 0:
            self._cpu = ctx.demand_cpu(self.node, self.pid, self.cpu_cores)
        write = self.disk_write_bytes_s * ctx.dt
        if self.total_write_bytes is not None:
            write = min(write, self.total_write_bytes - self.written_bytes)
        read = self.disk_read_bytes_s * ctx.dt
        if write > 0 or read > 0:
            self._disk = ctx.demand_disk(
                self.node, self.pid, read_bytes=read, write_bytes=write
            )

    def advance(self, now: float, dt: float) -> None:
        if self._cpu is not None:
            self._cpu.book_all()
        if self._disk is not None:
            self.written_bytes += self._disk.write_granted


@dataclass
class ClusterConfig:
    """Sizing and seeding for a simulated cluster."""

    num_slaves: int = 10
    node_spec: NodeSpec = field(default_factory=NodeSpec)
    replication: int = 3
    seed: int = 42
    #: Simulator core: "scalar" (per-node Python loop) or "vec"
    #: (struct-of-arrays, see repro.sim.vec).  Bit-identical outputs.
    engine: str = "scalar"


class HadoopCluster:
    """A complete simulated Hadoop 0.18 cluster."""

    MASTER = "master"

    #: Idle CPU overhead of the co-located DataNode daemon, cores.
    DATANODE_DAEMON_CORES = 0.015

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        cfg = self.config
        self.time = 0.0
        self.slave_names: List[str] = [
            f"slave{i + 1:02d}" for i in range(cfg.num_slaves)
        ]
        node_names = [self.MASTER] + self.slave_names
        self.nodes: Dict[str, SimNode] = {}
        if cfg.engine == "vec":
            from ..sim.vec import FleetState, VecSimNode

            self.fleet: Optional["FleetState"] = FleetState(node_names)
            for i, name in enumerate(node_names):
                self.nodes[name] = VecSimNode(
                    name, cfg.node_spec, cfg.seed * 1000 + i, self.fleet, i
                )
        elif cfg.engine == "scalar":
            self.fleet = None
            for i, name in enumerate(node_names):
                self.nodes[name] = SimNode(
                    name, cfg.node_spec, seed=cfg.seed * 1000 + i
                )
        else:
            raise ValueError(f"unknown cluster engine: {cfg.engine!r}")

        self.network = NetworkModel(
            {name: cfg.node_spec.nic_bytes_s for name in self.nodes}
        )

        # Logs: one tasktracker and one datanode log per slave.
        self.tt_logs: Dict[str, DaemonLog] = {
            name: DaemonLog(name, "tasktracker") for name in self.slave_names
        }
        self.dn_logs: Dict[str, DaemonLog] = {
            name: DaemonLog(name, "datanode") for name in self.slave_names
        }

        # HDFS.
        self.datanodes: Dict[str, DataNode] = {}
        for i, name in enumerate(self.slave_names):
            ip = f"10.0.0.{i + 2}"
            self.datanodes[name] = DataNode(name, self.dn_logs[name], ip)
        self.namenode = NameNode(
            self.datanodes, replication=cfg.replication, seed=cfg.seed + 7
        )

        # MapReduce.
        self.jobtracker = JobTracker(self.MASTER, self.namenode)
        self.trackers: Dict[str, TaskTracker] = {}
        for i, name in enumerate(self.slave_names):
            pid_base = 1000 * (i + 1)
            tracker = TaskTracker(
                node_name=name,
                sim_node=self.nodes[name],
                log=self.tt_logs[name],
                jobtracker=self.jobtracker,
                namenode=self.namenode,
                datanodes=self.datanodes,
                bug_for=self.bug_for,
                pid_base=pid_base,
            )
            self.trackers[name] = tracker
            self.jobtracker.register_tracker(tracker)
            # The DataNode daemon runs beside the TaskTracker.
            dn_pid = tracker.pid + 1
            self.nodes[name].ensure_process(
                dn_pid, "DataNode", rss_kb=150e3, threads=20.0, fds=90.0
            )

        # Fault state.
        self.external_loads: List[ExternalLoad] = []
        self._bugs: Dict[str, List[Tuple[BugKind, float, Optional[float]]]] = {}
        self._pending_jobs: List[JobSpec] = []
        self._next_hog_pid = 90000
        self._scheduled_actions: List[Tuple[float, Callable[["HadoopCluster"], None]]] = []

    # -- fault hooks -------------------------------------------------------------

    def add_external_load(self, load: ExternalLoad) -> None:
        self.external_loads.append(load)
        self.nodes[load.node].ensure_process(
            load.pid, load.name, rss_kb=load.rss_kb, threads=1.0
        )

    def allocate_hog_pid(self) -> int:
        self._next_hog_pid += 1
        return self._next_hog_pid

    def set_bug(
        self,
        node: str,
        kind: BugKind,
        start_time: float,
        end_time: Optional[float] = None,
    ) -> None:
        self._bugs.setdefault(node, []).append((kind, start_time, end_time))

    def bug_for(self, node: str, now: float) -> Optional[BugKind]:
        for kind, start, end in self._bugs.get(node, []):
            if now >= start and (end is None or now < end):
                return kind
        return None

    def at(self, when: float, action: Callable[["HadoopCluster"], None]) -> None:
        """Run ``action(cluster)`` at the start of the tick at ``when``."""
        self._scheduled_actions.append((when, action))
        self._scheduled_actions.sort(key=lambda item: item[0])

    def _run_due_actions(self) -> None:
        while self._scheduled_actions and self._scheduled_actions[0][0] <= self.time:
            _, action = self._scheduled_actions.pop(0)
            action(self)

    # -- workload ------------------------------------------------------------------

    def submit_job(self, spec: JobSpec) -> JobState:
        """Submit a job right now."""
        return self.jobtracker.submit(spec, self.time)

    def schedule_job(self, spec: JobSpec) -> None:
        """Queue a job for submission at ``spec.submit_time``."""
        self._pending_jobs.append(spec)
        self._pending_jobs.sort(key=lambda s: s.submit_time)

    def _submit_due_jobs(self) -> None:
        while self._pending_jobs and self._pending_jobs[0].submit_time <= self.time:
            spec = self._pending_jobs.pop(0)
            self.jobtracker.submit(spec, self.time)

    # -- the tick loop ----------------------------------------------------------------

    def step(self, dt: float = 1.0) -> None:
        """Advance the whole cluster by one tick of ``dt`` seconds."""
        if self.fleet is not None:
            self._step_vec(dt)
            return
        self._run_due_actions()
        self._submit_due_jobs()
        now = self.time
        for node in self.nodes.values():
            node.begin_tick()

        ctx = TickContext(self.nodes, self.network, dt)
        # Rotate heartbeat order each tick: real trackers contact the
        # JobTracker out of phase, so no node systematically gets first
        # pick of pending tasks.
        tracker_list = [self.trackers[name] for name in self.slave_names]
        offset = int(now) % max(1, len(tracker_list))
        for tracker in tracker_list[offset:] + tracker_list[:offset]:
            tracker.heartbeat(ctx, now)
        for tracker in self.trackers.values():
            tracker.demand(ctx, now)
            # The co-located DataNode daemon's idle overhead.
            dn_cpu = ctx.demand_cpu(
                tracker.node_name, tracker.pid + 1, self.DATANODE_DAEMON_CORES
            )
            dn_cpu.book_all()
        for load in self.external_loads:
            load.demand(ctx, now)

        ctx.arbitrate()

        for tracker in self.trackers.values():
            tracker.advance(now, dt)
        for load in self.external_loads:
            load.advance(now, dt)

        for node in self.nodes.values():
            node.end_tick(dt)
        self.time = now + dt

    def _step_vec(self, dt: float) -> None:
        """The vectorized tick: same event order, fleet-wide array math.

        Per-node declaration order is preserved exactly -- heartbeat
        transfers in rotated order, then per node [tasktracker daemon,
        running attempts, datanode daemon], then external loads -- so
        the bincount-based arbitration sees the same per-node operand
        sequences as the scalar loop (see repro.sim.vec).
        """
        import numpy as np

        from ..sim.vec import VecTickContext

        self._run_due_actions()
        self._submit_due_jobs()
        now = self.time
        fleet = self.fleet
        fleet.begin_tick_all()

        ctx = VecTickContext(self.nodes, self.network, dt, fleet)
        tracker_list = [self.trackers[name] for name in self.slave_names]
        offset = int(now) % max(1, len(tracker_list))
        rotated = tracker_list[offset:] + tracker_list[:offset]
        due = [t for t in rotated if t.heartbeat_due(now)]
        if due:
            master_idx = fleet.index[self.MASTER]
            slave_idx = np.array(
                [fleet.index[t.node_name] for t in due], dtype=np.intp
            )
            # Interleave (slave->master, master->slave) pairs exactly as
            # the per-tracker loop declares them.
            src = np.empty(2 * len(due), dtype=np.intp)
            dst = np.empty(2 * len(due), dtype=np.intp)
            src[0::2] = slave_idx
            src[1::2] = master_idx
            dst[0::2] = master_idx
            dst[1::2] = slave_idx
            from .mapreduce import HEARTBEAT_BYTES

            ctx.demand_transfer_bulk(src, dst, HEARTBEAT_BYTES)
            for tracker in due:
                tracker._last_heartbeat = now
                tracker.heartbeat_pull(now)

        all_slave_idx = self._slave_index_array(np)
        from .mapreduce import TaskTracker

        ctx.demand_cpu_bulk(all_slave_idx, TaskTracker.DAEMON_CORES)
        for tracker in tracker_list:
            if tracker.running:
                tracker.demand_tasks(ctx, now)
        ctx.demand_cpu_bulk(all_slave_idx, self.DATANODE_DAEMON_CORES)
        for load in self.external_loads:
            load.demand(ctx, now)

        ctx.arbitrate()

        for tracker in tracker_list:
            if tracker.running:
                tracker.advance(now, dt)
        for load in self.external_loads:
            load.advance(now, dt)

        fleet.end_tick_all(dt)
        self.time = now + dt

    def _slave_index_array(self, np_module):
        idx = getattr(self, "_slave_idx_cache", None)
        if idx is None:
            idx = np_module.array(
                [self.fleet.index[name] for name in self.slave_names],
                dtype=np_module.intp,
            )
            self._slave_idx_cache = idx
        return idx

    def run_until(
        self,
        end_time: float,
        dt: float = 1.0,
        on_tick: Optional[Callable[["HadoopCluster"], None]] = None,
    ) -> None:
        """Step until simulated time reaches ``end_time``."""
        while self.time < end_time - 1e-9:
            self.step(dt)
            if on_tick is not None:
                on_tick(self)

    # -- introspection -------------------------------------------------------------------

    def procfs(self, node: str):
        return self.nodes[node].procfs

    def running_attempts(self, node: str) -> int:
        return len(self.trackers[node].running)

    def jobs_completed(self) -> int:
        return len(self.jobtracker.completed_jobs)

    def jobs_succeeded(self) -> int:
        from .mapreduce import JobStatus

        return sum(
            1
            for job in self.jobtracker.completed_jobs
            if job.status is JobStatus.SUCCEEDED
        )


class BlacklistController:
    """Mitigation controller for the ``mitigate`` module (paper section 5).

    Translates a fingerpointing alarm into Hadoop's operational remedy:
    blacklist the sick TaskTracker at the JobTracker so new tasks route
    around it, while its DataNode keeps serving blocks.
    """

    def __init__(self, cluster: HadoopCluster) -> None:
        self._cluster = cluster
        self.mitigated: List[Tuple[float, str]] = []

    def mitigate(self, node: str, now: float) -> None:
        self._cluster.jobtracker.blacklist(node)
        self.mitigated.append((now, node))
