"""Hadoop execution states inferred from logs (paper section 4.4).

Each thread of execution in Hadoop is approximated by a DFA whose states
are the high-level modes of execution; log entries mark state-entrance,
state-exit or instant events.  The white-box metric vector for a node at
one time instant counts how many instances of each state are
simultaneously live (or, for instant states, how many occurred in that
second).

TaskTracker states come from the MapReduce lifecycle, DataNode states
from the block lifecycle -- "some important states for the tasktracker
are Map and Reduce tasks, while some important states for the datanode
are those for the data-block reads and writes".
"""

from __future__ import annotations

from typing import Tuple

#: States counted as *concurrently live* on the tasktracker.
TASKTRACKER_STATES: Tuple[str, ...] = (
    "MapTask",
    "ReduceTask",
    "ReduceCopy",
    "ReduceSort",
    "ReduceReduce",
)

#: States counted on the datanode; WriteBlock is interval-valued,
#: ReadBlock and DeleteBlock are instant events (occurrences/second).
DATANODE_STATES: Tuple[str, ...] = (
    "WriteBlock",
    "ReadBlock",
    "DeleteBlock",
)

#: The full white-box state vector, in canonical order.
WHITEBOX_STATES: Tuple[str, ...] = TASKTRACKER_STATES + DATANODE_STATES

WHITEBOX_STATE_INDEX = {name: i for i, name in enumerate(WHITEBOX_STATES)}
